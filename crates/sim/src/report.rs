//! Simulation reports: per-layer and network-level results, the
//! deterministic JSON emitter, and the timed binary trace.

use crate::engine::LayerStats;
use crate::SimConfig;
use bytes::Bytes;
use smm_arch::{AcceleratorConfig, ByteSize};
use smm_core::report::json_escape;
use smm_core::ExecutionPlan;
use smm_exec::Program;
use smm_policy::{AccessCounts, PolicyKind};
use smm_trace::{TraceRecord, TraceWriter};

/// One layer's simulation outcome next to its analytic claim.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSimReport {
    /// Layer index in execution order.
    pub layer_index: usize,
    /// Layer name.
    pub layer_name: String,
    /// Policy the plan chose for the layer.
    pub policy: PolicyKind,
    /// Whether the layer double-buffers (Eq. 2).
    pub prefetch: bool,
    /// The plan's analytic effective latency for this layer (cycles).
    pub analytic_cycles: u64,
    /// What the discrete-event simulation measured.
    pub stats: LayerStats,
}

impl LayerSimReport {
    /// Relative divergence of simulated from analytic latency.
    pub fn divergence(&self) -> f64 {
        let want = self.analytic_cycles as f64;
        (self.stats.cycles as f64 - want).abs() / want.max(1.0)
    }
}

/// Network-level sums over all layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimTotals {
    /// Simulated end-to-end latency (cycles).
    pub cycles: u64,
    /// The plan's analytic end-to-end latency (cycles).
    pub analytic_cycles: u64,
    /// Total compute-busy cycles.
    pub compute_busy_cycles: u64,
    /// Total DRAM-channel-busy cycles.
    pub dram_busy_cycles: u64,
    /// Total stall cycles.
    pub stall_cycles: u64,
    /// Logical off-chip traffic (elements).
    pub traffic: AccessCounts,
    /// Elements physically transferred.
    pub physical_elems: u64,
    /// Elements re-transferred due to injected drops.
    pub retried_elems: u64,
    /// Dropped-and-re-issued transfers.
    pub retries: u64,
    /// Discrete events processed.
    pub events: u64,
    /// Peak GLB occupancy over the whole network (elements).
    pub peak_occupancy_elems: u64,
    /// Commands that exceeded GLB capacity (0 on clean plans).
    pub occupancy_violations: u64,
}

/// The full result of simulating one execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Network the plan targets.
    pub network: String,
    /// Scheme label ("Het"/"Hom").
    pub scheme: String,
    /// GLB capacity the simulation enforced (elements).
    pub capacity_elems: u64,
    /// The scenario configuration the simulation ran under.
    pub config: SimConfig,
    /// Per-layer outcomes, in execution order.
    pub layers: Vec<LayerSimReport>,
    /// Network-level sums.
    pub totals: SimTotals,
}

impl SimReport {
    pub(crate) fn assemble(
        plan: &ExecutionPlan,
        acc: &AcceleratorConfig,
        cfg: &SimConfig,
        layers: Vec<LayerSimReport>,
    ) -> SimReport {
        let mut totals = SimTotals {
            analytic_cycles: plan.totals.latency_cycles,
            ..SimTotals::default()
        };
        for l in &layers {
            totals.cycles += l.stats.cycles;
            totals.compute_busy_cycles += l.stats.compute_busy_cycles;
            totals.dram_busy_cycles += l.stats.dram_busy_cycles;
            totals.stall_cycles += l.stats.stall_cycles;
            totals.traffic.ifmap_loads += l.stats.traffic.ifmap_loads;
            totals.traffic.filter_loads += l.stats.traffic.filter_loads;
            totals.traffic.ofmap_stores += l.stats.traffic.ofmap_stores;
            totals.traffic.psum_spill_stores += l.stats.traffic.psum_spill_stores;
            totals.traffic.psum_spill_loads += l.stats.traffic.psum_spill_loads;
            totals.physical_elems += l.stats.physical_elems;
            totals.retried_elems += l.stats.retried_elems;
            totals.retries += l.stats.retries;
            totals.events += l.stats.events;
            totals.peak_occupancy_elems = totals
                .peak_occupancy_elems
                .max(l.stats.peak_occupancy_elems);
            totals.occupancy_violations += l.stats.occupancy_violations;
        }
        SimReport {
            network: plan.network.clone(),
            scheme: plan.scheme.label().to_string(),
            capacity_elems: acc.glb_elements(),
            config: *cfg,
            layers,
            totals,
        }
    }

    /// Relative divergence of the simulated end-to-end latency from the
    /// analytic plan latency — the quantity SMM011 bounds.
    pub fn divergence(&self) -> f64 {
        let want = self.totals.analytic_cycles as f64;
        (self.totals.cycles as f64 - want).abs() / want.max(1.0)
    }

    /// Logical off-chip traffic volume at `width`-bit elements.
    pub fn traffic_bytes(&self, acc: &AcceleratorConfig) -> ByteSize {
        self.traffic_counts().bytes(acc)
    }

    /// The network-level logical traffic, estimator-shaped.
    pub fn traffic_counts(&self) -> AccessCounts {
        self.totals.traffic
    }
}

/// Serialize a report as deterministic JSON: field order fixed, maps
/// avoided, floats printed with fixed precision — two identical
/// simulations serialize to byte-identical strings (the determinism
/// guarantee the seeded-jitter test pins).
pub fn report_json(report: &SimReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256 + 256 * report.layers.len());
    let cfg = &report.config;
    let _ = write!(
        out,
        "{{\"network\":\"{}\",\"scheme\":\"{}\",\"capacity_elems\":{},",
        json_escape(&report.network),
        json_escape(&report.scheme),
        report.capacity_elems
    );
    let _ = write!(
        out,
        "\"config\":{{\"queue_depth\":{},\"bw_derate\":{:.4},\"jitter_max_cycles\":{},\
         \"drop_rate\":{:.4},\"seed\":{},\"contenders\":{},\"compute\":\"{}\"}},",
        cfg.queue_depth,
        cfg.bw_derate,
        cfg.jitter_max_cycles,
        cfg.drop_rate,
        cfg.seed,
        cfg.contenders,
        cfg.compute.label()
    );
    out.push_str("\"layers\":[");
    for (i, l) in report.layers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"index\":{},\"name\":\"{}\",\"policy\":\"{}\",\"prefetch\":{},\
             \"analytic_cycles\":{},\"cycles\":{},\"compute_busy\":{},\"dram_busy\":{},\
             \"stall\":{},\"traffic_elems\":{},\"physical_elems\":{},\"retries\":{},\
             \"peak_occupancy\":{},\"violations\":{}}}",
            l.layer_index,
            json_escape(&l.layer_name),
            l.policy.label(),
            l.prefetch,
            l.analytic_cycles,
            l.stats.cycles,
            l.stats.compute_busy_cycles,
            l.stats.dram_busy_cycles,
            l.stats.stall_cycles,
            l.stats.traffic.total(),
            l.stats.physical_elems,
            l.stats.retries,
            l.stats.peak_occupancy_elems,
            l.stats.occupancy_violations
        );
    }
    let t = &report.totals;
    let _ = write!(
        out,
        "],\"totals\":{{\"cycles\":{},\"analytic_cycles\":{},\"divergence\":{:.6},\
         \"compute_busy\":{},\"dram_busy\":{},\"stall\":{},\"traffic_elems\":{},\
         \"physical_elems\":{},\"retried_elems\":{},\"retries\":{},\"events\":{},\
         \"peak_occupancy\":{},\"violations\":{}}}}}",
        t.cycles,
        t.analytic_cycles,
        report.divergence(),
        t.compute_busy_cycles,
        t.dram_busy_cycles,
        t.stall_cycles,
        t.traffic.total(),
        t.physical_elems,
        t.retried_elems,
        t.retries,
        t.events,
        t.peak_occupancy_elems,
        t.occupancy_violations
    );
    out
}

/// Encode a layer's DRAM-touching commands as a binary trace stamped
/// with *simulated* start cycles (shifted by `offset_cycles`, the
/// network-level cycle at which the layer begins) instead of the
/// sequence numbers [`Program::encode_trace`] uses.
pub fn timed_trace(program: &Program, stats: &LayerStats, offset_cycles: u64) -> Bytes {
    let base = TraceWriter::decode(&program.encode_trace()).expect("own encoding round-trips");
    let mut w = TraceWriter::new();
    for r in base {
        // `encode_trace` stamps each record with its command index, so
        // the index recovers the simulated start of that command.
        let start = stats.cmd_starts[r.cycle as usize];
        w.push_at(offset_cycles, TraceRecord { cycle: start, ..r });
    }
    w.finish()
}
