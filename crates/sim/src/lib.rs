//! `smm-sim`: a discrete-event execution simulator for lowered plans.
//!
//! The planner *derives* latency and traffic analytically (Eq. 1/2);
//! nothing in the stack ever executed a plan against a modeled memory
//! system, so the prefetch-overlap and bandwidth assumptions behind
//! those equations went untested end-to-end. This crate closes the
//! loop: it takes the DMA [`Command`](smm_exec::Command) streams
//! produced by [`Program::lower`](smm_exec::Program::lower) and runs
//! them through —
//!
//! - a **DMA engine** with a bounded prefetch queue (transfers run
//!   ahead of compute by at most `queue_depth` outstanding fills);
//! - a single **DRAM channel** with configurable per-element cost,
//!   shared fairly when `contenders > 1`;
//! - a **compute model** releasing each layer's cycles as its input
//!   data lands (ideal-MAC by default, `smm-systolic`'s fold model on
//!   request);
//! - a per-command **GLB occupancy ledger** that must never exceed
//!   capacity (it never does on a plan the planner accepted);
//! - **scenario injection**: bandwidth derating, per-transfer latency
//!   jitter from a seeded deterministic PRNG, and dropped/re-issued
//!   transfers.
//!
//! Simulated latency is cross-checked against the plan's analytic
//! estimate by `smm check`'s SMM011 diagnostic
//! (`smm_check::check_sim_divergence`); the logical traffic the
//! simulator reports equals the replay engine's
//! [`Replay::as_access_counts`](smm_exec::Replay::as_access_counts)
//! exactly, scenario knobs included — faults stretch time, never
//! byte counts. See `docs/SIMULATION.md` for the model in detail.
//!
//! # Example
//!
//! ```
//! use smm_arch::{AcceleratorConfig, ByteSize};
//! use smm_core::{CancelToken, Manager, ManagerConfig, Objective};
//! use smm_model::zoo;
//! use smm_sim::{simulate_plan, SimConfig};
//!
//! let net = zoo::mobilenet();
//! let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(256));
//! let plan = Manager::new(acc, ManagerConfig::new(Objective::Accesses))
//!     .heterogeneous(&net)
//!     .unwrap();
//! let report = simulate_plan(&plan, &net, &acc, &SimConfig::default()).unwrap();
//! assert_eq!(report.layers.len(), net.layers.len());
//! assert_eq!(report.totals.occupancy_violations, 0);
//! assert!(report.divergence() < 0.02);
//! ```

mod engine;
mod report;

pub use engine::LayerStats;
pub use report::{report_json, timed_trace, LayerSimReport, SimReport, SimTotals};

use smm_arch::AcceleratorConfig;
use smm_core::ExecutionPlan;
use smm_exec::{ExecError, Program};
use smm_model::{LayerShape, Network};
use smm_policy::PolicyEstimate;
use std::fmt;

/// Which compute-timing model paces the array between DMA arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComputeModel {
    /// The estimator's ideal-MAC cycle count (`macs / macs_per_cycle`)
    /// — the same number Eq. 1/2 use, so clean simulations stay within
    /// SMM011's tolerance of the analytic latency.
    #[default]
    Analytic,
    /// `smm-systolic`'s output-stationary fold model (`2R + C + K − 2`
    /// per fold): adds the array's fill/drain overhead, so latency runs
    /// above the analytic estimate — a scenario knob, not cross-checked.
    SystolicFolds,
}

impl ComputeModel {
    /// Stable lower-case label (CLI flag values, JSON).
    pub fn label(self) -> &'static str {
        match self {
            ComputeModel::Analytic => "analytic",
            ComputeModel::SystolicFolds => "folds",
        }
    }
}

/// Scenario configuration of one simulation run. The default is the
/// *clean* configuration: nominal bandwidth, no jitter, no drops, one
/// tenant — the setting under which SMM011 compares simulated to
/// analytic latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Outstanding-prefetch bound of the DMA engine (≥ 1). A prefetch
    /// may run at most this many transfers ahead of consumption.
    pub queue_depth: usize,
    /// Bandwidth derating factor (≥ small positive): 2.0 halves the
    /// effective channel bandwidth. Stretches time, never traffic.
    pub bw_derate: f64,
    /// Per-transfer latency jitter: each physical transfer pays an
    /// extra `0..=jitter_max_cycles` cycles, drawn from the seeded PRNG.
    pub jitter_max_cycles: u64,
    /// Probability a physical transfer is dropped and re-issued
    /// (clamped to 0.95; re-issues are bounded so the sim always ends).
    pub drop_rate: f64,
    /// PRNG seed. Layer `i` draws from stream `seed ⊕ mix(i)`, so
    /// results are reproducible and independent of execution order.
    pub seed: u64,
    /// Streams sharing the DRAM channel fairly (this plan is one of
    /// them): per-element cost multiplies by this count.
    pub contenders: u64,
    /// Compute-timing model.
    pub compute: ComputeModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            queue_depth: 4,
            bw_derate: 1.0,
            jitter_max_cycles: 0,
            drop_rate: 0.0,
            seed: 0,
            contenders: 1,
            compute: ComputeModel::Analytic,
        }
    }
}

impl SimConfig {
    /// True when no scenario knob moves latency away from the analytic
    /// model — the precondition for the SMM011 cross-check to be
    /// meaningful.
    pub fn is_clean(&self) -> bool {
        self.bw_derate == 1.0
            && self.jitter_max_cycles == 0
            && self.drop_rate == 0.0
            && self.contenders <= 1
            && self.compute == ComputeModel::Analytic
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.queue_depth == 0 {
            return Err(SimError::invalid("queue_depth must be at least 1"));
        }
        if !self.bw_derate.is_finite() || self.bw_derate <= 0.0 {
            return Err(SimError::invalid("bw_derate must be a positive number"));
        }
        if !self.drop_rate.is_finite() || !(0.0..1.0).contains(&self.drop_rate) {
            return Err(SimError::invalid("drop_rate must be in [0, 1)"));
        }
        if self.contenders == 0 {
            return Err(SimError::invalid("contenders must be at least 1"));
        }
        Ok(())
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A [`SimConfig`] knob is out of range.
    InvalidConfig { message: String },
    /// The plan does not describe the given network.
    PlanMismatch { message: String },
    /// Lowering a decision into a command stream failed.
    Lower(ExecError),
}

impl SimError {
    fn invalid(message: &str) -> Self {
        SimError::InvalidConfig {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { message } => write!(f, "invalid sim config: {message}"),
            SimError::PlanMismatch { message } => write!(f, "plan/network mismatch: {message}"),
            SimError::Lower(e) => write!(f, "lowering failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Lower(e)
    }
}

/// Simulate one already-lowered program in isolation (no inter-layer
/// elision): the entry point for program-level studies and for the
/// traffic-equality property the proptest suite pins — the returned
/// [`LayerStats::traffic`] equals `program.replay.as_access_counts()`
/// exactly.
pub fn simulate_program(
    program: &Program,
    shape: &LayerShape,
    est: &PolicyEstimate,
    acc: &AcceleratorConfig,
    cfg: &SimConfig,
) -> Result<LayerStats, SimError> {
    cfg.validate()?;
    Ok(engine::simulate_commands(
        program,
        shape,
        est,
        acc,
        cfg,
        0,
        engine::Elision::default(),
    ))
}

/// Simulate a whole execution plan against `net` on `acc` under the
/// scenario `cfg`: lower each decision, run its command stream through
/// the discrete-event engine (honouring the plan's inter-layer elision
/// flags), and aggregate. Emits `sim.plan`/`sim.layer` spans and the
/// `sim.*` counters through `smm-obs`.
pub fn simulate_plan(
    plan: &ExecutionPlan,
    net: &Network,
    acc: &AcceleratorConfig,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    if plan.decisions.len() != net.layers.len() {
        return Err(SimError::PlanMismatch {
            message: format!(
                "plan has {} decisions, network {:?} has {} layers",
                plan.decisions.len(),
                net.name,
                net.layers.len()
            ),
        });
    }
    let _span = smm_obs::span!("sim.plan", "{}", plan.network);
    let mut layers = Vec::with_capacity(plan.decisions.len());
    for (d, layer) in plan.decisions.iter().zip(&net.layers) {
        let _layer_span = smm_obs::span!("sim.layer", "{}", layer.name);
        let program = Program::lower(&layer.shape, &d.estimate)?;
        let stats = engine::simulate_commands(
            &program,
            &layer.shape,
            &d.estimate,
            acc,
            cfg,
            d.layer_index,
            engine::Elision {
                ifmap: d.ifmap_from_glb,
                stores: d.ofmap_kept_on_chip,
            },
        );
        smm_obs::add(smm_obs::Counter::SimEvents, stats.events);
        smm_obs::add(smm_obs::Counter::SimStallCycles, stats.stall_cycles);
        smm_obs::add(smm_obs::Counter::SimDmaRetries, stats.retries);
        smm_obs::add(
            smm_obs::Counter::SimOccupancyViolations,
            stats.occupancy_violations,
        );
        layers.push(LayerSimReport {
            layer_index: d.layer_index,
            layer_name: d.layer_name.clone(),
            policy: d.estimate.kind,
            prefetch: d.estimate.prefetch,
            analytic_cycles: d.effective_latency(acc).cycles,
            stats,
        });
    }
    Ok(SimReport::assemble(plan, acc, cfg, layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_arch::ByteSize;
    use smm_core::{
        CancelToken, Manager, ManagerConfig, NetworkRef, Objective, PlanScheme, PlanSpec,
    };
    use smm_model::zoo;

    fn acc(kb: u64) -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(kb))
    }

    fn plan_for(net: &Network, a: AcceleratorConfig) -> ExecutionPlan {
        Manager::new(a, ManagerConfig::new(Objective::Accesses))
            .heterogeneous(net)
            .unwrap()
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        assert!(SimConfig::default().validate().is_ok());
        for bad in [
            SimConfig {
                queue_depth: 0,
                ..SimConfig::default()
            },
            SimConfig {
                bw_derate: 0.0,
                ..SimConfig::default()
            },
            SimConfig {
                bw_derate: f64::NAN,
                ..SimConfig::default()
            },
            SimConfig {
                drop_rate: 1.0,
                ..SimConfig::default()
            },
            SimConfig {
                drop_rate: -0.5,
                ..SimConfig::default()
            },
            SimConfig {
                contenders: 0,
                ..SimConfig::default()
            },
        ] {
            assert!(matches!(
                bad.validate(),
                Err(SimError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn clean_config_classification() {
        assert!(SimConfig::default().is_clean());
        assert!(!SimConfig {
            bw_derate: 2.0,
            ..SimConfig::default()
        }
        .is_clean());
        assert!(!SimConfig {
            compute: ComputeModel::SystolicFolds,
            ..SimConfig::default()
        }
        .is_clean());
        // The seed alone does not make a run dirty: with no jitter or
        // drops the PRNG is never consulted.
        assert!(SimConfig {
            seed: 99,
            ..SimConfig::default()
        }
        .is_clean());
    }

    #[test]
    fn plan_network_mismatch_is_rejected() {
        let net = zoo::mobilenet();
        let plan = plan_for(&net, acc(256));
        let other = zoo::resnet18();
        assert!(matches!(
            simulate_plan(&plan, &other, &acc(256), &SimConfig::default()),
            Err(SimError::PlanMismatch { .. })
        ));
    }

    #[test]
    fn simulating_a_clean_plan_reports_no_violations() {
        let net = zoo::mobilenet();
        let a = acc(256);
        let plan = plan_for(&net, a);
        let report = simulate_plan(&plan, &net, &a, &SimConfig::default()).unwrap();
        assert_eq!(report.layers.len(), net.layers.len());
        assert_eq!(report.totals.occupancy_violations, 0);
        assert!(report.totals.cycles > 0);
        assert!(report.totals.peak_occupancy_elems <= a.glb_elements());
        // Traffic matches the plan's effective totals element-for-element.
        assert_eq!(
            report.totals.traffic.total(),
            plan.totals.accesses_elems,
            "simulated logical traffic must equal the plan's"
        );
    }

    #[test]
    fn report_json_is_deterministic_and_parsable_shape() {
        let net = zoo::resnet18();
        let a = acc(64);
        let plan = plan_for(&net, a);
        let cfg = SimConfig {
            jitter_max_cycles: 4,
            drop_rate: 0.1,
            seed: 1234,
            ..SimConfig::default()
        };
        let r1 = simulate_plan(&plan, &net, &a, &cfg).unwrap();
        let r2 = simulate_plan(&plan, &net, &a, &cfg).unwrap();
        assert_eq!(r1, r2);
        let j1 = report_json(&r1);
        let j2 = report_json(&r2);
        assert_eq!(j1, j2, "same seed must serialize byte-identically");
        assert!(j1.starts_with('{') && j1.ends_with('}'));
        assert!(j1.contains("\"divergence\":"));
        assert!(j1.contains("\"drop_rate\":0.1000"));
    }

    #[test]
    fn spec_batch_contention_equivalence() {
        // A batch-of-N spec contends for the channel like N tenants: the
        // contenders knob is how a caller models that in the simulator.
        let spec = PlanSpec::new(
            NetworkRef::Zoo("mobilenet".into()),
            acc(256),
            ManagerConfig::new(Objective::Accesses),
            PlanScheme::Heterogeneous,
        );
        let net = spec.resolve().unwrap();
        let plan = spec.run(&CancelToken::none()).unwrap();
        let alone = simulate_plan(&plan, &net, &spec.accelerator, &SimConfig::default()).unwrap();
        let shared = simulate_plan(
            &plan,
            &net,
            &spec.accelerator,
            &SimConfig {
                contenders: 4,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!(shared.totals.cycles > alone.totals.cycles);
        assert_eq!(shared.totals.traffic, alone.totals.traffic);
    }

    #[test]
    fn timed_trace_stamps_simulated_cycles() {
        let net = zoo::resnet18();
        let layer = &net.layers[0];
        let a = acc(256);
        let plan = plan_for(&net, a);
        let d = &plan.decisions[0];
        let program = Program::lower(&layer.shape, &d.estimate).unwrap();
        let stats = simulate_program(
            &program,
            &layer.shape,
            &d.estimate,
            &a,
            &SimConfig::default(),
        )
        .unwrap();
        let trace = timed_trace(&program, &stats, 1_000);
        let records = smm_trace::TraceWriter::decode(&trace).unwrap();
        let dram_cmds = program.commands.iter().filter(|c| c.touches_dram()).count();
        assert_eq!(records.len(), dram_cmds);
        assert!(records.iter().all(|r| r.cycle >= 1_000));
        assert!(
            records.iter().any(|r| r.cycle > 1_000),
            "later commands start at later simulated cycles"
        );
    }
}
