//! The discrete-event core: one layer's lowered command stream executed
//! against the modeled memory system.
//!
//! Time is kept in *ticks* — `SCALE` ticks per transferred element at
//! nominal bandwidth — so one simulated cycle is `bandwidth × SCALE`
//! ticks. Sub-cycle resolution matters: the analytic model charges one
//! ceiling over a layer's whole traffic, and a simulator that rounded
//! every DMA command up to a full cycle would drift thousands of cycles
//! apart on command-dense schedules for no modeling reason.
//!
//! The event loop walks the command stream in order, maintaining three
//! clocks: `read_free` (the read stream of the DRAM channel),
//! `write_free` (the posted-write drain stream), and `compute_done`
//! (all compute attributable to already-consumed data has finished).
//! Reads release a proportional slice of the layer's compute when
//! their data lands; under prefetch reads run ahead of compute,
//! bounded by the DMA queue depth, and stores are *posted* — each one
//! waits for the slice of compute that produced its data (interpolated
//! on the recorded compute timeline, so an all-resident lowering whose
//! stores trail the whole read stream still drains them as rows are
//! produced), then drains on the write stream without head-of-line
//! blocking later reads (a write buffer with read priority, as real
//! DMA engines arbitrate). The channel is still one physical resource:
//! the layer cannot end before `total busy ticks` have elapsed, so
//! bandwidth is conserved even though the two streams overlap. Without
//! prefetch every transfer serializes with compute on a single clock,
//! which reproduces the paper's no-prefetch latency (Eq. 1) exactly.
//! Scenario knobs (derate, jitter, drops, contention) stretch channel
//! occupancy only — logical traffic accounting is untouched by them.

use crate::{ComputeModel, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smm_arch::AcceleratorConfig;
use smm_exec::{Command, Program};
use smm_model::LayerShape;
use smm_policy::{AccessCounts, PolicyEstimate};
use std::collections::VecDeque;

/// Ticks per element at nominal bandwidth (sub-cycle resolution).
const SCALE: u64 = 256;

/// Upper bound on re-issues of one dropped transfer, so a drop rate
/// close to 1 cannot hang the simulation.
const MAX_RETRIES: u32 = 16;

/// Mixing constant for per-layer RNG streams (splitmix64's golden
/// gamma): layer `i` draws from an independent deterministic stream, so
/// per-layer results do not depend on how many layers ran before.
const LAYER_SEED_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Inter-layer elision flags of one plan decision: tensors the plan
/// keeps on-chip across the layer boundary never touch the channel.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Elision {
    /// Ifmap reads come from the GLB (producer kept its ofmap).
    pub ifmap: bool,
    /// Ofmap stores stay in the GLB (consumer reads them next).
    pub stores: bool,
}

/// Measured outcome of simulating one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerStats {
    /// End-to-end simulated cycles.
    pub cycles: u64,
    /// Cycles the compute array was busy (the compute model's total).
    pub compute_busy_cycles: u64,
    /// Cycles' worth of DRAM channel occupancy (includes derate,
    /// jitter, contention, and retried transfers).
    pub dram_busy_cycles: u64,
    /// Cycles not covered by compute: `cycles − compute_busy_cycles`.
    pub stall_cycles: u64,
    /// Logical off-chip traffic, estimator-shaped. Scenario knobs never
    /// change these numbers — only how long the traffic takes.
    pub traffic: AccessCounts,
    /// Elements physically transferred, including re-issued drops.
    pub physical_elems: u64,
    /// Elements re-transferred due to injected drops.
    pub retried_elems: u64,
    /// Dropped-and-re-issued DMA transfers.
    pub retries: u64,
    /// Discrete events processed (one per command).
    pub events: u64,
    /// Peak GLB occupancy in elements, including the prefetch
    /// double-buffer factor.
    pub peak_occupancy_elems: u64,
    /// Commands after which occupancy exceeded GLB capacity (always 0
    /// for a plan the planner accepted).
    pub occupancy_violations: u64,
    /// Simulated start cycle of each command, parallel to the
    /// program's command stream (feeds the timed binary trace).
    pub cmd_starts: Vec<u64>,
}

/// What a command means to the memory system.
enum Kind {
    IfmapRead,
    FilterRead,
    Store,
    PsumReload,
    /// Evicts and allocs: scratchpad bookkeeping, no data movement.
    Bookkeeping,
}

fn classify(c: &Command) -> Kind {
    match c {
        Command::FillIfmapRows { .. } | Command::StreamIfmapRows { .. } => Kind::IfmapRead,
        Command::FillFilters { .. }
        | Command::StreamFilters { .. }
        | Command::FillFilterChannel { .. }
        | Command::StreamFilterChannel { .. } => Kind::FilterRead,
        Command::StoreOfmapRows { .. } => Kind::Store,
        Command::ReloadPsumRows { .. } => Kind::PsumReload,
        Command::EvictIfmapRows { .. }
        | Command::EvictFilters { .. }
        | Command::EvictFilterChannel { .. }
        | Command::AllocOfmapRows { .. } => Kind::Bookkeeping,
    }
}

/// Wall tick at which `target` cumulative compute ticks had completed,
/// per the recorded chunk checkpoints. Compute runs linearly inside a
/// chunk, so the answer interpolates within the covering chunk; if the
/// timeline has not reached `target` yet, fall back to `now` (all
/// compute released so far).
fn compute_ready_at(checkpoints: &[(u128, u64)], target: u128, now: u64) -> u64 {
    if target == 0 {
        return 0;
    }
    match checkpoints.binary_search_by(|&(cum, _)| cum.cmp(&target)) {
        Ok(i) => checkpoints[i].1,
        Err(i) if i < checkpoints.len() => {
            let (cum, done) = checkpoints[i];
            done - (cum - target) as u64
        }
        Err(_) => now,
    }
}

pub(crate) fn simulate_commands(
    program: &Program,
    shape: &LayerShape,
    est: &PolicyEstimate,
    acc: &AcceleratorConfig,
    cfg: &SimConfig,
    layer_index: usize,
    elide: Elision,
) -> LayerStats {
    let bw = acc.dram_elements_per_cycle();
    let ticks_per_cycle = bw * SCALE;
    // Channel cost per element: derate stretches the per-element time,
    // fair sharing among `contenders` multiplies it (each stream sees
    // 1/N of the channel).
    let elem_cost = {
        let derated = (SCALE as f64 * cfg.bw_derate).ceil() as u64;
        derated.max(1) * cfg.contenders.max(1)
    };
    let compute_cycles = match cfg.compute {
        ComputeModel::Analytic => est.latency.compute_cycles,
        ComputeModel::SystolicFolds => {
            smm_systolic::compute::layer_compute_cycles(shape, acc.pe_rows, acc.pe_cols)
        }
    };
    let compute_total_ticks = u128::from(compute_cycles) * u128::from(ticks_per_cycle);

    // Compute attribution weights: each read command (elided or not —
    // elision changes where data comes from, not what gets computed)
    // releases a slice of the layer's compute proportional to the
    // elements it delivered.
    let weights: Vec<u64> = program
        .meta
        .iter()
        .map(|m| if m.is_write { 0 } else { m.dram_elems })
        .collect();
    let weight_total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    let write_total: u128 = program
        .meta
        .iter()
        .filter(|m| m.is_write)
        .map(|m| u128::from(m.dram_elems))
        .sum();

    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (layer_index as u64).wrapping_mul(LAYER_SEED_GAMMA));
    let drop_rate = cfg.drop_rate.clamp(0.0, 0.95);
    let queue_depth = cfg.queue_depth.max(1);
    let capacity = acc.glb_elements();
    let buffer_factor = est.buffer_factor();

    let mut read_free: u64 = 0;
    let mut write_free: u64 = 0;
    // With no read traffic at all there is nothing to pace compute:
    // the whole layer computes from resident data immediately.
    let mut compute_done: u64 = if weight_total == 0 {
        compute_total_ticks as u64
    } else {
        0
    };
    let mut cum_weight: u128 = 0;
    let mut cum_chunks: u128 = 0;
    let mut cum_write: u128 = 0;
    // Compute-timeline checkpoints, one per released chunk: (cumulative
    // compute ticks completed, wall tick they completed at). Stores
    // look up when "their" fraction of compute finished.
    let mut checkpoints: Vec<(u128, u64)> = Vec::new();
    let mut dram_busy_ticks: u64 = 0;
    // Consumption-start ticks of in-flight prefetches: transfer `i`
    // may not start until transfer `i − depth`'s data began feeding
    // the array (a bounded DMA queue, not an infinite run-ahead).
    let mut inflight: VecDeque<u64> = VecDeque::with_capacity(queue_depth);

    let mut stats = LayerStats {
        cycles: 0,
        compute_busy_cycles: compute_cycles,
        dram_busy_cycles: 0,
        stall_cycles: 0,
        traffic: AccessCounts::default(),
        physical_elems: 0,
        retried_elems: 0,
        retries: 0,
        events: program.commands.len() as u64,
        peak_occupancy_elems: 0,
        occupancy_violations: 0,
        cmd_starts: Vec::with_capacity(program.commands.len()),
    };

    for (i, (cmd, meta)) in program.commands.iter().zip(&program.meta).enumerate() {
        let kind = classify(cmd);
        let elided = match kind {
            Kind::IfmapRead => elide.ifmap,
            Kind::Store => elide.stores,
            _ => false,
        };
        let logical = if elided { 0 } else { meta.dram_elems };
        match kind {
            Kind::IfmapRead => stats.traffic.ifmap_loads += logical,
            Kind::FilterRead => stats.traffic.filter_loads += logical,
            Kind::Store => stats.traffic.ofmap_stores += logical,
            Kind::PsumReload => stats.traffic.psum_spill_loads += logical,
            Kind::Bookkeeping => {}
        }
        let physical = logical > 0;
        if meta.is_write {
            // Advance the write fraction even for elided stores, so the
            // remaining physical stores keep their correct compute
            // dependency points.
            cum_write += u128::from(meta.dram_elems);
        }

        let mut arrival: u64 = 0;
        let mut start_tick = read_free.max(compute_done);
        if physical {
            stats.physical_elems += logical;
            let base = logical * elem_cost;
            let jitter = if cfg.jitter_max_cycles > 0 {
                rng.gen_range(0..=cfg.jitter_max_cycles) * ticks_per_cycle
            } else {
                0
            };
            let mut cost = base + jitter;
            if drop_rate > 0.0 {
                let mut attempts = 0;
                while attempts < MAX_RETRIES && rng.gen_bool(drop_rate) {
                    attempts += 1;
                    stats.retries += 1;
                    stats.retried_elems += logical;
                    cost += base;
                }
            }
            dram_busy_ticks += cost;
            if !est.prefetch {
                // Eq. 1's regime: one clock, everything serializes with
                // compute (reads and writes alike).
                start_tick = read_free.max(write_free).max(compute_done);
                let end = start_tick + cost;
                read_free = end;
                write_free = end;
                arrival = end;
            } else if meta.is_write {
                // Posted write: ready once the compute slice that
                // produced its data finished, then drains on the write
                // stream without blocking later reads.
                let target = compute_total_ticks * cum_write / write_total.max(1);
                let ready = compute_ready_at(&checkpoints, target, compute_done);
                start_tick = write_free.max(ready);
                write_free = start_tick + cost;
            } else {
                // Prefetched read: runs ahead of compute, bounded by
                // the DMA queue — a full queue waits until the oldest
                // outstanding prefetch starts being consumed.
                start_tick = if inflight.len() >= queue_depth {
                    read_free.max(inflight.pop_front().unwrap_or(0))
                } else {
                    read_free
                };
                let end = start_tick + cost;
                read_free = end;
                arrival = end;
            }
        }

        // Reads (including elided ones: on-chip data arrives at tick 0)
        // release their compute slice once the data is available. Under
        // prefetch the transfer streams into the array: compute may
        // begin as the first elements land but cannot finish before
        // the transfer does — without prefetch the whole command must
        // arrive first (Eq. 1's full serialization).
        if !meta.is_write && weights[i] > 0 && weight_total > 0 {
            cum_weight += u128::from(weights[i]);
            let new_cum = compute_total_ticks * cum_weight / weight_total;
            let chunk = (new_cum - cum_chunks) as u64;
            cum_chunks = new_cum;
            let chunk_start = if est.prefetch && physical {
                compute_done.max(start_tick)
            } else {
                compute_done.max(arrival)
            };
            compute_done = (chunk_start + chunk).max(arrival);
            checkpoints.push((cum_chunks, compute_done));
            if physical && est.prefetch {
                inflight.push_back(chunk_start);
            }
        }

        let occupancy = meta.resident_after * buffer_factor;
        stats.peak_occupancy_elems = stats.peak_occupancy_elems.max(occupancy);
        if occupancy > capacity {
            stats.occupancy_violations += 1;
        }
        stats.cmd_starts.push(start_tick / ticks_per_cycle);
    }

    // The layer ends when compute, the read stream, and the write
    // drain have all finished — but never before the channel's total
    // busy time: the two streams overlap in *ordering*, not bandwidth.
    let total_ticks = compute_done
        .max(read_free)
        .max(write_free)
        .max(dram_busy_ticks);
    stats.cycles = total_ticks.div_ceil(ticks_per_cycle);
    stats.dram_busy_cycles = dram_busy_ticks.div_ceil(ticks_per_cycle);
    stats.stall_cycles = stats.cycles.saturating_sub(stats.compute_busy_cycles);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_arch::ByteSize;
    use smm_policy::{estimate, PolicyKind};

    fn layer() -> LayerShape {
        LayerShape {
            ifmap_h: 16,
            ifmap_w: 16,
            in_channels: 8,
            filter_h: 3,
            filter_w: 3,
            num_filters: 16,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    fn acc() -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(64))
    }

    fn sim(est: &PolicyEstimate, cfg: &SimConfig) -> LayerStats {
        let p = Program::lower(&layer(), est).unwrap();
        simulate_commands(&p, &layer(), est, &acc(), cfg, 0, Elision::default())
    }

    #[test]
    fn no_prefetch_matches_the_analytic_latency_exactly() {
        // Without prefetch the DES fully serializes transfer and
        // compute, which is precisely Eq. 1's sum.
        for kind in PolicyKind::NAMED {
            let est = estimate(kind, &layer(), &acc(), false).unwrap();
            assert!(!est.prefetch);
            let s = sim(&est, &SimConfig::default());
            assert_eq!(s.cycles, est.latency.cycles, "{kind:?}");
            assert_eq!(s.traffic.total(), est.accesses.total(), "{kind:?}");
            assert_eq!(s.occupancy_violations, 0, "{kind:?}");
        }
    }

    #[test]
    fn prefetch_lands_near_the_overlap_model() {
        // With prefetch the analytic model says max(compute, transfer);
        // the DES adds the un-overlappable head and tail.
        for kind in PolicyKind::NAMED {
            let Some(est) = estimate(kind, &layer(), &acc(), true) else {
                continue;
            };
            if !est.prefetch {
                continue;
            }
            let s = sim(&est, &SimConfig::default());
            assert!(
                s.cycles >= est.latency.cycles,
                "{kind:?}: overlap is a lower bound"
            );
            let bound = est.latency.cycles + est.latency.cycles / 2 + 64;
            assert!(s.cycles <= bound, "{kind:?}: {} > {bound}", s.cycles);
        }
    }

    #[test]
    fn derate_slows_the_clock_but_not_the_traffic() {
        let est = estimate(PolicyKind::P1IfmapReuse, &layer(), &acc(), true).unwrap();
        let clean = sim(&est, &SimConfig::default());
        let derated = sim(
            &est,
            &SimConfig {
                bw_derate: 2.0,
                ..SimConfig::default()
            },
        );
        assert!(derated.cycles > clean.cycles);
        assert_eq!(derated.traffic, clean.traffic);
        assert_eq!(derated.physical_elems, clean.physical_elems);
    }

    #[test]
    fn contention_shares_the_channel_fairly() {
        let est = estimate(PolicyKind::IntraLayer, &layer(), &acc(), false).unwrap();
        let alone = sim(&est, &SimConfig::default());
        let contended = sim(
            &est,
            &SimConfig {
                contenders: 2,
                ..SimConfig::default()
            },
        );
        // Serialized transfer time doubles exactly; compute is unchanged.
        let transfer = alone.cycles - est.latency.compute_cycles;
        assert_eq!(contended.cycles, est.latency.compute_cycles + 2 * transfer);
        assert_eq!(contended.traffic, alone.traffic);
    }

    #[test]
    fn drops_retry_and_inflate_physical_traffic_only() {
        let est = estimate(PolicyKind::P2FilterReuse, &layer(), &acc(), false).unwrap();
        let clean = sim(&est, &SimConfig::default());
        let faulty = sim(
            &est,
            &SimConfig {
                drop_rate: 0.5,
                seed: 7,
                ..SimConfig::default()
            },
        );
        assert!(faulty.retries > 0);
        assert!(faulty.retried_elems > 0);
        assert_eq!(
            faulty.traffic, clean.traffic,
            "logical traffic is invariant"
        );
        assert_eq!(
            faulty.physical_elems, clean.physical_elems,
            "re-issues are counted in retried_elems, not physical_elems"
        );
        assert!(faulty.cycles > clean.cycles);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let est = estimate(PolicyKind::P1IfmapReuse, &layer(), &acc(), true).unwrap();
        let cfg = SimConfig {
            jitter_max_cycles: 8,
            seed: 42,
            ..SimConfig::default()
        };
        let a = sim(&est, &cfg);
        let b = sim(&est, &cfg);
        assert_eq!(a, b);
        let c = sim(&est, &SimConfig { seed: 43, ..cfg });
        assert_ne!(a.cycles, c.cycles, "different seed, different jitter");
    }

    #[test]
    fn undersized_glb_is_flagged_as_occupancy_violations() {
        let est = estimate(PolicyKind::IntraLayer, &layer(), &acc(), false).unwrap();
        let p = Program::lower(&layer(), &est).unwrap();
        let tiny = AcceleratorConfig::paper_default(ByteSize(64));
        let s = simulate_commands(
            &p,
            &layer(),
            &est,
            &tiny,
            &SimConfig::default(),
            0,
            Elision::default(),
        );
        assert!(s.occupancy_violations > 0);
        assert!(s.peak_occupancy_elems > tiny.glb_elements());
    }

    #[test]
    fn elision_zeroes_the_elided_traffic_and_shortens_the_layer() {
        let est = estimate(PolicyKind::P1IfmapReuse, &layer(), &acc(), false).unwrap();
        let p = Program::lower(&layer(), &est).unwrap();
        let plain = simulate_commands(
            &p,
            &layer(),
            &est,
            &acc(),
            &SimConfig::default(),
            0,
            Elision::default(),
        );
        let elided = simulate_commands(
            &p,
            &layer(),
            &est,
            &acc(),
            &SimConfig::default(),
            0,
            Elision {
                ifmap: true,
                stores: true,
            },
        );
        assert_eq!(elided.traffic.ifmap_loads, 0);
        assert_eq!(elided.traffic.ofmap_stores, 0);
        assert_eq!(elided.traffic.filter_loads, plain.traffic.filter_loads);
        assert!(elided.cycles < plain.cycles);
    }

    #[test]
    fn systolic_compute_model_is_slower_than_ideal_macs() {
        let est = estimate(PolicyKind::IntraLayer, &layer(), &acc(), false).unwrap();
        let folds = sim(
            &est,
            &SimConfig {
                compute: ComputeModel::SystolicFolds,
                ..SimConfig::default()
            },
        );
        // Fill/drain overhead makes the fold model strictly slower than
        // the ideal-MAC count for any real layer.
        assert!(folds.compute_busy_cycles > est.latency.compute_cycles);
        assert!(folds.cycles > 0);
    }
}
