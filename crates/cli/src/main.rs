//! `smm` — RAINBOW-like command-line driver for the scratchpad
//! memory-management flow (Figure 4 of the paper): model description and
//! accelerator specification in, per-layer execution plan and estimates
//! out.

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
smm — scratchpad memory management for DL accelerators

USAGE:
    smm <COMMAND> [OPTIONS]

COMMANDS:
    list-models                       List the full model zoo (paper, extended, transformer)
    analyze  <model|topology.csv>     Produce a per-layer execution plan
    check    <model|topology.csv|all> Statically verify a plan's GLB invariants
    lint     <model|topology.csv|all> Statically analyze the lowered DMA command streams
    explain  <model> <layer>          Show Algorithm 1's candidates for one layer
    lower    <model> <layer>          Emit the chosen policy's DMA command stream
                                      (--json adds per-command lint annotations)
    baseline <model|topology.csv>     Run the SCALE-Sim-like baseline
    simulate <model|topology.csv>     Execute the plan in the discrete-event simulator
    sweep    <model|topology.csv>     Compare all schemes across buffer sizes
    tenants  <modelA> <modelB>        Partition one GLB between two models
    topology <model>                  Emit a model as a topology CSV
    serve                             Run the concurrent planning server
    loadgen                           Drive a running server or fleet, report latency/throughput
    top                               Show windowed traffic analytics from a node or router
    fleet route                       Run the consistent-hash fleet router
    fleet join|leave                  Add/remove a node on a running router (warm handoff)

OPTIONS (analyze / check / lint / baseline / sweep):
    --glb <KB>            GLB size in kB (default 256)
    --width <BITS>        Data width: 8, 16 or 32 (default 8)
    --objective <OBJ>     accesses | latency (default accesses)
    --scheme <S>          het | hom (default het)
    --scheduler <S>       greedy | global inter-layer DP (default greedy)
    --split <S>           Baseline split: 25_75 | 50_50 | 75_25 (default 50_50)
    --no-prefetch         Disable the double-buffered policy variants
    --inter-layer         Enable the inter-layer reuse pass
    --csv                 Emit the analyze plan as CSV
    --json                Emit the analyze plan (or check/lint report) as JSON
    --lint                After `smm check`, also lint the lowered command streams
    --batch <N>           Also report batched-execution totals

OPTIONS (analyze / sweep / lower):
    --profile             Print the observability report (counters, spans)
    --trace-out <FILE>    Write a Chrome trace-event JSON of the run

OPTIONS (simulate):
    --queue-depth <N>     DMA prefetch queue depth (default 4)
    --bw-derate <F>       Stretch per-element DRAM cost by F (default 1.0)
    --jitter <CYC>        Max per-transfer latency jitter in cycles (default 0)
    --drop-rate <P>       Per-transfer drop probability in [0, 1) (default 0)
    --seed <N>            PRNG seed for jitter/drops (default 0)
    --contenders <N>      Streams sharing the DRAM channel fairly (default 1)
    --compute-folds       Use the systolic fold compute model instead of ideal MACs

OPTIONS (serve):
    --port <P>            TCP port to bind; 0 picks an ephemeral port (default 7878)
    --workers <N>         Planning worker threads (default 4)
    --shards <N>          Reactor event-loop shards; 0 = one per core (default 0)
    --queue-cap <N>       Bounded queue capacity; overflow is shed (default 64)
    --cache-cap <N>       Plan-cache entries; 0 disables caching (default 128)
    --shed-target-ms <MS> Adaptive-shed queue-wait budget (default 50)
    --static-cap          Disable adaptive shedding; static queue cap only
    --port-file <FILE>    Write the bound port number to FILE once listening
    --verify              Verify each fresh plan with smm-check before caching
    --no-stream           Disable the stream analytics tap and collector
    --no-prewarm          Disable the cache pre-warm controller
    --window-ms <MS>      Stream tumbling-window width (default 1000)
    --slide-ms <MS>       Stream sliding-window slide (default 250)
    --prewarm-workers <N> Background pre-warm planner threads (default 1)

OPTIONS (loadgen):
    --addr <HOST:PORT>    Server address (default 127.0.0.1:7878)
    -n <N>                Total requests to send (default 64)
    --connections <N>     Concurrent connections on one epoll driver thread
    --concurrency <N>     Legacy alias for --connections (default 8)
    --models <A,B,...>    Models to request round-robin (default: full zoo)
    --glb <KB>            GLB size in kB for every request (default 64)
    --glb-set <A,B,...>   Cycle these GLB sizes across requests (widens the key set)
    --deadline-ms <MS>    Per-request deadline
    --plan-delay-ms <MS>  Simulated planning cost (server sleeps on cache misses)
    --mix <SPEC>          Weighted cell mix, e.g. resnet18:64=5,mobilenet:256=1
                          (replaces --models/--glb-set; smooth-WRR interleaved)
    --fleet               Report per-node hit rates and routing skew (router targets)
    --shed-report         Append the admission/shedding section to the report
    --cells               Append the per-cell shed-vs-miss breakdown (implied by --mix)
    --shutdown            Send a shutdown op to the server after the run

OPTIONS (top):
    --addr <HOST:PORT>    Node or router address (default 127.0.0.1:7878)
    --limit <N>           Recent windows to fetch (default 1)
    --sliding             Read the sliding-window store instead of tumbling
    --json                Print the raw JSON stream response

OPTIONS (fleet route):
    --port <P>            TCP port to bind; 0 picks an ephemeral port (default 7879)
    --backends <A,B,...>  Initial backend node addresses (host:port)
    --vnodes <N>          Virtual nodes per backend on the hash ring (default 128)
    --retries <N>         Extra replicas tried after the owner fails (default 2)
    --eject-after <N>     Consecutive failures before ejection (default 3)
    --probe-ms <MS>       Probe interval for ejected backends (default 500)
    --timeout-ms <MS>     Per-forward I/O timeout (default 30000)
    --handoff-limit <N>   Max plans migrated per donor on join/leave; 0 = cold (default 256)
    --port-file <FILE>    Write the bound port number to FILE once listening

OPTIONS (fleet join / leave):
    --addr <HOST:PORT>    Router address (default 127.0.0.1:7879)
    --node <HOST:PORT>    Node to add or remove
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err("missing command".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "list-models" => commands::list_models(),
        "analyze" => commands::analyze(&args::parse(rest)?),
        "check" => commands::check(&args::parse(rest)?),
        "lint" => commands::lint(&args::parse(rest)?),
        "explain" => commands::explain(&args::parse(rest)?),
        "lower" => commands::lower(&args::parse(rest)?),
        "baseline" => commands::baseline(&args::parse(rest)?),
        "simulate" => commands::simulate(&args::parse(rest)?),
        "sweep" => commands::sweep(&args::parse(rest)?),
        "tenants" => commands::tenants(&args::parse(rest)?),
        "topology" => commands::topology(&args::parse(rest)?),
        "serve" => commands::serve(&args::parse_serve(rest)?),
        "loadgen" => commands::loadgen(&args::parse_loadgen(rest)?),
        "top" => commands::top(&args::parse_top(rest)?),
        "fleet" => commands::fleet(&args::parse_fleet(rest)?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}
