//! `smm` — RAINBOW-like command-line driver for the scratchpad
//! memory-management flow (Figure 4 of the paper): model description and
//! accelerator specification in, per-layer execution plan and estimates
//! out.

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
smm — scratchpad memory management for DL accelerators

USAGE:
    smm <COMMAND> [OPTIONS]

COMMANDS:
    list-models                       List the built-in model zoo (Table 2)
    analyze  <model|topology.csv>     Produce a per-layer execution plan
    explain  <model> <layer>          Show Algorithm 1's candidates for one layer
    lower    <model> <layer>          Emit the chosen policy's DMA command stream
    baseline <model|topology.csv>     Run the SCALE-Sim-like baseline
    sweep    <model|topology.csv>     Compare all schemes across buffer sizes
    tenants  <modelA> <modelB>        Partition one GLB between two models
    topology <model>                  Emit a model as a topology CSV

OPTIONS (analyze / baseline / sweep):
    --glb <KB>            GLB size in kB (default 256)
    --width <BITS>        Data width: 8, 16 or 32 (default 8)
    --objective <OBJ>     accesses | latency (default accesses)
    --scheme <S>          het | hom (default het)
    --split <S>           Baseline split: 25_75 | 50_50 | 75_25 (default 50_50)
    --no-prefetch         Disable the double-buffered policy variants
    --inter-layer         Enable the inter-layer reuse pass
    --csv                 Emit the analyze plan as CSV
    --batch <N>           Also report batched-execution totals

OPTIONS (analyze / sweep / lower):
    --profile             Print the observability report (counters, spans)
    --trace-out <FILE>    Write a Chrome trace-event JSON of the run
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err("missing command".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "list-models" => commands::list_models(),
        "analyze" => commands::analyze(&args::parse(rest)?),
        "explain" => commands::explain(&args::parse(rest)?),
        "lower" => commands::lower(&args::parse(rest)?),
        "baseline" => commands::baseline(&args::parse(rest)?),
        "sweep" => commands::sweep(&args::parse(rest)?),
        "tenants" => commands::tenants(&args::parse(rest)?),
        "topology" => commands::topology(&args::parse(rest)?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}
