//! The `smm` subcommands.

use crate::args::Options;
use smm_arch::{AcceleratorConfig, ByteSize, GLB_SIZES_KB};
use smm_core::energy::{plan_energy, EnergyModel};
use smm_core::report::{plan_csv, plan_json, TextTable};
use smm_core::{
    batch, interlayer, tenancy, CancelToken, LayerPlanner, ManagerConfig, NetworkRef, PlanScheme,
    PlanSpec,
};
use smm_model::{topology, zoo, Network};
use smm_systolic::{simulate_network, BaselineConfig, BufferSplit};

/// Resolve a positional target into a network reference: a zoo model
/// name or a topology CSV path (read here; the parse happens when the
/// spec resolves).
fn network_ref(opts: &Options) -> Result<NetworkRef, String> {
    let Some(target) = &opts.target else {
        return Err("missing model name or topology file".into());
    };
    if zoo::by_name(target).is_some() {
        return Ok(NetworkRef::Zoo(target.clone()));
    }
    if std::path::Path::new(target).exists() {
        let text = std::fs::read_to_string(target).map_err(|e| format!("{target}: {e}"))?;
        let name = std::path::Path::new(target)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("topology")
            .to_string();
        return Ok(NetworkRef::Inline {
            name,
            topology: text,
        });
    }
    Err(format!(
        "{target:?} is neither a zoo model nor a topology file; try `smm list-models`"
    ))
}

/// Resolve a positional target into the network itself.
fn load_network(opts: &Options) -> Result<Network, String> {
    network_ref(opts)?.resolve().map_err(|e| e.to_string())
}

fn accelerator(opts: &Options) -> AcceleratorConfig {
    AcceleratorConfig::paper_default(ByteSize::from_kb(opts.glb_kb)).with_data_width(opts.width)
}

fn manager_config(opts: &Options) -> ManagerConfig {
    ManagerConfig::new(opts.objective)
        .with_prefetch(opts.prefetch)
        .with_inter_layer_reuse(opts.inter_layer)
        .with_scheduler(opts.scheduler)
}

/// The [`PlanSpec`] the parsed command line describes: every planning
/// subcommand derives its job (and any cache key) from this one value.
fn plan_spec(opts: &Options) -> Result<PlanSpec, String> {
    let scheme = if opts.heterogeneous {
        PlanScheme::Heterogeneous
    } else {
        PlanScheme::BestHomogeneous
    };
    Ok(PlanSpec::new(
        network_ref(opts)?,
        accelerator(opts),
        manager_config(opts),
        scheme,
    )
    .with_batch(opts.batch))
}

/// Run `body` with the observability collector enabled when `--profile`
/// or `--trace-out` asked for it, then print the profile report and/or
/// write the Chrome trace. The report and trace are still produced when
/// `body` fails, so a failing run can be inspected too.
fn with_observability(
    opts: &Options,
    body: impl FnOnce() -> Result<(), String>,
) -> Result<(), String> {
    let active = opts.profile || opts.trace_out.is_some();
    if active {
        smm_obs::reset();
        smm_obs::set_enabled(true);
    }
    let result = body();
    if active {
        smm_obs::set_enabled(false);
        if opts.profile {
            println!();
            print!("{}", smm_obs::report());
        }
        if let Some(path) = &opts.trace_out {
            smm_obs::write_chrome_trace(path).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
        }
    }
    result
}

/// `smm list-models` — the full zoo (the paper's six, the extended
/// CNNs, and the transformer/GEMM nets), with per-model layer counts
/// and parameter/feature footprints at 8-bit data width.
pub fn list_models() -> Result<(), String> {
    let mut t = TextTable::new(&[
        "Network",
        "Layers",
        "Types",
        "MACs (M)",
        "Params kB",
        "Peak feat kB",
        "Max layer kB",
    ]);
    let groups = [
        zoo::all_networks(),
        zoo::extended_networks(),
        zoo::transformer_networks(),
    ];
    for net in groups.into_iter().flatten() {
        let s = net.stats(smm_arch::DataWidth::W8);
        let kinds: Vec<&str> = s.kinds.iter().map(|k| k.code()).collect();
        let footprints = net.footprints(smm_arch::DataWidth::W8);
        let params_bytes: u64 = footprints.iter().map(|f| f.filters.bytes()).sum();
        let peak_feat_bytes = footprints
            .iter()
            .map(|f| f.ifmap.bytes() + f.ofmap.bytes())
            .max()
            .unwrap_or(0);
        t.row(vec![
            net.name.clone(),
            s.layers.to_string(),
            kinds.join(", "),
            format!("{:.0}", s.total_macs as f64 / 1e6),
            format!("{:.1}", ByteSize(params_bytes).kb()),
            format!("{:.1}", ByteSize(peak_feat_bytes).kb()),
            format!("{:.1}", s.max_layer_footprint.kb()),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

/// `smm analyze <model>`
pub fn analyze(opts: &Options) -> Result<(), String> {
    with_observability(opts, || analyze_body(opts))
}

fn analyze_body(opts: &Options) -> Result<(), String> {
    let spec = plan_spec(opts)?;
    let net = spec.resolve().map_err(|e| e.to_string())?;
    let plan = spec
        .planner()
        .plan(&net, spec.scheme, &CancelToken::none())
        .map_err(|e| e.to_string())?;

    if opts.json {
        println!("{}", plan_json(&plan, &spec.accelerator));
        return Ok(());
    }
    if opts.csv {
        print!("{}", plan_csv(&plan, &spec.accelerator));
        return Ok(());
    }

    println!(
        "{} @ {} GLB, {}, objective {:?}, scheme {}",
        net.name,
        spec.accelerator.glb,
        spec.accelerator.data_width,
        spec.config.objective,
        plan.scheme.label()
    );
    let mut t = TextTable::new(&[
        "Layer", "Policy", "+p", "ifmap", "filter", "ofmap", "req kB", "acc kB", "cycles",
    ]);
    let acc = &spec.accelerator;
    for d in &plan.decisions {
        let alloc = d.estimate.allocation();
        t.row(vec![
            d.layer_name.clone(),
            format!(
                "{}{}",
                d.estimate.kind.label(),
                d.estimate
                    .block_n
                    .map(|n| format!("(n={n})"))
                    .unwrap_or_default()
            ),
            if d.estimate.prefetch { "+p" } else { "" }.into(),
            alloc.ifmap.to_string(),
            alloc.filters.to_string(),
            alloc.ofmap.to_string(),
            format!("{:.1}", d.estimate.required_bytes(acc).kb()),
            format!(
                "{:.1}",
                ByteSize::from_elements(d.effective_accesses().total(), acc.data_width).kb()
            ),
            d.effective_latency(acc).cycles.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "totals: {:.2} MB off-chip, {} cycles ({} compute / {} transfer)",
        plan.totals.accesses_bytes.mb(),
        plan.totals.latency_cycles,
        plan.totals.compute_cycles,
        plan.totals.transfer_cycles
    );
    println!(
        "prefetch coverage {:.0}%  inter-layer coverage {:.0}%",
        plan.prefetch_coverage() * 100.0,
        plan.inter_layer_coverage(interlayer::possible_transitions(&net)) * 100.0
    );
    let e = plan_energy(&EnergyModel::default(), &plan, &net);
    println!(
        "energy: {:.1} uJ ({:.0}% off-chip transfers)",
        e.total_uj(),
        e.dram_share() * 100.0
    );
    if opts.batch > 1 {
        let b = batch::batched_totals(&plan, &net, acc, opts.batch);
        println!(
            "batch {}: {:.2} MB off-chip ({:.2} MB/image), {} cycles",
            opts.batch,
            b.accesses_bytes.mb(),
            b.accesses_bytes.mb() / opts.batch as f64,
            b.latency_cycles
        );
    }
    Ok(())
}

/// `smm check <model|topology.csv|all>` — plan, then statically verify
/// the plan against the paper's GLB invariants with `smm-check`.
pub fn check(opts: &Options) -> Result<(), String> {
    with_observability(opts, || check_body(opts))
}

fn check_body(opts: &Options) -> Result<(), String> {
    if opts.target.as_deref() == Some("all") {
        return check_all(opts);
    }
    let spec = plan_spec(opts)?;
    let net = spec.resolve().map_err(|e| e.to_string())?;
    let plan = spec
        .planner()
        .plan(&net, spec.scheme, &CancelToken::none())
        .map_err(|e| e.to_string())?;
    let report = smm_check::check_plan(&plan, &net, &spec.accelerator);
    if opts.json {
        println!(
            "{}",
            smm_check::report_json(&report, &plan, &spec.accelerator)
        );
    } else {
        print!("{}", smm_check::render_text(&report, &plan));
    }
    if report.error_count() > 0 {
        return Err(format!(
            "plan verification failed: {} error(s)",
            report.error_count()
        ));
    }
    // `--lint` composes the command-stream analysis onto the plan-level
    // check: the plan passed SMM001–SMM011, now prove SMM012–SMM018.
    if opts.lint {
        let lrep = smm_lint::lint_plan(&plan, &net).map_err(|e| e.to_string())?;
        if opts.json {
            println!("{}", smm_lint::report_json(&lrep));
        } else {
            print!("{}", smm_lint::render_text(&lrep));
        }
        if lrep.error_count() > 0 {
            return Err(format!(
                "stream lint failed: {} error(s)",
                lrep.error_count()
            ));
        }
    }
    Ok(())
}

/// `smm lint <model|topology.csv|all>` — plan, lower every layer, and
/// statically analyze the DMA command streams: hazard proofs, occupancy
/// proofs, redundant-transfer detection (SMM012–SMM018).
pub fn lint(opts: &Options) -> Result<(), String> {
    with_observability(opts, || lint_body(opts))
}

fn lint_body(opts: &Options) -> Result<(), String> {
    if opts.target.as_deref() == Some("all") {
        return lint_all(opts);
    }
    let spec = plan_spec(opts)?;
    let net = spec.resolve().map_err(|e| e.to_string())?;
    let plan = spec
        .planner()
        .plan(&net, spec.scheme, &CancelToken::none())
        .map_err(|e| e.to_string())?;
    let report = smm_lint::lint_plan(&plan, &net).map_err(|e| e.to_string())?;
    if opts.json {
        println!("{}", smm_lint::report_json(&report));
    } else {
        print!("{}", smm_lint::render_text(&report));
    }
    if report.error_count() > 0 {
        return Err(format!(
            "stream lint failed: {} error(s)",
            report.error_count()
        ));
    }
    Ok(())
}

/// The lint acceptance matrix: every paper-zoo model plus the
/// transformer nets, under both objectives, at the requested GLB size
/// and scheme. One line (or JSON entry) per run.
fn lint_all(opts: &Options) -> Result<(), String> {
    use smm_core::{LayerMemo, Objective};
    use std::sync::Arc;
    let mut failures = 0usize;
    let mut entries = Vec::new();
    // One memo for the whole matrix: identical shapes recur both within
    // a model and across related models, so later runs replan less.
    let memo = Arc::new(LayerMemo::default());
    let nets = zoo::all_networks()
        .into_iter()
        .chain(zoo::transformer_networks());
    for net in nets {
        for objective in [Objective::Accesses, Objective::Latency] {
            let o = Options {
                objective,
                target: Some(net.name.clone()),
                ..opts.clone()
            };
            let spec = plan_spec(&o)?;
            let plan = spec
                .planner()
                .with_memo(Arc::clone(&memo))
                .plan(&net, spec.scheme, &CancelToken::none())
                .map_err(|e| format!("{} ({objective:?}): {e}", net.name))?;
            let report = smm_lint::lint_plan(&plan, &net)
                .map_err(|e| format!("{} ({objective:?}): {e}", net.name))?;
            let errors = report.error_count();
            failures += usize::from(errors > 0);
            if opts.json {
                entries.push(format!(
                    "{{\"network\":\"{}\",\"objective\":\"{objective:?}\",\"clean\":{},\
                     \"errors\":{errors},\"commands\":{},\"peak_occupancy_elems\":{},\
                     \"redundant_elems\":{}}}",
                    smm_core::report::json_escape(&net.name),
                    report.is_clean(),
                    report.commands(),
                    report.peak_occupancy(),
                    report.redundant_elems,
                ));
            } else {
                let verdict = if report.is_clean() { "ok  " } else { "FAIL" };
                println!(
                    "{verdict} {:<16} {objective:?}: {} commands, peak {} elements, \
                     {} redundant, {} diagnostics",
                    net.name,
                    report.commands(),
                    report.peak_occupancy(),
                    report.redundant_elems,
                    report.diagnostics().count(),
                );
                for d in report.diagnostics() {
                    println!("     {d}");
                }
            }
        }
    }
    if opts.json {
        println!("[{}]", entries.join(","));
    }
    if failures > 0 {
        return Err(format!("{failures} stream(s) failed lint"));
    }
    if !opts.json {
        println!("all streams hazard-free @ {}kB GLB", opts.glb_kb);
    }
    Ok(())
}

/// The acceptance matrix: every paper-zoo model plus the transformer
/// nets, under both objectives, at the requested GLB size and scheme.
/// One line (or JSON entry) per run.
fn check_all(opts: &Options) -> Result<(), String> {
    use smm_core::{LayerMemo, Objective};
    use std::sync::Arc;
    let mut failures = 0usize;
    let mut entries = Vec::new();
    // One memo for the whole matrix: identical shapes recur both within
    // a model and across related models, so later runs replan less.
    let memo = Arc::new(LayerMemo::default());
    let nets = zoo::all_networks()
        .into_iter()
        .chain(zoo::transformer_networks());
    for net in nets {
        for objective in [Objective::Accesses, Objective::Latency] {
            let o = Options {
                objective,
                target: Some(net.name.clone()),
                ..opts.clone()
            };
            let spec = plan_spec(&o)?;
            let plan = spec
                .planner()
                .with_memo(Arc::clone(&memo))
                .plan(&net, spec.scheme, &CancelToken::none())
                .map_err(|e| format!("{} ({objective:?}): {e}", net.name))?;
            let report = smm_check::check_plan(&plan, &net, &spec.accelerator);
            let mut errors = report.error_count();
            // `--lint` folds the stream analysis into the same matrix:
            // each cell must pass the plan check *and* lint clean.
            let lint_errors = if opts.lint {
                let lrep = smm_lint::lint_plan(&plan, &net)
                    .map_err(|e| format!("{} ({objective:?}): {e}", net.name))?;
                if !opts.json {
                    for d in lrep.diagnostics() {
                        println!("     {d}");
                    }
                }
                lrep.error_count()
            } else {
                0
            };
            errors += lint_errors;
            failures += usize::from(errors > 0);
            if opts.json {
                entries.push(format!(
                    "{{\"network\":\"{}\",\"objective\":\"{objective:?}\",\"clean\":{},\
                     \"errors\":{errors},\"warnings\":{},\"peak_occupancy_elems\":{},\
                     \"capacity_elems\":{}}}",
                    smm_core::report::json_escape(&net.name),
                    errors == 0 && report.is_clean(),
                    report.diagnostics.len() - report.error_count(),
                    report.peak_occupancy(),
                    report.capacity_elems,
                ));
            } else {
                let verdict = if report.is_clean() && lint_errors == 0 {
                    "ok  "
                } else {
                    "FAIL"
                };
                println!(
                    "{verdict} {:<16} {objective:?}: peak {}/{} elements, {} diagnostics",
                    net.name,
                    report.peak_occupancy(),
                    report.capacity_elems,
                    report.diagnostics.len() + lint_errors,
                );
                for d in &report.diagnostics {
                    println!("     {d}");
                }
            }
        }
    }
    if opts.json {
        println!("[{}]", entries.join(","));
    }
    if failures > 0 {
        return Err(format!("{failures} plan(s) failed verification"));
    }
    if !opts.json {
        println!("all plans clean @ {}kB GLB", opts.glb_kb);
    }
    Ok(())
}

/// `smm tenants <modelA> <modelB>` — partition one GLB between two
/// co-resident models.
pub fn tenants(opts: &Options) -> Result<(), String> {
    let net_a = load_network(opts)?;
    let net_b = {
        let mut o = opts.clone();
        o.target.clone_from(&opts.target2);
        o.target2 = None;
        load_network(&o)?
    };
    let t = tenancy::partition(accelerator(opts), manager_config(opts), &net_a, &net_b, 5)
        .map_err(|e| e.to_string())?;
    println!(
        "best static split of {}: {} for {}, {} for {}",
        accelerator(opts).glb,
        t.split_a,
        net_a.name,
        ByteSize(accelerator(opts).glb.bytes() - t.split_a.bytes()),
        net_b.name
    );
    println!(
        "  {}: {:.2} MB off-chip, {} cycles",
        net_a.name,
        t.plan_a.totals.accesses_bytes.mb(),
        t.plan_a.totals.latency_cycles
    );
    println!(
        "  {}: {:.2} MB off-chip, {} cycles",
        net_b.name,
        t.plan_b.totals.accesses_bytes.mb(),
        t.plan_b.totals.latency_cycles
    );
    Ok(())
}

/// `smm explain <model> <layer>` — Algorithm 1's view of one layer.
pub fn explain(opts: &Options) -> Result<(), String> {
    let net = load_network(opts)?;
    let Some(layer_name) = &opts.target2 else {
        return Err("explain needs a layer name; try `smm topology <model>` to list layers".into());
    };
    let layer = net
        .layer(layer_name)
        .ok_or_else(|| format!("{} has no layer {layer_name:?}", net.name))?;
    let acc = accelerator(opts);
    let lp = LayerPlanner::new(acc, manager_config(opts));
    println!(
        "{}/{} @ {} GLB ({:?} objective): candidates of Algorithm 1",
        net.name, layer.name, acc.glb, opts.objective
    );
    let mut t = TextTable::new(&[
        "policy",
        "+p",
        "n",
        "memory kB",
        "accesses",
        "cycles",
        "fits",
        "chosen",
    ]);
    for c in lp.explain(&layer.shape) {
        t.row(vec![
            c.estimate.kind.label().into(),
            if c.estimate.prefetch { "+p" } else { "" }.into(),
            c.estimate
                .block_n
                .map(|n| n.to_string())
                .unwrap_or_default(),
            format!("{:.1}", c.estimate.required_bytes(&acc).kb()),
            c.estimate.accesses.total().to_string(),
            c.estimate.latency.cycles.to_string(),
            if c.feasible { "yes" } else { "no" }.into(),
            if c.chosen { "<==" } else { "" }.into(),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

/// `smm lower <model> <layer>` — the DMA command stream of the chosen
/// policy for one layer (truncated listing).
pub fn lower(opts: &Options) -> Result<(), String> {
    with_observability(opts, || lower_body(opts))
}

fn lower_body(opts: &Options) -> Result<(), String> {
    const HEAD: usize = 40;
    let net = load_network(opts)?;
    let Some(layer_name) = &opts.target2 else {
        return Err("lower needs a layer name".into());
    };
    let layer = net
        .layer(layer_name)
        .ok_or_else(|| format!("{} has no layer {layer_name:?}", net.name))?;
    let acc = accelerator(opts);
    let lp = LayerPlanner::new(acc, manager_config(opts));
    let chosen = lp
        .explain(&layer.shape)
        .into_iter()
        .find(|c| c.chosen)
        .ok_or_else(|| format!("no policy fits {layer_name} in {}", acc.glb))?;
    let program =
        smm_exec::Program::lower(&layer.shape, &chosen.estimate).map_err(|e| e.to_string())?;
    if opts.json {
        println!(
            "{}",
            lower_json(&net.name, layer, &chosen.estimate, &program)
        );
        return Ok(());
    }
    println!(
        "{}/{}: {}{} lowered to {} DMA commands (replayed: {} elements moved, peak {} resident)",
        net.name,
        layer.name,
        chosen.estimate.kind.label(),
        if chosen.estimate.prefetch { "+p" } else { "" },
        program.commands.len(),
        program.replay.total(),
        program.replay.peak_resident,
    );
    let listing = program.listing();
    let lines: Vec<&str> = listing.lines().collect();
    for l in lines.iter().take(HEAD) {
        println!("{l}");
    }
    if lines.len() > HEAD {
        println!("  ... {} more commands", lines.len() - HEAD);
    }
    Ok(())
}

/// `smm lower --json`: the full command stream plus the per-command
/// annotations the static analyzer derives (claimed vs derived traffic
/// and residency, redundant elements).
fn lower_json(
    network: &str,
    layer: &smm_model::Layer,
    est: &smm_policy::PolicyEstimate,
    program: &smm_exec::Program,
) -> String {
    use smm_core::report::json_escape;
    use std::fmt::Write as _;
    let lint = smm_lint::lint_program(program, &layer.shape, est);
    let mut out = String::with_capacity(256 + 200 * program.commands.len());
    let _ = write!(
        out,
        "{{\"network\":\"{}\",\"layer\":\"{}\",\"policy\":\"{}\",\"prefetch\":{},\
         \"commands\":{},\"moved_elems\":{},\"peak_resident\":{},\"clean\":{},\
         \"redundant_elems\":{},",
        json_escape(network),
        json_escape(&layer.name),
        est.kind.label(),
        est.prefetch,
        program.commands.len(),
        program.replay.total(),
        program.replay.peak_resident,
        lint.is_clean(),
        lint.redundant_elems,
    );
    out.push_str("\"diagnostics\":[");
    for (i, d) in lint.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"message\":\"{}\"}}",
            d.code,
            json_escape(&d.message)
        );
    }
    out.push_str("],\"stream\":[");
    for (i, a) in lint.annotations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"index\":{},\"text\":\"{}\",\"action\":\"{}\",\"operand\":\"{}\",\
             \"start\":{},\"end\":{},\"claimed_dram\":{},\"derived_dram\":{},\
             \"claimed_resident_after\":{},\"derived_resident_after\":{},\
             \"redundant_elems\":{}}}",
            a.index,
            json_escape(&program.commands[a.index].to_string()),
            a.action.label(),
            a.operand.label(),
            a.range.start,
            a.range.end,
            a.claimed_dram,
            a.derived_dram,
            a.claimed_resident_after,
            a.derived_resident_after,
            a.redundant_elems,
        );
    }
    out.push_str("]}");
    out
}

/// `smm simulate <model>` — plan, lower, and execute the plan in the
/// discrete-event simulator, cross-checking against the analytic
/// estimate (SMM011) when the scenario is clean.
pub fn simulate(opts: &Options) -> Result<(), String> {
    with_observability(opts, || simulate_body(opts))
}

fn simulate_body(opts: &Options) -> Result<(), String> {
    let spec = plan_spec(opts)?;
    let net = spec.resolve().map_err(|e| e.to_string())?;
    let plan = spec
        .planner()
        .plan(&net, spec.scheme, &CancelToken::none())
        .map_err(|e| e.to_string())?;
    let report = smm_sim::simulate_plan(&plan, &net, &spec.accelerator, &opts.sim)
        .map_err(|e| e.to_string())?;

    if opts.json {
        println!("{}", smm_sim::report_json(&report));
    } else {
        println!(
            "{} @ {} GLB, scheme {}, simulated under {:?}",
            net.name, spec.accelerator.glb, report.scheme, opts.sim
        );
        let mut t = TextTable::new(&[
            "Layer",
            "Policy",
            "+p",
            "analytic",
            "simulated",
            "stall",
            "dram busy",
            "peak elems",
        ]);
        for l in &report.layers {
            t.row(vec![
                l.layer_name.clone(),
                l.policy.label().into(),
                if l.prefetch { "+p" } else { "" }.into(),
                l.analytic_cycles.to_string(),
                l.stats.cycles.to_string(),
                l.stats.stall_cycles.to_string(),
                l.stats.dram_busy_cycles.to_string(),
                l.stats.peak_occupancy_elems.to_string(),
            ]);
        }
        print!("{}", t.render());
        let tot = &report.totals;
        println!(
            "totals: {} simulated cycles vs {} analytic ({:+.2}%), {:.2} MB off-chip",
            tot.cycles,
            tot.analytic_cycles,
            (tot.cycles as f64 / tot.analytic_cycles.max(1) as f64 - 1.0) * 100.0,
            report.traffic_bytes(&spec.accelerator).mb()
        );
        println!(
            "breakdown: {} compute-busy, {} dram-busy, {} stall; peak occupancy {}/{} elements",
            tot.compute_busy_cycles,
            tot.dram_busy_cycles,
            tot.stall_cycles,
            tot.peak_occupancy_elems,
            report.capacity_elems
        );
        if tot.retries > 0 {
            println!(
                "faults: {} transfers re-issued ({} elements re-transferred)",
                tot.retries, tot.retried_elems
            );
        }
    }

    if report.totals.occupancy_violations > 0 {
        return Err(format!(
            "{} command(s) exceeded GLB capacity during simulation",
            report.totals.occupancy_violations
        ));
    }
    // The analytic model claims nothing about degraded scenarios, so
    // only a clean simulation is held to SMM011.
    if opts.sim.is_clean() {
        if let Some(d) = smm_check::check_sim_divergence(
            &plan.network,
            report.totals.analytic_cycles,
            report.totals.cycles,
            smm_check::DEFAULT_SIM_TOLERANCE,
        ) {
            return Err(d.to_string());
        }
    }
    Ok(())
}

/// `smm baseline <model>`
pub fn baseline(opts: &Options) -> Result<(), String> {
    let net = load_network(opts)?;
    let cfg = BaselineConfig::paper(accelerator(opts), opts.split);
    let rep = simulate_network(&cfg, &net);
    println!(
        "{} baseline ({}) @ {} GLB",
        net.name,
        opts.split.label(),
        cfg.acc.glb
    );
    let mut t = TextTable::new(&["Layer", "ifmap", "filter", "ofmap", "total kB", "order"]);
    for (l, sim) in net.layers.iter().zip(&rep.layers) {
        t.row(vec![
            l.name.clone(),
            sim.ifmap_loads.to_string(),
            sim.filter_loads.to_string(),
            sim.ofmap_stores.to_string(),
            format!(
                "{:.1}",
                ByteSize::from_elements(sim.total_accesses(), cfg.acc.data_width).kb()
            ),
            format!("{:?}", sim.order),
        ]);
    }
    print!("{}", t.render());
    println!(
        "totals: {:.2} MB off-chip, {} stall-free cycles",
        rep.total_bytes.mb(),
        rep.latency_cycles
    );
    Ok(())
}

/// `smm sweep <model>` — Figure 5/8-style comparison for one model.
pub fn sweep(opts: &Options) -> Result<(), String> {
    with_observability(opts, || sweep_body(opts))
}

fn sweep_body(opts: &Options) -> Result<(), String> {
    let net = load_network(opts)?;
    let mut t = TextTable::new(&[
        "GLB", "sa_25_75", "sa_50_50", "sa_75_25", "Hom", "Het", "base cyc", "Het cyc",
    ]);
    for &kb in &GLB_SIZES_KB {
        let o = Options {
            glb_kb: kb,
            ..opts.clone()
        };
        let acc = accelerator(&o);
        let mb = |elems: u64| format!("{:.2}", ByteSize::from_elements(elems, acc.data_width).mb());
        let baselines: Vec<String> = BufferSplit::ALL
            .iter()
            .map(|&split| {
                let rep = simulate_network(&BaselineConfig::paper(acc, split), &net);
                mb(rep.total_accesses)
            })
            .collect();
        let planner = smm_core::Planner::new(acc, manager_config(&o));
        let open = CancelToken::none();
        let hom = planner
            .best_homogeneous_with(&net, &open)
            .map_err(|e| e.to_string())?;
        let het = planner
            .heterogeneous_with(&net, &open)
            .map_err(|e| e.to_string())?;
        let base_cycles =
            simulate_network(&BaselineConfig::paper(acc, BufferSplit::SA_50_50), &net)
                .latency_cycles;
        t.row(vec![
            format!("{kb}kB"),
            baselines[0].clone(),
            baselines[1].clone(),
            baselines[2].clone(),
            mb(hom.totals.accesses_elems),
            mb(het.totals.accesses_elems),
            base_cycles.to_string(),
            het.totals.latency_cycles.to_string(),
        ]);
    }
    println!("{} off-chip MB per scheme (and latency)", net.name);
    print!("{}", t.render());
    Ok(())
}

/// `smm topology <model>` — emit the extended topology CSV.
pub fn topology(opts: &Options) -> Result<(), String> {
    let net = load_network(opts)?;
    print!("{}", topology::write(&net));
    Ok(())
}

/// `smm serve` — run the concurrent planning server until a client
/// sends a `shutdown` op.
pub fn serve(opts: &crate::args::ServeOptions) -> Result<(), String> {
    let handle = smm_serve::Server::spawn(smm_serve::ServerConfig {
        addr: format!("127.0.0.1:{}", opts.port),
        workers: opts.workers,
        shards: opts.shards,
        queue_cap: opts.queue_cap,
        cache_cap: opts.cache_cap,
        obs: true,
        verify_plans: opts.verify,
        adaptive_shed: !opts.static_cap,
        shed_target_ms: opts.shed_target_ms,
        stream: opts.stream,
        prewarm: opts.prewarm,
        window_ms: opts.window_ms,
        slide_ms: opts.slide_ms,
        prewarm_workers: opts.prewarm_workers,
        ..smm_serve::ServerConfig::default()
    })
    .map_err(|e| format!("cannot bind port {}: {e}", opts.port))?;
    let addr = handle.local_addr();
    let shed = if opts.static_cap {
        "static cap".to_string()
    } else {
        format!("adaptive shed @{}ms", opts.shed_target_ms)
    };
    let stream = if !opts.stream {
        "stream off".to_string()
    } else if opts.prewarm {
        format!("stream {}ms/{}ms + prewarm", opts.window_ms, opts.slide_ms)
    } else {
        format!("stream {}ms/{}ms", opts.window_ms, opts.slide_ms)
    };
    println!(
        "smm serve listening on {addr} ({} workers, {} shards, queue {}, cache {}, {shed}, {stream})",
        opts.workers,
        if opts.shards == 0 {
            "auto".to_string()
        } else {
            opts.shards.to_string()
        },
        opts.queue_cap,
        opts.cache_cap,
    );
    if let Some(path) = &opts.port_file {
        std::fs::write(path, format!("{}\n", addr.port())).map_err(|e| format!("{path}: {e}"))?;
    }
    handle.join();
    println!("smm serve: shut down cleanly");
    Ok(())
}

/// `smm fleet <route|join|leave>` — run the consistent-hash router or
/// change a running router's membership.
pub fn fleet(opts: &crate::args::FleetOptions) -> Result<(), String> {
    use crate::args::FleetOptions;
    match opts {
        FleetOptions::Route { cfg, port_file } => {
            let backends = cfg.backends.clone();
            let handle = smm_fleet::Router::spawn(cfg.clone())
                .map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
            let addr = handle.local_addr();
            println!(
                "smm fleet route listening on {addr} ({} backends, {} vnodes, {} retries)",
                backends.len(),
                cfg.vnodes,
                cfg.retries
            );
            for b in &backends {
                println!("  backend {b}");
            }
            if let Some(path) = port_file {
                std::fs::write(path, format!("{}\n", addr.port()))
                    .map_err(|e| format!("{path}: {e}"))?;
            }
            handle.join();
            println!("smm fleet route: shut down cleanly");
            Ok(())
        }
        FleetOptions::Join { addr, node } => fleet_admin(addr, "fleet_join", node),
        FleetOptions::Leave { addr, node } => fleet_admin(addr, "fleet_leave", node),
    }
}

/// Send one `fleet_join` / `fleet_leave` admin line to a router and
/// print its acknowledgement.
fn fleet_admin(addr: &str, op: &str, node: &str) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let msg = format!(
        "{{\"op\":\"{op}\",\"node\":\"{}\"}}\n",
        smm_core::report::json_escape(node)
    );
    writer
        .write_all(msg.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let line = line.trim();
    println!("{line}");
    if line.contains("\"status\":\"ok\"") {
        Ok(())
    } else {
        Err(format!("router rejected {op}"))
    }
}

/// `smm top` — fetch one `stream` snapshot from a serve node (or a
/// fleet router, which aggregates per node) and print the windowed
/// per-cell traffic table.
pub fn top(opts: &crate::args::TopOptions) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let addr = &opts.addr;
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let sliding = if opts.sliding {
        ",\"sliding\":true"
    } else {
        ""
    };
    writeln!(
        writer,
        "{{\"op\":\"stream\",\"limit\":{}{sliding}}}",
        opts.limit
    )
    .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let line = line.trim();
    if opts.json {
        println!("{line}");
        return if line.contains("\"status\":\"ok\"") {
            Ok(())
        } else {
            Err("stream request failed".into())
        };
    }
    let v = smm_obs::json::parse(line).map_err(|e| format!("bad stream response: {e}"))?;
    if !matches!(v.get("status"), Some(smm_obs::json::Value::String(s)) if s == "ok") {
        return Err(format!("stream request failed: {line}"));
    }
    let num = |obj: &smm_obs::json::Value, k: &str| -> u64 {
        match obj.get(k) {
            Some(smm_obs::json::Value::Number(n)) if *n >= 0.0 => *n as u64,
            _ => 0,
        }
    };
    let sval = |obj: &smm_obs::json::Value, k: &str| -> String {
        match obj.get(k) {
            Some(smm_obs::json::Value::String(s)) => s.clone(),
            _ => String::new(),
        }
    };
    println!(
        "stream:  {} windows of {}ms",
        sval(&v, "kind"),
        num(&v, "window_ms"),
    );
    // A router response carries a `fleet` section and a flat merged
    // `cells` table; a node response carries engine totals and
    // `windows`. Render whichever shape arrived.
    if let Some(fleet) = v.get("fleet") {
        println!(
            "fleet:   {}/{} nodes healthy, {} events ({} late, {} dropped), {} windows closed",
            num(fleet, "healthy"),
            num(fleet, "nodes"),
            num(fleet, "events"),
            num(fleet, "late_events"),
            num(fleet, "dropped"),
            num(fleet, "windows_closed"),
        );
        if let Some(smm_obs::json::Value::Array(nodes)) = v.get("per_node") {
            for n in nodes {
                println!(
                    "node:    {} healthy={} events={} cells={}",
                    sval(n, "node"),
                    matches!(n.get("healthy"), Some(smm_obs::json::Value::Bool(true))),
                    num(n, "events"),
                    num(n, "cells_seen"),
                );
            }
        }
        if let Some(smm_obs::json::Value::Array(cells)) = v.get("cells") {
            print_cell_table(cells, &num, &sval);
        }
        return Ok(());
    }
    println!(
        "engine:  {} events ({} late, {} dropped), {} windows closed, {} cells seen, watermark {}us",
        num(&v, "events"),
        num(&v, "late_events"),
        num(&v, "dropped"),
        num(&v, "windows_closed"),
        num(&v, "cells_seen"),
        num(&v, "watermark_us"),
    );
    let Some(smm_obs::json::Value::Array(windows)) = v.get("windows") else {
        return Ok(());
    };
    for w in windows {
        println!(
            "window:  [{}us, {}us) {} events",
            num(w, "start_us"),
            num(w, "end_us"),
            num(w, "events"),
        );
        if let Some(smm_obs::json::Value::Array(cells)) = w.get("cells") {
            print_cell_table(cells, &num, &sval);
        }
    }
    Ok(())
}

/// Shared cell-table renderer for `smm top` (node and fleet shapes
/// carry the same per-cell fields).
fn print_cell_table(
    cells: &[smm_obs::json::Value],
    num: &dyn Fn(&smm_obs::json::Value, &str) -> u64,
    sval: &dyn Fn(&smm_obs::json::Value, &str) -> String,
) {
    if cells.is_empty() {
        return;
    }
    println!(
        "  {:<32} {:>7} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9}",
        "cell", "events", "hits", "miss", "shed", "dead", "p50us", "p99us", "pred-us"
    );
    for c in cells {
        let shed = num(c, "shed_static") + num(c, "shed_adaptive") + num(c, "shed_predicted");
        println!(
            "  {:<32} {:>7} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9}",
            sval(c, "key"),
            num(c, "events"),
            num(c, "hit_inline") + num(c, "hit_worker"),
            num(c, "miss"),
            shed,
            num(c, "deadline"),
            num(c, "p50_us"),
            num(c, "p99_us"),
            num(c, "predicted_miss_us").max(num(c, "predicted_us")),
        );
    }
}

/// `smm loadgen` — drive a running server and report throughput,
/// latency percentiles, cache hit rate, and shed counts.
pub fn loadgen(opts: &crate::args::LoadgenOptions) -> Result<(), String> {
    let report = smm_serve::loadgen::run(&opts.cfg).map_err(|e| e.to_string())?;
    println!("{}", report.render());
    if report.plan_mismatches > 0 {
        return Err(format!(
            "{} plans differed between cached and cold responses",
            report.plan_mismatches
        ));
    }
    if report.errors > 0 {
        return Err(format!("{} requests failed", report.errors));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_for(target: &str) -> Options {
        Options {
            target: Some(target.to_string()),
            ..Options::default()
        }
    }

    /// Write `content` to a unique temp file and return its path.
    fn temp_topology(tag: &str, content: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("smm-cli-test-{tag}-{}.csv", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn garbage_topology_files_error_with_the_offending_line() {
        // (tag, file content, substring the error must carry)
        let cases = [
            ("cols", "conv, 1, 2,\n", "line 1"),
            (
                "num",
                "ok, 8, 8, 3, 3, 4, 8, 1,\nbad, x, 8, 3, 3, 4, 8, 1,\n",
                "line 2",
            ),
            ("kind", "bad, 8, 8, 3, 3, 4, 8, 1, 0, ZZ,\n", "line 1"),
            (
                "huge",
                "huge, 4294967295, 4294967295, 3, 3, 4294967295, 8, 1,\n",
                "line 1",
            ),
            ("empty", "# only a comment\n", "no layer rows"),
            ("binary", "\u{0}\u{1}\u{2}garbage\u{3}\n", "line 1"),
        ];
        for (tag, content, needle) in cases {
            let path = temp_topology(tag, content);
            let opts = opts_for(path.to_str().unwrap());
            // Both the plain emit path and the full planning path must
            // surface the parse error, never panic.
            for result in [topology(&opts), analyze(&opts)] {
                let err = result.expect_err(tag);
                assert!(err.contains(needle), "{tag}: {err:?} missing {needle:?}");
            }
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn unknown_target_is_a_helpful_error() {
        let err = topology(&opts_for("not-a-model-or-file")).unwrap_err();
        assert!(
            err.contains("neither a zoo model nor a topology file"),
            "{err}"
        );
    }

    #[test]
    fn valid_topology_file_round_trips_through_the_cli() {
        let path = temp_topology("good", "conv1, 32, 32, 3, 3, 8, 16, 1,\n");
        let opts = opts_for(path.to_str().unwrap());
        assert!(topology(&opts).is_ok());
        assert!(analyze(&opts).is_ok());
        let _ = std::fs::remove_file(path);
    }
}
