//! Tiny flag parser for the `smm` CLI (no external dependency needed for
//! five flags).

use smm_arch::DataWidth;
use smm_core::{Objective, SchedulerKind};
use smm_systolic::BufferSplit;

/// Parsed command options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Positional model name or topology file path.
    pub target: Option<String>,
    pub glb_kb: u64,
    pub width: DataWidth,
    pub objective: Objective,
    pub heterogeneous: bool,
    pub split: BufferSplit,
    pub prefetch: bool,
    pub inter_layer: bool,
    /// Layer-decision scheduler: greedy per-layer (default) or the
    /// global inter-layer DP pass.
    pub scheduler: SchedulerKind,
    /// Emit machine-readable CSV instead of the text table.
    pub csv: bool,
    /// Also lint the lowered command streams (`smm check --lint`).
    pub lint: bool,
    /// Emit the analyze plan as one deterministic JSON object.
    pub json: bool,
    /// Batch size for batched-execution estimates.
    pub batch: u64,
    /// Second positional target (the second tenant for `tenants`).
    pub target2: Option<String>,
    /// Collect and print the observability profile report.
    pub profile: bool,
    /// Write a Chrome trace-event JSON file of the run.
    pub trace_out: Option<String>,
    /// Simulation scenario knobs (`smm simulate`).
    pub sim: smm_sim::SimConfig,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            target: None,
            glb_kb: 256,
            width: DataWidth::W8,
            objective: Objective::Accesses,
            heterogeneous: true,
            split: BufferSplit::SA_50_50,
            prefetch: true,
            inter_layer: false,
            scheduler: SchedulerKind::Greedy,
            csv: false,
            lint: false,
            json: false,
            batch: 1,
            target2: None,
            profile: false,
            trace_out: None,
            sim: smm_sim::SimConfig::default(),
        }
    }
}

/// Parse `argv` after the subcommand.
pub fn parse(argv: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match arg.as_str() {
            "--glb" => {
                opts.glb_kb = value("--glb")?
                    .parse()
                    .map_err(|_| "--glb expects a size in kB".to_string())?;
            }
            "--width" => {
                let bits: u64 = value("--width")?
                    .parse()
                    .map_err(|_| "--width expects 8, 16 or 32".to_string())?;
                opts.width =
                    DataWidth::from_bits(bits).ok_or("--width expects 8, 16 or 32".to_string())?;
            }
            "--objective" => {
                opts.objective = match value("--objective")?.as_str() {
                    "accesses" | "a" => Objective::Accesses,
                    "latency" | "l" => Objective::Latency,
                    other => return Err(format!("unknown objective {other:?}")),
                };
            }
            "--scheme" => {
                opts.heterogeneous = match value("--scheme")?.as_str() {
                    "het" => true,
                    "hom" => false,
                    other => return Err(format!("unknown scheme {other:?}")),
                };
            }
            "--scheduler" => {
                let label = value("--scheduler")?;
                opts.scheduler = SchedulerKind::from_label(&label)
                    .ok_or(format!("unknown scheduler {label:?} (greedy | global)"))?;
            }
            "--split" => {
                opts.split = match value("--split")?.as_str() {
                    "25_75" => BufferSplit::SA_25_75,
                    "50_50" => BufferSplit::SA_50_50,
                    "75_25" => BufferSplit::SA_75_25,
                    other => return Err(format!("unknown split {other:?}")),
                };
            }
            "--queue-depth" => {
                opts.sim.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth expects a positive integer".to_string())?;
                if opts.sim.queue_depth == 0 {
                    return Err("--queue-depth expects a positive integer".into());
                }
            }
            "--bw-derate" => {
                opts.sim.bw_derate = value("--bw-derate")?
                    .parse()
                    .map_err(|_| "--bw-derate expects a factor >= 1.0".to_string())?;
            }
            "--jitter" => {
                opts.sim.jitter_max_cycles = value("--jitter")?
                    .parse()
                    .map_err(|_| "--jitter expects a cycle count".to_string())?;
            }
            "--drop-rate" => {
                opts.sim.drop_rate = value("--drop-rate")?
                    .parse()
                    .map_err(|_| "--drop-rate expects a probability in [0, 1)".to_string())?;
            }
            "--seed" => {
                opts.sim.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--contenders" => {
                opts.sim.contenders = value("--contenders")?
                    .parse()
                    .map_err(|_| "--contenders expects a positive integer".to_string())?;
            }
            "--compute-folds" => opts.sim.compute = smm_sim::ComputeModel::SystolicFolds,
            "--no-prefetch" => opts.prefetch = false,
            "--inter-layer" => opts.inter_layer = true,
            "--csv" => opts.csv = true,
            "--lint" => opts.lint = true,
            "--json" => opts.json = true,
            "--profile" => opts.profile = true,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--batch" => {
                opts.batch = value("--batch")?
                    .parse()
                    .map_err(|_| "--batch expects a positive integer".to_string())?;
                if opts.batch == 0 {
                    return Err("--batch expects a positive integer".into());
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            positional => {
                if opts.target.is_none() {
                    opts.target = Some(positional.to_string());
                } else if opts.target2.is_none() {
                    opts.target2 = Some(positional.to_string());
                } else {
                    return Err(format!("unexpected extra argument {positional:?}"));
                }
            }
        }
    }
    Ok(opts)
}

/// Options for `smm serve`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP port to bind (0 = ephemeral).
    pub port: u16,
    /// Planning worker threads.
    pub workers: usize,
    /// Reactor shards (event-loop threads); 0 = one per core.
    pub shards: usize,
    /// Bounded request-queue capacity.
    pub queue_cap: usize,
    /// Plan-cache capacity in entries.
    pub cache_cap: usize,
    /// Target queue-wait budget for the adaptive shed controller, ms.
    pub shed_target_ms: u64,
    /// Disable adaptive shedding (static queue cap only).
    pub static_cap: bool,
    /// Write the bound port number to this file once listening (lets
    /// scripts using port 0 discover the ephemeral port).
    pub port_file: Option<String>,
    /// Verify every freshly-planned result with `smm-check` before
    /// caching or responding.
    pub verify: bool,
    /// Enable the stream analytics tap + windowing collector.
    pub stream: bool,
    /// Enable the cache pre-warm controller (needs `stream`).
    pub prewarm: bool,
    /// Tumbling-window width for the stream analytics, ms.
    pub window_ms: u64,
    /// Sliding-window slide for the stream analytics, ms.
    pub slide_ms: u64,
    /// Background pre-warm planner threads.
    pub prewarm_workers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let d = smm_serve::ServerConfig::default();
        ServeOptions {
            port: 7878,
            workers: d.workers,
            shards: d.shards,
            queue_cap: d.queue_cap,
            cache_cap: d.cache_cap,
            shed_target_ms: d.shed_target_ms,
            static_cap: !d.adaptive_shed,
            port_file: None,
            verify: d.verify_plans,
            stream: d.stream,
            prewarm: d.prewarm,
            window_ms: d.window_ms,
            slide_ms: d.slide_ms,
            prewarm_workers: d.prewarm_workers,
        }
    }
}

/// Parse `smm serve` flags.
pub fn parse_serve(argv: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        let number = |flag: &str, s: String| -> Result<usize, String> {
            s.parse()
                .map_err(|_| format!("{flag} expects a non-negative integer, got {s:?}"))
        };
        match arg.as_str() {
            "--port" => {
                let s = value("--port")?;
                opts.port = s
                    .parse()
                    .map_err(|_| format!("--port expects a port number, got {s:?}"))?;
            }
            "--workers" => {
                opts.workers = number("--workers", value("--workers")?)?.max(1);
            }
            "--shards" => {
                opts.shards = number("--shards", value("--shards")?)?;
            }
            "--queue-cap" => {
                opts.queue_cap = number("--queue-cap", value("--queue-cap")?)?.max(1);
            }
            "--cache-cap" => {
                opts.cache_cap = number("--cache-cap", value("--cache-cap")?)?;
            }
            "--shed-target-ms" => {
                opts.shed_target_ms =
                    number("--shed-target-ms", value("--shed-target-ms")?)?.max(1) as u64;
            }
            "--static-cap" => opts.static_cap = true,
            "--port-file" => opts.port_file = Some(value("--port-file")?),
            "--verify" => opts.verify = true,
            "--no-stream" => opts.stream = false,
            "--no-prewarm" => opts.prewarm = false,
            "--window-ms" => {
                opts.window_ms = number("--window-ms", value("--window-ms")?)?.max(1) as u64;
            }
            "--slide-ms" => {
                opts.slide_ms = number("--slide-ms", value("--slide-ms")?)?.max(1) as u64;
            }
            "--prewarm-workers" => {
                opts.prewarm_workers =
                    number("--prewarm-workers", value("--prewarm-workers")?)?.max(1);
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    Ok(opts)
}

/// Options for `smm loadgen`.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// The `smm_serve` load-generator configuration.
    pub cfg: smm_serve::LoadgenConfig,
}

/// Parse `smm loadgen` flags.
pub fn parse_loadgen(argv: &[String]) -> Result<LoadgenOptions, String> {
    let mut cfg = smm_serve::LoadgenConfig::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "-n" | "--requests" => {
                let s = value("-n")?;
                cfg.requests = s
                    .parse()
                    .map_err(|_| format!("-n expects a request count, got {s:?}"))?;
            }
            "--concurrency" => {
                let s = value("--concurrency")?;
                cfg.concurrency = s
                    .parse::<usize>()
                    .map_err(|_| format!("--concurrency expects a connection count, got {s:?}"))?
                    .max(1);
            }
            "--connections" => {
                let s = value("--connections")?;
                cfg.connections = s
                    .parse::<usize>()
                    .map_err(|_| format!("--connections expects a connection count, got {s:?}"))?
                    .max(1);
            }
            "--models" => {
                cfg.models = value("--models")?
                    .split(',')
                    .map(|m| m.trim().to_string())
                    .filter(|m| !m.is_empty())
                    .collect();
                if cfg.models.is_empty() {
                    return Err("--models expects a comma-separated model list".into());
                }
            }
            "--glb" => {
                let s = value("--glb")?;
                cfg.glb_kb = s
                    .parse()
                    .map_err(|_| format!("--glb expects a size in kB, got {s:?}"))?;
            }
            "--deadline-ms" => {
                let s = value("--deadline-ms")?;
                cfg.deadline_ms = Some(
                    s.parse()
                        .map_err(|_| format!("--deadline-ms expects milliseconds, got {s:?}"))?,
                );
            }
            "--plan-delay-ms" => {
                let s = value("--plan-delay-ms")?;
                cfg.plan_delay_ms = Some(
                    s.parse()
                        .map_err(|_| format!("--plan-delay-ms expects milliseconds, got {s:?}"))?,
                );
            }
            "--glb-set" => {
                let s = value("--glb-set")?;
                cfg.glb_set = s
                    .split(',')
                    .map(|v| {
                        v.trim().parse().map_err(|_| {
                            format!("--glb-set expects comma-separated kB sizes, got {v:?}")
                        })
                    })
                    .collect::<Result<Vec<u64>, String>>()?;
                if cfg.glb_set.is_empty() {
                    return Err("--glb-set expects at least one size".into());
                }
            }
            "--mix" => {
                cfg.mix = smm_serve::parse_mix(&value("--mix")?)?;
            }
            "--fleet" => cfg.fleet = true,
            "--shed-report" => cfg.shed_report = true,
            "--cells" => cfg.cell_report = true,
            "--shutdown" => cfg.shutdown = true,
            other => return Err(format!("unknown loadgen flag {other:?}")),
        }
    }
    Ok(LoadgenOptions { cfg })
}

/// Options for `smm top` — the windowed traffic view of a serve node
/// or a fleet router.
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Node or router address.
    pub addr: String,
    /// How many recent windows to fetch.
    pub limit: usize,
    /// Read the sliding-window store instead of the tumbling one.
    pub sliding: bool,
    /// Print the raw JSON response instead of the text table.
    pub json: bool,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions {
            addr: "127.0.0.1:7878".into(),
            limit: 1,
            sliding: false,
            json: false,
        }
    }
}

/// Parse `smm top` flags.
pub fn parse_top(argv: &[String]) -> Result<TopOptions, String> {
    let mut opts = TopOptions::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--limit" => {
                let s = value("--limit")?;
                opts.limit = s
                    .parse::<usize>()
                    .map_err(|_| format!("--limit expects a window count, got {s:?}"))?
                    .max(1);
            }
            "--sliding" => opts.sliding = true,
            "--json" => opts.json = true,
            other => return Err(format!("unknown top flag {other:?}")),
        }
    }
    Ok(opts)
}

/// Options for the `smm fleet` subcommands.
#[derive(Debug, Clone)]
pub enum FleetOptions {
    /// `smm fleet route` — run the consistent-hash router.
    Route {
        /// Router configuration (addr, backends, health knobs).
        cfg: smm_fleet::RouterConfig,
        /// Write the bound port number here once listening.
        port_file: Option<String>,
    },
    /// `smm fleet join` — add a node to a running router's fleet.
    Join {
        /// Router address.
        addr: String,
        /// Joining node address.
        node: String,
    },
    /// `smm fleet leave` — remove a node from a running router's fleet.
    Leave {
        /// Router address.
        addr: String,
        /// Leaving node address.
        node: String,
    },
}

/// Parse `smm fleet <route|join|leave>` flags.
pub fn parse_fleet(argv: &[String]) -> Result<FleetOptions, String> {
    let Some(sub) = argv.first() else {
        return Err("fleet needs a subcommand: route | join | leave".into());
    };
    let rest = &argv[1..];
    match sub.as_str() {
        "route" => parse_fleet_route(rest),
        "join" | "leave" => {
            let mut addr = "127.0.0.1:7879".to_string();
            let mut node = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("flag {flag} needs a value"))
                };
                match arg.as_str() {
                    "--addr" => addr = value("--addr")?,
                    "--node" => node = Some(value("--node")?),
                    other => return Err(format!("unknown fleet {sub} flag {other:?}")),
                }
            }
            let node = node.ok_or_else(|| format!("fleet {sub} needs --node <HOST:PORT>"))?;
            Ok(if sub == "join" {
                FleetOptions::Join { addr, node }
            } else {
                FleetOptions::Leave { addr, node }
            })
        }
        other => Err(format!("unknown fleet subcommand {other:?}")),
    }
}

fn parse_fleet_route(argv: &[String]) -> Result<FleetOptions, String> {
    let mut cfg = smm_fleet::RouterConfig::default();
    let mut port: u16 = 7879;
    let mut port_file = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        let number = |flag: &str, s: String| -> Result<u64, String> {
            s.parse()
                .map_err(|_| format!("{flag} expects a non-negative integer, got {s:?}"))
        };
        match arg.as_str() {
            "--port" => {
                let s = value("--port")?;
                port = s
                    .parse()
                    .map_err(|_| format!("--port expects a port number, got {s:?}"))?;
            }
            "--backends" => {
                cfg.backends = value("--backends")?
                    .split(',')
                    .map(|b| b.trim().to_string())
                    .filter(|b| !b.is_empty())
                    .collect();
            }
            "--vnodes" => cfg.vnodes = number("--vnodes", value("--vnodes")?)?.max(1) as u32,
            "--retries" => cfg.retries = number("--retries", value("--retries")?)? as u32,
            "--eject-after" => {
                cfg.eject_after = number("--eject-after", value("--eject-after")?)?.max(1) as u32;
            }
            "--probe-ms" => {
                cfg.probe_interval =
                    std::time::Duration::from_millis(number("--probe-ms", value("--probe-ms")?)?);
            }
            "--timeout-ms" => {
                cfg.forward_timeout = std::time::Duration::from_millis(
                    number("--timeout-ms", value("--timeout-ms")?)?.max(1),
                );
            }
            "--handoff-limit" => {
                cfg.handoff_limit = number("--handoff-limit", value("--handoff-limit")?)?;
            }
            "--port-file" => port_file = Some(value("--port-file")?),
            other => return Err(format!("unknown fleet route flag {other:?}")),
        }
    }
    cfg.addr = format!("127.0.0.1:{port}");
    Ok(FleetOptions::Route { cfg, port_file })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults() {
        let o = parse(&argv("resnet18")).unwrap();
        assert_eq!(o.target.as_deref(), Some("resnet18"));
        assert_eq!(o.glb_kb, 256);
        assert_eq!(o.width, DataWidth::W8);
        assert!(o.prefetch);
        assert!(!o.inter_layer);
        assert_eq!(o.scheduler, SchedulerKind::Greedy);
    }

    #[test]
    fn all_flags() {
        let o = parse(&argv(
            "mobilenet --glb 64 --width 32 --objective latency --scheme hom \
             --split 25_75 --no-prefetch --inter-layer --scheduler global",
        ))
        .unwrap();
        assert_eq!(o.glb_kb, 64);
        assert_eq!(o.width, DataWidth::W32);
        assert_eq!(o.objective, Objective::Latency);
        assert!(!o.heterogeneous);
        assert_eq!(o.split, BufferSplit::SA_25_75);
        assert!(!o.prefetch);
        assert!(o.inter_layer);
        assert_eq!(o.scheduler, SchedulerKind::Global);
    }

    #[test]
    fn profile_and_trace_out() {
        let o = parse(&argv("resnet18 --profile --trace-out trace.json")).unwrap();
        assert!(o.profile);
        assert_eq!(o.trace_out.as_deref(), Some("trace.json"));
        assert!(parse(&argv("resnet18 --trace-out")).is_err());
        let off = parse(&argv("resnet18")).unwrap();
        assert!(!off.profile);
        assert!(off.trace_out.is_none());
    }

    #[test]
    fn csv_batch_and_second_target() {
        let o = parse(&argv("resnet18 mobilenet --csv --batch 4")).unwrap();
        assert_eq!(o.target.as_deref(), Some("resnet18"));
        assert_eq!(o.target2.as_deref(), Some("mobilenet"));
        assert!(o.csv);
        assert_eq!(o.batch, 4);
    }

    #[test]
    fn lint_flag() {
        assert!(parse(&argv("resnet18 --lint")).unwrap().lint);
        assert!(!parse(&argv("resnet18")).unwrap().lint);
    }

    #[test]
    fn simulate_flags() {
        let o = parse(&argv(
            "mobilenet --queue-depth 8 --bw-derate 2.5 --jitter 4 --drop-rate 0.01 \
             --seed 99 --contenders 3 --compute-folds",
        ))
        .unwrap();
        assert_eq!(o.sim.queue_depth, 8);
        assert!((o.sim.bw_derate - 2.5).abs() < 1e-12);
        assert_eq!(o.sim.jitter_max_cycles, 4);
        assert!((o.sim.drop_rate - 0.01).abs() < 1e-12);
        assert_eq!(o.sim.seed, 99);
        assert_eq!(o.sim.contenders, 3);
        assert_eq!(o.sim.compute, smm_sim::ComputeModel::SystolicFolds);
        let d = parse(&argv("mobilenet")).unwrap();
        assert_eq!(d.sim, smm_sim::SimConfig::default());
        assert!(d.sim.is_clean());
        assert!(parse(&argv("m --queue-depth 0")).is_err());
        assert!(parse(&argv("m --bw-derate fast")).is_err());
        assert!(parse(&argv("m --drop-rate lots")).is_err());
        assert!(parse(&argv("m --seed")).is_err());
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(parse(&argv("--glb abc")).is_err());
        assert!(parse(&argv("--width 12")).is_err());
        assert!(parse(&argv("--objective speed")).is_err());
        assert!(parse(&argv("--split 30_70")).is_err());
        assert!(parse(&argv("--bogus")).is_err());
        assert!(parse(&argv("a b c")).is_err());
        assert!(parse(&argv("--glb")).is_err());
        assert!(parse(&argv("--batch 0")).is_err());
        assert!(parse(&argv("--scheduler quantum")).is_err());
        assert!(parse(&argv("--scheduler")).is_err());
    }

    #[test]
    fn serve_flags() {
        let o = parse_serve(&argv(
            "--port 0 --workers 2 --shards 3 --queue-cap 8 --cache-cap 32 \
             --shed-target-ms 20 --static-cap --port-file /tmp/p --verify",
        ))
        .unwrap();
        assert_eq!(o.port, 0);
        assert_eq!(o.workers, 2);
        assert_eq!(o.shards, 3);
        assert_eq!(o.queue_cap, 8);
        assert_eq!(o.cache_cap, 32);
        assert_eq!(o.shed_target_ms, 20);
        assert!(o.static_cap);
        assert_eq!(o.port_file.as_deref(), Some("/tmp/p"));
        assert!(o.verify);
        let d = parse_serve(&[]).unwrap();
        assert_eq!(d.port, 7878);
        assert!(!d.verify);
        assert_eq!(d.shards, 0, "shards default to auto");
        assert!(!d.static_cap, "adaptive shedding is on by default");
        assert!(parse_serve(&argv("--port nope")).is_err());
        assert!(parse_serve(&argv("--port 99999")).is_err());
        assert!(parse_serve(&argv("--workers")).is_err());
        assert!(parse_serve(&argv("--shed-target-ms nope")).is_err());
        assert!(parse_serve(&argv("--bogus")).is_err());
        // Worker/queue floors: 0 is clamped to 1, not accepted.
        assert_eq!(parse_serve(&argv("--workers 0")).unwrap().workers, 1);
    }

    #[test]
    fn loadgen_flags() {
        let o = parse_loadgen(&argv(
            "--addr 127.0.0.1:9 -n 10 --concurrency 3 --models resnet18,mobilenet \
             --glb 128 --deadline-ms 50 --shutdown",
        ))
        .unwrap();
        assert_eq!(o.cfg.addr, "127.0.0.1:9");
        assert_eq!(o.cfg.requests, 10);
        assert_eq!(o.cfg.concurrency, 3);
        assert_eq!(o.cfg.connections, 0, "--connections wins only when set");
        assert_eq!(o.cfg.models, vec!["resnet18", "mobilenet"]);
        assert_eq!(o.cfg.glb_kb, 128);
        assert_eq!(o.cfg.deadline_ms, Some(50));
        assert!(o.cfg.shutdown);
        assert!(!o.cfg.shed_report);
        let o = parse_loadgen(&argv("--connections 2000 --shed-report")).unwrap();
        assert_eq!(o.cfg.connections, 2000);
        assert!(o.cfg.shed_report);
        assert!(parse_loadgen(&argv("-n lots")).is_err());
        assert!(parse_loadgen(&argv("--connections nope")).is_err());
        assert!(parse_loadgen(&argv("--models ,")).is_err());
        assert!(parse_loadgen(&argv("--bogus")).is_err());
        // Defaults cover the full zoo.
        assert_eq!(parse_loadgen(&[]).unwrap().cfg.models.len(), 6);
    }

    #[test]
    fn serve_stream_flags() {
        let d = parse_serve(&[]).unwrap();
        assert!(d.stream, "stream analytics default on");
        assert!(d.prewarm, "pre-warming defaults on");
        let o = parse_serve(&argv(
            "--no-stream --no-prewarm --window-ms 200 --slide-ms 50 --prewarm-workers 2",
        ))
        .unwrap();
        assert!(!o.stream);
        assert!(!o.prewarm);
        assert_eq!(o.window_ms, 200);
        assert_eq!(o.slide_ms, 50);
        assert_eq!(o.prewarm_workers, 2);
        assert!(parse_serve(&argv("--window-ms nope")).is_err());
        assert_eq!(parse_serve(&argv("--window-ms 0")).unwrap().window_ms, 1);
    }

    #[test]
    fn loadgen_mix_and_cells_flags() {
        let o = parse_loadgen(&argv("--mix resnet18:64=5,mobilenet:256=1 --cells")).unwrap();
        assert_eq!(o.cfg.mix.len(), 2);
        assert_eq!(o.cfg.mix[0].model, "resnet18");
        assert_eq!(o.cfg.mix[0].weight, 5);
        assert!(o.cfg.cell_report);
        assert!(parse_loadgen(&argv("--mix resnet18")).is_err());
        assert!(parse_loadgen(&argv("--mix")).is_err());
        assert!(parse_loadgen(&[]).unwrap().cfg.mix.is_empty());
    }

    #[test]
    fn top_flags() {
        let d = parse_top(&[]).unwrap();
        assert_eq!(d.addr, "127.0.0.1:7878");
        assert_eq!(d.limit, 1);
        assert!(!d.sliding);
        assert!(!d.json);
        let o = parse_top(&argv("--addr 127.0.0.1:9 --limit 4 --sliding --json")).unwrap();
        assert_eq!(o.addr, "127.0.0.1:9");
        assert_eq!(o.limit, 4);
        assert!(o.sliding);
        assert!(o.json);
        assert!(parse_top(&argv("--limit nope")).is_err());
        assert!(parse_top(&argv("--bogus")).is_err());
        assert_eq!(parse_top(&argv("--limit 0")).unwrap().limit, 1);
    }
}
