use crate::{ByteSize, DataWidth};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The GLB sizes evaluated throughout the paper's result section, in kB.
pub const GLB_SIZES_KB: [u64; 5] = [64, 128, 256, 512, 1024];

/// Errors raised when assembling an [`AcceleratorConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The PE array must have at least one row and one column.
    EmptyPeArray,
    /// Operations per cycle must be nonzero (and even: one MAC = 2 OPs).
    BadOpsPerCycle(u64),
    /// The GLB must be able to hold at least one element.
    GlbTooSmall(ByteSize),
    /// Off-chip bandwidth must be nonzero.
    ZeroBandwidth,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyPeArray => write!(f, "PE array must be non-empty"),
            ConfigError::BadOpsPerCycle(ops) => {
                write!(f, "ops/cycle must be a positive even number, got {ops}")
            }
            ConfigError::GlbTooSmall(sz) => write!(f, "GLB of {sz} cannot hold one element"),
            ConfigError::ZeroBandwidth => write!(f, "off-chip bandwidth must be nonzero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Accelerator specification, mirroring the paper's inputs (Figure 4):
/// operations per cycle, data width, GLB size, and off-chip bandwidth,
/// plus the PE-array geometry used by the systolic compute model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Systolic array rows (16 in the paper).
    pub pe_rows: usize,
    /// Systolic array columns (16 in the paper).
    pub pe_cols: usize,
    /// Peak operations per cycle. A multiply-accumulate is 2 OPs, so the
    /// paper's 16×16 array is rated at 512 OPs (Section 4).
    pub ops_per_cycle: u64,
    /// Element width of all data types.
    pub data_width: DataWidth,
    /// Unified on-chip Global Buffer capacity. For the proposed scheme this
    /// is the *whole* on-chip pool (no separate double-buffer space).
    pub glb: ByteSize,
    /// Off-chip memory bandwidth in **bytes** per cycle. The paper fixes
    /// 16 elements/cycle at 8-bit width, i.e. 16 bytes/cycle.
    pub dram_bytes_per_cycle: u64,
}

impl AcceleratorConfig {
    /// The paper's experimental setup (Section 4): 16×16 PEs, 512 OPs/cycle,
    /// 8-bit data, 16 bytes/cycle off-chip bandwidth, caller-chosen GLB.
    pub fn paper_default(glb: ByteSize) -> Self {
        AcceleratorConfig {
            pe_rows: 16,
            pe_cols: 16,
            ops_per_cycle: 512,
            data_width: DataWidth::W8,
            glb,
            dram_bytes_per_cycle: 16,
        }
    }

    /// The full set of paper configurations: one per GLB size in
    /// [`GLB_SIZES_KB`].
    pub fn paper_sweep() -> Vec<Self> {
        GLB_SIZES_KB
            .iter()
            .map(|&kb| Self::paper_default(ByteSize::from_kb(kb)))
            .collect()
    }

    /// Same accelerator with a different data width (Figure 7 sweep).
    pub fn with_data_width(mut self, width: DataWidth) -> Self {
        self.data_width = width;
        self
    }

    /// Same accelerator with a different GLB capacity.
    pub fn with_glb(mut self, glb: ByteSize) -> Self {
        self.glb = glb;
        self
    }

    /// Multiply-accumulate throughput: one MAC takes two cycles' worth of
    /// OPs ("the number of MAC operations is half the number of OPs").
    #[inline]
    pub fn macs_per_cycle(&self) -> u64 {
        self.ops_per_cycle / 2
    }

    /// GLB capacity in elements at the configured data width.
    #[inline]
    pub fn glb_elements(&self) -> u64 {
        self.glb.elements(self.data_width)
    }

    /// Off-chip bandwidth in elements per cycle (floor; the interface is a
    /// fixed number of bytes wide, so wider elements transfer more slowly).
    #[inline]
    pub fn dram_elements_per_cycle(&self) -> u64 {
        (self.dram_bytes_per_cycle / self.data_width.bytes()).max(1)
    }

    /// Cycles to transfer `elements` over the off-chip interface (ceiling).
    #[inline]
    pub fn transfer_cycles(&self, elements: u64) -> u64 {
        elements.div_ceil(self.dram_elements_per_cycle())
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pe_rows == 0 || self.pe_cols == 0 {
            return Err(ConfigError::EmptyPeArray);
        }
        if self.ops_per_cycle == 0 || !self.ops_per_cycle.is_multiple_of(2) {
            return Err(ConfigError::BadOpsPerCycle(self.ops_per_cycle));
        }
        if self.glb.bytes() < self.data_width.bytes() {
            return Err(ConfigError::GlbTooSmall(self.glb));
        }
        if self.dram_bytes_per_cycle == 0 {
            return Err(ConfigError::ZeroBandwidth);
        }
        Ok(())
    }

    /// Start building a custom configuration from the paper defaults.
    pub fn builder() -> AcceleratorConfigBuilder {
        AcceleratorConfigBuilder::default()
    }
}

/// Builder for [`AcceleratorConfig`], starting from the paper defaults.
#[derive(Debug, Clone)]
pub struct AcceleratorConfigBuilder {
    cfg: AcceleratorConfig,
}

impl Default for AcceleratorConfigBuilder {
    fn default() -> Self {
        AcceleratorConfigBuilder {
            cfg: AcceleratorConfig::paper_default(ByteSize::from_kb(256)),
        }
    }
}

impl AcceleratorConfigBuilder {
    /// Set the PE array dimensions (and derive OPs/cycle from them).
    pub fn pe_array(mut self, rows: usize, cols: usize) -> Self {
        self.cfg.pe_rows = rows;
        self.cfg.pe_cols = cols;
        // Keep OPs consistent with the array unless overridden later:
        // each PE performs one MAC (2 OPs) per cycle.
        self.cfg.ops_per_cycle = (rows * cols * 2) as u64;
        self
    }

    /// Override the compute throughput in operations per cycle.
    pub fn ops_per_cycle(mut self, ops: u64) -> Self {
        self.cfg.ops_per_cycle = ops;
        self
    }

    /// Set the element data width.
    pub fn data_width(mut self, width: DataWidth) -> Self {
        self.cfg.data_width = width;
        self
    }

    /// Set the Global Buffer capacity.
    pub fn glb(mut self, glb: ByteSize) -> Self {
        self.cfg.glb = glb;
        self
    }

    /// Set the off-chip memory bandwidth in bytes per cycle.
    pub fn dram_bytes_per_cycle(mut self, bytes: u64) -> Self {
        self.cfg.dram_bytes_per_cycle = bytes;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<AcceleratorConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_4() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        assert_eq!(acc.pe_rows, 16);
        assert_eq!(acc.pe_cols, 16);
        assert_eq!(acc.ops_per_cycle, 512);
        assert_eq!(acc.macs_per_cycle(), 256);
        assert_eq!(acc.data_width, DataWidth::W8);
        assert_eq!(acc.dram_elements_per_cycle(), 16);
        acc.validate().unwrap();
    }

    #[test]
    fn paper_sweep_has_five_sizes() {
        let sweep = AcceleratorConfig::paper_sweep();
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0].glb, ByteSize::from_kb(64));
        assert_eq!(sweep[4].glb, ByteSize::from_mb(1));
    }

    #[test]
    fn wider_elements_reduce_element_bandwidth() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        assert_eq!(acc.dram_elements_per_cycle(), 16);
        assert_eq!(
            acc.with_data_width(DataWidth::W16)
                .dram_elements_per_cycle(),
            8
        );
        assert_eq!(
            acc.with_data_width(DataWidth::W32)
                .dram_elements_per_cycle(),
            4
        );
    }

    #[test]
    fn wider_elements_reduce_glb_elements() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        assert_eq!(acc.glb_elements(), 65536);
        assert_eq!(acc.with_data_width(DataWidth::W32).glb_elements(), 16384);
    }

    #[test]
    fn transfer_cycles_rounds_up() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        assert_eq!(acc.transfer_cycles(0), 0);
        assert_eq!(acc.transfer_cycles(1), 1);
        assert_eq!(acc.transfer_cycles(16), 1);
        assert_eq!(acc.transfer_cycles(17), 2);
    }

    #[test]
    fn builder_keeps_ops_consistent_with_array() {
        let acc = AcceleratorConfig::builder()
            .pe_array(8, 8)
            .glb(ByteSize::from_kb(32))
            .build()
            .unwrap();
        assert_eq!(acc.ops_per_cycle, 128);
        assert_eq!(acc.macs_per_cycle(), 64);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        acc.pe_rows = 0;
        assert_eq!(acc.validate(), Err(ConfigError::EmptyPeArray));

        let mut acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        acc.ops_per_cycle = 3;
        assert!(matches!(
            acc.validate(),
            Err(ConfigError::BadOpsPerCycle(3))
        ));

        let mut acc = AcceleratorConfig::paper_default(ByteSize(0));
        acc.glb = ByteSize(0);
        assert!(matches!(acc.validate(), Err(ConfigError::GlbTooSmall(_))));

        let mut acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        acc.dram_bytes_per_cycle = 0;
        assert_eq!(acc.validate(), Err(ConfigError::ZeroBandwidth));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ConfigError::BadOpsPerCycle(3);
        assert!(e.to_string().contains('3'));
    }
}
