//! Accelerator specification types.
//!
//! The memory-management technique of the paper is parameterized by a small
//! set of accelerator characteristics (Section 3.3, "accelerator
//! specifications"): the compute throughput in operations per cycle, the
//! element data width, the Global Buffer (GLB) capacity, and the off-chip
//! memory bandwidth. This crate provides those types plus the size
//! arithmetic (bytes vs. elements) used everywhere else in the workspace.
//!
//! # Example
//!
//! ```
//! use smm_arch::{AcceleratorConfig, ByteSize, DataWidth};
//!
//! let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
//! assert_eq!(acc.macs_per_cycle(), 256);
//! assert_eq!(acc.glb.elements(acc.data_width), 64 * 1024);
//! // 16 bytes/cycle at 8-bit data means 16 elements per cycle.
//! assert_eq!(acc.dram_elements_per_cycle(), 16);
//! ```

#![warn(missing_docs)]

mod config;
mod size;
mod width;

pub use config::{AcceleratorConfig, AcceleratorConfigBuilder, ConfigError, GLB_SIZES_KB};
pub use size::ByteSize;
pub use width::DataWidth;
