use serde::{Deserialize, Serialize};
use std::fmt;

/// Element data width used by the accelerator datapath and buffers.
///
/// The paper evaluates 8-bit elements by default (Section 4) and sweeps
/// 8/16/32-bit widths in Figure 7. Width affects how many elements fit in
/// the GLB and how many elements the fixed byte-bandwidth DRAM interface
/// moves per cycle.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub enum DataWidth {
    /// 8-bit elements (the paper's default).
    #[default]
    W8,
    /// 16-bit elements.
    W16,
    /// 32-bit elements (Figure 7's most memory-hungry configuration).
    W32,
}

impl DataWidth {
    /// All widths in the Figure 7 sweep, narrowest first.
    pub const ALL: [DataWidth; 3] = [DataWidth::W8, DataWidth::W16, DataWidth::W32];

    /// Width of one element in bits.
    #[inline]
    pub const fn bits(self) -> u64 {
        match self {
            DataWidth::W8 => 8,
            DataWidth::W16 => 16,
            DataWidth::W32 => 32,
        }
    }

    /// Width of one element in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.bits() / 8
    }

    /// Parse from a bit count.
    pub fn from_bits(bits: u64) -> Option<Self> {
        match bits {
            8 => Some(DataWidth::W8),
            16 => Some(DataWidth::W16),
            32 => Some(DataWidth::W32),
            _ => None,
        }
    }
}

impl fmt::Display for DataWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_bytes_agree() {
        for w in DataWidth::ALL {
            assert_eq!(w.bits(), w.bytes() * 8);
        }
    }

    #[test]
    fn from_bits_round_trips() {
        for w in DataWidth::ALL {
            assert_eq!(DataWidth::from_bits(w.bits()), Some(w));
        }
        assert_eq!(DataWidth::from_bits(12), None);
        assert_eq!(DataWidth::from_bits(0), None);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(DataWidth::default(), DataWidth::W8);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(DataWidth::W16.to_string(), "16-bit");
    }

    #[test]
    fn widths_are_ordered() {
        assert!(DataWidth::W8 < DataWidth::W16);
        assert!(DataWidth::W16 < DataWidth::W32);
    }
}
