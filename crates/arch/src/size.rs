use crate::DataWidth;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A memory capacity or data volume in bytes.
///
/// All capacity constraints in the paper (Eq. 1 and Eq. 2) compare data
/// volumes against the GLB size; keeping the unit in the type avoids the
/// classic bytes-vs-elements mixups when the data width is not 8 bits.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from kilobytes (1 kB = 1024 bytes, as in the paper's
    /// 64 kB … 1024 kB sweep).
    #[inline]
    pub const fn from_kb(kb: u64) -> Self {
        ByteSize(kb * 1024)
    }

    /// Construct from megabytes.
    #[inline]
    pub const fn from_mb(mb: u64) -> Self {
        ByteSize(mb * 1024 * 1024)
    }

    /// Construct from a number of elements at the given data width.
    #[inline]
    pub fn from_elements(elements: u64, width: DataWidth) -> Self {
        ByteSize(elements * width.bytes())
    }

    /// Raw byte count.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Size in (fractional) kilobytes; handy for paper-style tables.
    #[inline]
    pub fn kb(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Size in (fractional) megabytes; Figure 5's y-axis unit.
    #[inline]
    pub fn mb(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// How many elements of `width` fit in this capacity (floor).
    #[inline]
    pub fn elements(self, width: DataWidth) -> u64 {
        self.0 / width.bytes()
    }

    /// Saturating subtraction, for "space left over" computations.
    #[inline]
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Integer division of capacities, e.g. halving for double buffering.
    #[inline]
    pub const fn halved(self) -> ByteSize {
        ByteSize(self.0 / 2)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 && self.0.is_multiple_of(1024 * 1024) {
            write!(f, "{}MB", self.0 / (1024 * 1024))
        } else if self.0 >= 1024 {
            write!(f, "{:.1}kB", self.kb())
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn kb_and_mb_constructors() {
        assert_eq!(ByteSize::from_kb(64).bytes(), 65536);
        assert_eq!(ByteSize::from_mb(1), ByteSize::from_kb(1024));
    }

    #[test]
    fn element_round_trip_8bit() {
        let s = ByteSize::from_elements(1000, DataWidth::W8);
        assert_eq!(s.bytes(), 1000);
        assert_eq!(s.elements(DataWidth::W8), 1000);
    }

    #[test]
    fn element_round_trip_32bit() {
        let s = ByteSize::from_elements(1000, DataWidth::W32);
        assert_eq!(s.bytes(), 4000);
        assert_eq!(s.elements(DataWidth::W32), 1000);
    }

    #[test]
    fn halved_is_double_buffer_partition() {
        assert_eq!(ByteSize::from_kb(64).halved(), ByteSize::from_kb(32));
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(ByteSize(512).to_string(), "512B");
        assert_eq!(ByteSize::from_kb(64).to_string(), "64.0kB");
        assert_eq!(ByteSize::from_mb(2).to_string(), "2MB");
    }

    #[test]
    fn sum_of_tiles() {
        let total: ByteSize = [ByteSize(10), ByteSize(20), ByteSize(12)].into_iter().sum();
        assert_eq!(total, ByteSize(42));
    }

    proptest! {
        #[test]
        fn elements_bytes_inverse(n in 0u64..1_000_000, w in prop::sample::select(&DataWidth::ALL)) {
            let s = ByteSize::from_elements(n, w);
            prop_assert_eq!(s.elements(w), n);
        }

        #[test]
        fn saturating_sub_never_underflows(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let d = ByteSize(a).saturating_sub(ByteSize(b));
            prop_assert_eq!(d.bytes(), a.saturating_sub(b));
        }
    }
}
