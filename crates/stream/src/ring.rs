//! A bounded single-producer/single-consumer ring.
//!
//! This is the event channel between one reactor shard (or worker
//! thread) and the stream collector. The design constraints come from
//! the serve hot path:
//!
//! - **never block**: a full ring drops the event and bumps a counter —
//!   the request path must not stall on analytics;
//! - **no locks on push**: one atomic load, one slot write, one atomic
//!   store. The producer side is wait-free;
//! - **exactly one producer and one consumer**: enforced by ownership —
//!   [`spsc`] returns a ([`Producer`], [`Consumer`]) pair and neither
//!   half is `Clone`. Push and pop take `&mut self`.
//!
//! The algorithm is the classic Lamport queue: monotonically increasing
//! `head` (consumer) and `tail` (producer) indices into a power-of-two
//! slot array, `tail - head` occupancy, Release stores pairing with
//! Acquire loads so the slot contents are published before the index
//! that makes them visible.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

struct Shared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: AtomicUsize,
    /// Next slot the producer will write. Written only by the producer.
    tail: AtomicUsize,
    /// Events rejected because the ring was full. Written only by the
    /// producer; Relaxed — a monotone statistic, never used to publish.
    dropped: AtomicU64,
}

// SAFETY: the slot array is shared between exactly two threads; every
// slot is written by the producer strictly before the Release store of
// `tail` that makes it visible, and read by the consumer strictly after
// the Acquire load that observed it, so no slot is ever accessed from
// both sides at once.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both halves are gone, so plain loads are sufficient; drop any
        // events still in flight.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            let slot = self.slots[i & self.mask].get();
            // SAFETY: slots in [head, tail) hold initialized values that
            // nobody else can touch anymore.
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// The push half of an SPSC ring; see [`spsc`]. Not `Clone` — single
/// producer by construction.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The pop half of an SPSC ring; see [`spsc`]. Not `Clone` — single
/// consumer by construction.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded SPSC ring holding at most `capacity` events
/// (rounded up to a power of two, minimum 2).
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        dropped: AtomicU64::new(0),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

impl<T: Send> Producer<T> {
    /// Push one event. Returns `false` (and counts a drop) when the
    /// ring is full; never blocks.
    pub fn push(&mut self, value: T) -> bool {
        let s = &*self.shared;
        // Relaxed on tail: only this thread writes it.
        let tail = s.tail.load(Ordering::Relaxed);
        // Acquire on head pairs with the consumer's Release in `pop`,
        // guaranteeing the consumer is done with the slot we reuse.
        let head = s.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > s.mask {
            s.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // SAFETY: occupancy < capacity, so slot `tail` is free and only
        // this producer writes it.
        unsafe { (*s.slots[tail & s.mask].get()).write(value) };
        // Release publishes the slot write to the consumer's Acquire
        // load of `tail`.
        s.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Events dropped so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }
}

impl<T: Send> Consumer<T> {
    /// Pop one event, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        // Relaxed on head: only this thread writes it.
        let head = s.head.load(Ordering::Relaxed);
        // Acquire pairs with the producer's Release store of `tail`.
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: head < tail, so the slot holds an initialized value
        // the producer published before the tail store we observed.
        let value = unsafe { (*s.slots[head & s.mask].get()).assume_init_read() };
        // Release hands the now-empty slot back to the producer.
        s.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Drain everything currently visible into `f`; returns the number
    /// of events drained.
    pub fn drain(&mut self, mut f: impl FnMut(T)) -> usize {
        let mut n = 0;
        while let Some(v) = self.pop() {
            f(v);
            n += 1;
        }
        n
    }

    /// Events dropped so far on the producer side because the ring was
    /// full.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        for i in 0..4 {
            assert!(tx.push(i));
        }
        assert!(!tx.push(99), "ring holds exactly its capacity");
        assert_eq!(tx.dropped(), 1);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        // Space freed by the consumer is reusable.
        assert!(tx.push(5));
        assert_eq!(rx.pop(), Some(5));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (mut tx, mut rx) = spsc::<u8>(5);
        for i in 0..8 {
            assert!(tx.push(i), "capacity 5 rounds up to 8");
        }
        assert!(!tx.push(8));
        assert_eq!(rx.drain(|_| {}), 8);
    }

    #[test]
    fn drops_in_flight_values_cleanly() {
        // A ring holding owned values is dropped with events still
        // queued; Drop must free them (checked by Arc strong counts).
        let marker = Arc::new(());
        let (mut tx, rx) = spsc::<Arc<()>>(8);
        for _ in 0..5 {
            assert!(tx.push(Arc::clone(&marker)));
        }
        assert_eq!(Arc::strong_count(&marker), 6);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn cross_thread_stream_arrives_in_order() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = spsc::<u64>(256);
        let producer = thread::spawn(move || {
            let mut sent = 0u64;
            for i in 0..N {
                while !tx.push(i) {
                    std::hint::spin_loop();
                }
                sent += 1;
            }
            sent
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        assert_eq!(producer.join().unwrap(), N);
    }

    #[test]
    fn lossy_cross_thread_stream_preserves_subsequence() {
        // Without producer-side spinning the ring drops under pressure;
        // whatever arrives must still be an increasing subsequence and
        // received + dropped must account for every push.
        const N: u64 = 50_000;
        let (mut tx, mut rx) = spsc::<u64>(64);
        let producer = thread::spawn(move || {
            let mut pushed = 0u64;
            for i in 0..N {
                if tx.push(i) {
                    pushed += 1;
                }
            }
            (pushed, tx.dropped())
        });
        let mut received = 0u64;
        let mut last: Option<u64> = None;
        loop {
            if let Some(v) = rx.pop() {
                if let Some(prev) = last {
                    assert!(v > prev, "{v} after {prev}");
                }
                last = Some(v);
                received += 1;
            } else if producer.is_finished() {
                received += rx.drain(|v| {
                    if let Some(prev) = last {
                        assert!(v > prev, "{v} after {prev}");
                    }
                    last = Some(v);
                }) as u64;
                break;
            } else {
                std::hint::spin_loop();
            }
        }
        let (pushed, dropped) = producer.join().unwrap();
        assert_eq!(pushed + dropped, N);
        assert_eq!(received, pushed);
    }
}
