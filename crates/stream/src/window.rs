//! Watermark-driven tumbling and sliding windows.
//!
//! # Semantics
//!
//! Windows are intervals `[s, s + width)` in **event time** (the
//! microsecond timestamps carried by [`StreamEvent`]), with starts at
//! multiples of `slide_us`; `width_us` must be a multiple of
//! `slide_us`, so a window is a run of `width / slide` **panes** of
//! `slide_us` each. `slide == width` gives tumbling windows, `slide <
//! width` overlapping sliding windows. The engine opens at the first
//! event it sees: windows before that event's pane are never created.
//!
//! The **watermark** is the engine's claim that no event older than it
//! will still arrive: `watermark = max(observed event time, injected
//! processing time) - lateness_us`. A window closes — its aggregate is
//! emitted, exactly once, in start order — when the watermark passes
//! its end. Events older than the oldest open window are **late**:
//! counted and dropped, never retro-applied to an emitted window (the
//! aggregates a closed window reported are final).
//!
//! Out-of-order events *within* the allowed lateness land in the right
//! pane and are indistinguishable from in-order arrival, which is the
//! property the brute-force-replay proptest in `tests/` pins down.
//!
//! Aggregation is per **cell** (see [`crate::CellRegistry`]): arrival
//! counts, the hit/miss/shed/deadline/error outcome mix, and service
//! latency as sum/max plus a power-of-two histogram for quantiles.

use crate::event::{EventKind, StreamEvent};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Number of power-of-two latency buckets: bucket 0 holds `0`, bucket
/// `i >= 1` holds `[2^(i-1), 2^i)` microseconds; the last bucket
/// saturates (≈ 33 s and beyond).
pub const LAT_BUCKETS: usize = 26;

/// Window geometry and lateness tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Window width in microseconds.
    pub width_us: u64,
    /// Slide between window starts; `== width_us` for tumbling
    /// windows. Must divide `width_us`.
    pub slide_us: u64,
    /// Allowed lateness: the watermark trails the newest observed
    /// timestamp by this much, so out-of-order events up to this far
    /// behind still land in open windows.
    pub lateness_us: u64,
    /// Emit windows that contain no events (useful for gap-free
    /// charts; the serving layer leaves this off).
    pub emit_empty: bool,
}

impl WindowConfig {
    /// A tumbling-window config with the given width and lateness.
    pub fn tumbling(width_us: u64, lateness_us: u64) -> Self {
        WindowConfig {
            width_us,
            slide_us: width_us,
            lateness_us,
            emit_empty: false,
        }
    }

    /// A sliding-window config.
    pub fn sliding(width_us: u64, slide_us: u64, lateness_us: u64) -> Self {
        WindowConfig {
            width_us,
            slide_us,
            lateness_us,
            emit_empty: false,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.slide_us == 0 || self.width_us == 0 {
            return Err("window width and slide must be positive".into());
        }
        if self.width_us % self.slide_us != 0 {
            return Err(format!(
                "window width {}us must be a multiple of the slide {}us",
                self.width_us, self.slide_us
            ));
        }
        Ok(())
    }
}

/// Per-cell aggregate over one window (or one pane, internally).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CellAgg {
    /// Total events (every outcome).
    pub events: u64,
    /// Cache hits answered inline on the reactor.
    pub hit_inline: u64,
    /// Cache hits discovered by a worker.
    pub hit_worker: u64,
    /// Planned-from-scratch misses.
    pub misses: u64,
    /// Sheds by the static queue bound.
    pub shed_static: u64,
    /// Sheds by the adaptive controller.
    pub shed_adaptive: u64,
    /// Sheds by predicted-miss-cost admission.
    pub shed_predicted: u64,
    /// Deadline expirations.
    pub deadline: u64,
    /// Errors (parse/resolve/plan/verify).
    pub errors: u64,
    /// Sum of observed service latencies (hits and misses only), µs.
    pub service_sum_us: u64,
    /// Largest observed service latency, µs.
    pub service_max_us: u64,
    /// Number of latency observations behind the sum/max/histogram.
    pub service_count: u64,
    /// Power-of-two latency histogram; see [`LAT_BUCKETS`].
    pub lat_buckets: [u32; LAT_BUCKETS],
}

fn lat_bucket(us: u32) -> usize {
    if us == 0 {
        0
    } else {
        ((32 - us.leading_zeros()) as usize).min(LAT_BUCKETS - 1)
    }
}

impl CellAgg {
    /// Fold one event into the aggregate.
    pub fn observe(&mut self, ev: &StreamEvent) {
        self.events += 1;
        let served = match ev.kind {
            EventKind::HitInline => {
                self.hit_inline += 1;
                true
            }
            EventKind::HitWorker => {
                self.hit_worker += 1;
                true
            }
            EventKind::Miss => {
                self.misses += 1;
                true
            }
            EventKind::ShedStatic => {
                self.shed_static += 1;
                false
            }
            EventKind::ShedAdaptive => {
                self.shed_adaptive += 1;
                false
            }
            EventKind::ShedPredicted => {
                self.shed_predicted += 1;
                false
            }
            EventKind::Deadline => {
                self.deadline += 1;
                false
            }
            EventKind::Error => {
                self.errors += 1;
                false
            }
        };
        if served {
            self.service_sum_us += u64::from(ev.service_us);
            self.service_max_us = self.service_max_us.max(u64::from(ev.service_us));
            self.service_count += 1;
            self.lat_buckets[lat_bucket(ev.service_us)] += 1;
        }
    }

    /// Merge another aggregate into this one (pane → window roll-up,
    /// fleet-level aggregation).
    pub fn merge(&mut self, other: &CellAgg) {
        self.events += other.events;
        self.hit_inline += other.hit_inline;
        self.hit_worker += other.hit_worker;
        self.misses += other.misses;
        self.shed_static += other.shed_static;
        self.shed_adaptive += other.shed_adaptive;
        self.shed_predicted += other.shed_predicted;
        self.deadline += other.deadline;
        self.errors += other.errors;
        self.service_sum_us += other.service_sum_us;
        self.service_max_us = self.service_max_us.max(other.service_max_us);
        self.service_count += other.service_count;
        for (a, b) in self.lat_buckets.iter_mut().zip(other.lat_buckets.iter()) {
            *a += b;
        }
    }

    /// Total cache hits (inline + worker).
    pub fn hits(&self) -> u64 {
        self.hit_inline + self.hit_worker
    }

    /// Total sheds (static + adaptive + predicted).
    pub fn shed(&self) -> u64 {
        self.shed_static + self.shed_adaptive + self.shed_predicted
    }

    /// Latency quantile estimate from the power-of-two histogram:
    /// the inclusive upper bound of the bucket containing the `q`-th
    /// observation (`q` in `[0, 1]`), or 0 with no observations.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.service_count == 0 {
            return 0;
        }
        let rank = ((q * self.service_count as f64).ceil() as u64).clamp(1, self.service_count);
        let mut seen = 0u64;
        for (i, &n) in self.lat_buckets.iter().enumerate() {
            seen += u64::from(n);
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.service_max_us
    }
}

/// One pane (`slide_us` of event time): the unit of storage windows are
/// assembled from.
#[derive(Default)]
struct Pane {
    cells: HashMap<u32, CellAgg>,
}

/// A closed window's final aggregate.
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    /// Inclusive start of the window, µs of event time.
    pub start_us: u64,
    /// Exclusive end of the window.
    pub end_us: u64,
    /// Aggregate over every cell.
    pub total: CellAgg,
    /// Per-cell aggregates, busiest first (ties by cell id).
    pub cells: Vec<(u32, CellAgg)>,
}

/// Engine counters, exposed through `stats stream`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Events accepted into panes.
    pub events: u64,
    /// Events dropped as too late.
    pub late_events: u64,
    /// Windows emitted.
    pub windows_closed: u64,
    /// Current watermark, µs of event time.
    pub watermark_us: u64,
    /// Panes currently buffered.
    pub open_panes: usize,
}

/// The windowing engine: feed it events (and processing-time ticks via
/// [`advance_to`](Self::advance_to)), take closed windows out with
/// [`take_closed`](Self::take_closed).
pub struct WindowEngine {
    cfg: WindowConfig,
    /// Pane start → pane; keys are multiples of `slide_us`, all
    /// `>= next_close`.
    panes: BTreeMap<u64, Pane>,
    /// Start of the next window to close; meaningful once `origin` is.
    next_close: u64,
    /// First pane the engine opened at; `None` before any event.
    origin: Option<u64>,
    watermark_us: u64,
    events: u64,
    late_events: u64,
    windows_closed: u64,
    closed: VecDeque<WindowSnapshot>,
}

/// Closed windows the caller has not collected are capped at this many;
/// beyond it the oldest are dropped (the store, not the engine, is the
/// intended retention layer).
const MAX_PENDING_CLOSED: usize = 4096;

impl WindowEngine {
    /// Build an engine, validating the config.
    pub fn new(cfg: WindowConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(WindowEngine {
            cfg,
            panes: BTreeMap::new(),
            next_close: 0,
            origin: None,
            watermark_us: 0,
            events: 0,
            late_events: 0,
            windows_closed: 0,
            closed: VecDeque::new(),
        })
    }

    /// The engine's config.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    fn align(&self, ts: u64) -> u64 {
        ts - ts % self.cfg.slide_us
    }

    /// Feed one event. Late events (older than the oldest open window)
    /// are counted and dropped; everything else lands in its pane.
    /// Windows whose end the watermark has passed are closed.
    pub fn push(&mut self, ev: &StreamEvent) {
        let pane_start = self.align(ev.ts_us);
        if self.origin.is_none() {
            self.origin = Some(pane_start);
            self.next_close = pane_start;
        }
        if pane_start < self.next_close {
            self.late_events += 1;
        } else {
            self.events += 1;
            self.panes
                .entry(pane_start)
                .or_default()
                .cells
                .entry(ev.cell)
                .or_default()
                .observe(ev);
        }
        self.advance_watermark(ev.ts_us);
    }

    /// Inject processing time: lets windows close during quiet periods
    /// (the collector calls this with wall-clock-derived time, which
    /// coincides with event time for an in-process tap).
    pub fn advance_to(&mut self, now_us: u64) {
        self.advance_watermark(now_us);
    }

    fn advance_watermark(&mut self, observed_us: u64) {
        let candidate = observed_us.saturating_sub(self.cfg.lateness_us);
        if candidate > self.watermark_us {
            self.watermark_us = candidate;
        }
        self.close_due();
    }

    fn close_due(&mut self) {
        if self.origin.is_none() {
            return;
        }
        let (width, slide) = (self.cfg.width_us, self.cfg.slide_us);
        while self.next_close.saturating_add(width) <= self.watermark_us {
            let start = self.next_close;
            let end = start.saturating_add(width);
            // Skip-ahead for runs of empty windows (suppressed output):
            // jump straight to the first window that can contain the
            // oldest buffered pane, or past everything closable. Only
            // *closable* windows may be skipped — an empty-but-open
            // window can still receive events within the lateness
            // bound, so `next_close` must never pass the watermark's
            // close frontier.
            if !self.cfg.emit_empty {
                // First start that is NOT yet closable; `wm >= width`
                // is implied by the loop condition.
                let first_open = self.align(self.watermark_us - width).saturating_add(slide);
                let jump = match self.panes.keys().next() {
                    Some(&p0) if p0 >= end => (p0 + slide).saturating_sub(width).min(first_open),
                    Some(_) => start,
                    None => first_open,
                };
                if jump > start {
                    self.next_close = jump;
                    continue;
                }
            }
            let mut total = CellAgg::default();
            let mut cells: HashMap<u32, CellAgg> = HashMap::new();
            for (_, pane) in self.panes.range(start..end) {
                for (&cell, agg) in &pane.cells {
                    total.merge(agg);
                    cells.entry(cell).or_default().merge(agg);
                }
            }
            self.next_close = start + slide;
            // Panes older than every still-open window are done.
            while let Some(entry) = self.panes.first_entry() {
                if *entry.key() < self.next_close {
                    entry.remove();
                } else {
                    break;
                }
            }
            if total.events == 0 && !self.cfg.emit_empty {
                continue;
            }
            let mut cells: Vec<(u32, CellAgg)> = cells.into_iter().collect();
            cells.sort_by(|a, b| b.1.events.cmp(&a.1.events).then(a.0.cmp(&b.0)));
            self.windows_closed += 1;
            if self.closed.len() == MAX_PENDING_CLOSED {
                self.closed.pop_front();
            }
            self.closed.push_back(WindowSnapshot {
                start_us: start,
                end_us: end,
                total,
                cells,
            });
        }
    }

    /// Take every window closed since the last call, oldest first.
    pub fn take_closed(&mut self) -> Vec<WindowSnapshot> {
        self.closed.drain(..).collect()
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            events: self.events,
            late_events: self.late_events,
            windows_closed: self.windows_closed,
            watermark_us: self.watermark_us,
            open_panes: self.panes.len(),
        }
    }
}

/// Bounded retention of closed windows, shared between the collector
/// (producer) and the `stats stream` / pre-warming consumers.
pub struct WindowStore {
    cap: usize,
    inner: Mutex<VecDeque<Arc<WindowSnapshot>>>,
}

impl WindowStore {
    /// A store retaining at most `cap` windows (oldest evicted first).
    pub fn new(cap: usize) -> Self {
        WindowStore {
            cap: cap.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Append a closed window.
    pub fn push(&self, snap: WindowSnapshot) {
        let mut inner = self.inner.lock();
        if inner.len() == self.cap {
            inner.pop_front();
        }
        inner.push_back(Arc::new(snap));
    }

    /// The most recently closed window.
    pub fn latest(&self) -> Option<Arc<WindowSnapshot>> {
        self.inner.lock().back().cloned()
    }

    /// Up to `n` most recent windows, newest first.
    pub fn recent(&self, n: usize) -> Vec<Arc<WindowSnapshot>> {
        self.inner.lock().iter().rev().take(n).cloned().collect()
    }

    /// Number of windows retained.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no window has closed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-cell event totals and the event-time span they cover, over
    /// the `horizon` most recent windows — the ranking input for the
    /// pre-warming controller. Overlapping (sliding) windows would
    /// double-count here, so this is meant for the tumbling store.
    pub fn cell_activity(&self, horizon: usize) -> (HashMap<u32, CellAgg>, u64) {
        let mut by_cell: HashMap<u32, CellAgg> = HashMap::new();
        let mut span_us = 0u64;
        for snap in self.recent(horizon) {
            span_us += snap.end_us - snap.start_us;
            for (cell, agg) in &snap.cells {
                by_cell.entry(*cell).or_default().merge(agg);
            }
        }
        (by_cell, span_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_us: u64, cell: u32, kind: EventKind, service_us: u32) -> StreamEvent {
        StreamEvent {
            ts_us,
            cell,
            kind,
            service_us,
        }
    }

    #[test]
    fn config_validation_rejects_bad_geometry() {
        assert!(WindowEngine::new(WindowConfig::tumbling(0, 0)).is_err());
        assert!(WindowEngine::new(WindowConfig::sliding(1000, 0, 0)).is_err());
        assert!(WindowEngine::new(WindowConfig::sliding(1000, 300, 0)).is_err());
        assert!(WindowEngine::new(WindowConfig::sliding(1000, 250, 0)).is_ok());
    }

    #[test]
    fn latency_buckets_and_quantiles() {
        let mut agg = CellAgg::default();
        for us in [0u32, 1, 1, 2, 100, 1000, 10_000] {
            agg.observe(&ev(0, 0, EventKind::Miss, us));
        }
        assert_eq!(agg.service_count, 7);
        assert_eq!(agg.service_max_us, 10_000);
        assert_eq!(agg.quantile_us(0.0), 0);
        // p50 → 4th of 7 observations → value 2 → bucket [2,4) → 3.
        assert_eq!(agg.quantile_us(0.5), 3);
        // p99 → 7th observation → 10_000 → bucket [8192,16384).
        assert_eq!(agg.quantile_us(0.99), 16_383);
        assert_eq!(CellAgg::default().quantile_us(0.99), 0);
    }

    #[test]
    fn tumbling_boundary_is_half_open() {
        let mut eng = WindowEngine::new(WindowConfig::tumbling(1000, 0)).unwrap();
        // 999 is in [0,1000); 1000 starts the next window.
        eng.push(&ev(999, 1, EventKind::Miss, 10));
        eng.push(&ev(1000, 1, EventKind::HitInline, 1));
        eng.advance_to(2000);
        let wins = eng.take_closed();
        assert_eq!(wins.len(), 2);
        assert_eq!((wins[0].start_us, wins[0].end_us), (0, 1000));
        assert_eq!(wins[0].total.misses, 1);
        assert_eq!(wins[0].total.hits(), 0);
        assert_eq!((wins[1].start_us, wins[1].end_us), (1000, 2000));
        assert_eq!(wins[1].total.hit_inline, 1);
    }

    #[test]
    fn sliding_windows_overlap_and_each_sees_the_event() {
        let mut eng = WindowEngine::new(WindowConfig::sliding(1000, 250, 0)).unwrap();
        eng.push(&ev(0, 7, EventKind::Miss, 5));
        eng.push(&ev(900, 7, EventKind::Miss, 5));
        eng.advance_to(3000);
        let wins = eng.take_closed();
        // Windows [0,1000) [250,1250) [500,1500) [750,1750) contain at
        // least one of the events; later ones are empty and suppressed.
        assert_eq!(wins.len(), 4);
        assert_eq!(wins[0].total.events, 2);
        for w in &wins[1..] {
            assert_eq!(w.total.events, 1, "{}..{}", w.start_us, w.end_us);
            assert_eq!(w.cells[0].0, 7);
        }
    }

    #[test]
    fn watermark_holds_windows_open_for_allowed_lateness() {
        let mut eng = WindowEngine::new(WindowConfig::tumbling(1000, 500)).unwrap();
        eng.push(&ev(100, 1, EventKind::Miss, 1));
        // Watermark = 1400 - 500 = 900 < 1000: window still open.
        eng.push(&ev(1400, 1, EventKind::Miss, 1));
        assert!(eng.take_closed().is_empty());
        // An out-of-order event within lateness lands in the open window.
        eng.push(&ev(800, 1, EventKind::HitInline, 1));
        // Watermark = 1501 - 500 > 1000 closes [0,1000) with both events.
        eng.push(&ev(1501, 1, EventKind::Miss, 1));
        let wins = eng.take_closed();
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].total.events, 2);
        assert_eq!(wins[0].total.hit_inline, 1);
        assert_eq!(eng.stats().late_events, 0);
    }

    #[test]
    fn events_behind_the_watermark_are_dropped_and_counted() {
        let mut eng = WindowEngine::new(WindowConfig::tumbling(1000, 0)).unwrap();
        eng.push(&ev(100, 1, EventKind::Miss, 1));
        eng.push(&ev(2500, 1, EventKind::Miss, 1));
        // [0,1000) closed; an event for it is late.
        eng.push(&ev(900, 1, EventKind::Miss, 1));
        let stats = eng.stats();
        assert_eq!(stats.late_events, 1);
        assert_eq!(stats.events, 2);
        let wins = eng.take_closed();
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].total.events, 1, "late event must not reopen it");
    }

    #[test]
    fn empty_windows_suppressed_by_default_emitted_on_request() {
        let run = |emit_empty: bool| {
            let mut cfg = WindowConfig::tumbling(1000, 0);
            cfg.emit_empty = emit_empty;
            let mut eng = WindowEngine::new(cfg).unwrap();
            eng.push(&ev(500, 1, EventKind::Miss, 1));
            eng.push(&ev(3500, 1, EventKind::Miss, 1));
            eng.advance_to(4000);
            eng.take_closed()
        };
        let suppressed = run(false);
        assert_eq!(suppressed.len(), 2);
        assert_eq!(suppressed[0].start_us, 0);
        assert_eq!(suppressed[1].start_us, 3000);
        let emitted = run(true);
        assert_eq!(emitted.len(), 4, "gap windows [1000,2000) and [2000,3000)");
        assert_eq!(emitted[1].total.events, 0);
        assert_eq!(emitted[2].total.events, 0);
    }

    #[test]
    fn engine_opens_at_the_first_event_not_at_time_zero() {
        let mut eng = WindowEngine::new(WindowConfig::tumbling(1000, 0)).unwrap();
        let t0 = 1_000_000_000; // far from zero: no million empty closes
        eng.push(&ev(t0 + 123, 1, EventKind::Miss, 1));
        eng.advance_to(t0 + 5000);
        let wins = eng.take_closed();
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].start_us, t0);
        // An event from before the origin is late by definition.
        eng.push(&ev(42, 1, EventKind::Miss, 1));
        assert_eq!(eng.stats().late_events, 1);
    }

    #[test]
    fn idle_gap_skip_ahead_matches_slide_alignment() {
        // After a long quiet period the engine jumps instead of
        // iterating; the windows around the gap must still be exact.
        let mut eng = WindowEngine::new(WindowConfig::sliding(1000, 250, 0)).unwrap();
        eng.push(&ev(100, 1, EventKind::Miss, 1));
        eng.push(&ev(10_000_250, 2, EventKind::Miss, 1));
        eng.advance_to(10_002_000);
        let wins = eng.take_closed();
        // The engine opened at pane 0, so exactly one window holds the
        // first event; four sliding windows cover the second; the ~40k
        // windows in the gap are skipped, not iterated.
        assert!(wins.iter().all(|w| w.total.events == 1));
        let firsts = wins.iter().filter(|w| w.cells[0].0 == 1).count();
        let seconds = wins.iter().filter(|w| w.cells[0].0 == 2).count();
        assert_eq!(firsts, 1);
        assert_eq!(seconds, 4);
        // The windows holding the second event start where expected.
        let w2 = wins.iter().find(|w| w.cells[0].0 == 2).unwrap();
        assert_eq!(w2.start_us, 9_999_500);
    }

    #[test]
    fn store_retains_bounded_history_and_ranks_activity() {
        let store = WindowStore::new(2);
        for i in 0..3u64 {
            let mut total = CellAgg::default();
            let mut cell = CellAgg::default();
            for _ in 0..=i {
                let e = ev(i * 1000, 9, EventKind::Miss, 1);
                total.observe(&e);
                cell.observe(&e);
            }
            store.push(WindowSnapshot {
                start_us: i * 1000,
                end_us: (i + 1) * 1000,
                total,
                cells: vec![(9, cell)],
            });
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.latest().unwrap().start_us, 2000);
        let (by_cell, span) = store.cell_activity(10);
        assert_eq!(span, 2000, "only two windows retained");
        assert_eq!(by_cell[&9].events, 2 + 3);
    }
}
