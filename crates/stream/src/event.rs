//! Stream events and the cell registry.
//!
//! Every request the serving layer classifies becomes exactly one
//! [`StreamEvent`]: a timestamp, an outcome [`EventKind`], the observed
//! service latency, and a compact **cell** id. A cell is the unit the
//! windows aggregate over — one (model, GLB size, tenant) combination —
//! interned once into a `u32` by the [`CellRegistry`] so the event
//! itself is a small `Copy` struct that travels through the SPSC rings
//! without allocation.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// How a request was ultimately classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Cache hit answered inline on the reactor shard.
    HitInline,
    /// Cache hit discovered by a worker after the queue hop.
    HitWorker,
    /// Cache miss planned from scratch (the expensive path).
    Miss,
    /// Shed by the static queue-capacity bound.
    ShedStatic,
    /// Shed by the EWMA adaptive admission controller.
    ShedAdaptive,
    /// Shed because the predicted miss cost could not meet the
    /// request's deadline (the stream-fed admission decision).
    ShedPredicted,
    /// Deadline expired before or during planning.
    Deadline,
    /// Parse, resolve, planning, or verification error.
    Error,
}

impl EventKind {
    /// All kinds, in rendering order.
    pub const ALL: [EventKind; 8] = [
        EventKind::HitInline,
        EventKind::HitWorker,
        EventKind::Miss,
        EventKind::ShedStatic,
        EventKind::ShedAdaptive,
        EventKind::ShedPredicted,
        EventKind::Deadline,
        EventKind::Error,
    ];

    /// Stable lowercase name (used in JSON views and tests).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::HitInline => "hit_inline",
            EventKind::HitWorker => "hit_worker",
            EventKind::Miss => "miss",
            EventKind::ShedStatic => "shed_static",
            EventKind::ShedAdaptive => "shed_adaptive",
            EventKind::ShedPredicted => "shed_predicted",
            EventKind::Deadline => "deadline",
            EventKind::Error => "error",
        }
    }
}

/// One classified request, as it travels shard → collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEvent {
    /// Event time in microseconds since the tap's epoch.
    pub ts_us: u64,
    /// Interned cell id; see [`CellRegistry`].
    pub cell: u32,
    /// Outcome classification.
    pub kind: EventKind,
    /// Observed service latency in microseconds (0 when the outcome
    /// has no meaningful latency, e.g. sheds).
    pub service_us: u32,
}

/// The identity of one traffic cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellMeta {
    /// Model (zoo name) or topology label.
    pub model: String,
    /// Requested GLB size in kB.
    pub glb_kb: u64,
    /// Tenant label; `"-"` when the request carried none.
    pub tenant: String,
}

impl CellMeta {
    /// The `model@glb` (or `model@glb/tenant`) display key used in
    /// reports and `smm top`.
    pub fn display_key(&self) -> String {
        if self.tenant == "-" {
            format!("{}@{}", self.model, self.glb_kb)
        } else {
            format!("{}@{}/{}", self.model, self.glb_kb, self.tenant)
        }
    }
}

/// FNV-1a 64 over the cell identity, for the read-mostly intern map.
fn cell_hash(model: &str, glb_kb: u64, tenant: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash = (hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(model.as_bytes());
    eat(&[0xff]);
    eat(&glb_kb.to_le_bytes());
    eat(&[0xff]);
    eat(tenant.as_bytes());
    hash
}

#[derive(Default)]
struct RegistryInner {
    /// hash → candidate cell ids (a Vec to survive the astronomically
    /// unlikely 64-bit collision; candidates are verified by string
    /// comparison against `cells`).
    by_hash: HashMap<u64, Vec<u32>>,
    cells: Vec<Arc<CellMeta>>,
}

/// Interns (model, GLB, tenant) triples into dense `u32` cell ids.
///
/// `intern` is called on the serve hot path, so the common case — the
/// cell already exists — takes one read lock and one hash lookup; only
/// the first request of a never-seen cell takes the write lock.
#[derive(Default)]
pub struct CellRegistry {
    inner: RwLock<RegistryInner>,
}

impl CellRegistry {
    /// Intern a cell, returning its id (stable for the registry's
    /// lifetime).
    pub fn intern(&self, model: &str, glb_kb: u64, tenant: &str) -> u32 {
        let hash = cell_hash(model, glb_kb, tenant);
        let matches =
            |meta: &CellMeta| meta.glb_kb == glb_kb && meta.model == model && meta.tenant == tenant;
        {
            let inner = self.inner.read();
            if let Some(ids) = inner.by_hash.get(&hash) {
                for &id in ids {
                    if matches(&inner.cells[id as usize]) {
                        return id;
                    }
                }
            }
        }
        let mut inner = self.inner.write();
        // Re-check under the write lock: another thread may have
        // interned the same cell between the two lock acquisitions.
        if let Some(ids) = inner.by_hash.get(&hash) {
            for &id in ids {
                if matches(&inner.cells[id as usize]) {
                    return id;
                }
            }
        }
        let id = inner.cells.len() as u32;
        inner.cells.push(Arc::new(CellMeta {
            model: model.to_string(),
            glb_kb,
            tenant: tenant.to_string(),
        }));
        inner.by_hash.entry(hash).or_default().push(id);
        id
    }

    /// The identity behind a cell id, if it was ever interned.
    pub fn meta(&self, id: u32) -> Option<Arc<CellMeta>> {
        self.inner.read().cells.get(id as usize).cloned()
    }

    /// Number of distinct cells seen.
    pub fn len(&self) -> usize {
        self.inner.read().cells.len()
    }

    /// Whether no cell was interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_distinguishes_every_component() {
        let reg = CellRegistry::default();
        let a = reg.intern("resnet18", 64, "-");
        assert_eq!(reg.intern("resnet18", 64, "-"), a);
        let b = reg.intern("resnet18", 128, "-");
        let c = reg.intern("mobilenet", 64, "-");
        let d = reg.intern("resnet18", 64, "acme");
        assert_eq!(
            [a, b, c, d]
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            4
        );
        assert_eq!(reg.len(), 4);
        let meta = reg.meta(d).unwrap();
        assert_eq!(meta.display_key(), "resnet18@64/acme");
        assert_eq!(reg.meta(a).unwrap().display_key(), "resnet18@64");
        assert!(reg.meta(99).is_none());
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let reg = Arc::new(CellRegistry::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    (0..64)
                        .map(|i| reg.intern("m", i % 8, "-"))
                        .collect::<Vec<u32>>()
                })
            })
            .collect();
        let results: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(reg.len(), 8);
    }
}
