//! # smm-stream — windowed traffic analytics for the serving stack
//!
//! The serving layer (smm-serve, PR 9's sharded reactor) classifies
//! every request — inline hit, worker hit, planned miss, shed,
//! deadline, error — but until this crate those classifications only
//! ticked counters: the system could see *that* it was loaded, never
//! *what* the workload mix was. smm-stream turns the request stream
//! into queryable, windowed aggregates and gives the serving layer the
//! raw material for closed-loop decisions:
//!
//! - [`ring::spsc`] — the bounded single-producer/single-consumer event
//!   channel each reactor shard (and planning worker) writes into.
//!   Wait-free on the push side, drop-counted when full: analytics can
//!   lose events, the hot path can never stall on them.
//! - [`StreamEvent`] / [`CellRegistry`] — one compact `Copy` event per
//!   classified request, tagged with an interned **cell** id (model ×
//!   GLB size × tenant), the unit all aggregation keys on.
//! - [`WindowEngine`] — watermark-driven tumbling and sliding windows
//!   in event time, with allowed lateness, late-event accounting, and
//!   per-cell aggregates (arrivals, outcome mix, latency histogram).
//! - [`WindowStore`] — bounded retention of closed windows, the query
//!   surface for the `stats stream` protocol verb, `smm top`, and the
//!   pre-warming controller in smm-serve.
//!
//! The windowing semantics are documented in [`window`] and pinned by
//! deterministic boundary tests plus a brute-force-replay proptest in
//! `tests/window_semantics.rs`.

#![warn(missing_docs)]

pub mod event;
pub mod ring;
pub mod window;

pub use event::{CellMeta, CellRegistry, EventKind, StreamEvent};
pub use ring::{spsc, Consumer, Producer};
pub use window::{
    CellAgg, EngineStats, WindowConfig, WindowEngine, WindowSnapshot, WindowStore, LAT_BUCKETS,
};
