//! Window-semantics acceptance suite.
//!
//! The deterministic tests pin the boundary conditions an operator
//! reasons about (half-open intervals, sliding overlap, allowed
//! lateness, empty windows); the proptest proves the incremental,
//! pane-based engine equals a brute-force replay — "for each window,
//! scan the whole event log" — over arbitrary event streams whose
//! disorder stays within the allowed lateness.

use smm_stream::{CellAgg, EventKind, StreamEvent, WindowConfig, WindowEngine, WindowSnapshot};

fn ev(ts_us: u64, cell: u32, kind: EventKind, service_us: u32) -> StreamEvent {
    StreamEvent {
        ts_us,
        cell,
        kind,
        service_us,
    }
}

/// Brute-force reference: aggregate every window `[s, s+width)` by
/// scanning the full event log, for starts from the first event's pane
/// while the window closes under the final watermark.
fn brute_force(
    events: &[StreamEvent],
    cfg: WindowConfig,
    final_watermark: u64,
) -> Vec<WindowSnapshot> {
    let Some(first) = events.first() else {
        return Vec::new();
    };
    let align = |ts: u64| ts - ts % cfg.slide_us;
    let mut out = Vec::new();
    let mut start = align(first.ts_us);
    while start + cfg.width_us <= final_watermark {
        let mut total = CellAgg::default();
        let mut cells: std::collections::HashMap<u32, CellAgg> = std::collections::HashMap::new();
        for e in events {
            if e.ts_us >= start && e.ts_us < start + cfg.width_us {
                total.observe(e);
                cells.entry(e.cell).or_default().observe(e);
            }
        }
        if total.events > 0 || cfg.emit_empty {
            let mut cells: Vec<(u32, CellAgg)> = cells.into_iter().collect();
            cells.sort_by(|a, b| b.1.events.cmp(&a.1.events).then(a.0.cmp(&b.0)));
            out.push(WindowSnapshot {
                start_us: start,
                end_us: start + cfg.width_us,
                total,
                cells,
            });
        }
        start += cfg.slide_us;
    }
    out
}

#[test]
fn tumbling_windows_partition_time_without_overlap() {
    let mut eng = WindowEngine::new(WindowConfig::tumbling(1_000, 0)).unwrap();
    for t in (0..10_000).step_by(100) {
        eng.push(&ev(t, 0, EventKind::HitInline, 50));
    }
    eng.advance_to(10_000);
    let wins = eng.take_closed();
    assert_eq!(wins.len(), 10);
    let mut covered = 0;
    for (i, w) in wins.iter().enumerate() {
        assert_eq!(w.start_us, i as u64 * 1_000);
        assert_eq!(w.end_us - w.start_us, 1_000);
        assert_eq!(w.total.events, 10, "10 events per 1ms window");
        covered += w.total.events;
    }
    assert_eq!(covered, 100, "every event lands in exactly one window");
}

#[test]
fn sliding_windows_count_each_event_in_every_covering_window() {
    let cfg = WindowConfig {
        width_us: 1_000,
        slide_us: 250,
        lateness_us: 0,
        emit_empty: true,
    };
    let mut eng = WindowEngine::new(cfg).unwrap();
    // One event; every closed window overlapping it must see it.
    eng.push(&ev(1_000, 3, EventKind::Miss, 10));
    eng.advance_to(5_000);
    let wins = eng.take_closed();
    let holding: Vec<u64> = wins
        .iter()
        .filter(|w| w.total.events == 1)
        .map(|w| w.start_us)
        .collect();
    assert_eq!(holding, vec![1_000], "engine origin is the event's pane");

    // A second engine whose origin precedes the event: all four
    // covering windows report it.
    let mut eng = WindowEngine::new(cfg).unwrap();
    eng.push(&ev(0, 9, EventKind::Miss, 10));
    eng.push(&ev(1_000, 3, EventKind::Miss, 10));
    eng.advance_to(5_000);
    let wins = eng.take_closed();
    let holding: Vec<u64> = wins
        .iter()
        .filter(|w| w.cells.iter().any(|(c, _)| *c == 3))
        .map(|w| w.start_us)
        .collect();
    assert_eq!(holding, vec![250, 500, 750, 1_000]);
}

#[test]
fn window_close_requires_watermark_past_end() {
    let mut eng = WindowEngine::new(WindowConfig::tumbling(1_000, 200)).unwrap();
    eng.push(&ev(500, 0, EventKind::Miss, 1));
    // advance_to(1100) → watermark 900: not yet.
    eng.advance_to(1_100);
    assert!(eng.take_closed().is_empty());
    // advance_to(1199) → watermark 999: still open (end is exclusive).
    eng.advance_to(1_199);
    assert!(eng.take_closed().is_empty());
    eng.advance_to(1_200);
    assert_eq!(eng.take_closed().len(), 1, "watermark 1000 closes [0,1000)");
}

#[test]
fn late_events_never_mutate_closed_windows() {
    let mut eng = WindowEngine::new(WindowConfig::tumbling(1_000, 100)).unwrap();
    eng.push(&ev(100, 0, EventKind::Miss, 1));
    eng.advance_to(2_000);
    let first = eng.take_closed();
    assert_eq!(first.len(), 1);
    assert_eq!(first[0].total.events, 1);
    // 500 is a whole window behind the watermark: late.
    eng.push(&ev(500, 0, EventKind::Miss, 1));
    // 1950 is within lateness of the 1900 watermark: accepted.
    eng.push(&ev(1_950, 0, EventKind::Miss, 1));
    let stats = eng.stats();
    assert_eq!(stats.late_events, 1);
    assert_eq!(stats.events, 2);
    eng.advance_to(3_000);
    let rest = eng.take_closed();
    assert_eq!(rest.len(), 1);
    assert_eq!(rest[0].start_us, 1_000);
    assert_eq!(rest[0].total.events, 1, "only the in-time event");
}

#[test]
fn empty_window_runs_are_emitted_exactly_when_asked() {
    for emit_empty in [false, true] {
        let mut cfg = WindowConfig::tumbling(100, 0);
        cfg.emit_empty = emit_empty;
        let mut eng = WindowEngine::new(cfg).unwrap();
        eng.push(&ev(50, 0, EventKind::Miss, 1));
        eng.push(&ev(1_250, 0, EventKind::Miss, 1));
        eng.advance_to(1_300);
        let wins = eng.take_closed();
        if emit_empty {
            assert_eq!(wins.len(), 13, "[0,100) .. [1200,1300), gaps included");
            assert_eq!(wins.iter().map(|w| w.total.events).sum::<u64>(), 2);
        } else {
            assert_eq!(wins.len(), 2);
            assert_eq!(wins[0].start_us, 0);
            assert_eq!(wins[1].start_us, 1_200);
        }
    }
}

#[test]
fn outcome_mix_and_latency_survive_pane_rollup() {
    // Events for one cell spread over the panes of one sliding window.
    let cfg = WindowConfig::sliding(1_000, 250, 0);
    let mut eng = WindowEngine::new(cfg).unwrap();
    eng.push(&ev(0, 5, EventKind::HitInline, 100));
    eng.push(&ev(300, 5, EventKind::HitWorker, 200));
    eng.push(&ev(550, 5, EventKind::Miss, 10_000));
    eng.push(&ev(800, 5, EventKind::ShedAdaptive, 0));
    eng.push(&ev(900, 5, EventKind::Deadline, 0));
    eng.advance_to(10_000);
    let wins = eng.take_closed();
    let w = &wins[0];
    assert_eq!((w.start_us, w.end_us), (0, 1_000));
    let agg = &w.total;
    assert_eq!(agg.events, 5);
    assert_eq!(agg.hits(), 2);
    assert_eq!(agg.misses, 1);
    assert_eq!(agg.shed(), 1);
    assert_eq!(agg.deadline, 1);
    assert_eq!(agg.service_count, 3, "sheds/deadlines carry no latency");
    assert_eq!(agg.service_sum_us, 10_300);
    assert_eq!(agg.service_max_us, 10_000);
    assert!(agg.quantile_us(0.99) >= 8_191);
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

    /// The incremental engine and the brute-force replay agree on every
    /// closed window: same starts, same per-cell aggregates, same
    /// totals. Event streams are near-ordered (jitter ≤ lateness), so
    /// no event is late and the replay is a pure function of the log.
    #[test]
    fn window_aggregates_equal_brute_force_replay(
        seed in 0u64..10_000,
        n_events in 1usize..200,
        width_panes in 1u64..5,
        slide_us in 200u64..2_000,
        emit_empty in proptest::any::<bool>(),
    ) {
        let lateness_us = 1_000u64;
        let cfg = WindowConfig {
            width_us: width_panes * slide_us,
            slide_us,
            lateness_us,
            emit_empty,
        };
        // Deterministic pseudo-random event log: time advances by a
        // bounded stride, each event jittered backwards by at most the
        // allowed lateness.
        let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut now = 10_000u64;
        let mut log: Vec<StreamEvent> = Vec::with_capacity(n_events);
        for i in 0..n_events {
            now += next() % 3_000;
            // The first event carries maximal jitter, making its
            // timestamp a floor for the whole log: no later event can
            // fall before the engine's origin, so none can be late.
            let jitter = if i == 0 {
                lateness_us
            } else {
                next() % (lateness_us + 1)
            };
            let kind = EventKind::ALL[(next() % 8) as usize];
            log.push(ev(
                now.saturating_sub(jitter),
                (next() % 5) as u32,
                kind,
                (next() % 20_000) as u32,
            ));
        }

        let mut eng = WindowEngine::new(cfg).unwrap();
        for e in &log {
            eng.push(e);
        }
        let final_time = now + 10 * cfg.width_us;
        eng.advance_to(final_time);
        let got = eng.take_closed();
        let stats = eng.stats();
        proptest::prop_assert_eq!(stats.late_events, 0, "jitter ≤ lateness never drops");
        proptest::prop_assert_eq!(stats.events, log.len() as u64);

        let expect = brute_force(&log, cfg, final_time.saturating_sub(lateness_us));
        proptest::prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(expect.iter()) {
            proptest::prop_assert_eq!(g.start_us, e.start_us);
            proptest::prop_assert_eq!(g.end_us, e.end_us);
            proptest::prop_assert_eq!(&g.total, &e.total, "window {}", g.start_us);
            proptest::prop_assert_eq!(&g.cells, &e.cells, "window {}", g.start_us);
        }
    }
}
