//! The consistent-hash ring that assigns `PlanKey` ownership to nodes.
//!
//! Each node is expanded into `vnodes` virtual points on a 64-bit ring;
//! a key (hashed with [`smm_core::PlanKey::stable_hash64`], the
//! versioned wire hash) is owned by the first point clockwise from the
//! key's hash. Virtual nodes smooth the per-node share toward `1/N`,
//! and adding or removing one node only remaps the arcs that touch its
//! points — about `1/N` of the keyspace — which is what makes
//! warm-cache handoff affordable.
//!
//! # Wire contract
//!
//! Point placement is part of the fleet's wire contract: every router
//! and every tool that reasons about ownership must place node
//! `(id, vnode)` at `fmix64(FNV-1a64(len(id) as u64 LE ‖ id bytes ‖
//! vnode as u32 LE))`, where `fmix64` is the MurmurHash3 finalizer —
//! raw FNV-1a clusters badly over near-identical short inputs, and the
//! finalizer restores uniform point spacing. Key hashes come from
//! [`smm_core::PlanKey::stable_hash64`], which is itself pinned by
//! [`smm_core::KEY_HASH_VERSION`] and golden-vector tests. Change
//! either and rolling upgrades would silently split ownership; bump
//! the key-hash version instead.

/// Default virtual nodes per physical node. 128 keeps the max/mean
/// load ratio within ~1.3 for small fleets (see `tests/ring_props.rs`).
pub const DEFAULT_VNODES: u32 = 128;

/// An immutable consistent-hash ring over node identifiers.
///
/// Membership changes produce a *new* ring ([`with_node`](Self::with_node)
/// / [`without_node`](Self::without_node)); the router swaps rings
/// atomically only after warm handoff completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    vnodes: u32,
    /// Sorted, deduplicated node ids.
    nodes: Vec<String>,
    /// `(point hash, index into nodes)`, sorted by hash.
    points: Vec<(u64, u32)>,
}

/// FNV-1a 64 — same constants as the `PlanKey` encoder, applied to the
/// ring's point encoding.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The MurmurHash3 64-bit finalizer: full-avalanche bit mixing, so
/// points from near-identical inputs spread uniformly around the ring.
fn fmix64(mut z: u64) -> u64 {
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^= z >> 33;
    z = z.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

/// The documented point placement: length-prefixed node id, then the
/// vnode index, all little-endian, FNV-hashed and finalized.
fn point_hash(node: &str, vnode: u32) -> u64 {
    let mut buf = Vec::with_capacity(8 + node.len() + 4);
    buf.extend_from_slice(&(node.len() as u64).to_le_bytes());
    buf.extend_from_slice(node.as_bytes());
    buf.extend_from_slice(&vnode.to_le_bytes());
    fmix64(fnv1a(&buf))
}

impl HashRing {
    /// Build a ring over `nodes` with `vnodes` virtual points each.
    /// Node ids are deduplicated; `vnodes` is clamped to at least 1.
    pub fn new<I, S>(nodes: I, vnodes: u32) -> HashRing
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut ids: Vec<String> = nodes.into_iter().map(Into::into).collect();
        ids.sort();
        ids.dedup();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(ids.len() * vnodes as usize);
        for (i, id) in ids.iter().enumerate() {
            for v in 0..vnodes {
                points.push((point_hash(id, v), i as u32));
            }
        }
        points.sort_unstable();
        HashRing {
            vnodes,
            nodes: ids,
            points,
        }
    }

    /// The member node ids, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Virtual points per node.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: &str) -> bool {
        self.nodes.iter().any(|n| n == node)
    }

    /// A new ring with `node` added (no-op clone if already present).
    pub fn with_node(&self, node: &str) -> HashRing {
        HashRing::new(
            self.nodes.iter().map(String::as_str).chain([node]),
            self.vnodes,
        )
    }

    /// A new ring with `node` removed (no-op clone if absent).
    pub fn without_node(&self, node: &str) -> HashRing {
        HashRing::new(
            self.nodes.iter().filter(|n| *n != node).map(String::as_str),
            self.vnodes,
        )
    }

    /// The node owning `key_hash`, or `None` on an empty ring.
    pub fn owner(&self, key_hash: u64) -> Option<&str> {
        self.replica_start(key_hash)
            .map(|i| self.nodes[self.points[i].1 as usize].as_str())
    }

    /// All distinct nodes in ring order starting at the owner: the
    /// retry sequence for `key_hash`. The owner comes first; each
    /// subsequent entry is the next distinct node clockwise, so a
    /// failed forward retries on the node that would own the key if
    /// its predecessors left.
    pub fn replicas(&self, key_hash: u64) -> Vec<&str> {
        let Some(start) = self.replica_start(key_hash) else {
            return Vec::new();
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::with_capacity(self.nodes.len());
        for off in 0..self.points.len() {
            let (_, node_idx) = self.points[(start + off) % self.points.len()];
            if !seen[node_idx as usize] {
                seen[node_idx as usize] = true;
                out.push(self.nodes[node_idx as usize].as_str());
                if out.len() == self.nodes.len() {
                    break;
                }
            }
        }
        out
    }

    /// Index into `points` of the first point clockwise from `key_hash`.
    fn replica_start(&self, key_hash: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let i = self.points.partition_point(|(h, _)| *h < key_hash);
        Some(if i == self.points.len() { 0 } else { i })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_and_order_independent() {
        let a = HashRing::new(["n1", "n2", "n3"], 64);
        let b = HashRing::new(["n3", "n1", "n2", "n1"], 64);
        assert_eq!(a, b, "construction order and duplicates must not matter");
        for k in 0..1000u64 {
            let h = k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            assert_eq!(a.owner(h), b.owner(h));
        }
    }

    #[test]
    fn replicas_start_at_owner_and_cover_all_nodes_distinctly() {
        let ring = HashRing::new(["n1", "n2", "n3"], 64);
        for k in 0..100u64 {
            let h = k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let reps = ring.replicas(h);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], ring.owner(h).unwrap());
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn empty_and_single_node_rings() {
        let empty = HashRing::new(Vec::<String>::new(), 128);
        assert_eq!(empty.owner(42), None);
        assert!(empty.replicas(42).is_empty());
        let one = HashRing::new(["solo"], 128);
        assert_eq!(one.owner(42), Some("solo"));
        assert_eq!(one.replicas(42), vec!["solo"]);
    }

    #[test]
    fn membership_ops_add_and_remove() {
        let ring = HashRing::new(["n1", "n2"], 32);
        let grown = ring.with_node("n3");
        assert!(grown.contains("n3"));
        assert_eq!(grown.nodes().len(), 3);
        let shrunk = grown.without_node("n1");
        assert!(!shrunk.contains("n1"));
        assert_eq!(shrunk.nodes().len(), 2);
        // Adding an existing node or removing an absent one is a no-op.
        assert_eq!(ring.with_node("n2"), ring);
        assert_eq!(ring.without_node("nx"), ring);
    }

    #[test]
    fn point_placement_is_pinned() {
        // Golden vector for the ring's half of the wire contract (the
        // key half lives in smm-core's golden-vector test). If this
        // constant moves, rolling upgrades would split ownership.
        assert_eq!(point_hash("node-a", 7), GOLDEN_POINT_NODE_A_7);
    }

    const GOLDEN_POINT_NODE_A_7: u64 = 0x023a_60de_d87c_39b0;
}
