//! # smm-fleet — sharded multi-node planning
//!
//! A planning fleet is N independent `smm serve` nodes behind one
//! router. The router shards requests by the versioned
//! [`smm_core::PlanKey`] wire hash on a consistent-hash [`HashRing`],
//! so each node's plan cache holds a distinct `1/N` slice of the
//! keyspace — aggregate cache capacity scales with the fleet instead of
//! being replicated N times.
//!
//! The pieces:
//!
//! - [`ring::HashRing`] — virtual-node consistent hashing; ownership
//!   placement is part of the wire contract (golden-vector pinned).
//! - [`backend::Backend`] — one downstream node: pooled connections
//!   plus consecutive-failure health state.
//! - [`router::Router`] — the JSON-lines front-end: key-affine
//!   forwarding, bounded retry on the next replica, ejection and
//!   probe-based re-admission, and warm-cache handoff on membership
//!   changes (`fleet_join` / `fleet_leave`).
//!
//! Because nodes cache *rendered* plan JSON and plans migrate as exact
//! byte strings, a fleet answers every request with bytes identical to
//! what a single node would have produced. `docs/FLEET.md` walks
//! through the protocol and the operational model.

#![warn(missing_docs)]

pub mod backend;
pub mod ring;
pub mod router;

pub use backend::Backend;
pub use ring::{HashRing, DEFAULT_VNODES};
pub use router::{FleetCountersSnapshot, Router, RouterConfig, RouterHandle};
