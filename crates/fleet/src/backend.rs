//! One planning node as seen from the router: a pooled TCP connection
//! set plus health state.
//!
//! Health is a consecutive-failure counter: `eject_after` failures in a
//! row mark the backend unhealthy and routing skips it until the
//! router's probe thread gets a `pong` back and re-admits it. Successes
//! reset the counter, so a backend only gets ejected by a *streak* of
//! failures, not by occasional timeouts under load.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

/// Cap on idle pooled connections per backend; extras are dropped on
/// check-in rather than held open.
const POOL_CAP: usize = 16;

/// A single downstream planning node.
pub struct Backend {
    addr: String,
    pool: Mutex<Vec<TcpStream>>,
    consecutive_failures: AtomicU32,
    healthy: AtomicBool,
    /// Requests routed here (successful forwards).
    routed: AtomicU64,
    /// Forwards whose response reported `"cache_hit":true`.
    hits: AtomicU64,
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend")
            .field("addr", &self.addr)
            .field("healthy", &self.is_healthy())
            .field("consecutive_failures", &self.consecutive_failures())
            .finish_non_exhaustive()
    }
}

impl Backend {
    /// A new, healthy backend with an empty connection pool.
    pub fn new(addr: impl Into<String>) -> Backend {
        Backend {
            addr: addr.into(),
            pool: Mutex::new(Vec::new()),
            consecutive_failures: AtomicU32::new(0),
            healthy: AtomicBool::new(true),
            routed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The node's `host:port` address (also its ring identity).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether routing currently considers this backend usable.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Current failure streak length.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures.load(Ordering::Relaxed)
    }

    /// Successful forwards routed here so far.
    pub fn routed_count(&self) -> u64 {
        self.routed.load(Ordering::Relaxed)
    }

    /// Forwards here that were served from the node's plan cache.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Record a successful forward for the per-node routing report.
    pub fn tally(&self, cache_hit: bool) {
        self.routed.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Send one request line and read one response line, reusing a
    /// pooled connection when available.
    ///
    /// A pooled connection that fails is retried once on a fresh one —
    /// the pooled stream may simply have been closed by the backend's
    /// idle side between requests, which is not a health signal. A
    /// failure on a *fresh* connection is reported to the caller, who
    /// decides whether it tips the backend into ejection.
    pub fn forward(&self, line: &str, timeout: Duration) -> Result<String, String> {
        if let Some(stream) = self.checkout() {
            // A stale pooled conn falls through to a fresh connection.
            if let Ok((resp, stream)) = Self::roundtrip(stream, line, timeout) {
                self.checkin(stream);
                return Ok(resp);
            }
        }
        let stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        match Self::roundtrip(stream, line, timeout) {
            Ok((resp, stream)) => {
                self.checkin(stream);
                Ok(resp)
            }
            Err(e) => Err(format!("forward to {}: {e}", self.addr)),
        }
    }

    /// Write `line`, read one line back. Consumes the stream and returns
    /// it only on success so failed streams never re-enter the pool.
    fn roundtrip(
        stream: TcpStream,
        line: &str,
        timeout: Duration,
    ) -> Result<(String, TcpStream), String> {
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| e.to_string())?;
        // One write per line with Nagle off: the split payload/"\n"
        // write pattern stalls ~40 ms against the node's delayed ACK.
        let _ = stream.set_nodelay(true);
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let mut msg = String::with_capacity(line.len() + 1);
        msg.push_str(line);
        msg.push('\n');
        writer
            .write_all(msg.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        let n = reader.read_line(&mut resp).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed before response".into());
        }
        while resp.ends_with('\n') || resp.ends_with('\r') {
            resp.pop();
        }
        Ok((resp, reader.into_inner()))
    }

    /// Note a successful exchange: the failure streak resets.
    pub fn on_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
    }

    /// Note a failed exchange. Returns `true` when this failure crossed
    /// `eject_after` and flipped the backend from healthy to ejected
    /// (so the caller counts the ejection exactly once).
    pub fn on_failure(&self, eject_after: u32) -> bool {
        let streak = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= eject_after {
            self.healthy.swap(false, Ordering::Relaxed)
        } else {
            false
        }
    }

    /// Re-admit after a successful probe: healthy again, streak cleared,
    /// stale pooled connections dropped. Returns `true` if the backend
    /// was actually unhealthy (so re-admissions are counted once).
    pub fn readmit(&self) -> bool {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        self.pool.lock().clear();
        !self.healthy.swap(true, Ordering::Relaxed)
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.pool.lock().pop()
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < POOL_CAP {
            pool.push(stream);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// A one-shot echo server that answers each line with a fixed reply.
    fn echo_server(reply: &'static str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    let mut stream = stream;
                    while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
                        writeln!(stream, "{reply}").unwrap();
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn forward_reuses_pooled_connections() {
        let addr = echo_server("{\"status\":\"ok\"}");
        let backend = Backend::new(addr);
        let t = Duration::from_secs(2);
        for _ in 0..3 {
            let resp = backend.forward("{\"op\":\"ping\"}", t).unwrap();
            assert_eq!(resp, "{\"status\":\"ok\"}");
        }
        assert_eq!(backend.pool.lock().len(), 1, "one pooled conn reused");
    }

    #[test]
    fn failure_streak_ejects_and_readmit_recovers() {
        let backend = Backend::new("127.0.0.1:1"); // nothing listens here
        assert!(backend
            .forward("{\"op\":\"ping\"}", Duration::from_millis(200))
            .is_err());
        assert!(!backend.on_failure(3));
        assert!(!backend.on_failure(3));
        assert!(backend.on_failure(3), "third strike flips to ejected");
        assert!(!backend.is_healthy());
        assert!(!backend.on_failure(3), "already ejected: no double count");
        assert!(backend.readmit());
        assert!(backend.is_healthy());
        assert_eq!(backend.consecutive_failures(), 0);
        assert!(!backend.readmit(), "already healthy: no double count");
    }
}
