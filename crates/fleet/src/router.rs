//! The fleet router: a JSON-lines front-end that shards plan requests
//! across backend planning nodes by consistent hash.
//!
//! The router speaks the *same* protocol as a single `smm serve` node
//! on both sides: clients talk to it exactly as they would to one node,
//! and it forwards the original request line verbatim to the chosen
//! backend. Two admin verbs exist only at the router:
//!
//! - `{"op":"fleet_join","node":"host:port"}` — probe the new node,
//!   warm its cache by migrating the plans it is about to own (pulled
//!   with `dump` from current owners, pushed with `migrate`), then
//!   flip the ring. Clients never see a cold-miss spike.
//! - `{"op":"fleet_leave","node":"host:port"}` — drain the leaving
//!   node's hottest plans to their new owners, then flip the ring and
//!   drop the node.
//!
//! Routing is key-affine: a request's [`smm_core::PlanKey`] is hashed
//! with the versioned wire hash and the owner comes from the
//! [`HashRing`]. On forward failure the router retries on the next
//! distinct replica (bounded by [`RouterConfig::retries`]); a backend
//! that fails [`RouterConfig::eject_after`] times in a row is ejected
//! and probed back to health by a background thread.
//!
//! The client-facing front-end runs on the **same sharded epoll
//! reactor** as a serve node ([`smm_serve::Reactor`]): connections are
//! pinned to an event-loop shard at accept, framed through reusable
//! per-connection buffers, and `ping`/`shutdown` answer inline on the
//! reactor. Verbs that must talk to backends (`plan`, `migrate`,
//! `stats`, `stream`, the admin verbs) are handed to a bounded **forwarder
//! pool** — blocking backend I/O never runs on a reactor thread — and
//! their responses return via the reactor's completion path.

use crate::backend::Backend;
use crate::ring::HashRing;
use smm_core::report::json_escape;
use smm_core::PlanKey;
use smm_obs::Counter;
use smm_serve::protocol::{self, Op};
use smm_serve::{
    BoundedQueue, Completion, LineHandler, Outcome, PushError, Reactor, ReactorConfig,
};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Bound on the request→key-hash memo before it is cleared wholesale.
const KEY_MEMO_CAP: usize = 4096;

/// Forwarder pool size: how many backend forwards can block
/// concurrently. Forwards are I/O-bound (the pool threads spend their
/// time parked in `connect`/`read`), so this is well above core count.
const FORWARDER_THREADS: usize = 32;

/// Bound on forwards waiting for a pool thread; beyond it plan
/// requests are shed and other verbs answer an overload error.
const FORWARD_QUEUE_CAP: usize = 1024;

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Initial backend node addresses (`host:port`). The address is
    /// also the node's ring identity.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: u32,
    /// Extra replicas tried after the owner fails (`2` → up to three
    /// distinct nodes see the request before it is shed).
    pub retries: u32,
    /// Consecutive forward failures before a backend is ejected.
    pub eject_after: u32,
    /// How often the probe thread pings ejected backends.
    pub probe_interval: Duration,
    /// Per-forward I/O timeout (connect, write, and read).
    pub forward_timeout: Duration,
    /// Max plans pulled per `dump` during membership handoff;
    /// `0` disables warm handoff entirely (cold joins/leaves).
    pub handoff_limit: u64,
    /// Enable the process-global observability collector on spawn.
    pub obs: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            vnodes: crate::ring::DEFAULT_VNODES,
            retries: 2,
            eject_after: 3,
            probe_interval: Duration::from_millis(500),
            forward_timeout: Duration::from_secs(30),
            handoff_limit: 256,
            obs: true,
        }
    }
}

/// Router-level counters: local mirrors of the `fleet.*` obs counters
/// so the `stats` op reports them even with the collector disabled.
#[derive(Debug, Default)]
struct FleetCounters {
    routed: AtomicU64,
    retries: AtomicU64,
    shed: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
    migrated_plans: AtomicU64,
    migrated_bytes: AtomicU64,
}

/// Tick a local counter mirror and its `fleet.*` obs counter together.
fn bump(local: &AtomicU64, counter: Counter, n: u64) {
    local.fetch_add(n, Ordering::Relaxed);
    smm_obs::add(counter, n);
}

/// A point-in-time copy of the router's fleet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCountersSnapshot {
    /// Successful forwards.
    pub routed: u64,
    /// Forward attempts beyond the first replica.
    pub retries: u64,
    /// Requests shed because every replica was unavailable.
    pub shed: u64,
    /// Backends ejected by a failure streak.
    pub ejections: u64,
    /// Ejected backends re-admitted by the probe thread.
    pub readmissions: u64,
    /// Plans migrated during membership handoff.
    pub migrated_plans: u64,
    /// Bytes of rendered plan JSON migrated during handoff.
    pub migrated_bytes: u64,
}

/// One request waiting for a forwarder-pool thread: the raw line to
/// forward plus the reactor completion that routes the response back.
struct ForwardJob {
    line: String,
    completion: Completion,
}

struct RouterShared {
    cfg: RouterConfig,
    ring: parking_lot::RwLock<HashRing>,
    backends: parking_lot::RwLock<HashMap<String, Arc<Backend>>>,
    /// Serializes membership changes so two concurrent joins cannot
    /// interleave their handoffs and ring flips.
    membership: parking_lot::Mutex<()>,
    /// Request-fields → key-hash memo, so repeat zoo-model requests skip
    /// network resolution on the routing hot path.
    key_memo: parking_lot::Mutex<HashMap<String, u64>>,
    /// Hand-off from the reactor to the forwarder pool.
    queue: BoundedQueue<ForwardJob>,
    counters: FleetCounters,
    /// Shared with the reactor: raising it starts the graceful drain.
    shutdown: Arc<AtomicBool>,
}

/// A running router. Dropping the handle does **not** stop it; call
/// [`stop`](Self::stop) and/or [`join`](Self::join).
pub struct RouterHandle {
    local_addr: SocketAddr,
    shared: Arc<RouterShared>,
    reactor: Option<Reactor>,
    forwarders: Vec<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

/// The fleet router; see the module docs for the protocol.
pub struct Router;

impl Router {
    /// Bind and start routing. Returns once the listener is live.
    pub fn spawn(cfg: RouterConfig) -> std::io::Result<RouterHandle> {
        if cfg.obs {
            smm_obs::set_enabled(true);
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let ring = HashRing::new(cfg.backends.iter().map(String::as_str), cfg.vnodes);
        let backends = cfg
            .backends
            .iter()
            .map(|a| (a.clone(), Arc::new(Backend::new(a.clone()))))
            .collect();
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(RouterShared {
            cfg,
            ring: parking_lot::RwLock::new(ring),
            backends: parking_lot::RwLock::new(backends),
            membership: parking_lot::Mutex::new(()),
            key_memo: parking_lot::Mutex::new(HashMap::new()),
            queue: BoundedQueue::new(FORWARD_QUEUE_CAP),
            counters: FleetCounters::default(),
            shutdown: Arc::clone(&shutdown),
        });

        let forwarders = (0..FORWARDER_THREADS)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("smm-fleet-fwd-{i}"))
                    .spawn(move || forward_loop(&shared))
                    .expect("spawn forwarder thread")
            })
            .collect();
        let prober = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("smm-fleet-prober".into())
                .spawn(move || prober_loop(&shared))
                .expect("spawn prober thread")
        };

        let handler: Arc<dyn LineHandler> = Arc::new(RouterLineHandler {
            shared: Arc::clone(&shared),
        });
        let reactor = Reactor::spawn(listener, &ReactorConfig::default(), handler, shutdown)?;

        Ok(RouterHandle {
            local_addr: reactor.local_addr(),
            shared,
            reactor: Some(reactor),
            forwarders,
            prober: Some(prober),
        })
    }
}

impl RouterHandle {
    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signal shutdown. Non-blocking; pair with [`join`](Self::join).
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Block until shutdown is signalled, then drain gracefully: the
    /// reactor flushes in-flight responses (in-flight forwards finish
    /// through the pool first), then the pool and prober are joined.
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            reactor.join();
        }
        self.shared.queue.close();
        for f in self.forwarders.drain(..) {
            let _ = f.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
    }

    /// The ring's current member node addresses, sorted.
    pub fn nodes(&self) -> Vec<String> {
        self.shared.ring.read().nodes().to_vec()
    }

    /// Add `node` to the fleet with warm handoff (see module docs).
    ///
    /// # Errors
    ///
    /// If the node is already a member or does not answer a probe ping.
    pub fn join_node(&self, node: &str) -> Result<(u64, u64), String> {
        fleet_join(&self.shared, node)
    }

    /// Remove `node` from the fleet, draining its hottest plans to
    /// their new owners first.
    ///
    /// # Errors
    ///
    /// If the node is not a member.
    pub fn leave_node(&self, node: &str) -> Result<(u64, u64), String> {
        fleet_leave(&self.shared, node)
    }

    /// A snapshot of the router's fleet counters.
    pub fn fleet_counters(&self) -> FleetCountersSnapshot {
        let c = &self.shared.counters;
        FleetCountersSnapshot {
            routed: c.routed.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            ejections: c.ejections.load(Ordering::Relaxed),
            readmissions: c.readmissions.load(Ordering::Relaxed),
            migrated_plans: c.migrated_plans.load(Ordering::Relaxed),
            migrated_bytes: c.migrated_bytes.load(Ordering::Relaxed),
        }
    }
}

fn prober_loop(shared: &Arc<RouterShared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        thread::sleep(shared.cfg.probe_interval.min(Duration::from_millis(250)));
        // Snapshot the ejected set outside the lock so probes (which
        // block on I/O) never hold it.
        let ejected: Vec<Arc<Backend>> = shared
            .backends
            .read()
            .values()
            .filter(|b| !b.is_healthy())
            .cloned()
            .collect();
        for backend in ejected {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let resp = backend.forward("{\"op\":\"ping\"}", shared.cfg.forward_timeout);
            if resp.is_ok_and(|r| r.contains("\"status\":\"ok\"")) && backend.readmit() {
                bump(&shared.counters.readmissions, Counter::FleetReadmissions, 1);
            }
        }
    }
}

/// The router-protocol [`LineHandler`] plugged into the reactor.
/// Anything that needs backend I/O defers to the forwarder pool; the
/// rest answers inline on the reactor shard.
struct RouterLineHandler {
    shared: Arc<RouterShared>,
}

impl LineHandler for RouterLineHandler {
    fn handle(&self, line: &str, reply: &mut String, completion: Completion) -> Outcome {
        let shared = &self.shared;
        // Admin verbs are router-only and unknown to the node protocol,
        // so they are recognized on the raw JSON before the strict
        // parse. They talk to backends → forwarder pool.
        if let Ok(v) = smm_obs::json::parse(line) {
            let op = match v.get("op") {
                Some(smm_obs::json::Value::String(s)) => s.clone(),
                _ => String::new(),
            };
            if op == "fleet_join" || op == "fleet_leave" {
                let id = match v.get("id") {
                    Some(smm_obs::json::Value::String(s)) => Some(s.clone()),
                    _ => None,
                };
                return defer_to_pool(shared, line, &id, false, reply, completion);
            }
        }
        let req = match protocol::parse_request(line) {
            Ok(req) => req,
            Err(msg) => {
                protocol::error_response_into(reply, &None, &msg);
                return Outcome::Replied;
            }
        };
        match req.op {
            Op::Ping => {
                protocol::pong_response_into(reply, &req.id);
                Outcome::Replied
            }
            Op::Shutdown => {
                protocol::shutdown_response_into(reply, &req.id);
                shared.shutdown.store(true, Ordering::Release);
                Outcome::RepliedClose
            }
            Op::Dump => {
                protocol::error_response_into(
                    reply,
                    &req.id,
                    "dump is a node-level op; send it to a backend directly",
                );
                Outcome::Replied
            }
            Op::Stats | Op::Stream | Op::Migrate => {
                defer_to_pool(shared, line, &req.id, false, reply, completion)
            }
            Op::Plan => defer_to_pool(shared, line, &req.id, true, reply, completion),
        }
    }
}

/// Hand one line to the forwarder pool. A full queue sheds plan
/// requests (counted like an all-replicas-down shed) and answers other
/// verbs with an overload error — the reactor never blocks.
// `&Option<String>` matches the `smm_serve::protocol` renderer
// signatures this forwards `id` into.
#[allow(clippy::ref_option)]
fn defer_to_pool(
    shared: &Arc<RouterShared>,
    line: &str,
    id: &Option<String>,
    is_plan: bool,
    reply: &mut String,
    completion: Completion,
) -> Outcome {
    let job = ForwardJob {
        line: line.to_string(),
        completion: completion.defer(),
    };
    match shared.queue.try_push(job) {
        Ok(()) => Outcome::Deferred,
        Err(PushError::Full(job)) => {
            let ForwardJob { completion, .. } = job;
            completion.cancel();
            if is_plan {
                bump(&shared.counters.shed, Counter::FleetShed, 1);
                protocol::shed_response_into(reply, id);
            } else {
                protocol::error_response_into(reply, id, "router forwarder queue is full");
            }
            Outcome::Replied
        }
        Err(PushError::Closed(job)) => {
            let ForwardJob { completion, .. } = job;
            completion.cancel();
            protocol::error_response_into(reply, id, "router is shutting down");
            Outcome::Replied
        }
    }
}

/// One forwarder-pool thread: pop, forward, fulfill.
fn forward_loop(shared: &Arc<RouterShared>) {
    while let Some(job) = shared.queue.pop() {
        let response = forward_line(&job.line, shared);
        job.completion.fulfill(response);
    }
}

/// Dispatch one deferred request line against the backends.
fn forward_line(line: &str, shared: &Arc<RouterShared>) -> String {
    if let Ok(v) = smm_obs::json::parse(line) {
        let op = match v.get("op") {
            Some(smm_obs::json::Value::String(s)) => s.clone(),
            _ => String::new(),
        };
        if op == "fleet_join" || op == "fleet_leave" {
            return handle_admin(&op, &v, shared);
        }
    }
    let req = match protocol::parse_request(line) {
        Ok(req) => req,
        Err(msg) => return protocol::error_response(&None, &msg),
    };
    match req.op {
        Op::Stats => fleet_stats(req.id.as_deref(), shared),
        Op::Stream => fleet_stream(line, &req, shared),
        Op::Migrate => route_migrate(line, &req, shared),
        Op::Plan => route_plan(line, &req, shared),
        // Inline verbs never reach the pool.
        Op::Ping | Op::Shutdown | Op::Dump => {
            protocol::error_response(&req.id, "internal: op should be answered on the reactor")
        }
    }
}

/// Route a plan request to its owner, retrying on the next distinct
/// replicas; shed only when every attempt fails.
fn route_plan(line: &str, req: &protocol::Request, shared: &Arc<RouterShared>) -> String {
    let key_hash = match key_hash_for(req, shared) {
        Ok(h) => h,
        Err(msg) => return protocol::error_response(&req.id, &msg),
    };
    let replicas: Vec<String> = {
        let ring = shared.ring.read();
        ring.replicas(key_hash)
            .into_iter()
            .map(str::to_owned)
            .collect()
    };
    let max_attempts = shared.cfg.retries as usize + 1;
    let mut attempt = 0usize;
    for addr in replicas {
        if attempt >= max_attempts {
            break;
        }
        let Some(backend) = shared.backends.read().get(&addr).cloned() else {
            continue;
        };
        if !backend.is_healthy() {
            continue;
        }
        if attempt > 0 {
            bump(&shared.counters.retries, Counter::FleetRetries, 1);
        }
        attempt += 1;
        match backend.forward(line, shared.cfg.forward_timeout) {
            Ok(resp) => {
                backend.on_success();
                backend.tally(resp.contains("\"cache_hit\":true"));
                bump(&shared.counters.routed, Counter::FleetRouted, 1);
                return tag_node(&resp, backend.addr());
            }
            Err(_) => {
                if backend.on_failure(shared.cfg.eject_after) {
                    bump(&shared.counters.ejections, Counter::FleetEjections, 1);
                }
            }
        }
    }
    bump(&shared.counters.shed, Counter::FleetShed, 1);
    protocol::shed_response(&req.id)
}

/// Route a `migrate` to the key's owner (used by external tooling that
/// wants to seed a fleet through the router).
fn route_migrate(line: &str, req: &protocol::Request, shared: &Arc<RouterShared>) -> String {
    let key_hex = req.key.as_deref().unwrap_or_default();
    let key = match PlanKey::from_stable_hex(key_hex) {
        Ok(k) => k,
        Err(msg) => return protocol::error_response(&req.id, &msg),
    };
    let owner = {
        let ring = shared.ring.read();
        ring.owner(key.stable_hash64()).map(str::to_owned)
    };
    let Some(owner) = owner else {
        return protocol::error_response(&req.id, "fleet has no members");
    };
    let Some(backend) = shared.backends.read().get(&owner).cloned() else {
        return protocol::error_response(&req.id, "ring/backend map out of sync");
    };
    match backend.forward(line, shared.cfg.forward_timeout) {
        Ok(resp) => {
            backend.on_success();
            resp
        }
        Err(msg) => {
            if backend.on_failure(shared.cfg.eject_after) {
                bump(&shared.counters.ejections, Counter::FleetEjections, 1);
            }
            protocol::error_response(&req.id, &msg)
        }
    }
}

/// Inject `"node":"<addr>"` right after the opening brace so clients
/// can attribute the response. The plan stays last, so byte-identity
/// checks that slice the `"plan":` suffix still hold.
fn tag_node(resp: &str, addr: &str) -> String {
    match resp.strip_prefix('{') {
        Some(rest) => format!("{{\"node\":\"{}\",{rest}", json_escape(addr)),
        None => resp.to_owned(),
    }
}

/// The versioned wire hash of the request's plan key, memoized on the
/// request's identifying fields so repeat requests skip network
/// resolution.
fn key_hash_for(req: &protocol::Request, shared: &Arc<RouterShared>) -> Result<u64, String> {
    let memo_key = req.model.as_ref().map(|model| {
        format!(
            "{model}|{}|{:?}|{:?}|{}|{}|{:?}",
            req.glb_kb, req.objective, req.scheme, req.prefetch, req.reuse, req.scheduler
        )
    });
    if let Some(k) = &memo_key {
        if let Some(h) = shared.key_memo.lock().get(k) {
            return Ok(*h);
        }
    }
    let spec = req.to_spec();
    let net = spec.resolve().map_err(|e| e.to_string())?;
    let hash = spec.cache_key(&net).stable_hash64();
    if let Some(k) = memo_key {
        let mut memo = shared.key_memo.lock();
        if memo.len() >= KEY_MEMO_CAP {
            memo.clear();
        }
        memo.insert(k, hash);
    }
    Ok(hash)
}

/// Answer `stats` with the fleet aggregate in the node shape, plus
/// `fleet` and `per_node` sections.
fn fleet_stats(id: Option<&str>, shared: &Arc<RouterShared>) -> String {
    let backends: Vec<Arc<Backend>> = shared.backends.read().values().cloned().collect();
    let mut agg = protocol::NodeStats::default();
    let mut per_node = String::new();
    let mut healthy = 0usize;
    let mut sorted: Vec<&Arc<Backend>> = backends.iter().collect();
    sorted.sort_by_key(|b| b.addr().to_owned());
    for (i, backend) in sorted.iter().enumerate() {
        let mut node_ok = false;
        if backend.is_healthy() {
            if let Ok(resp) = backend.forward("{\"op\":\"stats\"}", shared.cfg.forward_timeout) {
                if let Some(stats) = parse_node_stats(&resp) {
                    accumulate(&mut agg, &stats);
                    node_ok = true;
                }
            }
        }
        if node_ok {
            healthy += 1;
        }
        if i > 0 {
            per_node.push(',');
        }
        per_node.push_str(&format!(
            "{{\"node\":\"{}\",\"healthy\":{},\"routed\":{},\"hits\":{}}}",
            json_escape(backend.addr()),
            node_ok,
            backend.routed_count(),
            backend.hit_count()
        ));
    }
    let c = &shared.counters;
    agg.shed += c.shed.load(Ordering::Relaxed);
    format!(
        "{{{}\"status\":\"ok\",\"op\":\"stats\",{},\"fleet\":{{\"nodes\":{},\"healthy\":{},\
         \"routed\":{},\"retries\":{},\"shed\":{},\"ejections\":{},\"readmissions\":{},\
         \"migrated_plans\":{},\"migrated_bytes\":{}}},\"per_node\":[{per_node}]}}",
        id_field(id),
        protocol::stats_body(&agg),
        backends.len(),
        healthy,
        c.routed.load(Ordering::Relaxed),
        c.retries.load(Ordering::Relaxed),
        c.shed.load(Ordering::Relaxed),
        c.ejections.load(Ordering::Relaxed),
        c.readmissions.load(Ordering::Relaxed),
        c.migrated_plans.load(Ordering::Relaxed),
        c.migrated_bytes.load(Ordering::Relaxed),
    )
}

/// One per-model×GLB×tenant cell merged across the fleet's newest
/// windows. Counts sum; latency quantiles take the worst node (a
/// fleet-level p99 cannot be reconstructed from per-node histograms,
/// so the max is the honest upper bound); the mean is events-weighted.
#[derive(Default)]
struct FleetCell {
    model: String,
    glb_kb: u64,
    tenant: String,
    events: u64,
    hit_inline: u64,
    hit_worker: u64,
    miss: u64,
    shed_static: u64,
    shed_adaptive: u64,
    shed_predicted: u64,
    deadline: u64,
    error: u64,
    mean_weighted: u64,
    p50_us: u64,
    p99_us: u64,
    predicted_us: u64,
    predicted_miss_us: u64,
}

/// Answer `stream` by fanning the request out to every healthy backend
/// and aggregating: per-node window-engine summaries, plus the cells
/// of each node's **newest closed window** merged by cell key into a
/// fleet-wide activity table (sorted by event count).
fn fleet_stream(line: &str, req: &protocol::Request, shared: &Arc<RouterShared>) -> String {
    let num = |v: &smm_obs::json::Value| -> u64 {
        match v {
            smm_obs::json::Value::Number(n) if *n >= 0.0 => *n as u64,
            _ => 0,
        }
    };
    let sval = |v: &smm_obs::json::Value, k: &str| -> String {
        match v.get(k) {
            Some(smm_obs::json::Value::String(s)) => s.clone(),
            _ => String::new(),
        }
    };
    let backends: Vec<Arc<Backend>> = shared.backends.read().values().cloned().collect();
    let mut sorted: Vec<&Arc<Backend>> = backends.iter().collect();
    sorted.sort_by_key(|b| b.addr().to_owned());

    let mut healthy = 0usize;
    let mut per_node = String::new();
    let mut fleet_events = 0u64;
    let mut fleet_late = 0u64;
    let mut fleet_dropped = 0u64;
    let mut fleet_closed = 0u64;
    let mut cells: HashMap<String, FleetCell> = HashMap::new();
    let mut kind = String::from("tumbling");
    let mut window_ms = 0u64;

    for (i, backend) in sorted.iter().enumerate() {
        let mut node_summary = None;
        if backend.is_healthy() {
            if let Ok(resp) = backend.forward(line, shared.cfg.forward_timeout) {
                if let Ok(v) = smm_obs::json::parse(&resp) {
                    if matches!(v.get("status"), Some(smm_obs::json::Value::String(s)) if s == "ok")
                    {
                        let events = v.get("events").map_or(0, &num);
                        let late = v.get("late_events").map_or(0, &num);
                        let dropped = v.get("dropped").map_or(0, &num);
                        let closed = v.get("windows_closed").map_or(0, &num);
                        let seen = v.get("cells_seen").map_or(0, &num);
                        fleet_events += events;
                        fleet_late += late;
                        fleet_dropped += dropped;
                        fleet_closed += closed;
                        if !sval(&v, "kind").is_empty() {
                            kind = sval(&v, "kind");
                        }
                        window_ms = window_ms.max(v.get("window_ms").map_or(0, &num));
                        if let Some(smm_obs::json::Value::Array(windows)) = v.get("windows") {
                            if let Some(smm_obs::json::Value::Array(ws)) =
                                windows.first().and_then(|w| w.get("cells"))
                            {
                                for c in ws {
                                    let key = sval(c, "key");
                                    let entry = cells.entry(key).or_default();
                                    if entry.model.is_empty() {
                                        entry.model = sval(c, "model");
                                        entry.glb_kb = c.get("glb_kb").map_or(0, &num);
                                        entry.tenant = sval(c, "tenant");
                                    }
                                    let ev = c.get("events").map_or(0, &num);
                                    entry.events += ev;
                                    entry.hit_inline += c.get("hit_inline").map_or(0, &num);
                                    entry.hit_worker += c.get("hit_worker").map_or(0, &num);
                                    entry.miss += c.get("miss").map_or(0, &num);
                                    entry.shed_static += c.get("shed_static").map_or(0, &num);
                                    entry.shed_adaptive += c.get("shed_adaptive").map_or(0, &num);
                                    entry.shed_predicted += c.get("shed_predicted").map_or(0, &num);
                                    entry.deadline += c.get("deadline").map_or(0, &num);
                                    entry.error += c.get("error").map_or(0, &num);
                                    entry.mean_weighted +=
                                        ev.saturating_mul(c.get("mean_us").map_or(0, &num));
                                    entry.p50_us =
                                        entry.p50_us.max(c.get("p50_us").map_or(0, &num));
                                    entry.p99_us =
                                        entry.p99_us.max(c.get("p99_us").map_or(0, &num));
                                    entry.predicted_us = entry
                                        .predicted_us
                                        .max(c.get("predicted_us").map_or(0, &num));
                                    entry.predicted_miss_us = entry
                                        .predicted_miss_us
                                        .max(c.get("predicted_miss_us").map_or(0, &num));
                                }
                            }
                        }
                        node_summary = Some((events, late, dropped, closed, seen));
                    }
                }
            }
        }
        if node_summary.is_some() {
            healthy += 1;
        }
        if i > 0 {
            per_node.push(',');
        }
        let (events, late, dropped, closed, seen) = node_summary.unwrap_or_default();
        per_node.push_str(&format!(
            "{{\"node\":\"{}\",\"healthy\":{},\"events\":{events},\"late_events\":{late},\
             \"dropped\":{dropped},\"windows_closed\":{closed},\"cells_seen\":{seen}}}",
            json_escape(backend.addr()),
            node_summary.is_some(),
        ));
    }

    let mut merged: Vec<(String, FleetCell)> = cells.into_iter().collect();
    merged.sort_by(|a, b| b.1.events.cmp(&a.1.events).then_with(|| a.0.cmp(&b.0)));
    let mut cells_json = String::new();
    for (i, (key, c)) in merged.iter().enumerate() {
        if i > 0 {
            cells_json.push(',');
        }
        let mean_us = c.mean_weighted.checked_div(c.events).unwrap_or(0);
        cells_json.push_str(&format!(
            "{{\"key\":\"{}\",\"model\":\"{}\",\"glb_kb\":{},\"tenant\":\"{}\",\
             \"events\":{},\"hit_inline\":{},\"hit_worker\":{},\"miss\":{},\
             \"shed_static\":{},\"shed_adaptive\":{},\"shed_predicted\":{},\
             \"deadline\":{},\"error\":{},\"mean_us\":{mean_us},\"p50_us\":{},\"p99_us\":{},\
             \"predicted_us\":{},\"predicted_miss_us\":{}}}",
            json_escape(key),
            json_escape(&c.model),
            c.glb_kb,
            json_escape(&c.tenant),
            c.events,
            c.hit_inline,
            c.hit_worker,
            c.miss,
            c.shed_static,
            c.shed_adaptive,
            c.shed_predicted,
            c.deadline,
            c.error,
            c.p50_us,
            c.p99_us,
            c.predicted_us,
            c.predicted_miss_us,
        ));
    }

    format!(
        "{{{}\"status\":\"ok\",\"op\":\"stream\",\"kind\":\"{kind}\",\"window_ms\":{window_ms},\
         \"fleet\":{{\"nodes\":{},\"healthy\":{healthy},\"events\":{fleet_events},\
         \"late_events\":{fleet_late},\"dropped\":{fleet_dropped},\
         \"windows_closed\":{fleet_closed}}},\"cells\":[{cells_json}],\"per_node\":[{per_node}]}}",
        id_field(req.id.as_deref()),
        backends.len(),
    )
}

fn id_field(id: Option<&str>) -> String {
    match id {
        Some(id) => format!("\"id\":\"{}\",", json_escape(id)),
        None => String::new(),
    }
}

/// Parse a backend's `stats` response back into a [`protocol::NodeStats`].
fn parse_node_stats(resp: &str) -> Option<protocol::NodeStats> {
    let v = smm_obs::json::parse(resp).ok()?;
    let num = |v: &smm_obs::json::Value| -> u64 {
        match v {
            smm_obs::json::Value::Number(n) if *n >= 0.0 => *n as u64,
            _ => 0,
        }
    };
    let cache = v.get("cache")?;
    let memo = v.get("memo")?;
    Some(protocol::NodeStats {
        cache: smm_core::CacheStats {
            hits: cache.get("hits").map_or(0, &num),
            misses: cache.get("misses").map_or(0, &num),
            evictions: cache.get("evictions").map_or(0, &num),
            len: cache.get("len").map_or(0, &num) as usize,
            capacity: cache.get("capacity").map_or(0, &num) as usize,
        },
        queued: v.get("queued").map_or(0, &num) as usize,
        shed: v.get("shed").map_or(0, &num),
        shed_adaptive: v.get("shed_adaptive").map_or(0, &num),
        shed_predicted: v.get("shed_predicted").map_or(0, &num),
        queue_depth_peak: v.get("queue_depth_peak").map_or(0, &num),
        ewma_latency_us: v.get("ewma_latency_us").map_or(0, &num),
        inline_hits: v.get("inline_hits").map_or(0, &num),
        verify_failed: v.get("verify_failed").map_or(0, &num),
        memo_hits: memo.get("hits").map_or(0, &num),
        memo_misses: memo.get("misses").map_or(0, &num),
    })
}

fn accumulate(agg: &mut protocol::NodeStats, s: &protocol::NodeStats) {
    agg.cache.hits += s.cache.hits;
    agg.cache.misses += s.cache.misses;
    agg.cache.evictions += s.cache.evictions;
    agg.cache.len += s.cache.len;
    agg.cache.capacity += s.cache.capacity;
    agg.queued += s.queued;
    agg.shed += s.shed;
    agg.shed_adaptive += s.shed_adaptive;
    agg.shed_predicted += s.shed_predicted;
    agg.inline_hits += s.inline_hits;
    // Gauges, not counters: the fleet-wide peak/estimate is the worst
    // node's, not a sum.
    agg.queue_depth_peak = agg.queue_depth_peak.max(s.queue_depth_peak);
    agg.ewma_latency_us = agg.ewma_latency_us.max(s.ewma_latency_us);
    agg.verify_failed += s.verify_failed;
    agg.memo_hits += s.memo_hits;
    agg.memo_misses += s.memo_misses;
}

/// Handle a `fleet_join` / `fleet_leave` admin line.
fn handle_admin(op: &str, v: &smm_obs::json::Value, shared: &Arc<RouterShared>) -> String {
    let id = match v.get("id") {
        Some(smm_obs::json::Value::String(s)) => Some(s.clone()),
        _ => None,
    };
    let node = match v.get("node") {
        Some(smm_obs::json::Value::String(s)) => s.clone(),
        _ => {
            return protocol::error_response(&id, &format!("{op} request needs \"node\""));
        }
    };
    let result = if op == "fleet_join" {
        fleet_join(shared, &node)
    } else {
        fleet_leave(shared, &node)
    };
    match result {
        Ok((plans, bytes)) => format!(
            "{{{}\"status\":\"ok\",\"op\":\"{op}\",\"node\":\"{}\",\
             \"migrated_plans\":{plans},\"migrated_bytes\":{bytes}}}",
            id_field(id.as_deref()),
            json_escape(&node)
        ),
        Err(msg) => protocol::error_response(&id, &msg),
    }
}

/// Warm-join: probe, migrate the joiner's future keyspace to it, then
/// flip the ring. Returns `(migrated_plans, migrated_bytes)`.
fn fleet_join(shared: &Arc<RouterShared>, node: &str) -> Result<(u64, u64), String> {
    let _guard = shared.membership.lock();
    if shared.ring.read().contains(node) {
        return Err(format!("node {node} is already a fleet member"));
    }
    let joiner = Arc::new(Backend::new(node.to_owned()));
    let pong = joiner
        .forward("{\"op\":\"ping\"}", shared.cfg.forward_timeout)
        .map_err(|e| format!("probe of joining node failed: {e}"))?;
    if !pong.contains("\"status\":\"ok\"") {
        return Err(format!("joining node answered probe with: {pong}"));
    }

    let new_ring = shared.ring.read().with_node(node);
    let mut migrated = (0u64, 0u64);
    if shared.cfg.handoff_limit > 0 {
        let donors: Vec<Arc<Backend>> = shared.backends.read().values().cloned().collect();
        for donor in donors.iter().filter(|b| b.is_healthy()) {
            let entries = dump_entries(donor, shared.cfg.handoff_limit, shared.cfg.forward_timeout);
            for (key, plan_json) in entries {
                if new_ring.owner(key.stable_hash64()) == Some(node)
                    && migrate_entry(&joiner, &key, &plan_json, shared.cfg.forward_timeout)
                {
                    migrated.0 += 1;
                    migrated.1 += plan_json.len() as u64;
                }
            }
        }
    }
    bump(
        &shared.counters.migrated_plans,
        Counter::FleetMigratedPlans,
        migrated.0,
    );
    bump(
        &shared.counters.migrated_bytes,
        Counter::FleetMigratedBytes,
        migrated.1,
    );

    shared
        .backends
        .write()
        .insert(node.to_owned(), Arc::clone(&joiner));
    *shared.ring.write() = new_ring;
    Ok(migrated)
}

/// Warm-leave: drain the leaver's hottest plans to their new owners,
/// then flip the ring and drop the node.
fn fleet_leave(shared: &Arc<RouterShared>, node: &str) -> Result<(u64, u64), String> {
    let _guard = shared.membership.lock();
    if !shared.ring.read().contains(node) {
        return Err(format!("node {node} is not a fleet member"));
    }
    let new_ring = shared.ring.read().without_node(node);
    let leaver = shared.backends.read().get(node).cloned();
    let mut migrated = (0u64, 0u64);
    if shared.cfg.handoff_limit > 0 {
        if let Some(leaver) = leaver.filter(|b| b.is_healthy()) {
            let entries = dump_entries(
                &leaver,
                shared.cfg.handoff_limit,
                shared.cfg.forward_timeout,
            );
            let backends = shared.backends.read().clone();
            for (key, plan_json) in entries {
                let Some(owner) = new_ring.owner(key.stable_hash64()) else {
                    break; // last node leaving: nowhere to drain to
                };
                if let Some(target) = backends.get(owner) {
                    if migrate_entry(target, &key, &plan_json, shared.cfg.forward_timeout) {
                        migrated.0 += 1;
                        migrated.1 += plan_json.len() as u64;
                    }
                }
            }
        }
    }
    bump(
        &shared.counters.migrated_plans,
        Counter::FleetMigratedPlans,
        migrated.0,
    );
    bump(
        &shared.counters.migrated_bytes,
        Counter::FleetMigratedBytes,
        migrated.1,
    );

    *shared.ring.write() = new_ring;
    shared.backends.write().remove(node);
    Ok(migrated)
}

/// Pull up to `limit` hottest `(key, plan_json)` entries from `donor`.
/// Failures degrade to an empty handoff rather than failing the
/// membership change.
fn dump_entries(donor: &Backend, limit: u64, timeout: Duration) -> Vec<(PlanKey, String)> {
    let line = format!("{{\"op\":\"dump\",\"limit\":{limit}}}");
    let Ok(resp) = donor.forward(&line, timeout) else {
        return Vec::new();
    };
    let Ok(v) = smm_obs::json::parse(&resp) else {
        return Vec::new();
    };
    let Some(smm_obs::json::Value::Array(entries)) = v.get("entries") else {
        return Vec::new();
    };
    entries
        .iter()
        .filter_map(|e| {
            let Some(smm_obs::json::Value::String(key_hex)) = e.get("key") else {
                return None;
            };
            let Some(smm_obs::json::Value::String(plan)) = e.get("plan_json") else {
                return None;
            };
            PlanKey::from_stable_hex(key_hex)
                .ok()
                .map(|k| (k, plan.clone()))
        })
        .collect()
}

/// Push one plan to `target` with `migrate`; `true` on an ok ack.
fn migrate_entry(target: &Backend, key: &PlanKey, plan_json: &str, timeout: Duration) -> bool {
    let line = format!(
        "{{\"op\":\"migrate\",\"key\":\"{}\",\"plan_json\":\"{}\"}}",
        key.stable_hex(),
        json_escape(plan_json)
    );
    target
        .forward(&line, timeout)
        .is_ok_and(|r| r.contains("\"status\":\"ok\""))
}
