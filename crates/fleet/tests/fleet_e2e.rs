//! End-to-end fleet scenarios: a real router in front of real serve
//! nodes over loopback TCP.
//!
//! The suite follows the fault-injection discipline the simulator
//! established: every scenario is deterministic (fixed models, fixed
//! knobs, loopback sockets) and asserts observable outcomes — response
//! status accounting, byte-identical plans, and the router's fleet
//! counters — not timing.

use smm_fleet::{Router, RouterConfig};
use smm_serve::{LoadgenConfig, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn spawn_node(cache_cap: usize) -> smm_serve::ServerHandle {
    Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 64,
        cache_cap,
        obs: false,
        verify_plans: false,
        ..ServerConfig::default()
    })
    .expect("spawn serve node")
}

fn spawn_router(backends: Vec<String>, cfg: RouterConfig) -> smm_fleet::RouterHandle {
    Router::spawn(RouterConfig {
        addr: "127.0.0.1:0".into(),
        backends,
        obs: false,
        ..cfg
    })
    .expect("spawn router")
}

/// One request/response exchange on a fresh connection.
fn request(addr: &str, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    resp.trim().to_string()
}

/// Slice the `"plan":{...}` payload (the protocol keeps it last).
fn plan_payload(line: &str) -> &str {
    let idx = line.find("\"plan\":").expect("response has a plan");
    &line[idx + "\"plan\":".len()..line.len() - 1]
}

#[test]
fn fleet_serves_byte_identical_plans_with_cross_node_hits() {
    let nodes: Vec<_> = (0..3).map(|_| spawn_node(64)).collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let router = spawn_router(addrs, RouterConfig::default());
    let raddr = router.local_addr().to_string();

    // A single standalone node is the golden reference: the fleet must
    // serve byte-identical plans to what one node produces.
    let solo = spawn_node(16);
    let solo_addr = solo.local_addr().to_string();

    for model in ["mobilenet", "resnet18", "mnasnet"] {
        let line = format!("{{\"model\":\"{model}\",\"glb_kb\":64}}");
        let via_fleet = request(&raddr, &line);
        let via_solo = request(&solo_addr, &line);
        assert!(
            via_fleet.contains("\"status\":\"ok\""),
            "fleet response not ok: {via_fleet}"
        );
        assert_eq!(
            plan_payload(&via_fleet),
            plan_payload(&via_solo),
            "fleet plan for {model} differs from the single-node golden plan"
        );
        assert!(
            via_fleet.contains("\"node\":\""),
            "router did not attribute the response: {via_fleet}"
        );

        // Second request for the same key: must be a cache hit on the
        // owning node, still byte-identical.
        let warm = request(&raddr, &line);
        assert!(
            warm.contains("\"cache_hit\":true"),
            "repeat request missed the owner's cache: {warm}"
        );
        assert_eq!(plan_payload(&warm), plan_payload(&via_solo));
    }

    let counters = router.fleet_counters();
    assert_eq!(counters.shed, 0);
    assert_eq!(counters.routed, 6);

    solo.stop();
    solo.join();
    router.stop();
    router.join();
    for n in nodes {
        n.stop();
        n.join();
    }
}

#[test]
fn node_kill_mid_run_loses_zero_requests() {
    let nodes: Vec<_> = (0..3).map(|_| spawn_node(64)).collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let router = spawn_router(
        addrs.clone(),
        RouterConfig {
            retries: 2,
            eject_after: 1,
            forward_timeout: Duration::from_secs(60),
            ..RouterConfig::default()
        },
    );
    let raddr = router.local_addr().to_string();

    // Warm every model once so the kill happens against a warm fleet,
    // and remember which node answered the first key: killing that one
    // guarantees the workload keeps hitting the dead node's shard (ring
    // ownership depends on the ephemeral ports, so a fixed index could
    // pick a node that owns none of the four keys).
    let models = ["mobilenet", "mobilenetv2", "mnasnet", "resnet18"];
    let mut owner_addr = String::new();
    for model in &models {
        let resp = request(&raddr, &format!("{{\"model\":\"{model}\",\"glb_kb\":64}}"));
        assert!(resp.contains("\"status\":\"ok\""), "warmup failed: {resp}");
        if owner_addr.is_empty() {
            let tag = "\"node\":\"";
            let start = resp.find(tag).expect("router attributes the node") + tag.len();
            let end = resp[start..].find('"').unwrap() + start;
            owner_addr = resp[start..end].to_string();
        }
    }

    // Kill the owner, then keep driving the fleet. Every request must
    // still be answered: the dead node's keys retry onto the next
    // replica, which replans them — none may error or go unanswered.
    let mut nodes = nodes;
    let victim_idx = nodes
        .iter()
        .position(|n| n.local_addr().to_string() == owner_addr)
        .expect("attributed node is one of ours");
    let victim = nodes.remove(victim_idx);
    victim.stop();
    victim.join();

    let report = smm_serve::loadgen::run(&LoadgenConfig {
        addr: raddr.clone(),
        requests: 24,
        concurrency: 4,
        models: models.iter().map(|m| (*m).to_string()).collect(),
        glb_kb: 64,
        fleet: true,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");

    assert_eq!(report.errors, 0, "requests were lost:\n{}", report.render());
    assert_eq!(report.plan_mismatches, 0, "plans diverged after the kill");
    assert_eq!(
        report.ok + report.shed + report.deadline,
        report.sent,
        "response accounting does not cover every request"
    );
    assert_eq!(report.shed, 0, "with 2 retries nothing should be shed");

    let counters = router.fleet_counters();
    assert!(
        counters.ejections >= 1,
        "the dead node was never ejected: {counters:?}"
    );

    router.stop();
    router.join();
    for n in nodes {
        n.stop();
        n.join();
    }
}

#[test]
fn dead_configured_backend_triggers_retries_not_errors() {
    // A router configured with a backend that was never alive: requests
    // owned by the dead node must transparently retry onto live ones.
    let live: Vec<_> = (0..2).map(|_| spawn_node(64)).collect();
    let mut addrs: Vec<String> = live.iter().map(|n| n.local_addr().to_string()).collect();
    // Port 1 on loopback: connect fails fast, deterministically.
    addrs.push("127.0.0.1:1".into());
    let router = spawn_router(
        addrs,
        RouterConfig {
            retries: 2,
            eject_after: 1,
            ..RouterConfig::default()
        },
    );
    let raddr = router.local_addr().to_string();

    let report = smm_serve::loadgen::run(&LoadgenConfig {
        addr: raddr.clone(),
        requests: 18,
        concurrency: 3,
        models: vec!["mobilenet".into(), "mnasnet".into(), "resnet18".into()],
        glb_kb: 64,
        fleet: true,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");

    assert_eq!(report.errors, 0, "retry storm leaked errors to clients");
    assert_eq!(report.shed, 0);
    assert_eq!(report.ok, report.sent);
    assert_eq!(report.plan_mismatches, 0);

    let counters = router.fleet_counters();
    // The dead backend owns ~1/3 of the keyspace, so with three models
    // and several GLB-free repeats at least one request must have
    // landed there first and retried (if not, the ring is suspicious —
    // but ownership is deterministic, so assert only when it fired).
    assert_eq!(counters.ejections, u64::from(counters.retries > 0));

    router.stop();
    router.join();
    for n in live {
        n.stop();
        n.join();
    }
}

#[test]
fn delayed_backend_is_ejected_then_readmitted() {
    let nodes: Vec<_> = (0..2).map(|_| spawn_node(64)).collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let router = spawn_router(
        addrs,
        RouterConfig {
            retries: 1,
            eject_after: 1,
            forward_timeout: Duration::from_millis(250),
            probe_interval: Duration::from_millis(100),
            ..RouterConfig::default()
        },
    );
    let raddr = router.local_addr().to_string();

    // delay_ms makes every replica exceed the router's forward timeout:
    // both nodes get ejected and the request is shed, not hung.
    let slow = request(
        &raddr,
        "{\"model\":\"mobilenet\",\"glb_kb\":64,\"delay_ms\":2000}",
    );
    assert!(
        slow.contains("\"status\":\"shed\""),
        "expected shed after all replicas timed out, got: {slow}"
    );
    let counters = router.fleet_counters();
    assert!(counters.ejections >= 1, "slow backends never ejected");
    assert_eq!(counters.shed, 1);

    // The probe thread re-admits the (healthy, just slow that once)
    // nodes; afterwards normal requests flow again.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let resp = request(&raddr, "{\"model\":\"mobilenet\",\"glb_kb\":64}");
        if resp.contains("\"status\":\"ok\"") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "nodes were never re-admitted; last response: {resp}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(router.fleet_counters().readmissions >= 1);

    router.stop();
    router.join();
    for n in nodes {
        n.stop();
        n.join();
    }
}

#[test]
fn join_migrates_warm_plans_and_leave_drains_them() {
    let nodes: Vec<_> = (0..2).map(|_| spawn_node(64)).collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let router = spawn_router(addrs, RouterConfig::default());
    let raddr = router.local_addr().to_string();

    // Warm the 2-node fleet and remember every plan.
    let models = ["mobilenet", "mobilenetv2", "mnasnet", "resnet18"];
    let mut golden = Vec::new();
    for model in &models {
        let line = format!("{{\"model\":\"{model}\",\"glb_kb\":64}}");
        let resp = request(&raddr, &line);
        assert!(resp.contains("\"status\":\"ok\""), "warmup failed: {resp}");
        golden.push((line, plan_payload(&resp).to_string()));
    }

    // Join a third node: the keys it now owns must arrive pre-warmed.
    let joiner = spawn_node(64);
    let joiner_addr = joiner.local_addr().to_string();
    let (plans, bytes) = router.join_node(&joiner_addr).expect("join");
    assert_eq!(router.nodes().len(), 3);

    // After the join every remembered key must still be a cache hit
    // somewhere — the handoff, not a replan, covers the moved keys.
    for (line, reference) in &golden {
        let resp = request(&raddr, line);
        assert!(
            resp.contains("\"cache_hit\":true"),
            "cold miss after warm join: {resp}"
        );
        assert_eq!(plan_payload(&resp), reference, "plan changed across join");
    }
    // The joiner owns ~1/3 of 4 keys in expectation; with this fixed
    // key set the deterministic ring gives it at least one.
    assert!(
        plans > 0 && bytes > 0,
        "nothing migrated on join ({plans} plans, {bytes} bytes)"
    );

    // Leave: the joiner drains its plans back to the survivors.
    let (drained, _) = router.leave_node(&joiner_addr).expect("leave");
    assert_eq!(router.nodes().len(), 2);
    assert!(drained > 0, "leave migrated nothing");
    joiner.stop();
    joiner.join();

    for (line, reference) in &golden {
        let resp = request(&raddr, line);
        assert!(
            resp.contains("\"cache_hit\":true"),
            "cold miss after warm leave: {resp}"
        );
        assert_eq!(plan_payload(&resp), reference, "plan changed across leave");
    }

    router.stop();
    router.join();
    for n in nodes {
        n.stop();
        n.join();
    }
}

#[test]
fn router_stats_aggregates_the_fleet_in_node_shape() {
    let nodes: Vec<_> = (0..2).map(|_| spawn_node(64)).collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let router = spawn_router(addrs, RouterConfig::default());
    let raddr = router.local_addr().to_string();

    for _ in 0..2 {
        let resp = request(&raddr, "{\"model\":\"mobilenet\",\"glb_kb\":64}");
        assert!(resp.contains("\"status\":\"ok\""));
    }

    let stats = request(&raddr, "{\"op\":\"stats\",\"id\":\"s1\"}");
    let v = smm_obs::json::parse(&stats).expect("stats response is valid JSON");
    // Node-shaped fields (what loadgen reads)...
    for field in ["cache", "queued", "shed", "verify_failed", "memo"] {
        assert!(v.get(field).is_some(), "stats lacks {field:?}: {stats}");
    }
    // ...plus the fleet extras.
    let fleet = v.get("fleet").expect("stats has a fleet section");
    assert_eq!(
        fleet.get("nodes"),
        Some(&smm_obs::json::Value::Number(2.0)),
        "fleet section: {stats}"
    );
    let per_node = v.get("per_node").expect("stats has per_node");
    assert!(matches!(per_node, smm_obs::json::Value::Array(a) if a.len() == 2));
    // One model requested twice: exactly one cache hit fleet-wide.
    let cache = v.get("cache").unwrap();
    assert_eq!(cache.get("hits"), Some(&smm_obs::json::Value::Number(1.0)));

    router.stop();
    router.join();
    for n in nodes {
        n.stop();
        n.join();
    }
}
