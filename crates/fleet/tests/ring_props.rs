//! Property tests for the consistent-hash ring: load balance at ≥128
//! virtual nodes, and minimal remapping on membership change.

use proptest::prelude::*;
use smm_fleet::HashRing;

/// A deterministic pseudo-random key stream (SplitMix64 step).
fn keys(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

fn node_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{}:7878", i + 1)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With ≥128 vnodes, no node's share of a large key sample exceeds
    /// twice the fair share (in practice it stays within ~1.4×; 2× is
    /// the hard promise the router's capacity planning can rely on).
    #[test]
    fn load_is_balanced_at_128_vnodes(n_nodes in 2usize..9, seed in 0u64..1000) {
        let nodes = node_names(n_nodes);
        let ring = HashRing::new(nodes.iter().map(String::as_str), 128);
        let sample = keys(4096, seed);
        let mut counts = std::collections::HashMap::new();
        for k in &sample {
            *counts.entry(ring.owner(*k).unwrap().to_owned()).or_insert(0u64) += 1;
        }
        let fair = sample.len() as f64 / n_nodes as f64;
        for (node, count) in &counts {
            prop_assert!(
                (*count as f64) < 2.0 * fair,
                "{node} owns {count} of {} keys (fair share {fair:.0}, {n_nodes} nodes)",
                sample.len()
            );
        }
    }

    /// Joining a node only moves keys *to* the joiner: every key either
    /// keeps its owner or is now owned by the new node, and the moved
    /// fraction stays near 1/(N+1).
    #[test]
    fn join_remaps_only_the_joiners_share(n_nodes in 2usize..8, seed in 0u64..1000) {
        let nodes = node_names(n_nodes);
        let before = HashRing::new(nodes.iter().map(String::as_str), 128);
        let joiner = "10.0.1.99:7878";
        let after = before.with_node(joiner);
        let sample = keys(4096, seed);
        let mut moved = 0usize;
        for k in &sample {
            let old = before.owner(*k).unwrap();
            let new = after.owner(*k).unwrap();
            if old != new {
                prop_assert_eq!(
                    new, joiner,
                    "key {} moved {} -> {} instead of to the joiner", k, old, new
                );
                moved += 1;
            }
        }
        let expected = sample.len() as f64 / (n_nodes + 1) as f64;
        prop_assert!(
            (moved as f64) < 2.0 * expected,
            "join moved {moved} keys, expected ~{expected:.0}"
        );
        prop_assert!(moved > 0, "join moved nothing — ring ignored the new node");
    }

    /// Removing a node only moves the keys it owned: everything else
    /// keeps its owner, so ~1/N of the keyspace remaps on leave.
    #[test]
    fn leave_remaps_only_the_leavers_share(n_nodes in 2usize..8, seed in 0u64..1000) {
        let nodes = node_names(n_nodes);
        let before = HashRing::new(nodes.iter().map(String::as_str), 128);
        let leaver = nodes[0].as_str();
        let after = before.without_node(leaver);
        let sample = keys(4096, seed);
        let mut moved = 0usize;
        for k in &sample {
            let old = before.owner(*k).unwrap();
            let new = after.owner(*k).unwrap();
            if old == leaver {
                prop_assert!(new != leaver, "leaver still owns key {}", k);
                moved += 1;
            } else {
                prop_assert_eq!(
                    old, new,
                    "key {} moved {} -> {} though its owner stayed", k, old, new
                );
            }
        }
        let expected = sample.len() as f64 / n_nodes as f64;
        prop_assert!(
            (moved as f64) < 2.0 * expected,
            "leave moved {moved} keys, expected ~{expected:.0}"
        );
    }
}
