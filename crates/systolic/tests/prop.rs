//! Property tests for the baseline: invariants that must hold for any
//! layer shape and buffer configuration.

use proptest::prelude::*;
use smm_arch::{AcceleratorConfig, ByteSize};
use smm_model::LayerShape;
use smm_systolic::schedule::trace_layer;
use smm_systolic::{simulate_layer, BaselineConfig, BufferSplit, Dataflow};

fn arb_shape() -> impl Strategy<Value = LayerShape> {
    (
        2u32..24,
        2u32..24,
        1u32..8,
        1u32..4,
        1u32..12,
        1u32..3,
        0u32..2,
        any::<bool>(),
    )
        .prop_map(|(ih, iw, ci, k, nf, s, p, dw)| LayerShape {
            ifmap_h: ih,
            ifmap_w: iw,
            in_channels: ci,
            filter_h: k,
            filter_w: k,
            num_filters: if dw { ci } else { nf },
            stride: s,
            padding: p,
            depthwise: dw,
        })
        .prop_filter("shape must validate", |s| s.validate().is_ok())
}

fn cfg(kb: u64, split: BufferSplit) -> BaselineConfig {
    BaselineConfig::paper(
        AcceleratorConfig::paper_default(ByteSize::from_kb(kb)),
        split,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Analytical and trace-mode counts agree on arbitrary shapes and
    /// buffer sizes — including degenerate, buffer-starved ones.
    #[test]
    fn trace_equals_analytic(shape in arb_shape(), kb in 5u64..128) {
        for split in BufferSplit::ALL {
            let c = cfg(kb, split);
            let analytic = simulate_layer(&c, &shape);
            let traced = trace_layer(&c, &shape);
            prop_assert!(
                traced.matches(&analytic),
                "{split:?} @ {kb}kB on {shape:?}: {analytic:?} vs {traced:?}"
            );
        }
    }

    /// Baseline traffic never drops below the compulsory minimum and
    /// never increases when the buffers grow.
    #[test]
    fn traffic_bounds_and_monotonicity(shape in arb_shape()) {
        let mut last = u64::MAX;
        for kb in [8u64, 32, 128, 512] {
            let sim = simulate_layer(&cfg(kb, BufferSplit::SA_50_50), &shape);
            prop_assert!(sim.filter_loads >= shape.filter_elems());
            prop_assert_eq!(sim.ofmap_stores, shape.ofmap_elems());
            prop_assert!(sim.total_accesses() <= last, "{kb}kB regressed");
            last = sim.total_accesses();
        }
    }

    /// Every dataflow's compute covers the layer's MACs: an R×C array
    /// cannot beat MACs / (R·C) cycles.
    #[test]
    fn dataflow_compute_at_least_ideal(shape in arb_shape()) {
        let c = cfg(64, BufferSplit::SA_50_50);
        let ideal = shape.macs().div_ceil((c.acc.pe_rows * c.acc.pe_cols) as u64);
        for df in Dataflow::ALL {
            let sim = smm_systolic::simulate_layer_dataflow(&c, &shape, df);
            prop_assert!(
                sim.compute_cycles >= ideal,
                "{df:?}: {} < ideal {ideal}",
                sim.compute_cycles
            );
        }
    }
}
