//! Fold-level analytical DRAM traffic for the baseline.
//!
//! The model follows the paper's description of the SCALE-Sim baseline:
//! fixed, double-buffered ifmap/filter buffers whose *active half* must
//! hold a working set for it to be reused. A data type whose whole
//! footprint fits its half buffer is fetched once; otherwise it is
//! re-fetched per outer fold. Both loop orders are evaluated and the
//! cheaper is reported, so the baseline is never penalized by an
//! unfavourable fixed schedule.

use crate::buffers::BaselineConfig;
use crate::compute::compute_cycles;
use crate::gemm::{FoldPlan, GemmShape};
use serde::{Deserialize, Serialize};
use smm_arch::ByteSize;
use smm_model::{LayerShape, Network};

/// Which schedule the per-layer best case picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopOrderChoice {
    /// Row folds outer: the ifmap slides once, filter blocks re-stream.
    RowsOuter,
    /// Column folds outer: filters stream once, the ifmap re-sweeps.
    ColsOuter,
    /// Depth-wise layers: one independent pass per channel.
    DepthwisePerChannel,
}

/// How the ifmap is fetched under the chosen schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IfmapMode {
    /// Every demanded element once (slides or fully resident).
    Once,
    /// One full sweep per column fold.
    PerColFold,
    /// Fold windows don't fit the half buffer: streamed per fold.
    StreamedWindows,
}

/// How filters are fetched under the chosen schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterMode {
    /// Every filter element once.
    Once,
    /// Re-streamed for every row fold.
    PerRowFold,
}

/// The residency decisions for one layer — shared with the trace-mode
/// schedule so both count the same plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerPlan {
    pub order: LoopOrderChoice,
    pub ifmap_mode: IfmapMode,
    pub filter_mode: FilterMode,
}

/// Baseline result for one layer (traffic in elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSim {
    pub ifmap_loads: u64,
    pub filter_loads: u64,
    pub ofmap_stores: u64,
    pub compute_cycles: u64,
    pub order: LoopOrderChoice,
}

impl LayerSim {
    /// Total off-chip elements moved.
    pub fn total_accesses(&self) -> u64 {
        self.ifmap_loads + self.filter_loads + self.ofmap_stores
    }
}

/// Whole-network baseline report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineReport {
    pub layers: Vec<LayerSim>,
    /// Total off-chip elements.
    pub total_accesses: u64,
    /// Total off-chip volume in bytes.
    pub total_bytes: ByteSize,
    /// Stall-free latency in cycles (compute only, per Section 5.2).
    pub latency_cycles: u64,
}

/// Clipped **unpadded** input-row range demanded by output rows
/// `[oy_s, oy_e]` (inclusive).
pub(crate) fn input_rows_for(shape: &LayerShape, oy_s: u64, oy_e: u64) -> (u64, u64) {
    let s = shape.stride as u64;
    let p = shape.padding as u64;
    let ih = shape.ifmap_h as u64;
    let fh = shape.filter_h as u64;
    let row_s = (oy_s * s).saturating_sub(p).min(ih);
    let row_e = (oy_e * s + fh).saturating_sub(p).min(ih);
    (row_s, row_e.max(row_s))
}

/// Unpadded input rows demanded by one row fold covering output pixels
/// `pixels` (row-major over `O_W`).
pub(crate) fn fold_rows(shape: &LayerShape, pixels: std::ops::Range<u64>) -> (u64, u64) {
    let ow = shape.output_hw().1 as u64;
    let oy_s = pixels.start / ow;
    let oy_e = (pixels.end - 1) / ow;
    input_rows_for(shape, oy_s, oy_e)
}

/// Unique unpadded ifmap rows demanded across the whole layer (the union
/// of all output-row windows; with `stride > F_H` some rows are skipped).
pub(crate) fn unique_rows(shape: &LayerShape) -> u64 {
    let (oh, _) = shape.output_hw();
    let mut total = 0u64;
    let mut covered_to = 0u64;
    for oy in 0..oh as u64 {
        let (rs, re) = input_rows_for(shape, oy, oy);
        let rs = rs.max(covered_to);
        if re > rs {
            total += re - rs;
            covered_to = re;
        } else {
            covered_to = covered_to.max(re);
        }
    }
    total
}

/// Sum of per-row-fold window elements (all channels), the traffic when
/// fold windows are streamed without inter-fold reuse.
fn sum_fold_windows(shape: &LayerShape, plan: &FoldPlan, channels: u64) -> u64 {
    let iw = shape.ifmap_w as u64;
    let mut total = 0;
    for i in 0..plan.row_folds() {
        let (rs, re) = fold_rows(shape, plan.row_fold_pixels(i));
        total += (re - rs) * iw * channels;
    }
    total
}

/// Largest single row-fold window in elements.
fn max_fold_window(shape: &LayerShape, plan: &FoldPlan, channels: u64) -> u64 {
    let iw = shape.ifmap_w as u64;
    (0..plan.row_folds())
        .map(|i| {
            let (rs, re) = fold_rows(shape, plan.row_fold_pixels(i));
            (re - rs) * iw * channels
        })
        .max()
        .unwrap_or(0)
}

/// Decide the residency plan and traffic for one non-depth-wise layer
/// under one loop order.
fn traffic_for_order(
    cfg: &BaselineConfig,
    shape: &LayerShape,
    plan: &FoldPlan,
    order: LoopOrderChoice,
) -> (LayerPlan, u64, u64) {
    let ci = shape.in_channels as u64;
    let icap = cfg.ifmap_cap_elems();
    let fcap = cfg.filter_cap_elems();
    let g = plan.gemm;

    let unique = unique_rows(shape) * shape.ifmap_w as u64 * ci;
    let windows_fit = max_fold_window(shape, plan, ci) <= icap;
    let ifmap_all_fits = shape.ifmap_elems() <= icap;
    let filters_total = g.n * g.k;
    let filters_all_fit = filters_total <= fcap;
    let block_fits = g.n.min(plan.cols as u64) * g.k <= fcap;

    match order {
        LoopOrderChoice::RowsOuter => {
            // The ifmap slides once (overlap retained fold to fold); the
            // filter set is re-streamed per row fold unless fully resident.
            let (imode, ifmap) = if ifmap_all_fits || windows_fit {
                (IfmapMode::Once, unique)
            } else {
                (
                    IfmapMode::StreamedWindows,
                    sum_fold_windows(shape, plan, ci),
                )
            };
            let (fmode, filters) = if filters_all_fit {
                (FilterMode::Once, filters_total)
            } else {
                (FilterMode::PerRowFold, plan.row_folds() * filters_total)
            };
            (
                LayerPlan {
                    order,
                    ifmap_mode: imode,
                    filter_mode: fmode,
                },
                ifmap,
                filters,
            )
        }
        LoopOrderChoice::ColsOuter => {
            // Filter blocks stay resident across the inner row folds; the
            // ifmap re-sweeps once per column fold unless fully resident.
            let (imode, ifmap) = if ifmap_all_fits {
                (IfmapMode::Once, unique)
            } else if windows_fit {
                (IfmapMode::PerColFold, plan.col_folds() * unique)
            } else {
                (
                    IfmapMode::StreamedWindows,
                    plan.col_folds() * sum_fold_windows(shape, plan, ci),
                )
            };
            let (fmode, filters) = if block_fits {
                (FilterMode::Once, filters_total)
            } else {
                (FilterMode::PerRowFold, plan.row_folds() * filters_total)
            };
            (
                LayerPlan {
                    order,
                    ifmap_mode: imode,
                    filter_mode: fmode,
                },
                ifmap,
                filters,
            )
        }
        LoopOrderChoice::DepthwisePerChannel => unreachable!("handled by depthwise path"),
    }
}

/// Pick the plan the baseline uses for a layer (also consumed by the
/// trace-mode schedule).
pub(crate) fn plan_layer(cfg: &BaselineConfig, shape: &LayerShape) -> (LayerPlan, FoldPlan) {
    let gemm = GemmShape::of(shape);
    let plan = FoldPlan::new(cfg.acc.pe_rows, cfg.acc.pe_cols, gemm);
    if shape.depthwise {
        let icap = cfg.ifmap_cap_elems();
        let plane = shape.ifmap_h as u64 * shape.ifmap_w as u64;
        let windows_fit = max_fold_window(shape, &plan, 1) <= icap;
        let imode = if plane <= icap || windows_fit {
            IfmapMode::Once
        } else {
            IfmapMode::StreamedWindows
        };
        (
            LayerPlan {
                order: LoopOrderChoice::DepthwisePerChannel,
                ifmap_mode: imode,
                filter_mode: FilterMode::Once,
            },
            plan,
        )
    } else {
        let (pa, ia, fa) = traffic_for_order(cfg, shape, &plan, LoopOrderChoice::RowsOuter);
        let (pb, ib, fb) = traffic_for_order(cfg, shape, &plan, LoopOrderChoice::ColsOuter);
        if ia + fa <= ib + fb {
            (pa, plan)
        } else {
            (pb, plan)
        }
    }
}

/// Simulate one layer analytically.
pub fn simulate_layer(cfg: &BaselineConfig, shape: &LayerShape) -> LayerSim {
    let (lp, plan) = plan_layer(cfg, shape);
    let g = plan.gemm;
    let (ifmap_loads, filter_loads) = match lp.order {
        LoopOrderChoice::DepthwisePerChannel => {
            let per_channel = match lp.ifmap_mode {
                IfmapMode::Once => unique_rows(shape) * shape.ifmap_w as u64,
                IfmapMode::StreamedWindows => sum_fold_windows(shape, &plan, 1),
                IfmapMode::PerColFold => unreachable!("depth-wise has a single column fold"),
            };
            (per_channel * g.repeats, shape.filter_elems())
        }
        order => {
            let (_, i, f) = traffic_for_order(cfg, shape, &plan, order);
            (i, f)
        }
    };
    LayerSim {
        ifmap_loads,
        filter_loads,
        ofmap_stores: shape.ofmap_elems(),
        compute_cycles: compute_cycles(&plan),
        order: lp.order,
    }
}

/// Simulate a whole network.
pub fn simulate_network(cfg: &BaselineConfig, net: &Network) -> BaselineReport {
    let layers: Vec<LayerSim> = net
        .layers
        .iter()
        .map(|l| simulate_layer(cfg, &l.shape))
        .collect();
    let total_accesses = layers.iter().map(LayerSim::total_accesses).sum();
    let latency_cycles = layers.iter().map(|l| l.compute_cycles).sum();
    BaselineReport {
        total_accesses,
        total_bytes: ByteSize::from_elements(total_accesses, cfg.acc.data_width),
        latency_cycles,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::BufferSplit;
    use smm_arch::AcceleratorConfig;
    use smm_model::zoo;

    fn cfg(kb: u64, split: BufferSplit) -> BaselineConfig {
        BaselineConfig::paper(
            AcceleratorConfig::paper_default(ByteSize::from_kb(kb)),
            split,
        )
    }

    fn conv() -> LayerShape {
        LayerShape {
            ifmap_h: 28,
            ifmap_w: 28,
            in_channels: 128,
            filter_h: 3,
            filter_w: 3,
            num_filters: 128,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    #[test]
    fn generous_buffers_reach_minimum_traffic() {
        let sim = simulate_layer(&cfg(4096, BufferSplit::SA_50_50), &conv());
        let s = conv();
        assert_eq!(sim.ifmap_loads, s.ifmap_elems());
        assert_eq!(sim.filter_loads, s.filter_elems());
        assert_eq!(sim.ofmap_stores, s.ofmap_elems());
    }

    #[test]
    fn tight_filter_buffer_forces_refetch() {
        // 25% of 60kB = 15kB assigned, 7.5k elements active half; the
        // filter set is 147k elements → re-streamed per row fold under
        // RowsOuter, or the ifmap re-sweeps under ColsOuter. Either way
        // traffic must exceed the minimum.
        let s = conv();
        let sim = simulate_layer(&cfg(64, BufferSplit::SA_75_25), &s);
        let min = s.ifmap_elems() + s.filter_elems() + s.ofmap_elems();
        assert!(sim.total_accesses() > min);
    }

    #[test]
    fn bigger_buffers_never_increase_traffic() {
        let s = conv();
        let mut last = u64::MAX;
        for kb in [64, 128, 256, 512, 1024] {
            let sim = simulate_layer(&cfg(kb, BufferSplit::SA_50_50), &s);
            assert!(sim.total_accesses() <= last, "{kb}kB regressed");
            last = sim.total_accesses();
        }
    }

    #[test]
    fn split_matters_for_filter_heavy_layers() {
        // A late, filter-heavy layer should prefer more filter space.
        let s = LayerShape {
            ifmap_h: 7,
            ifmap_w: 7,
            in_channels: 512,
            filter_h: 3,
            filter_w: 3,
            num_filters: 512,
            stride: 1,
            padding: 1,
            depthwise: false,
        };
        let filter_heavy = simulate_layer(&cfg(256, BufferSplit::SA_25_75), &s);
        let ifmap_heavy = simulate_layer(&cfg(256, BufferSplit::SA_75_25), &s);
        assert!(filter_heavy.total_accesses() <= ifmap_heavy.total_accesses());
    }

    #[test]
    fn depthwise_layers_take_per_channel_path() {
        let s = LayerShape {
            ifmap_h: 56,
            ifmap_w: 56,
            in_channels: 128,
            filter_h: 3,
            filter_w: 3,
            num_filters: 128,
            stride: 1,
            padding: 1,
            depthwise: true,
        };
        let sim = simulate_layer(&cfg(64, BufferSplit::SA_50_50), &s);
        assert_eq!(sim.order, LoopOrderChoice::DepthwisePerChannel);
        // Depth-wise demand is inherently minimum-transfer here.
        assert_eq!(sim.ifmap_loads, s.ifmap_elems());
        assert_eq!(sim.filter_loads, s.filter_elems());
    }

    #[test]
    fn unique_rows_with_stride_gaps() {
        // 1×1 filter, stride 2, no padding: only even rows are demanded.
        let s = LayerShape {
            ifmap_h: 8,
            ifmap_w: 8,
            in_channels: 1,
            filter_h: 1,
            filter_w: 1,
            num_filters: 4,
            stride: 2,
            padding: 0,
            depthwise: false,
        };
        assert_eq!(unique_rows(&s), 4);
    }

    #[test]
    fn unique_rows_dense_conv_covers_everything() {
        let s = conv();
        assert_eq!(unique_rows(&s), 28);
    }

    #[test]
    fn compute_cycles_independent_of_buffers() {
        let s = conv();
        let a = simulate_layer(&cfg(64, BufferSplit::SA_25_75), &s);
        let b = simulate_layer(&cfg(1024, BufferSplit::SA_75_25), &s);
        assert_eq!(a.compute_cycles, b.compute_cycles);
    }

    #[test]
    fn network_report_sums_layers() {
        let net = zoo::resnet18();
        let c = cfg(256, BufferSplit::SA_50_50);
        let rep = simulate_network(&c, &net);
        assert_eq!(rep.layers.len(), 21);
        let sum: u64 = rep.layers.iter().map(LayerSim::total_accesses).sum();
        assert_eq!(rep.total_accesses, sum);
        assert_eq!(
            rep.total_bytes,
            ByteSize::from_elements(sum, c.acc.data_width)
        );
        assert!(rep.latency_cycles > 0);
    }

    #[test]
    fn fc_layers_are_fetched_once() {
        let s = LayerShape {
            ifmap_h: 1,
            ifmap_w: 1,
            in_channels: 1024,
            filter_h: 1,
            filter_w: 1,
            num_filters: 1000,
            stride: 1,
            padding: 0,
            depthwise: false,
        };
        // One row fold → filters can always stream exactly once.
        let sim = simulate_layer(&cfg(64, BufferSplit::SA_50_50), &s);
        assert_eq!(sim.filter_loads, s.filter_elems());
        assert_eq!(sim.ifmap_loads, 1024);
    }
}
