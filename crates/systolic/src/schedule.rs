//! Executable trace-mode schedule.
//!
//! Replays the exact residency plan chosen by `analytic::plan_layer`
//! against element-granular [`smm_trace`] scratchpads, charging every
//! miss to DRAM counters. This is the cross-validation harness: the
//! fold-level formulas in [`analytic`] and the element-by-element replay
//! here must produce identical traffic, which the tests assert across
//! layer shapes and buffer sizes.

use crate::analytic::{self, plan_layer, FilterMode, IfmapMode, LayerSim, LoopOrderChoice};
use crate::buffers::BaselineConfig;
use crate::compute::compute_cycles;
use smm_model::LayerShape;
use smm_trace::{AddressMap, DramCounter, Scratchpad};

/// Traffic observed by the trace-mode replay (elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSim {
    pub ifmap_loads: u64,
    pub filter_loads: u64,
    pub ofmap_stores: u64,
    pub compute_cycles: u64,
}

impl TraceSim {
    pub fn total_accesses(&self) -> u64 {
        self.ifmap_loads + self.filter_loads + self.ofmap_stores
    }

    /// Compare against an analytical result.
    pub fn matches(&self, sim: &LayerSim) -> bool {
        self.ifmap_loads == sim.ifmap_loads
            && self.filter_loads == sim.filter_loads
            && self.ofmap_stores == sim.ofmap_stores
            && self.compute_cycles == sim.compute_cycles
    }
}

/// Fill exactly the input rows the fold's output rows demand, window by
/// window — with `stride > F_H` the contiguous fold range contains gap
/// rows no window touches, and the analytical `unique_rows` count is
/// gap-aware.
fn fill_fold_windows(
    sp: &mut Scratchpad,
    map: &AddressMap,
    shape: &LayerShape,
    c: u64,
    pixels: std::ops::Range<u64>,
) {
    let ow = shape.output_hw().1 as u64;
    let oy_s = pixels.start / ow;
    let oy_e = (pixels.end - 1) / ow;
    for oy in oy_s..=oy_e {
        let (rs, re) = analytic::input_rows_for(shape, oy, oy);
        if re > rs {
            sp.fill(map.ifmap_rows(c, rs..re))
                .expect("window must fit per plan");
        }
    }
}

/// Replay one layer element by element.
pub fn trace_layer(cfg: &BaselineConfig, shape: &LayerShape) -> TraceSim {
    let _span = smm_obs::span!("baseline.trace_layer");
    smm_obs::add(smm_obs::Counter::BaselineLayersTraced, 1);
    let (lp, plan) = plan_layer(cfg, shape);
    let ci = shape.in_channels as u64;
    let nf = shape.num_filters as u64;
    let map = AddressMap::new(
        shape.ifmap_h as u64,
        shape.ifmap_w as u64,
        ci,
        shape.single_filter_elems(),
        nf,
        shape.output_hw().0 as u64,
        shape.output_hw().1 as u64,
        shape.out_channels() as u64,
    );
    let dram_i = DramCounter::new();
    let dram_f = DramCounter::new();
    let dram_o = DramCounter::new();
    let mut sp_i = Scratchpad::new(cfg.ifmap_cap_elems(), dram_i.clone());
    let mut sp_f = Scratchpad::new(cfg.filter_cap_elems(), dram_f.clone());

    match lp.order {
        LoopOrderChoice::DepthwisePerChannel => {
            for c in 0..ci {
                // One tiny filter per channel; stream it (it is consumed
                // once per channel pass).
                sp_f.stream(map.filters(c..c + 1));
                for i in 0..plan.row_folds() {
                    let pixels = plan.row_fold_pixels(i);
                    let n_px = pixels.end - pixels.start;
                    let (rs, re) = analytic::fold_rows(shape, pixels.clone());
                    match lp.ifmap_mode {
                        IfmapMode::Once => {
                            if rs > 0 {
                                sp_i.evict(map.ifmap_rows(c, 0..rs));
                            }
                            fill_fold_windows(&mut sp_i, &map, shape, c, pixels.clone());
                        }
                        IfmapMode::StreamedWindows => {
                            if re > rs {
                                sp_i.stream(map.ifmap_rows(c, rs..re));
                            }
                        }
                        IfmapMode::PerColFold => {
                            unreachable!("depth-wise has a single column fold")
                        }
                    }
                    dram_o.write(n_px);
                }
                sp_i.evict_all();
            }
        }
        LoopOrderChoice::RowsOuter => {
            if lp.filter_mode == FilterMode::Once {
                sp_f.fill(map.filters(0..nf))
                    .expect("filters must fit per plan");
            }
            for i in 0..plan.row_folds() {
                let pixels = plan.row_fold_pixels(i);
                let n_px = pixels.end - pixels.start;
                let (rs, re) = analytic::fold_rows(shape, pixels.clone());
                for c in 0..ci {
                    match lp.ifmap_mode {
                        IfmapMode::Once => {
                            if rs > 0 {
                                sp_i.evict(map.ifmap_rows(c, 0..rs));
                            }
                            fill_fold_windows(&mut sp_i, &map, shape, c, pixels.clone());
                        }
                        IfmapMode::StreamedWindows => {
                            if re > rs {
                                sp_i.stream(map.ifmap_rows(c, rs..re));
                            }
                        }
                        IfmapMode::PerColFold => unreachable!("not chosen under RowsOuter"),
                    }
                }
                for j in 0..plan.col_folds() {
                    let fs = plan.col_fold_filters(j);
                    if lp.filter_mode == FilterMode::PerRowFold {
                        sp_f.stream(map.filters(fs.clone()));
                    }
                    dram_o.write(n_px * (fs.end - fs.start));
                }
            }
        }
        LoopOrderChoice::ColsOuter => {
            for j in 0..plan.col_folds() {
                let fs = plan.col_fold_filters(j);
                if lp.filter_mode == FilterMode::Once {
                    sp_f.fill(map.filters(fs.clone()))
                        .expect("filter block must fit per plan");
                }
                for i in 0..plan.row_folds() {
                    let pixels = plan.row_fold_pixels(i);
                    let n_px = pixels.end - pixels.start;
                    let (rs, re) = analytic::fold_rows(shape, pixels.clone());
                    for c in 0..ci {
                        match lp.ifmap_mode {
                            // Whole ifmap resident: fill and keep across
                            // column folds.
                            IfmapMode::Once => {
                                fill_fold_windows(&mut sp_i, &map, shape, c, pixels.clone());
                            }
                            // Re-sweep per column fold, sliding within one.
                            IfmapMode::PerColFold => {
                                if rs > 0 {
                                    sp_i.evict(map.ifmap_rows(c, 0..rs));
                                }
                                fill_fold_windows(&mut sp_i, &map, shape, c, pixels.clone());
                            }
                            IfmapMode::StreamedWindows => {
                                if re > rs {
                                    sp_i.stream(map.ifmap_rows(c, rs..re));
                                }
                            }
                        }
                    }
                    if lp.filter_mode == FilterMode::PerRowFold {
                        sp_f.stream(map.filters(fs.clone()));
                    }
                    dram_o.write(n_px * (fs.end - fs.start));
                }
                if lp.filter_mode == FilterMode::Once {
                    sp_f.evict(map.filters(fs.clone()));
                }
                if lp.ifmap_mode == IfmapMode::PerColFold {
                    sp_i.evict_all();
                }
            }
        }
    }

    TraceSim {
        ifmap_loads: dram_i.reads(),
        filter_loads: dram_f.reads(),
        ofmap_stores: dram_o.writes(),
        compute_cycles: compute_cycles(&plan),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::simulate_layer;
    use crate::buffers::BufferSplit;
    use smm_arch::{AcceleratorConfig, ByteSize};

    fn cfg(kb: u64, split: BufferSplit) -> BaselineConfig {
        BaselineConfig::paper(
            AcceleratorConfig::paper_default(ByteSize::from_kb(kb)),
            split,
        )
    }

    fn check(shape: &LayerShape, kb: u64, split: BufferSplit) {
        let c = cfg(kb, split);
        let analytic = simulate_layer(&c, shape);
        let traced = trace_layer(&c, shape);
        assert!(
            traced.matches(&analytic),
            "mismatch at {kb}kB {}: analytic {analytic:?} vs trace {traced:?}",
            split.label()
        );
    }

    fn conv(ih: u32, ci: u32, f: u32, nf: u32, s: u32, p: u32, dw: bool) -> LayerShape {
        let shape = LayerShape {
            ifmap_h: ih,
            ifmap_w: ih,
            in_channels: ci,
            filter_h: f,
            filter_w: f,
            num_filters: nf,
            stride: s,
            padding: p,
            depthwise: dw,
        };
        shape.validate().unwrap();
        shape
    }

    #[test]
    fn trace_matches_analytic_for_standard_conv() {
        let s = conv(14, 64, 3, 96, 1, 1, false);
        for kb in [16, 64, 256, 1024] {
            for split in BufferSplit::ALL {
                check(&s, kb, split);
            }
        }
    }

    #[test]
    fn trace_matches_analytic_for_strided_conv() {
        let s = conv(28, 16, 3, 32, 2, 1, false);
        for kb in [16, 64, 256] {
            check(&s, kb, BufferSplit::SA_50_50);
        }
    }

    #[test]
    fn trace_matches_analytic_for_depthwise() {
        let s = conv(28, 64, 3, 64, 1, 1, true);
        for kb in [8, 64, 256] {
            check(&s, kb, BufferSplit::SA_50_50);
        }
    }

    #[test]
    fn trace_matches_analytic_for_pointwise() {
        let s = conv(14, 128, 1, 256, 1, 0, false);
        for kb in [16, 64, 256] {
            for split in BufferSplit::ALL {
                check(&s, kb, split);
            }
        }
    }

    #[test]
    fn trace_matches_analytic_for_fc() {
        let s = conv(1, 512, 1, 1000, 1, 0, false);
        check(&s, 64, BufferSplit::SA_25_75);
        check(&s, 64, BufferSplit::SA_75_25);
    }

    #[test]
    fn trace_matches_analytic_for_large_filter() {
        let s = conv(14, 32, 5, 48, 1, 2, false);
        for kb in [16, 64] {
            check(&s, kb, BufferSplit::SA_50_50);
        }
    }

    #[test]
    fn trace_matches_under_starved_buffers() {
        // 8kB GLB − 4kB ofmap leaves 2kB per side at 50/50, 1kB active:
        // everything must stream, and the counts must still agree.
        let s = conv(28, 32, 3, 64, 1, 1, false);
        check(&s, 8, BufferSplit::SA_50_50);
    }
}
