//! Alternative systolic dataflows (Section 2.3 of the paper).
//!
//! The baseline the paper compares against is output-stationary (OS),
//! but SCALE-Sim — and the paper's background — also describe
//! weight-stationary (WS) and input-stationary (IS) mappings. This
//! module provides analytical cycle and traffic models for all three so
//! the baseline's dataflow choice can be ablated:
//!
//! - **OS** — psums never leave the array; the reduction dimension `K`
//!   streams through. Folds: `⌈M/R⌉·⌈N/C⌉`.
//! - **WS** — a `R×C` tile of the filter matrix (K rows × N columns)
//!   stays resident; the `M` activations stream through. Folds:
//!   `⌈K/R⌉·⌈N/C⌉`. Partial sums leave the array every fold and must be
//!   re-accumulated across the `⌈K/R⌉` reduction folds — through the
//!   small ofmap buffer when the slice fits, spilling off-chip when not.
//! - **IS** — a `R×C` tile of the im2col input matrix (K rows × M
//!   columns) stays resident; the `N` filters stream. Folds:
//!   `⌈K/R⌉·⌈M/C⌉`, with the same psum re-accumulation behaviour.
//!
//! The element-exact trace mode covers OS only (the configuration the
//! paper evaluates); WS/IS are analytical.

use crate::analytic::LayerSim;
use crate::buffers::BaselineConfig;
use crate::compute::fold_cycles;
use crate::gemm::{FoldPlan, GemmShape};
use serde::{Deserialize, Serialize};
use smm_model::{LayerShape, Network};

/// The mapping kept stationary in the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dataflow {
    /// Output stationary — the paper's baseline configuration.
    OutputStationary,
    /// Weight stationary (TPU-style).
    WeightStationary,
    /// Input stationary.
    InputStationary,
}

impl Dataflow {
    pub const ALL: [Dataflow; 3] = [
        Dataflow::OutputStationary,
        Dataflow::WeightStationary,
        Dataflow::InputStationary,
    ];

    /// Short label (`OS` / `WS` / `IS`).
    pub fn label(self) -> &'static str {
        match self {
            Dataflow::OutputStationary => "OS",
            Dataflow::WeightStationary => "WS",
            Dataflow::InputStationary => "IS",
        }
    }
}

/// Per-layer result of a WS/IS simulation (OS goes through
/// [`crate::analytic::simulate_layer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataflowSim {
    pub ifmap_loads: u64,
    pub filter_loads: u64,
    pub ofmap_stores: u64,
    /// Off-chip partial-sum traffic (reads + writes) caused by reduction
    /// folds that overflow the ofmap staging buffer.
    pub psum_spills: u64,
    pub compute_cycles: u64,
}

impl DataflowSim {
    pub fn total_accesses(&self) -> u64 {
        self.ifmap_loads + self.filter_loads + self.ofmap_stores + self.psum_spills
    }

    fn from_layer_sim(sim: &LayerSim) -> Self {
        DataflowSim {
            ifmap_loads: sim.ifmap_loads,
            filter_loads: sim.filter_loads,
            ofmap_stores: sim.ofmap_stores,
            psum_spills: 0,
            compute_cycles: sim.compute_cycles,
        }
    }
}

/// Stall-free compute cycles of a layer under a dataflow.
pub fn dataflow_compute_cycles(cfg: &BaselineConfig, shape: &LayerShape, df: Dataflow) -> u64 {
    let g = GemmShape::of(shape);
    let (r, c) = (cfg.acc.pe_rows, cfg.acc.pe_cols);
    match df {
        Dataflow::OutputStationary => crate::compute::compute_cycles(&FoldPlan::new(r, c, g)),
        Dataflow::WeightStationary => {
            // K over rows, N over columns; the M activations stream
            // through each fold: fill R, stream M, drain C.
            let folds = g.k.div_ceil(r as u64) * g.n.div_ceil(c as u64);
            g.repeats * folds * (r as u64 + c as u64 + g.m - 1)
        }
        Dataflow::InputStationary => {
            let folds = g.k.div_ceil(r as u64) * g.m.div_ceil(c as u64);
            g.repeats * folds * (r as u64 + c as u64 + g.n - 1)
        }
    }
}

/// Off-chip partial-sum traffic for a stationary dataflow with
/// `k_folds` reduction folds over an output slice of `slice` elements:
/// each non-final fold writes the slice out and reads it back unless it
/// fits the staging buffer.
fn psum_spills(cfg: &BaselineConfig, k_folds: u64, slice: u64, slices: u64) -> u64 {
    if k_folds <= 1 {
        return 0;
    }
    let staging = cfg.ofmap_buffer.halved().elements(cfg.acc.data_width);
    if slice <= staging {
        return 0;
    }
    slices * (k_folds - 1) * slice * 2
}

/// Simulate one layer under a dataflow. OS delegates to the calibrated
/// per-layer model; WS/IS use the stationary-tile models above.
pub fn simulate_layer_dataflow(
    cfg: &BaselineConfig,
    shape: &LayerShape,
    df: Dataflow,
) -> DataflowSim {
    if df == Dataflow::OutputStationary {
        return DataflowSim::from_layer_sim(&crate::analytic::simulate_layer(cfg, shape));
    }
    let g = GemmShape::of(shape);
    let (r, c) = (cfg.acc.pe_rows as u64, cfg.acc.pe_cols as u64);
    let k_folds = g.k.div_ceil(r);
    let unique_ifmap = shape.ifmap_elems();
    let filters = shape.filter_elems();
    let ofmap = shape.ofmap_elems();
    match df {
        Dataflow::WeightStationary => {
            // Filters loaded once (they are the stationary operand); the
            // ifmap re-streams once per column fold unless it fits the
            // ifmap buffer.
            let n_folds = g.n.div_ceil(c);
            let ifmap_passes = if unique_ifmap <= cfg.ifmap_cap_elems() {
                1
            } else {
                n_folds
            };
            // Output slice per column fold: M × (filters in the fold).
            let slice = g.m * c.min(g.n);
            DataflowSim {
                ifmap_loads: ifmap_passes * unique_ifmap,
                filter_loads: filters,
                ofmap_stores: ofmap,
                psum_spills: g.repeats * psum_spills(cfg, k_folds, slice, n_folds),
                compute_cycles: dataflow_compute_cycles(cfg, shape, df),
            }
        }
        Dataflow::InputStationary => {
            // The im2col input tile is stationary; filters re-stream once
            // per pixel fold unless they fit the filter buffer.
            let m_folds = g.m.div_ceil(c);
            let filter_passes = if filters <= cfg.filter_cap_elems() {
                1
            } else {
                m_folds
            };
            let slice = g.n * c.min(g.m);
            DataflowSim {
                ifmap_loads: unique_ifmap,
                filter_loads: filter_passes * filters,
                ofmap_stores: ofmap,
                psum_spills: g.repeats * psum_spills(cfg, k_folds, slice, m_folds),
                compute_cycles: dataflow_compute_cycles(cfg, shape, df),
            }
        }
        Dataflow::OutputStationary => unreachable!("handled above"),
    }
}

/// Network totals under a dataflow.
pub fn simulate_network_dataflow(cfg: &BaselineConfig, net: &Network, df: Dataflow) -> (u64, u64) {
    let mut accesses = 0;
    let mut cycles = 0;
    for l in &net.layers {
        let sim = simulate_layer_dataflow(cfg, &l.shape, df);
        accesses += sim.total_accesses();
        cycles += sim.compute_cycles;
    }
    (accesses, cycles)
}

/// Keep `fold_cycles` linked for the docs above.
#[allow(dead_code)]
fn _doc_anchor() {
    let _ = fold_cycles;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::BufferSplit;
    use smm_arch::{AcceleratorConfig, ByteSize};
    use smm_model::zoo;

    fn cfg(kb: u64) -> BaselineConfig {
        BaselineConfig::paper(
            AcceleratorConfig::paper_default(ByteSize::from_kb(kb)),
            BufferSplit::SA_50_50,
        )
    }

    fn conv() -> LayerShape {
        LayerShape {
            ifmap_h: 28,
            ifmap_w: 28,
            in_channels: 64,
            filter_h: 3,
            filter_w: 3,
            num_filters: 96,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    #[test]
    fn os_matches_the_calibrated_model() {
        let c = cfg(256);
        let s = conv();
        let os = simulate_layer_dataflow(&c, &s, Dataflow::OutputStationary);
        let base = crate::analytic::simulate_layer(&c, &s);
        assert_eq!(os.total_accesses(), base.total_accesses());
        assert_eq!(os.compute_cycles, base.compute_cycles);
        assert_eq!(os.psum_spills, 0);
    }

    #[test]
    fn stationary_dataflows_spill_psums_on_deep_reductions() {
        // K = 3·3·64 = 576 ≫ 16 rows → 36 reduction folds; the output
        // slice (784×16) dwarfs the 2 kB staging half.
        let c = cfg(256);
        let ws = simulate_layer_dataflow(&c, &conv(), Dataflow::WeightStationary);
        assert!(ws.psum_spills > 0);
        // IS's slice is N × (pixels per fold): needs a wide filter set to
        // overflow the 2 kB staging half.
        let wide = LayerShape {
            num_filters: 256,
            ..conv()
        };
        let is = simulate_layer_dataflow(&c, &wide, Dataflow::InputStationary);
        assert!(is.psum_spills > 0);
    }

    #[test]
    fn shallow_reductions_do_not_spill() {
        // A 1×1 conv with 16 channels: K = 16 ≤ R → single reduction fold.
        let s = LayerShape {
            ifmap_h: 14,
            ifmap_w: 14,
            in_channels: 16,
            filter_h: 1,
            filter_w: 1,
            num_filters: 32,
            stride: 1,
            padding: 0,
            depthwise: false,
        };
        for df in [Dataflow::WeightStationary, Dataflow::InputStationary] {
            let sim = simulate_layer_dataflow(&cfg(64), &s, df);
            assert_eq!(sim.psum_spills, 0, "{df:?}");
        }
    }

    #[test]
    fn ws_loads_filters_once() {
        let sim = simulate_layer_dataflow(&cfg(64), &conv(), Dataflow::WeightStationary);
        assert_eq!(sim.filter_loads, conv().filter_elems());
    }

    #[test]
    fn os_wins_on_conv_layers_at_small_buffers() {
        // The paper's choice of OS for the baseline is sound: for deep
        // convolution reductions, the stationary dataflows pay heavy psum
        // traffic.
        let c = cfg(64);
        let os = simulate_layer_dataflow(&c, &conv(), Dataflow::OutputStationary);
        let ws = simulate_layer_dataflow(&c, &conv(), Dataflow::WeightStationary);
        let is = simulate_layer_dataflow(&c, &conv(), Dataflow::InputStationary);
        assert!(os.total_accesses() <= ws.total_accesses());
        assert!(os.total_accesses() <= is.total_accesses());
    }

    #[test]
    fn network_totals_accumulate() {
        let c = cfg(256);
        let net = zoo::resnet18();
        let (acc_ws, cyc_ws) = simulate_network_dataflow(&c, &net, Dataflow::WeightStationary);
        assert!(acc_ws > 0);
        assert!(cyc_ws > 0);
        let (acc_os, _) = simulate_network_dataflow(&c, &net, Dataflow::OutputStationary);
        let base = crate::analytic::simulate_network(&c, &net);
        assert_eq!(acc_os, base.total_accesses);
    }

    #[test]
    fn labels() {
        assert_eq!(Dataflow::WeightStationary.label(), "WS");
        assert_eq!(Dataflow::ALL.len(), 3);
    }
}
