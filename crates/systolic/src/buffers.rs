//! The baseline's fixed buffer partitions (Section 4 of the paper).

use serde::{Deserialize, Serialize};
use smm_arch::{AcceleratorConfig, ByteSize};

/// A fixed ifmap/filter split of the remaining buffer space (after the
/// 4 kB ofmap buffer is carved out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferSplit {
    /// Percentage of the split space assigned to the ifmap buffer.
    pub ifmap_pct: u32,
    /// Percentage assigned to the filter buffer.
    pub filter_pct: u32,
}

impl BufferSplit {
    /// `sa_25_75`: 25 % ifmap / 75 % filters.
    pub const SA_25_75: BufferSplit = BufferSplit {
        ifmap_pct: 25,
        filter_pct: 75,
    };
    /// `sa_50_50`.
    pub const SA_50_50: BufferSplit = BufferSplit {
        ifmap_pct: 50,
        filter_pct: 50,
    };
    /// `sa_75_25`.
    pub const SA_75_25: BufferSplit = BufferSplit {
        ifmap_pct: 75,
        filter_pct: 25,
    };

    /// The three baseline configurations evaluated in the paper.
    pub const ALL: [BufferSplit; 3] = [Self::SA_25_75, Self::SA_50_50, Self::SA_75_25];

    /// Figure 5 label, e.g. `sa_25_75`.
    pub fn label(&self) -> String {
        format!("sa_{}_{}", self.ifmap_pct, self.filter_pct)
    }
}

/// The complete baseline accelerator configuration: the shared
/// accelerator spec plus the static buffer partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineConfig {
    pub acc: AcceleratorConfig,
    pub split: BufferSplit,
    /// Fixed ofmap staging buffer ("a small ofmap buffer size of 4 kB for
    /// all configurations").
    pub ofmap_buffer: ByteSize,
}

impl BaselineConfig {
    /// Paper setup: given total on-chip budget and a split.
    pub fn paper(acc: AcceleratorConfig, split: BufferSplit) -> Self {
        BaselineConfig {
            acc,
            split,
            ofmap_buffer: ByteSize::from_kb(4),
        }
    }

    /// Space split between ifmap and filter buffers (total minus ofmap).
    fn split_space(&self) -> ByteSize {
        self.acc.glb.saturating_sub(self.ofmap_buffer)
    }

    /// Active-half capacity of the ifmap buffer in elements. "The buffers
    /// in SCALE-Sim are double-buffered … the assigned buffer size is
    /// divided in half", so only half the assigned size holds live data.
    pub fn ifmap_cap_elems(&self) -> u64 {
        let assigned = ByteSize(self.split_space().bytes() * self.split.ifmap_pct as u64 / 100);
        assigned.halved().elements(self.acc.data_width)
    }

    /// Active-half capacity of the filter buffer in elements.
    pub fn filter_cap_elems(&self) -> u64 {
        let assigned = ByteSize(self.split_space().bytes() * self.split.filter_pct as u64 / 100);
        assigned.halved().elements(self.acc.data_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure_5() {
        assert_eq!(BufferSplit::SA_25_75.label(), "sa_25_75");
        assert_eq!(BufferSplit::SA_50_50.label(), "sa_50_50");
        assert_eq!(BufferSplit::SA_75_25.label(), "sa_75_25");
    }

    #[test]
    fn capacities_halve_for_double_buffering() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        let cfg = BaselineConfig::paper(acc, BufferSplit::SA_50_50);
        // (64 − 4) kB split 50/50 → 30 kB each, half active → 15 kB.
        assert_eq!(cfg.ifmap_cap_elems(), 15 * 1024);
        assert_eq!(cfg.filter_cap_elems(), 15 * 1024);
    }

    #[test]
    fn asymmetric_split() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        let cfg = BaselineConfig::paper(acc, BufferSplit::SA_25_75);
        assert_eq!(cfg.ifmap_cap_elems(), 60 * 1024 / 4 / 2);
        assert_eq!(cfg.filter_cap_elems(), 60 * 1024 * 3 / 4 / 2);
    }

    #[test]
    fn wider_data_reduces_element_capacity() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64))
            .with_data_width(smm_arch::DataWidth::W32);
        let cfg = BaselineConfig::paper(acc, BufferSplit::SA_50_50);
        assert_eq!(cfg.ifmap_cap_elems(), 15 * 1024 / 4);
    }

    #[test]
    fn tiny_glb_saturates_to_zero_split_space() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(2));
        let cfg = BaselineConfig::paper(acc, BufferSplit::SA_50_50);
        assert_eq!(cfg.ifmap_cap_elems(), 0);
    }
}
