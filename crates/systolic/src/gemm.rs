//! im2col GEMM view of a layer and its output-stationary fold plan.

use smm_model::LayerShape;

/// GEMM dimensions of one layer after im2col:
/// `M = O_H·O_W` output pixels, `N` filters, `K` reduction depth.
/// Depth-wise layers decompose into `repeats` independent `(M, 1, K)`
/// GEMMs (one per channel); everything else has `repeats = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    pub m: u64,
    pub n: u64,
    pub k: u64,
    pub repeats: u64,
}

impl GemmShape {
    /// Build the GEMM view of a layer.
    pub fn of(shape: &LayerShape) -> Self {
        let (m, n, k) = shape.gemm_dims();
        GemmShape {
            m,
            n,
            k,
            repeats: if shape.depthwise {
                shape.in_channels as u64
            } else {
                1
            },
        }
    }

    /// Total MACs represented (matches `LayerShape::macs`).
    pub fn macs(&self) -> u64 {
        self.m * self.n * self.k * self.repeats
    }
}

/// Output-stationary fold decomposition on an `R × C` array: row folds
/// tile `M` by `R`, column folds tile `N` by `C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldPlan {
    pub rows: usize,
    pub cols: usize,
    pub gemm: GemmShape,
}

impl FoldPlan {
    pub fn new(rows: usize, cols: usize, gemm: GemmShape) -> Self {
        assert!(rows > 0 && cols > 0, "PE array must be non-empty");
        FoldPlan { rows, cols, gemm }
    }

    /// Number of row folds `⌈M/R⌉`.
    pub fn row_folds(&self) -> u64 {
        self.gemm.m.div_ceil(self.rows as u64)
    }

    /// Number of column folds `⌈N/C⌉`.
    pub fn col_folds(&self) -> u64 {
        self.gemm.n.div_ceil(self.cols as u64)
    }

    /// Output-pixel range of row fold `i`.
    pub fn row_fold_pixels(&self, i: u64) -> std::ops::Range<u64> {
        let start = i * self.rows as u64;
        start..(start + self.rows as u64).min(self.gemm.m)
    }

    /// Filter range of column fold `j`.
    pub fn col_fold_filters(&self, j: u64) -> std::ops::Range<u64> {
        let start = j * self.cols as u64;
        start..(start + self.cols as u64).min(self.gemm.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> LayerShape {
        LayerShape {
            ifmap_h: 28,
            ifmap_w: 28,
            in_channels: 128,
            filter_h: 3,
            filter_w: 3,
            num_filters: 96,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    #[test]
    fn gemm_dims_of_conv() {
        let g = GemmShape::of(&conv());
        assert_eq!(g.m, 28 * 28);
        assert_eq!(g.n, 96);
        assert_eq!(g.k, 9 * 128);
        assert_eq!(g.repeats, 1);
        assert_eq!(g.macs(), conv().macs());
    }

    #[test]
    fn gemm_dims_of_depthwise() {
        let s = LayerShape {
            depthwise: true,
            num_filters: 128,
            ..conv()
        };
        let g = GemmShape::of(&s);
        assert_eq!((g.m, g.n, g.k), (784, 1, 9));
        assert_eq!(g.repeats, 128);
        assert_eq!(g.macs(), s.macs());
    }

    #[test]
    fn fold_counts() {
        let p = FoldPlan::new(16, 16, GemmShape::of(&conv()));
        assert_eq!(p.row_folds(), 49); // 784 / 16
        assert_eq!(p.col_folds(), 6); // ⌈96/16⌉
    }

    #[test]
    fn fold_ranges_cover_without_overlap() {
        let p = FoldPlan::new(16, 16, GemmShape::of(&conv()));
        let mut pixels = 0;
        for i in 0..p.row_folds() {
            let r = p.row_fold_pixels(i);
            pixels += r.end - r.start;
        }
        assert_eq!(pixels, p.gemm.m);
        let mut filters = 0;
        for j in 0..p.col_folds() {
            let r = p.col_fold_filters(j);
            filters += r.end - r.start;
        }
        assert_eq!(filters, p.gemm.n);
    }

    #[test]
    fn last_fold_is_partial() {
        let p = FoldPlan::new(16, 16, GemmShape::of(&conv()));
        let last = p.col_fold_filters(p.col_folds() - 1);
        assert_eq!(last.end - last.start, 96 - 5 * 16);
    }
}
