//! SCALE-Sim's analytical output-stationary cycle model.
//!
//! Each OS fold streams `K` partial sums into an `R × C` array and drains
//! the results: `2R + C + K − 2` cycles (the SCALE-Sim systolic fill +
//! drain + reduction pipeline). The paper runs the baseline "for zero
//! stalls", so baseline latency is exactly these compute cycles,
//! independent of buffer sizes.

use crate::gemm::{FoldPlan, GemmShape};
use smm_model::LayerShape;

/// Cycles of one output-stationary fold.
pub fn fold_cycles(rows: usize, cols: usize, k: u64) -> u64 {
    2 * rows as u64 + cols as u64 + k - 2
}

/// Stall-free compute cycles of one layer on an `rows × cols`
/// output-stationary array — the fold decomposition and cycle model in
/// one call. This is the per-tile compute model `smm-sim` drives its
/// discrete-event simulation with when asked for systolic (rather than
/// ideal-MAC) compute timing.
pub fn layer_compute_cycles(shape: &LayerShape, rows: usize, cols: usize) -> u64 {
    compute_cycles(&FoldPlan::new(rows, cols, GemmShape::of(shape)))
}

/// Total stall-free compute cycles for a fold plan.
///
/// Depth-wise layers are `repeats` independent `(M, 1, K)` GEMMs; an
/// output-stationary array maps those channels across its columns (each
/// column accumulates its own channel), so the channel dimension folds by
/// the column count instead of serializing.
pub fn compute_cycles(plan: &FoldPlan) -> u64 {
    let per_fold = fold_cycles(plan.rows, plan.cols, plan.gemm.k);
    if plan.gemm.repeats > 1 {
        plan.gemm.repeats.div_ceil(plan.cols as u64) * plan.row_folds() * per_fold
    } else {
        plan.row_folds() * plan.col_folds() * per_fold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmShape;

    #[test]
    fn single_fold_formula() {
        assert_eq!(fold_cycles(16, 16, 100), 32 + 16 + 100 - 2);
    }

    #[test]
    fn folds_multiply() {
        let g = GemmShape {
            m: 64,
            n: 32,
            k: 10,
            repeats: 1,
        };
        let p = FoldPlan::new(16, 16, g);
        assert_eq!(compute_cycles(&p), 4 * 2 * (32 + 16 + 10 - 2));
    }

    #[test]
    fn depthwise_channels_fold_across_columns() {
        let g = GemmShape {
            m: 64,
            n: 1,
            k: 9,
            repeats: 32,
        };
        let p = FoldPlan::new(16, 16, g);
        // 32 channels over 16 columns → 2 channel folds, not 32.
        assert_eq!(compute_cycles(&p), 2 * 4 * (32 + 16 + 9 - 2));
    }

    #[test]
    fn layer_helper_matches_explicit_fold_plan() {
        let shape = LayerShape {
            ifmap_h: 16,
            ifmap_w: 16,
            in_channels: 8,
            filter_h: 3,
            filter_w: 3,
            num_filters: 16,
            stride: 1,
            padding: 1,
            depthwise: false,
        };
        let plan = FoldPlan::new(16, 16, GemmShape::of(&shape));
        assert_eq!(layer_compute_cycles(&shape, 16, 16), compute_cycles(&plan));
        assert!(layer_compute_cycles(&shape, 16, 16) > 0);
    }

    #[test]
    fn bigger_array_fills_longer_but_folds_less() {
        let g = GemmShape {
            m: 256,
            n: 256,
            k: 64,
            repeats: 1,
        };
        let small = FoldPlan::new(8, 8, g);
        let large = FoldPlan::new(32, 32, g);
        // The larger array needs 16× fewer folds; total cycles must drop.
        assert!(compute_cycles(&large) < compute_cycles(&small));
    }
}
