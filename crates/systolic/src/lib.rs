//! SCALE-Sim-like output-stationary systolic-array baseline.
//!
//! The paper's baseline is "a systolic array implemented on the SCALE-Sim
//! simulator": a 16×16 output-stationary PE array with **separate**
//! ifmap/filter buffers in fixed 25–75 / 50–50 / 75–25 splits, a small
//! 4 kB ofmap buffer, and double buffering *inside* each assigned size
//! (half the buffer active, half prefetching). This crate re-implements
//! that baseline behaviourally:
//!
//! - [`gemm`] — im2col GEMM view of a layer and the output-stationary
//!   fold decomposition.
//! - [`compute`] — SCALE-Sim's analytical cycle model
//!   (`2R + C + K − 2` per fold, zero stalls).
//! - [`buffers`] — the fixed buffer partitions.
//! - [`analytic`] — fold-level DRAM traffic, evaluating both loop orders
//!   (row-folds-outer vs. column-folds-outer) and keeping the cheaper —
//!   a per-layer best case that keeps the baseline honest.
//! - [`schedule`] — an executable trace-mode schedule over
//!   [`smm_trace`] scratchpads that cross-validates the analytical
//!   counts element by element.
//!
//! Consistent with the paper's note that "unlike in the baseline, we
//! consider padding of the ifmap in our estimations", the baseline
//! counts *unpadded* ifmap traffic.
//!
//! # Example
//!
//! ```
//! use smm_arch::{AcceleratorConfig, ByteSize};
//! use smm_systolic::{simulate_network, BaselineConfig, BufferSplit};
//! use smm_model::zoo;
//!
//! let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
//! let cfg = BaselineConfig::paper(acc, BufferSplit::SA_50_50);
//! let report = simulate_network(&cfg, &zoo::resnet18());
//! assert_eq!(report.layers.len(), 21);
//! assert!(report.total_bytes.mb() > 1.0);
//! ```

pub mod analytic;
pub mod buffers;
pub mod compute;
pub mod dataflow;
pub mod gemm;
pub mod schedule;

pub use analytic::{simulate_layer, simulate_network, BaselineReport, LayerSim, LoopOrderChoice};
pub use buffers::{BaselineConfig, BufferSplit};
pub use dataflow::{simulate_layer_dataflow, simulate_network_dataflow, Dataflow, DataflowSim};
pub use gemm::{FoldPlan, GemmShape};
