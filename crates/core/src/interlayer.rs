//! Inter-layer reuse (Section 5.4 of the paper).
//!
//! "The output of a layer is used as input to the next layer of the
//! model. … it can only be exploited if there is enough on-chip memory
//! space to store the whole output of a layer." When a transition
//! qualifies, the producer's ofmap store *and* the consumer's ifmap load
//! are both elided.
//!
//! Conditions for the transition `i → i+1`:
//!
//! 1. the shapes chain (layer `i+1` consumes exactly layer `i`'s output —
//!    in serialized branch networks consecutive layers do not always);
//! 2. layer `i` runs a policy that leaves the whole ofmap resident at the
//!    end of the layer — the pass may *switch* layer `i` to such a policy
//!    (intra-layer reuse or policy 3) when the elided traffic outweighs
//!    the switch's own cost under the plan's objective;
//! 3. layer `i`'s ofmap plus layer `i+1`'s full allocation fit the GLB
//!    together (the retained copy coexists with the consumer's working
//!    tiles, which are staged — with padding — from it).

use crate::plan::ExecutionPlan;
use crate::Objective;
use smm_arch::AcceleratorConfig;
use smm_model::{Layer, Network};
use smm_policy::{estimate, PolicyEstimate, PolicyKind};

/// Do consecutive layers form a producer→consumer pair?
pub fn shapes_chain(producer: &Layer, consumer: &Layer) -> bool {
    let (oh, ow) = producer.shape.output_hw();
    producer.shape.out_channels() == consumer.shape.in_channels
        && oh == consumer.shape.ifmap_h
        && ow == consumer.shape.ifmap_w
}

/// Number of transitions in `net` where inter-layer reuse is possible at
/// all (the denominator of Figure 11's coverage).
pub fn possible_transitions(net: &Network) -> usize {
    net.layers
        .windows(2)
        .filter(|w| shapes_chain(&w[0], &w[1]))
        .count()
}

/// Candidate resident-ofmap estimates for a producer layer: its current
/// choice if already resident, plus feasible intra-layer / policy-3
/// variants.
fn resident_candidates(
    current: &PolicyEstimate,
    layer: &Layer,
    acc: &AcceleratorConfig,
) -> Vec<PolicyEstimate> {
    let mut out = Vec::new();
    if current.ofmap_resident_at_end {
        out.push(current.clone());
    }
    for kind in [PolicyKind::IntraLayer, PolicyKind::P3PerChannel] {
        for prefetch in [current.prefetch, false] {
            if let Some(e) = estimate(kind, &layer.shape, acc, prefetch) {
                if e.fits(acc) && !out.contains(&e) {
                    out.push(e);
                }
            }
        }
    }
    out
}

/// Apply the inter-layer reuse pass to a plan, in execution order.
/// Returns the number of transitions enabled.
pub fn apply(
    plan: &mut ExecutionPlan,
    net: &Network,
    acc: &AcceleratorConfig,
    objective: Objective,
) -> usize {
    let _span = smm_obs::span!("interlayer.apply", "{}", plan.network);
    let glb = acc.glb_elements();
    let mut enabled = 0;
    for i in 0..plan.decisions.len().saturating_sub(1) {
        let producer_layer = &net.layers[i];
        let consumer_layer = &net.layers[i + 1];
        if !shapes_chain(producer_layer, consumer_layer) {
            continue;
        }
        let ofmap_elems = producer_layer.shape.ofmap_elems();
        // Condition 3: the retained ofmap coexists with the consumer's
        // full allocation.
        let consumer_required = plan.decisions[i + 1].estimate.required_elems();
        if ofmap_elems + consumer_required > glb {
            continue;
        }

        // Pick the best qualifying producer estimate by net objective.
        let current = plan.decisions[i].estimate.clone();
        let consumer = plan.decisions[i + 1].clone();
        let cons_traffic_now = consumer.effective_accesses().total();
        let cons_lat_now = consumer.effective_latency(acc).cycles;

        let mut best: Option<(PolicyEstimate, (u64, u64))> = None;
        for cand in resident_candidates(&current, producer_layer, acc) {
            // A switched producer must still honour the reuse it already
            // receives from layer i−1 (its own ifmap may be resident).
            if plan.decisions[i].ifmap_from_glb {
                let prev_ofmap = net.layers[i - 1].shape.ofmap_elems();
                if prev_ofmap + cand.required_elems() > glb {
                    continue;
                }
            }
            // Traffic after enabling: producer loses its ofmap stores
            // (and keeps an elided ifmap if it already has one), consumer
            // loses its ifmap loads.
            let mut prod_acc = cand.accesses;
            if plan.decisions[i].ifmap_from_glb {
                prod_acc.ifmap_loads = 0;
            }
            let prod_traffic = prod_acc.total() - prod_acc.ofmap_stores;
            let cons_traffic = cons_traffic_now - consumer.effective_accesses().ifmap_loads;
            let prod_lat = cand.latency_for_traffic(acc, prod_traffic).cycles;
            let cons_lat = consumer
                .estimate
                .latency_for_traffic(acc, cons_traffic)
                .cycles;
            let metrics = objective.key(prod_traffic + cons_traffic, prod_lat + cons_lat);
            if best.as_ref().is_none_or(|(_, m)| metrics < *m) {
                best = Some((cand, metrics));
            }
        }
        let Some((cand, after)) = best else {
            continue;
        };

        // Only enable when the objective strictly improves over leaving
        // the transition alone.
        let prod_traffic_now = {
            let mut a = current.accesses;
            if plan.decisions[i].ifmap_from_glb {
                a.ifmap_loads = 0;
            }
            a.total()
        };
        let prod_lat_now = current.latency_for_traffic(acc, prod_traffic_now).cycles;
        let before = objective.key(
            prod_traffic_now + cons_traffic_now,
            prod_lat_now + cons_lat_now,
        );
        if after >= before {
            continue;
        }

        smm_obs::add(smm_obs::Counter::InterLayerTransitions, 1);
        if cand != current {
            smm_obs::add(smm_obs::Counter::InterLayerSwitches, 1);
        }
        plan.decisions[i].estimate = cand;
        plan.decisions[i].ofmap_kept_on_chip = true;
        plan.decisions[i + 1].ifmap_from_glb = true;
        enabled += 1;
    }
    plan.refresh_totals(acc);
    enabled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manager, ManagerConfig, Objective};
    use smm_arch::{AcceleratorConfig, ByteSize};
    use smm_model::zoo;

    fn manager(kb: u64, ilr: bool) -> Manager {
        Manager::new(
            AcceleratorConfig::paper_default(ByteSize::from_kb(kb)),
            ManagerConfig::new(Objective::Accesses).with_inter_layer_reuse(ilr),
        )
    }

    #[test]
    fn chained_shapes_detected() {
        let net = zoo::mobilenet();
        // conv1 → dw1 chain (112×112×32 → 112×112×32).
        assert!(shapes_chain(&net.layers[0], &net.layers[1]));
    }

    #[test]
    fn branch_points_do_not_chain() {
        let net = zoo::googlenet();
        // inc3a_1x1 and inc3a_3x3_reduce both consume the same input;
        // the former's output is not the latter's input.
        let a = net.layer("inc3a_1x1").unwrap();
        let b = net.layer("inc3a_3x3_reduce").unwrap();
        assert!(!shapes_chain(a, b));
    }

    #[test]
    fn mnasnet_is_a_chain_except_the_pooled_classifier() {
        // Every transition chains except conv_head → fc, which has the
        // global average pool between (7×7×1280 → 1×1×1280).
        let net = zoo::mnasnet();
        assert_eq!(possible_transitions(&net), net.layers.len() - 2);
    }

    #[test]
    fn coverage_grows_with_buffer_size() {
        // Figure 11: coverage grows from ~0% at 64 kB to ~98% at 1 MB.
        let net = zoo::mnasnet();
        let possible = possible_transitions(&net);
        let coverage: Vec<f64> = [64u64, 128, 256, 512, 1024]
            .iter()
            .map(|&kb| {
                let plan = manager(kb, true).heterogeneous(&net).unwrap();
                plan.inter_layer_coverage(possible)
            })
            .collect();
        assert!(
            coverage.windows(2).all(|w| w[1] >= w[0] - 0.05),
            "coverage not monotone-ish: {coverage:?}"
        );
        assert!(coverage[4] > 0.5, "1MB coverage too low: {coverage:?}");
        assert!(
            coverage[4] > coverage[0] + 0.3,
            "coverage barely grows: {coverage:?}"
        );
    }

    #[test]
    fn reuse_reduces_accesses_never_increases() {
        for kb in [64, 256, 1024] {
            for net in zoo::all_networks() {
                let off = manager(kb, false).heterogeneous(&net).unwrap();
                let on = manager(kb, true).heterogeneous(&net).unwrap();
                assert!(
                    on.totals.accesses_elems <= off.totals.accesses_elems,
                    "{} @ {kb}kB",
                    net.name
                );
            }
        }
    }

    #[test]
    fn large_buffers_give_substantial_access_benefit() {
        // Figure 11: ~70% access reduction at 1 MB for MnasNet.
        let net = zoo::mnasnet();
        let off = manager(1024, false).heterogeneous(&net).unwrap();
        let on = manager(1024, true).heterogeneous(&net).unwrap();
        let benefit = (off.totals.accesses_elems - on.totals.accesses_elems) as f64
            / off.totals.accesses_elems as f64;
        assert!(benefit > 0.3, "benefit {benefit}");
    }

    #[test]
    fn producer_and_consumer_flags_pair_up() {
        let net = zoo::mnasnet();
        let plan = manager(1024, true).heterogeneous(&net).unwrap();
        let producers = plan
            .decisions
            .iter()
            .filter(|d| d.ofmap_kept_on_chip)
            .count();
        let consumers = plan.decisions.iter().filter(|d| d.ifmap_from_glb).count();
        assert_eq!(producers, consumers);
        assert!(producers > 0);
    }

    #[test]
    fn enabled_count_matches_flags() {
        let net = zoo::mobilenetv2();
        let m = manager(1024, false);
        let mut plan = m.heterogeneous(&net).unwrap();
        let enabled = apply(&mut plan, &net, m.accelerator(), Objective::Accesses);
        let consumers = plan.decisions.iter().filter(|d| d.ifmap_from_glb).count();
        assert_eq!(enabled, consumers);
    }

    #[test]
    fn switched_producers_remain_feasible() {
        let net = zoo::mnasnet();
        let m = manager(512, true);
        let plan = m.heterogeneous(&net).unwrap();
        for d in &plan.decisions {
            assert!(d.estimate.fits(m.accelerator()), "{}", d.layer_name);
            if d.ofmap_kept_on_chip {
                assert!(d.estimate.ofmap_resident_at_end, "{}", d.layer_name);
            }
        }
    }
}
