//! The scratchpad memory-management technique (Section 3.3 of the paper).
//!
//! This crate is the paper's primary contribution: the analyser that
//! matches every layer of a network with the reuse policy that best
//! serves an optimization objective under the GLB capacity constraint.
//!
//! - [`PlanSpec`] — the serializable description of one planning job
//!   (network ref + accelerator + config + scheme + batch), from which
//!   the cache key and the plan are derived.
//! - [`Planner`] — the pass-based pipeline (per-layer selection →
//!   §5.4 inter-layer pass → totals/finish) behind every entry point,
//!   with an optional shape-keyed [`LayerMemo`].
//! - [`Manager`] — Algorithm 1 (objective: off-chip accesses) and its
//!   latency-objective twin as a thin facade over [`Planner`]; produces
//!   [`ExecutionPlan`]s.
//! - [`ExecutionPlan`] — a per-layer policy assignment (homogeneous or
//!   heterogeneous) with traffic/latency totals and coverage metrics.
//! - [`interlayer`] — the inter-layer reuse pass of Section 5.4: when a
//!   layer's ofmap stays resident and the next layer consumes it, the
//!   store and re-load are both elided.
//! - [`global`] — the `GlobalSchedule` pass: an exact dynamic program
//!   over per-layer policy choices *and* inter-layer handoff state,
//!   selected via [`SchedulerKind`] in [`ManagerConfig`]. Beats or
//!   matches the greedy plan on the objective, falling back to it
//!   byte-identically when the search finds nothing strictly better
//!   (see `docs/SCHEDULING.md`).
//! - [`sweep`] — a Rayon-parallel experiment matrix runner for the
//!   figure-scale sweeps (models × buffer sizes × schemes).
//! - [`cache`] — an LRU cache of plans keyed by the canonical hash of
//!   the full planning input, shared across serving workers.
//! - [`CancelToken`] — cooperative deadlines/cancellation for the
//!   planning loops, checked between layers.
//!
//! # Example
//!
//! ```
//! use smm_arch::{AcceleratorConfig, ByteSize};
//! use smm_core::{Manager, ManagerConfig, Objective};
//! use smm_model::zoo;
//!
//! let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
//! let manager = Manager::new(acc, ManagerConfig::new(Objective::Accesses));
//! let plan = manager.heterogeneous(&zoo::resnet18()).unwrap();
//! assert_eq!(plan.decisions.len(), 21);
//! assert!(plan.totals.accesses_bytes.mb() > 0.0);
//! ```

pub mod batch;
pub mod cache;
mod cancel;
pub mod energy;
pub mod global;
pub mod interlayer;
mod manager;
mod plan;
mod planner;
pub mod predict;
pub mod report;
pub mod runtime;
mod spec;
pub mod sweep;
pub mod tenancy;

pub use cache::{CacheStats, PlanCache, PlanKey, PlanScheme, KEY_HASH_VERSION};
pub use cancel::CancelToken;
pub use manager::{CandidateReport, Manager, ManagerConfig, Objective, PlanError, SchedulerKind};
pub use plan::{ExecutionPlan, LayerDecision, PlanTotals, Scheme};
pub use planner::{LayerMemo, LayerPlanner, MemoStats, Planner};
pub use predict::{cycles_to_us, predict, PredictedCost};
pub use spec::{NetworkRef, PlanSpec};
