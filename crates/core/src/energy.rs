//! Energy accounting.
//!
//! The paper's motivation for minimizing off-chip traffic is energy:
//! "off-chip data transfers are the most energy costly operations,
//! approximately 10–100× of the energy for a local computation"
//! (Section 2.3). This module turns a plan's traffic totals into an
//! energy estimate so that claim can be examined quantitatively.
//!
//! The model is deliberately coarse — three coefficients, defaulting to
//! the commonly cited 45 nm figures (DRAM access ≈ 100× an 8-bit MAC,
//! SRAM access ≈ 5×) — because the *relative* comparison between
//! schemes, not absolute joules, is what the evaluation needs.

use crate::ExecutionPlan;
use serde::{Deserialize, Serialize};
use smm_model::Network;

/// Per-operation energy coefficients in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy to move one byte across the off-chip interface.
    pub dram_pj_per_byte: f64,
    /// Energy to read or write one byte of the on-chip scratchpad.
    pub sram_pj_per_byte: f64,
    /// Energy of one multiply-accumulate.
    pub mac_pj: f64,
}

impl Default for EnergyModel {
    /// The canonical "DRAM ≈ 100× a MAC, SRAM ≈ 5×" ratios at an 8-bit
    /// MAC cost of 0.2 pJ.
    fn default() -> Self {
        EnergyModel {
            dram_pj_per_byte: 20.0,
            sram_pj_per_byte: 1.0,
            mac_pj: 0.2,
        }
    }
}

/// Energy breakdown for one network execution, in microjoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    pub dram_uj: f64,
    pub sram_uj: f64,
    pub mac_uj: f64,
}

impl EnergyBreakdown {
    pub fn total_uj(&self) -> f64 {
        self.dram_uj + self.sram_uj + self.mac_uj
    }

    /// Fraction of the total spent on off-chip transfers.
    pub fn dram_share(&self) -> f64 {
        let t = self.total_uj();
        if t == 0.0 {
            0.0
        } else {
            self.dram_uj / t
        }
    }
}

const PJ_PER_UJ: f64 = 1e6;

/// Energy of an execution plan: DRAM for every off-chip byte, SRAM for
/// staging each of those bytes into and out of the GLB, MACs for the
/// network's compute. (Register-file traffic inside the PE array is
/// dataflow-dependent and excluded on both sides of any comparison.)
pub fn plan_energy(model: &EnergyModel, plan: &ExecutionPlan, net: &Network) -> EnergyBreakdown {
    let bytes = plan.totals.accesses_bytes.bytes() as f64;
    let macs: u64 = net.layers.iter().map(|l| l.shape.macs()).sum();
    EnergyBreakdown {
        dram_uj: bytes * model.dram_pj_per_byte / PJ_PER_UJ,
        sram_uj: bytes * 2.0 * model.sram_pj_per_byte / PJ_PER_UJ,
        mac_uj: macs as f64 * model.mac_pj / PJ_PER_UJ,
    }
}

/// Energy of a baseline execution with the same conventions, from its
/// off-chip byte volume.
pub fn traffic_energy(model: &EnergyModel, offchip_bytes: u64, net: &Network) -> EnergyBreakdown {
    let bytes = offchip_bytes as f64;
    let macs: u64 = net.layers.iter().map(|l| l.shape.macs()).sum();
    EnergyBreakdown {
        dram_uj: bytes * model.dram_pj_per_byte / PJ_PER_UJ,
        sram_uj: bytes * 2.0 * model.sram_pj_per_byte / PJ_PER_UJ,
        mac_uj: macs as f64 * model.mac_pj / PJ_PER_UJ,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manager, ManagerConfig, Objective};
    use smm_arch::{AcceleratorConfig, ByteSize};
    use smm_model::zoo;

    #[test]
    fn default_ratios_match_the_paper_claim() {
        // One 8-bit element over DRAM vs one MAC: 20 pJ vs 0.2 pJ = 100×.
        let m = EnergyModel::default();
        assert_eq!(m.dram_pj_per_byte / m.mac_pj, 100.0);
        assert!(m.dram_pj_per_byte / m.sram_pj_per_byte >= 10.0);
    }

    #[test]
    fn plan_energy_tracks_traffic() {
        let net = zoo::resnet18();
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        let m = Manager::new(acc, ManagerConfig::new(Objective::Accesses));
        let plan = m.heterogeneous(&net).unwrap();
        let e = plan_energy(&EnergyModel::default(), &plan, &net);
        assert!(e.total_uj() > 0.0);
        // ResNet18 @ 64 kB: ~16 MB off-chip → DRAM dominates MACs.
        assert!(e.dram_uj > e.mac_uj / 2.0);
        // Identical traffic via the generic helper gives the same answer.
        let e2 = traffic_energy(
            &EnergyModel::default(),
            plan.totals.accesses_bytes.bytes(),
            &net,
        );
        assert_eq!(e, e2);
    }

    #[test]
    fn access_reduction_translates_to_energy_reduction() {
        // The paper's core energy argument: cutting off-chip accesses cuts
        // energy nearly proportionally when DRAM dominates.
        let net = zoo::resnet18();
        let model = EnergyModel::default();
        let small = Manager::new(
            AcceleratorConfig::paper_default(ByteSize::from_kb(64)),
            ManagerConfig::new(Objective::Accesses),
        )
        .heterogeneous(&net)
        .unwrap();
        let plan_e = plan_energy(&model, &small, &net);
        // A 5× traffic blow-up (a bad baseline) must cost much more energy.
        let bloated = traffic_energy(&model, small.totals.accesses_bytes.bytes() * 5, &net);
        assert!(bloated.total_uj() > 3.0 * plan_e.total_uj());
    }

    #[test]
    fn dram_share_is_a_fraction() {
        let e = EnergyBreakdown {
            dram_uj: 3.0,
            sram_uj: 1.0,
            mac_uj: 1.0,
        };
        assert!((e.dram_share() - 0.6).abs() < 1e-12);
        assert_eq!(EnergyBreakdown::default().dram_share(), 0.0);
    }
}
