//! The serializable description of one planning job.
//!
//! [`PlanSpec`] is the single source of truth every planning entry
//! point reduces to: the CLI's parsed arguments, a serve request, and
//! one cell of a sweep all build a spec, and the cache key
//! ([`PlanKey::from_spec`]), the planner configuration, and the plan
//! itself are derived from it. Adding a knob means adding a field here
//! (and to the key derivation) — a local change instead of a five-site
//! one.

use crate::cache::{PlanKey, PlanScheme};
use crate::manager::{ManagerConfig, PlanError};
use crate::plan::ExecutionPlan;
use crate::planner::Planner;
use crate::CancelToken;
use serde::{Deserialize, Serialize};
use smm_arch::AcceleratorConfig;
use smm_model::{topology, zoo, Network};

/// How a spec names its network: a bundled zoo model or an inline
/// topology in the CSV format of [`smm_model::topology`]. Both forms
/// are plain data, so a spec can travel through config files and the
/// serve protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkRef {
    /// A bundled model, looked up via [`zoo::by_name`]
    /// (case-insensitive).
    Zoo(String),
    /// An inline topology: display name plus CSV layer rows.
    Inline { name: String, topology: String },
}

impl NetworkRef {
    /// Reference an already-built network by embedding its CSV form.
    /// Round-tripping through the topology format is lossless, so plans
    /// derived from the ref match plans of the original network.
    pub fn from_network(net: &Network) -> Self {
        NetworkRef::Inline {
            name: net.name.clone(),
            topology: topology::write(net),
        }
    }

    /// The display name of the referenced network.
    pub fn name(&self) -> &str {
        match self {
            NetworkRef::Zoo(name) | NetworkRef::Inline { name, .. } => name,
        }
    }

    /// Materialize the network.
    pub fn resolve(&self) -> Result<Network, PlanError> {
        match self {
            NetworkRef::Zoo(name) => zoo::by_name(name).ok_or_else(|| PlanError::InvalidSpec {
                message: format!("unknown model {name:?}"),
            }),
            NetworkRef::Inline { name, topology } => topology::parse(name.clone(), topology)
                .map_err(|e| PlanError::InvalidSpec {
                    message: format!("bad topology: {e}"),
                }),
        }
    }
}

/// A complete, serializable planning job: network reference,
/// accelerator, manager knobs, scheme, and batch size. See the module
/// docs for how the entry points use it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanSpec {
    pub network: NetworkRef,
    pub accelerator: AcceleratorConfig,
    pub config: ManagerConfig,
    pub scheme: PlanScheme,
    /// Inference batch size (1 = single-image planning; the batch
    /// totals of `smm_core::batch` scale from the per-image plan).
    pub batch: u64,
}

impl PlanSpec {
    /// A spec with the default batch size of 1.
    pub fn new(
        network: NetworkRef,
        accelerator: AcceleratorConfig,
        config: ManagerConfig,
        scheme: PlanScheme,
    ) -> Self {
        PlanSpec {
            network,
            accelerator,
            config,
            scheme,
            batch: 1,
        }
    }

    #[must_use]
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }

    /// Materialize the network reference.
    pub fn resolve(&self) -> Result<Network, PlanError> {
        self.network.resolve()
    }

    /// The canonical cache key of this spec ([`PlanKey::from_spec`]).
    /// `net` must be the result of [`resolve`](Self::resolve).
    pub fn cache_key(&self, net: &Network) -> PlanKey {
        PlanKey::from_spec(self, net)
    }

    /// A planner configured for this spec (no memo; attach one with
    /// [`Planner::with_memo`]).
    pub fn planner(&self) -> Planner {
        Planner::new(self.accelerator, self.config)
    }

    /// Resolve and plan in one step — the short path for callers that
    /// don't need the network for anything else.
    pub fn run(&self, cancel: &CancelToken) -> Result<ExecutionPlan, PlanError> {
        let net = self.resolve()?;
        self.planner().plan(&net, self.scheme, cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manager, Objective};
    use smm_arch::ByteSize;

    fn spec(network: NetworkRef) -> PlanSpec {
        PlanSpec::new(
            network,
            AcceleratorConfig::paper_default(ByteSize::from_kb(64)),
            ManagerConfig::new(Objective::Accesses),
            PlanScheme::Heterogeneous,
        )
    }

    #[test]
    fn zoo_ref_resolves_case_insensitively() {
        let net = NetworkRef::Zoo("ResNet18".into()).resolve().unwrap();
        assert_eq!(net, zoo::resnet18());
    }

    #[test]
    fn unknown_model_is_an_invalid_spec() {
        let err = spec(NetworkRef::Zoo("nope".into())).run(&CancelToken::none());
        assert!(
            matches!(err, Err(PlanError::InvalidSpec { ref message }) if message.contains("nope"))
        );
    }

    #[test]
    fn malformed_topology_is_an_invalid_spec() {
        let r = NetworkRef::Inline {
            name: "bad".into(),
            topology: "not,a,topology".into(),
        };
        assert!(matches!(
            r.resolve(),
            Err(PlanError::InvalidSpec { ref message }) if message.contains("bad topology")
        ));
    }

    #[test]
    fn inline_ref_plans_identically_to_the_zoo_model() {
        let net = zoo::resnet18();
        let inline = spec(NetworkRef::from_network(&net));
        let zoo_spec = spec(NetworkRef::Zoo("resnet18".into()));
        assert_eq!(inline.network.name(), "ResNet18");
        let a = inline.run(&CancelToken::none()).unwrap();
        let b = zoo_spec.run(&CancelToken::none()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn spec_run_matches_manager_facade() {
        let s = spec(NetworkRef::Zoo("mobilenet".into()));
        let net = s.resolve().unwrap();
        let m = Manager::new(s.accelerator, s.config);
        assert_eq!(
            s.run(&CancelToken::none()).unwrap(),
            m.heterogeneous(&net).unwrap()
        );
        let hom = PlanSpec {
            scheme: PlanScheme::BestHomogeneous,
            ..s
        };
        assert_eq!(
            hom.run(&CancelToken::none()).unwrap(),
            m.best_homogeneous(&net).unwrap()
        );
    }

    #[test]
    fn every_spec_field_feeds_the_cache_key() {
        let s = spec(NetworkRef::Zoo("resnet18".into()));
        let net = s.resolve().unwrap();
        let base = s.cache_key(&net);
        assert_eq!(base, s.clone().cache_key(&net), "key must be deterministic");
        assert_ne!(base, s.clone().with_batch(4).cache_key(&net));
        let mut other = s.clone();
        other.scheme = PlanScheme::BestHomogeneous;
        assert_ne!(base, other.cache_key(&net));
        let mut other = s.clone();
        other.config = other.config.with_prefetch(false);
        assert_ne!(base, other.cache_key(&net));
        let mut other = s.clone();
        other.config = other.config.with_scheduler(crate::SchedulerKind::Global);
        assert_ne!(base, other.cache_key(&net));
        let mut other = s;
        other.accelerator = other.accelerator.with_glb(ByteSize::from_kb(128));
        assert_ne!(base, other.cache_key(&net));
    }

    #[test]
    fn cancelled_spec_run_propagates() {
        let s = spec(NetworkRef::Zoo("resnet18".into()));
        let expired = CancelToken::with_timeout(std::time::Duration::ZERO);
        assert_eq!(
            s.run(&expired).unwrap_err(),
            PlanError::Cancelled { layers_done: 0 }
        );
    }
}
