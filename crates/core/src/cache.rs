//! An LRU cache of execution plans.
//!
//! Planning is a pure function of (topology, accelerator configuration,
//! objective, scheme, prefetch/inter-layer flags): the same inputs
//! always produce the same [`ExecutionPlan`]. A serving layer that
//! answers many requests for the handful of popular models therefore
//! wants to pay Algorithm 1 once per distinct input and answer every
//! repeat from memory.
//!
//! [`PlanKey`] canonicalizes the full planning input into a byte
//! encoding (plus a precomputed FNV-1a hash for cheap map operations):
//! two requests that parse to the same network and configuration —
//! regardless of how the flags were spelled or the topology file was
//! formatted — produce identical keys, while any change to a layer
//! dimension, the accelerator, or a flag produces a different one.
//! Lookups compare the full encoding, so a hash collision can never
//! return the wrong plan.
//!
//! [`PlanCache`] is an LRU map behind a `parking_lot` mutex, safe to
//! share across worker threads. Hits, misses, and evictions are counted
//! locally (always) and in the `smm-obs` registry (when collection is
//! enabled).

use crate::{ExecutionPlan, ManagerConfig, Objective, PlanSpec};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use smm_arch::AcceleratorConfig;
use smm_model::Network;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether a request asks for the heterogeneous or best-homogeneous
/// scheme — part of the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanScheme {
    /// Algorithm 1 per layer (`Het`).
    Heterogeneous,
    /// Best single policy for the whole network (`Hom`).
    BestHomogeneous,
}

/// Canonical cache key for one planning input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanKey {
    encoding: Vec<u8>,
    hash: u64,
}

impl PlanKey {
    /// Canonicalize a complete planning input.
    pub fn new(
        net: &Network,
        acc: &AcceleratorConfig,
        cfg: &ManagerConfig,
        scheme: PlanScheme,
    ) -> Self {
        let enc = Self::encode(net, acc, *cfg, scheme);
        PlanKey {
            hash: enc.hash,
            encoding: enc.bytes,
        }
    }

    /// Canonicalize a [`PlanSpec`] against its resolved network: the
    /// [`new`](Self::new) encoding extended with the spec's batch knob,
    /// so every field of the spec participates in the key. `net` must be
    /// `spec.resolve()`'s result (resolution is kept separate so callers
    /// that already hold the network don't re-parse it).
    pub fn from_spec(spec: &PlanSpec, net: &Network) -> Self {
        let mut enc = Self::encode(net, &spec.accelerator, spec.config, spec.scheme);
        enc.u64(spec.batch);
        PlanKey {
            hash: enc.hash,
            encoding: enc.bytes,
        }
    }

    fn encode(
        net: &Network,
        acc: &AcceleratorConfig,
        cfg: ManagerConfig,
        scheme: PlanScheme,
    ) -> Encoder {
        let mut enc = Encoder::default();
        enc.str_field(&net.name);
        enc.u64(net.layers.len() as u64);
        for l in &net.layers {
            enc.str_field(&l.name);
            enc.str_field(l.kind.code());
            let s = &l.shape;
            for v in [
                s.ifmap_h,
                s.ifmap_w,
                s.in_channels,
                s.filter_h,
                s.filter_w,
                s.num_filters,
                s.stride,
                s.padding,
                s.depthwise as u32,
            ] {
                enc.u64(v as u64);
            }
        }
        for v in [
            acc.pe_rows as u64,
            acc.pe_cols as u64,
            acc.ops_per_cycle,
            acc.data_width.bits(),
            acc.glb.bytes(),
            acc.dram_bytes_per_cycle,
        ] {
            enc.u64(v);
        }
        enc.u64(match cfg.objective {
            Objective::Accesses => 0,
            Objective::Latency => 1,
        });
        enc.u64(cfg.allow_prefetch as u64);
        enc.u64(cfg.inter_layer_reuse as u64);
        enc.u64(match cfg.scheduler {
            crate::SchedulerKind::Greedy => 0,
            crate::SchedulerKind::Global => 1,
        });
        enc.u64(match scheme {
            PlanScheme::Heterogeneous => 0,
            PlanScheme::BestHomogeneous => 1,
        });
        enc
    }

    /// The canonical 64-bit hash (FNV-1a over the encoding).
    pub fn hash64(&self) -> u64 {
        self.hash
    }
}

impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// FNV-1a accumulator that also keeps the canonical byte encoding so
/// key equality can be exact.
#[derive(Debug)]
struct Encoder {
    bytes: Vec<u8>,
    hash: u64,
}

impl Default for Encoder {
    fn default() -> Self {
        Encoder {
            bytes: Vec::with_capacity(256),
            hash: 0xcbf2_9ce4_8422_2325, // FNV-1a 64-bit offset basis
        }
    }
}

impl Encoder {
    fn push(&mut self, b: u8) {
        self.hash = (self.hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        self.bytes.push(b);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.push(b);
        }
    }

    /// Length-prefixed string, so `("ab", "c")` and `("a", "bc")` cannot
    /// collide.
    fn str_field(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.push(b);
        }
    }
}

/// Pass-through hasher: [`PlanKey`] already carries a strong 64-bit
/// hash, so the map must not re-hash it through SipHash.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PlanKey hashes via write_u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Plans currently cached.
    pub len: usize,
    /// Capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit rate over all lookups (0.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: Arc<ExecutionPlan>,
    last_used: u64,
}

struct Inner {
    map: HashMap<PlanKey, Entry, BuildHasherDefault<IdentityHasher>>,
    tick: u64,
}

/// A bounded, thread-safe, least-recently-used plan cache.
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    // Statistics use Relaxed ordering throughout: they are monotone
    // counters read only for reporting, never used to publish data or
    // establish happens-before; the map itself is protected by `inner`.
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("len", &s.len)
            .field("capacity", &s.capacity)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans. Capacity 0 disables
    /// caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::default(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look a plan up, refreshing its LRU position on a hit.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<ExecutionPlan>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.map.get_mut(key) {
            e.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            smm_obs::add(smm_obs::Counter::PlanCacheHits, 1);
            Some(Arc::clone(&e.plan))
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            smm_obs::add(smm_obs::Counter::PlanCacheMisses, 1);
            None
        }
    }

    /// Insert a plan, evicting the least-recently-used entry if the
    /// cache is full. Re-inserting an existing key refreshes its value
    /// and LRU position without evicting.
    pub fn insert(&self, key: PlanKey, plan: Arc<ExecutionPlan>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                smm_obs::add(smm_obs::Counter::PlanCacheEvictions, 1);
            }
        }
        inner.map.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manager, ManagerConfig};
    use proptest::prelude::*;
    use smm_arch::ByteSize;
    use smm_model::{topology, zoo};

    fn acc(kb: u64) -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(kb))
    }

    fn key(net: &Network, kb: u64) -> PlanKey {
        PlanKey::new(
            net,
            &acc(kb),
            &ManagerConfig::new(Objective::Accesses),
            PlanScheme::Heterogeneous,
        )
    }

    #[test]
    fn reparsed_topology_keys_equal() {
        let net = zoo::resnet18();
        let reparsed = topology::parse(net.name.clone(), &topology::write(&net)).unwrap();
        assert_eq!(key(&net, 256), key(&reparsed, 256));
    }

    #[test]
    fn every_input_component_changes_the_key() {
        let net = zoo::mobilenet();
        let base = key(&net, 256);
        assert_ne!(base, key(&net, 512), "GLB size must be in the key");
        assert_ne!(base, key(&zoo::mobilenetv2(), 256));
        let cfg = ManagerConfig::new(Objective::Accesses);
        let a = acc(256);
        assert_ne!(
            base,
            PlanKey::new(&net, &a, &cfg, PlanScheme::BestHomogeneous)
        );
        assert_ne!(
            base,
            PlanKey::new(
                &net,
                &a,
                &ManagerConfig::new(Objective::Latency),
                PlanScheme::Heterogeneous
            )
        );
        assert_ne!(
            base,
            PlanKey::new(
                &net,
                &a,
                &cfg.with_prefetch(false),
                PlanScheme::Heterogeneous
            )
        );
        assert_ne!(
            base,
            PlanKey::new(
                &net,
                &a,
                &cfg.with_inter_layer_reuse(true),
                PlanScheme::Heterogeneous
            )
        );
        assert_ne!(
            base,
            PlanKey::new(
                &net,
                &a,
                &cfg.with_scheduler(crate::SchedulerKind::Global),
                PlanScheme::Heterogeneous
            ),
            "scheduler choice must be in the key"
        );
        assert_ne!(
            base,
            PlanKey::new(
                &net,
                &a.with_data_width(smm_arch::DataWidth::W16),
                &cfg,
                PlanScheme::Heterogeneous
            )
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        let nets = [zoo::resnet18(), zoo::mobilenet(), zoo::mobilenetv2()];
        let m = Manager::new(acc(256), ManagerConfig::new(Objective::Accesses));
        let plans: Vec<Arc<ExecutionPlan>> = nets
            .iter()
            .map(|n| Arc::new(m.heterogeneous(n).unwrap()))
            .collect();
        let keys: Vec<PlanKey> = nets.iter().map(|n| key(n, 256)).collect();

        cache.insert(keys[0].clone(), plans[0].clone());
        cache.insert(keys[1].clone(), plans[1].clone());
        // Touch key 0 so key 1 becomes the LRU entry.
        assert!(cache.get(&keys[0]).is_some());
        cache.insert(keys[2].clone(), plans[2].clone());
        assert!(cache.get(&keys[1]).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[2]).is_some());

        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let cache = PlanCache::new(1);
        let net = zoo::resnet18();
        let m = Manager::new(acc(256), ManagerConfig::new(Objective::Accesses));
        let plan = Arc::new(m.heterogeneous(&net).unwrap());
        cache.insert(key(&net, 256), plan.clone());
        cache.insert(key(&net, 256), plan);
        let s = cache.stats();
        assert_eq!(s.evictions, 0);
        assert_eq!(s.len, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        let net = zoo::resnet18();
        let m = Manager::new(acc(256), ManagerConfig::new(Objective::Accesses));
        cache.insert(key(&net, 256), Arc::new(m.heterogeneous(&net).unwrap()));
        assert!(cache.get(&key(&net, 256)).is_none());
        assert_eq!(cache.stats().len, 0);
    }

    proptest! {
        /// Round-tripping any topology through the CSV format preserves
        /// the cache key, and mutating any single layer dimension
        /// changes it.
        #[test]
        fn key_canonicalization_roundtrip_and_mutation(
            layer_count in 1usize..5,
            seed in 0u64..1000,
            bump_field in 0usize..6,
        ) {
            // Build a small deterministic network from the seed.
            let mut layers = Vec::new();
            for i in 0..layer_count {
                let r = seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64);
                let shape = smm_model::LayerShape {
                    ifmap_h: 4 + (r % 29) as u32,
                    ifmap_w: 4 + ((r >> 8) % 29) as u32,
                    in_channels: 1 + ((r >> 16) % 16) as u32,
                    filter_h: 1 + ((r >> 24) % 3) as u32,
                    filter_w: 1 + ((r >> 32) % 3) as u32,
                    num_filters: 1 + ((r >> 40) % 16) as u32,
                    stride: 1 + ((r >> 48) % 2) as u32,
                    padding: ((r >> 52) % 2) as u32,
                    depthwise: false,
                };
                prop_assume!(shape.validate().is_ok());
                layers.push(
                    smm_model::Layer::new(format!("l{i}"), smm_model::LayerKind::Conv, shape)
                        .unwrap(),
                );
            }
            let net = Network::new("prop", layers).unwrap();

            // Same topology re-parsed from its CSV form: identical key.
            let reparsed = topology::parse("prop", &topology::write(&net)).unwrap();
            prop_assert_eq!(key(&net, 256), key(&reparsed, 256));

            // Any mutation of one layer dimension: different key.
            let mut mutated = net.clone();
            let shape = &mut mutated.layers[0].shape;
            match bump_field {
                0 => shape.ifmap_h += 1,
                1 => shape.ifmap_w += 1,
                2 => shape.in_channels += 1,
                3 => shape.num_filters += 1,
                4 => shape.stride += 1,
                _ => shape.padding += 1,
            }
            prop_assert!(key(&net, 256) != key(&mutated, 256));
        }
    }
}
