//! An LRU cache of execution plans.
//!
//! Planning is a pure function of (topology, accelerator configuration,
//! objective, scheme, prefetch/inter-layer flags): the same inputs
//! always produce the same [`ExecutionPlan`]. A serving layer that
//! answers many requests for the handful of popular models therefore
//! wants to pay Algorithm 1 once per distinct input and answer every
//! repeat from memory.
//!
//! [`PlanKey`] canonicalizes the full planning input into a byte
//! encoding (plus a precomputed FNV-1a hash for cheap map operations):
//! two requests that parse to the same network and configuration —
//! regardless of how the flags were spelled or the topology file was
//! formatted — produce identical keys, while any change to a layer
//! dimension, the accelerator, or a flag produces a different one.
//! Lookups compare the full encoding, so a hash collision can never
//! return the wrong plan.
//!
//! [`PlanCache`] is an LRU map behind a `parking_lot` mutex, safe to
//! share across worker threads. Hits, misses, and evictions are counted
//! locally (always) and in the `smm-obs` registry (when collection is
//! enabled).

use crate::{ExecutionPlan, ManagerConfig, Objective, PlanSpec};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use smm_arch::AcceleratorConfig;
use smm_model::Network;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether a request asks for the heterogeneous or best-homogeneous
/// scheme — part of the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanScheme {
    /// Algorithm 1 per layer (`Het`).
    Heterogeneous,
    /// Best single policy for the whole network (`Hom`).
    BestHomogeneous,
}

/// Version tag of the [`PlanKey::stable_bytes`] wire encoding.
///
/// The in-process FNV hash in [`PlanKey::hash64`] is an implementation
/// detail that may change between builds; anything that crosses a
/// process boundary — the consistent-hash ring in `smm-fleet`, the
/// `migrate`/`dump` protocol verbs — must use the *stable* encoding,
/// which is pinned by this version number and by golden-vector tests.
/// Bump the version whenever the byte layout changes so a router and a
/// node built from different revisions can never silently disagree
/// about shard ownership.
pub const KEY_HASH_VERSION: u32 = 1;

/// Canonical cache key for one planning input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanKey {
    encoding: Vec<u8>,
    hash: u64,
}

impl PlanKey {
    /// Canonicalize a complete planning input.
    pub fn new(
        net: &Network,
        acc: &AcceleratorConfig,
        cfg: &ManagerConfig,
        scheme: PlanScheme,
    ) -> Self {
        let enc = Self::encode(net, acc, *cfg, scheme);
        PlanKey {
            hash: enc.hash,
            encoding: enc.bytes,
        }
    }

    /// Canonicalize a [`PlanSpec`] against its resolved network: the
    /// [`new`](Self::new) encoding extended with the spec's batch knob,
    /// so every field of the spec participates in the key. `net` must be
    /// `spec.resolve()`'s result (resolution is kept separate so callers
    /// that already hold the network don't re-parse it).
    pub fn from_spec(spec: &PlanSpec, net: &Network) -> Self {
        let mut enc = Self::encode(net, &spec.accelerator, spec.config, spec.scheme);
        enc.u64(spec.batch);
        PlanKey {
            hash: enc.hash,
            encoding: enc.bytes,
        }
    }

    fn encode(
        net: &Network,
        acc: &AcceleratorConfig,
        cfg: ManagerConfig,
        scheme: PlanScheme,
    ) -> Encoder {
        let mut enc = Encoder::default();
        enc.str_field(&net.name);
        enc.u64(net.layers.len() as u64);
        for l in &net.layers {
            enc.str_field(&l.name);
            enc.str_field(l.kind.code());
            let s = &l.shape;
            for v in [
                s.ifmap_h,
                s.ifmap_w,
                s.in_channels,
                s.filter_h,
                s.filter_w,
                s.num_filters,
                s.stride,
                s.padding,
                s.depthwise as u32,
            ] {
                enc.u64(v as u64);
            }
        }
        for v in [
            acc.pe_rows as u64,
            acc.pe_cols as u64,
            acc.ops_per_cycle,
            acc.data_width.bits(),
            acc.glb.bytes(),
            acc.dram_bytes_per_cycle,
        ] {
            enc.u64(v);
        }
        enc.u64(match cfg.objective {
            Objective::Accesses => 0,
            Objective::Latency => 1,
        });
        enc.u64(cfg.allow_prefetch as u64);
        enc.u64(cfg.inter_layer_reuse as u64);
        enc.u64(match cfg.scheduler {
            crate::SchedulerKind::Greedy => 0,
            crate::SchedulerKind::Global => 1,
        });
        enc.u64(match scheme {
            PlanScheme::Heterogeneous => 0,
            PlanScheme::BestHomogeneous => 1,
        });
        enc
    }

    /// The canonical 64-bit hash (FNV-1a over the encoding).
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// The versioned wire encoding of this key: [`KEY_HASH_VERSION`] as
    /// a little-endian `u32`, followed by the canonical field encoding
    /// (every integer little-endian, every string length-prefixed).
    ///
    /// This is the byte string the `migrate`/`dump` protocol verbs ship
    /// between fleet nodes, and the input to
    /// [`stable_hash64`](Self::stable_hash64), so its layout is part of the wire
    /// protocol — see [`KEY_HASH_VERSION`].
    pub fn stable_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.encoding.len());
        out.extend_from_slice(&KEY_HASH_VERSION.to_le_bytes());
        out.extend_from_slice(&self.encoding);
        out
    }

    /// The stable shard-ownership hash: FNV-1a 64 over
    /// [`stable_bytes`](Self::stable_bytes). Every node and router in a
    /// fleet computes ring placement from this value, so it is pinned
    /// by golden-vector tests and versioned via [`KEY_HASH_VERSION`].
    pub fn stable_hash64(&self) -> u64 {
        fnv1a(&self.stable_bytes())
    }

    /// [`stable_bytes`](Self::stable_bytes) as lowercase hex, the form
    /// used in the JSON protocol (`"key"` fields of `migrate`/`dump`).
    pub fn stable_hex(&self) -> String {
        let bytes = self.stable_bytes();
        let mut out = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }

    /// Reconstruct a key from its [`stable_bytes`](Self::stable_bytes)
    /// form, rejecting unknown encoding versions.
    pub fn from_stable_bytes(bytes: &[u8]) -> Result<PlanKey, String> {
        if bytes.len() < 4 {
            return Err("stable key too short for a version prefix".into());
        }
        let version = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if version != KEY_HASH_VERSION {
            return Err(format!(
                "unsupported key encoding version {version} (this build speaks {KEY_HASH_VERSION})"
            ));
        }
        let encoding = bytes[4..].to_vec();
        let hash = fnv1a(&encoding);
        Ok(PlanKey { encoding, hash })
    }

    /// Reconstruct a key from [`stable_hex`](Self::stable_hex).
    pub fn from_stable_hex(hex: &str) -> Result<PlanKey, String> {
        if !hex.len().is_multiple_of(2) {
            return Err("stable key hex must have even length".into());
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for i in (0..hex.len()).step_by(2) {
            let pair = hex
                .get(i..i + 2)
                .ok_or_else(|| "stable key hex is not ASCII".to_string())?;
            bytes.push(
                u8::from_str_radix(pair, 16)
                    .map_err(|_| format!("stable key hex has a non-hex pair {pair:?}"))?,
            );
        }
        Self::from_stable_bytes(&bytes)
    }
}

/// FNV-1a 64-bit over a byte slice — the same constants the
/// [`Encoder`] uses incrementally.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// FNV-1a accumulator that also keeps the canonical byte encoding so
/// key equality can be exact.
#[derive(Debug)]
struct Encoder {
    bytes: Vec<u8>,
    hash: u64,
}

impl Default for Encoder {
    fn default() -> Self {
        Encoder {
            bytes: Vec::with_capacity(256),
            hash: 0xcbf2_9ce4_8422_2325, // FNV-1a 64-bit offset basis
        }
    }
}

impl Encoder {
    fn push(&mut self, b: u8) {
        self.hash = (self.hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        self.bytes.push(b);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.push(b);
        }
    }

    /// Length-prefixed string, so `("ab", "c")` and `("a", "bc")` cannot
    /// collide.
    fn str_field(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.push(b);
        }
    }
}

/// Pass-through hasher: [`PlanKey`] already carries a strong 64-bit
/// hash, so the map must not re-hash it through SipHash.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PlanKey hashes via write_u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Plans currently cached.
    pub len: usize,
    /// Capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit rate over all lookups (0.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: V,
    last_used: u64,
}

struct Inner<V> {
    map: HashMap<PlanKey, Entry<V>, BuildHasherDefault<IdentityHasher>>,
    tick: u64,
}

/// A bounded, thread-safe, least-recently-used plan cache.
///
/// Generic over the cached value: the planner-facing default caches
/// whole [`ExecutionPlan`]s, while the serving layer caches the
/// *rendered plan JSON* (`Arc<String>`) so cached responses — including
/// plans migrated in from another fleet node — are byte-identical to
/// freshly planned ones.
pub struct PlanCache<V = Arc<ExecutionPlan>> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    // Statistics use Relaxed ordering throughout: they are monotone
    // counters read only for reporting, never used to publish data or
    // establish happens-before; the map itself is protected by `inner`.
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> std::fmt::Debug for PlanCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("len", &s.len)
            .field("capacity", &s.capacity)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl<V: Clone> PlanCache<V> {
    /// A cache holding at most `capacity` plans. Capacity 0 disables
    /// caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::default(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look a plan up, refreshing its LRU position on a hit.
    pub fn get(&self, key: &PlanKey) -> Option<V> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.map.get_mut(key) {
            e.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            smm_obs::add(smm_obs::Counter::PlanCacheHits, 1);
            Some(e.value.clone())
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            smm_obs::add(smm_obs::Counter::PlanCacheMisses, 1);
            None
        }
    }

    /// Whether `key` is cached, without promoting it or touching the
    /// hit/miss statistics. The pre-warm controller probes with this so
    /// its background checks neither distort [`CacheStats`] nor keep
    /// cold entries artificially warm.
    pub fn peek(&self, key: &PlanKey) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    /// Insert a plan, evicting the least-recently-used entry if the
    /// cache is full. Re-inserting an existing key refreshes its value
    /// and LRU position without evicting.
    pub fn insert(&self, key: PlanKey, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                smm_obs::add(smm_obs::Counter::PlanCacheEvictions, 1);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// The `n` most-recently-used entries, hottest first, without
    /// touching LRU positions or hit/miss statistics. This is the
    /// export side of warm-cache handoff: a node losing ring ownership
    /// dumps its hottest plans so the new owner starts warm.
    pub fn hottest(&self, n: usize) -> Vec<(PlanKey, V)> {
        let inner = self.inner.lock();
        let mut entries: Vec<(&PlanKey, &Entry<V>)> = inner.map.iter().collect();
        entries.sort_by_key(|(_, e)| std::cmp::Reverse(e.last_used));
        entries
            .into_iter()
            .take(n)
            .map(|(k, e)| (k.clone(), e.value.clone()))
            .collect()
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manager, ManagerConfig};
    use proptest::prelude::*;
    use smm_arch::ByteSize;
    use smm_model::{topology, zoo};

    fn acc(kb: u64) -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(kb))
    }

    fn key(net: &Network, kb: u64) -> PlanKey {
        PlanKey::new(
            net,
            &acc(kb),
            &ManagerConfig::new(Objective::Accesses),
            PlanScheme::Heterogeneous,
        )
    }

    #[test]
    fn reparsed_topology_keys_equal() {
        let net = zoo::resnet18();
        let reparsed = topology::parse(net.name.clone(), &topology::write(&net)).unwrap();
        assert_eq!(key(&net, 256), key(&reparsed, 256));
    }

    #[test]
    fn every_input_component_changes_the_key() {
        let net = zoo::mobilenet();
        let base = key(&net, 256);
        assert_ne!(base, key(&net, 512), "GLB size must be in the key");
        assert_ne!(base, key(&zoo::mobilenetv2(), 256));
        let cfg = ManagerConfig::new(Objective::Accesses);
        let a = acc(256);
        assert_ne!(
            base,
            PlanKey::new(&net, &a, &cfg, PlanScheme::BestHomogeneous)
        );
        assert_ne!(
            base,
            PlanKey::new(
                &net,
                &a,
                &ManagerConfig::new(Objective::Latency),
                PlanScheme::Heterogeneous
            )
        );
        assert_ne!(
            base,
            PlanKey::new(
                &net,
                &a,
                &cfg.with_prefetch(false),
                PlanScheme::Heterogeneous
            )
        );
        assert_ne!(
            base,
            PlanKey::new(
                &net,
                &a,
                &cfg.with_inter_layer_reuse(true),
                PlanScheme::Heterogeneous
            )
        );
        assert_ne!(
            base,
            PlanKey::new(
                &net,
                &a,
                &cfg.with_scheduler(crate::SchedulerKind::Global),
                PlanScheme::Heterogeneous
            ),
            "scheduler choice must be in the key"
        );
        assert_ne!(
            base,
            PlanKey::new(
                &net,
                &a.with_data_width(smm_arch::DataWidth::W16),
                &cfg,
                PlanScheme::Heterogeneous
            )
        );
    }

    #[test]
    fn stable_bytes_round_trips_and_rejects_bad_versions() {
        let net = zoo::resnet18();
        let k = key(&net, 256);
        let bytes = k.stable_bytes();
        assert_eq!(&bytes[..4], &KEY_HASH_VERSION.to_le_bytes());
        let back = PlanKey::from_stable_bytes(&bytes).unwrap();
        assert_eq!(back, k);
        assert_eq!(back.hash64(), k.hash64());
        assert_eq!(back.stable_hash64(), k.stable_hash64());
        assert_eq!(PlanKey::from_stable_hex(&k.stable_hex()).unwrap(), k);

        // Unknown version, truncated input, and garbage hex all error.
        let mut wrong = bytes.clone();
        wrong[0] = 99;
        assert!(PlanKey::from_stable_bytes(&wrong).is_err());
        assert!(PlanKey::from_stable_bytes(&bytes[..3]).is_err());
        assert!(PlanKey::from_stable_hex("zz").is_err());
        assert!(PlanKey::from_stable_hex("abc").is_err());
    }

    /// Golden vectors for the versioned wire encoding. These constants
    /// pin the byte layout across builds: a router and a node that
    /// disagree on any of them would silently disagree on shard
    /// ownership, so a failure here means [`KEY_HASH_VERSION`] must be
    /// bumped and every fleet component rebuilt together.
    #[test]
    fn stable_encoding_golden_vectors() {
        // A minimal hand-built network, so the expected bytes can be
        // derived from the documented encoding by hand.
        let layer = smm_model::Layer::new(
            "l0".to_string(),
            smm_model::LayerKind::Conv,
            smm_model::LayerShape {
                ifmap_h: 8,
                ifmap_w: 8,
                in_channels: 3,
                filter_h: 3,
                filter_w: 3,
                num_filters: 4,
                stride: 1,
                padding: 0,
                depthwise: false,
            },
        )
        .unwrap();
        let net = Network::new("t", vec![layer]).unwrap();
        let k = key(&net, 64);
        let hex = k.stable_hex();
        // version 1 LE · len("t")=1 LE · "t" · layer count 1 LE ·
        // len("l0")=2 LE · "l0" — every integer little-endian u64,
        // every string length-prefixed.
        assert!(
            hex.starts_with("01000000010000000000000074010000000000000002000000000000006c30"),
            "prefix changed: {hex}"
        );
        assert_eq!(k.stable_hash64(), GOLDEN_TINY_HASH, "hash: {hex}");

        // Two full-zoo keys, pinning the network/accelerator encoding.
        assert_eq!(
            key(&zoo::resnet18(), 64).stable_hash64(),
            GOLDEN_RESNET18_64_HASH
        );
        assert_eq!(
            key(&zoo::mobilenetv2(), 256).stable_hash64(),
            GOLDEN_MOBILENETV2_256_HASH
        );
    }

    const GOLDEN_TINY_HASH: u64 = 0x7a4a_a8ed_e812_1d1f;
    const GOLDEN_RESNET18_64_HASH: u64 = 0xdecf_f1e2_ad01_b666;
    const GOLDEN_MOBILENETV2_256_HASH: u64 = 0x1d60_71bd_ec8f_fc49;

    #[test]
    fn hottest_returns_most_recent_first_without_touching_stats() {
        let cache: PlanCache<Arc<String>> = PlanCache::new(8);
        let nets = [zoo::resnet18(), zoo::mobilenet(), zoo::mobilenetv2()];
        for (i, n) in nets.iter().enumerate() {
            cache.insert(key(n, 256), Arc::new(format!("plan-{i}")));
        }
        // Touch the oldest so it becomes hottest.
        assert!(cache.get(&key(&nets[0], 256)).is_some());
        let before = cache.stats();
        let hot = cache.hottest(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, key(&nets[0], 256));
        assert_eq!(*hot[0].1, "plan-0");
        assert_eq!(hot[1].0, key(&nets[2], 256));
        let after = cache.stats();
        assert_eq!(before, after, "hottest must not perturb statistics");
        assert_eq!(cache.hottest(100).len(), 3);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        let nets = [zoo::resnet18(), zoo::mobilenet(), zoo::mobilenetv2()];
        let m = Manager::new(acc(256), ManagerConfig::new(Objective::Accesses));
        let plans: Vec<Arc<ExecutionPlan>> = nets
            .iter()
            .map(|n| Arc::new(m.heterogeneous(n).unwrap()))
            .collect();
        let keys: Vec<PlanKey> = nets.iter().map(|n| key(n, 256)).collect();

        cache.insert(keys[0].clone(), plans[0].clone());
        cache.insert(keys[1].clone(), plans[1].clone());
        // Touch key 0 so key 1 becomes the LRU entry.
        assert!(cache.get(&keys[0]).is_some());
        cache.insert(keys[2].clone(), plans[2].clone());
        assert!(cache.get(&keys[1]).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[2]).is_some());

        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let cache = PlanCache::new(1);
        let net = zoo::resnet18();
        let m = Manager::new(acc(256), ManagerConfig::new(Objective::Accesses));
        let plan = Arc::new(m.heterogeneous(&net).unwrap());
        cache.insert(key(&net, 256), plan.clone());
        cache.insert(key(&net, 256), plan);
        let s = cache.stats();
        assert_eq!(s.evictions, 0);
        assert_eq!(s.len, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        let net = zoo::resnet18();
        let m = Manager::new(acc(256), ManagerConfig::new(Objective::Accesses));
        cache.insert(key(&net, 256), Arc::new(m.heterogeneous(&net).unwrap()));
        assert!(cache.get(&key(&net, 256)).is_none());
        assert_eq!(cache.stats().len, 0);
    }

    proptest! {
        /// Round-tripping any topology through the CSV format preserves
        /// the cache key, and mutating any single layer dimension
        /// changes it.
        #[test]
        fn key_canonicalization_roundtrip_and_mutation(
            layer_count in 1usize..5,
            seed in 0u64..1000,
            bump_field in 0usize..6,
        ) {
            // Build a small deterministic network from the seed.
            let mut layers = Vec::new();
            for i in 0..layer_count {
                let r = seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64);
                let shape = smm_model::LayerShape {
                    ifmap_h: 4 + (r % 29) as u32,
                    ifmap_w: 4 + ((r >> 8) % 29) as u32,
                    in_channels: 1 + ((r >> 16) % 16) as u32,
                    filter_h: 1 + ((r >> 24) % 3) as u32,
                    filter_w: 1 + ((r >> 32) % 3) as u32,
                    num_filters: 1 + ((r >> 40) % 16) as u32,
                    stride: 1 + ((r >> 48) % 2) as u32,
                    padding: ((r >> 52) % 2) as u32,
                    depthwise: false,
                };
                prop_assume!(shape.validate().is_ok());
                layers.push(
                    smm_model::Layer::new(format!("l{i}"), smm_model::LayerKind::Conv, shape)
                        .unwrap(),
                );
            }
            let net = Network::new("prop", layers).unwrap();

            // Same topology re-parsed from its CSV form: identical key.
            let reparsed = topology::parse("prop", &topology::write(&net)).unwrap();
            prop_assert_eq!(key(&net, 256), key(&reparsed, 256));

            // Any mutation of one layer dimension: different key.
            let mut mutated = net.clone();
            let shape = &mut mutated.layers[0].shape;
            match bump_field {
                0 => shape.ifmap_h += 1,
                1 => shape.ifmap_w += 1,
                2 => shape.in_channels += 1,
                3 => shape.num_filters += 1,
                4 => shape.stride += 1,
                _ => shape.padding += 1,
            }
            prop_assert!(key(&net, 256) != key(&mutated, 256));
        }
    }
}
