//! The pass-based planning pipeline.
//!
//! [`Planner`] runs a plan as explicit passes over a network:
//!
//! 1. **Selection pass** — Algorithm 1's per-layer inner loop, executed
//!    for every layer (in parallel via rayon; each layer is
//!    independent), through one [`LayerPlanner`] that owns candidate
//!    enumeration, the GLB feasibility filter, and the lexicographic
//!    objective comparison.
//! 2. **Inter-layer pass** — the Section 5.4 producer/consumer reuse
//!    rewrite ([`crate::interlayer::apply`]), when enabled in
//!    [`ManagerConfig`].
//! 3. **Finish pass** — totals refresh and plan assembly
//!    ([`ExecutionPlan`] construction).
//!
//! The [`LayerPlanner`] can be given a shape-keyed [`LayerMemo`]:
//! layers with identical [`LayerShape`](smm_model::LayerShape)s (the
//! repeated blocks of ResNet/VGG, or the same model planned by many
//! concurrent serve requests) are planned once and the decision reused,
//! with byte-identical results to the unmemoized path.

use crate::manager::{CandidateReport, ManagerConfig, PlanError};
use crate::plan::{ExecutionPlan, LayerDecision, Scheme};
use crate::{CancelToken, PlanScheme};
use parking_lot::Mutex;
use rayon::prelude::*;
use smm_arch::AcceleratorConfig;
use smm_model::{LayerShape, Network};
use smm_policy::{estimate, PolicyEstimate, PolicyKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Memo key for one layer-selection problem. Two selections share a
/// memo entry only when every input that can influence Algorithm 1's
/// answer matches: the layer shape, the policy constraint (`None` for
/// the heterogeneous search, `Some(kind)` for homogeneous plans), the
/// accelerator, and the objective/prefetch knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey {
    shape: LayerShape,
    constraint: Option<PolicyKind>,
    acc: AcceleratorConfig,
    objective: crate::Objective,
    allow_prefetch: bool,
}

/// Hit/miss counters of a [`LayerMemo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    pub hits: u64,
    pub misses: u64,
}

impl MemoStats {
    /// Hits as a fraction of all lookups (0.0 when the memo is unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / total as f64
            }
        }
    }
}

/// A shape-keyed memo of layer-selection decisions, shared across plans
/// (and across serve requests) via `Arc`.
///
/// The memo caches the full outcome of a selection — including "does
/// not fit" (`None`) — so repeated shapes skip candidate enumeration
/// entirely. Results are byte-identical to the unmemoized path because
/// the selection is deterministic in the memo key. Lookups and inserts
/// are counted both locally ([`stats`](Self::stats)) and through
/// `smm-obs` (`planner.memo_hits` / `planner.memo_misses`).
#[derive(Debug)]
pub struct LayerMemo {
    entries: Mutex<HashMap<MemoKey, Option<PolicyEstimate>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for LayerMemo {
    fn default() -> Self {
        LayerMemo::new(Self::DEFAULT_CAPACITY)
    }
}

impl LayerMemo {
    /// Default entry cap. Entries are a few hundred bytes; the cap only
    /// exists to bound a long-lived server's memory.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A memo holding at most `capacity` decisions. Once full it keeps
    /// serving hits but stops inserting (selection stays correct, just
    /// unmemoized for new shapes).
    pub fn new(capacity: usize) -> Self {
        LayerMemo {
            entries: Mutex::new(HashMap::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Hit/miss counts since construction.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized decisions.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no decision has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look `key` up, computing and (capacity permitting) inserting on a
    /// miss. The lock is not held across `compute`, so a slow selection
    /// never blocks hits on other shapes.
    fn get_or_compute(
        &self,
        key: MemoKey,
        compute: impl FnOnce() -> Option<PolicyEstimate>,
    ) -> Option<PolicyEstimate> {
        if let Some(cached) = self.entries.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if smm_obs::enabled() {
                smm_obs::add(smm_obs::Counter::LayerMemoHits, 1);
            }
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if smm_obs::enabled() {
            smm_obs::add(smm_obs::Counter::LayerMemoMisses, 1);
        }
        let value = compute();
        let mut entries = self.entries.lock();
        if entries.len() < self.capacity {
            entries.insert(key, value.clone());
        }
        value
    }
}

/// Algorithm 1's per-layer inner loop behind one API: enumerate policy
/// candidates (optionally constrained to a named policy), filter by GLB
/// feasibility, and keep the lexicographic winner under the objective.
/// Optionally backed by a shared [`LayerMemo`].
#[derive(Debug, Clone)]
pub struct LayerPlanner {
    acc: AcceleratorConfig,
    cfg: ManagerConfig,
    memo: Option<Arc<LayerMemo>>,
}

impl LayerPlanner {
    pub fn new(acc: AcceleratorConfig, cfg: ManagerConfig) -> Self {
        LayerPlanner {
            acc,
            cfg,
            memo: None,
        }
    }

    /// Reuse decisions for repeated shapes via `memo`.
    #[must_use]
    pub fn with_memo(mut self, memo: Arc<LayerMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    pub fn accelerator(&self) -> &AcceleratorConfig {
        &self.acc
    }

    pub fn config(&self) -> &ManagerConfig {
        &self.cfg
    }

    fn prefetch_options(&self) -> &'static [bool] {
        if self.cfg.allow_prefetch {
            &[false, true]
        } else {
            &[false]
        }
    }

    fn memoized(
        &self,
        shape: &LayerShape,
        constraint: Option<PolicyKind>,
        compute: impl FnOnce() -> Option<PolicyEstimate>,
    ) -> Option<PolicyEstimate> {
        let Some(memo) = &self.memo else {
            return compute();
        };
        let key = MemoKey {
            shape: *shape,
            constraint,
            acc: self.acc,
            objective: self.cfg.objective,
            allow_prefetch: self.cfg.allow_prefetch,
        };
        memo.get_or_compute(key, compute)
    }

    /// Algorithm 1's inner loop for one layer: the best feasible
    /// candidate among the named policies (and their prefetch variants).
    /// The paper only reaches for the tile-size search when nothing named
    /// fits; we keep it in the candidate list unconditionally — a strict
    /// superset that can only improve the plan (named policies win ties
    /// because they are evaluated first).
    pub fn select(&self, shape: &LayerShape) -> Option<PolicyEstimate> {
        self.memoized(shape, None, || self.select_uncached(shape))
    }

    fn select_uncached(&self, shape: &LayerShape) -> Option<PolicyEstimate> {
        let mut best: Option<PolicyEstimate> = None;
        let mut candidates = 0u64;
        let mut rejected = 0u64;
        for kind in PolicyKind::ALL {
            for &prefetch in self.prefetch_options() {
                let Some(e) = estimate(kind, shape, &self.acc, prefetch) else {
                    continue;
                };
                candidates += 1;
                if !e.fits(&self.acc) {
                    if prefetch {
                        rejected += 1;
                    }
                    continue;
                }
                if best.as_ref().is_none_or(|b| {
                    self.cfg.objective.estimate_key(&e) < self.cfg.objective.estimate_key(b)
                }) {
                    best = Some(e);
                }
            }
        }
        if smm_obs::enabled() {
            smm_obs::add(smm_obs::Counter::PlannerCandidates, candidates);
            smm_obs::add(smm_obs::Counter::PlannerPrefetchRejected, rejected);
            smm_obs::observe(smm_obs::Histogram::CandidatesPerLayer, candidates);
        }
        best
    }

    /// The best estimate for one layer when constrained to a single named
    /// policy (used by homogeneous plans): the policy itself or its
    /// prefetch variant, falling back to the tiled search when the policy
    /// cannot fit (so a homogeneous plan still executes every layer).
    pub fn select_constrained(
        &self,
        kind: PolicyKind,
        shape: &LayerShape,
    ) -> Option<PolicyEstimate> {
        self.memoized(shape, Some(kind), || {
            self.select_constrained_uncached(kind, shape)
        })
    }

    fn select_constrained_uncached(
        &self,
        kind: PolicyKind,
        shape: &LayerShape,
    ) -> Option<PolicyEstimate> {
        let mut best: Option<PolicyEstimate> = None;
        for candidate_kind in [kind, PolicyKind::Fallback] {
            for &prefetch in self.prefetch_options() {
                let Some(e) = estimate(candidate_kind, shape, &self.acc, prefetch) else {
                    continue;
                };
                if !e.fits(&self.acc) {
                    continue;
                }
                if best.as_ref().is_none_or(|b| {
                    self.cfg.objective.estimate_key(&e) < self.cfg.objective.estimate_key(b)
                }) {
                    best = Some(e);
                }
            }
            if best.is_some() {
                break;
            }
        }
        best
    }

    /// Every feasible candidate for a layer, in deterministic
    /// enumeration order — the search space the
    /// [`global`](crate::global) scheduler's dynamic program ranges
    /// over. Unconstrained, this is Algorithm 1's full candidate list
    /// (`select` picks its objective-minimum); constrained, it mirrors
    /// [`select_constrained`](Self::select_constrained): the named
    /// policy's variants, or the fallback's only when nothing named
    /// fits.
    pub(crate) fn feasible_candidates(
        &self,
        shape: &LayerShape,
        constraint: Option<PolicyKind>,
    ) -> Vec<PolicyEstimate> {
        let mut out = Vec::new();
        let push_group = |kinds: &[PolicyKind], out: &mut Vec<PolicyEstimate>| {
            for &kind in kinds {
                for &prefetch in self.prefetch_options() {
                    if let Some(e) = estimate(kind, shape, &self.acc, prefetch) {
                        if e.fits(&self.acc) && !out.contains(&e) {
                            out.push(e);
                        }
                    }
                }
            }
        };
        match constraint {
            None => push_group(&PolicyKind::ALL, &mut out),
            Some(kind) => {
                push_group(&[kind], &mut out);
                if out.is_empty() {
                    push_group(&[PolicyKind::Fallback], &mut out);
                }
            }
        }
        out
    }

    /// Explain Algorithm 1's choice for one layer: every candidate with
    /// its metrics, feasibility, and whether it won. Chosen = the same
    /// candidate [`select`](Self::select) would pick.
    pub fn explain(&self, shape: &LayerShape) -> Vec<CandidateReport> {
        let chosen = self.select(shape);
        let mut out = Vec::new();
        for kind in PolicyKind::ALL {
            for &prefetch in self.prefetch_options() {
                let Some(e) = estimate(kind, shape, &self.acc, prefetch) else {
                    continue;
                };
                let feasible = e.fits(&self.acc);
                let is_chosen = chosen.as_ref() == Some(&e);
                out.push(CandidateReport {
                    estimate: e,
                    feasible,
                    chosen: is_chosen,
                });
            }
        }
        out
    }
}

/// The pass-based planner: selection pass → inter-layer pass → finish
/// pass (see the module docs for the pipeline). All planning entry
/// points — [`Manager`](crate::Manager), sweeps, tenancy, the serving
/// worker, the CLI — run through this type.
#[derive(Debug, Clone)]
pub struct Planner {
    acc: AcceleratorConfig,
    cfg: ManagerConfig,
    layers: LayerPlanner,
}

impl Planner {
    pub fn new(acc: AcceleratorConfig, cfg: ManagerConfig) -> Self {
        Planner {
            acc,
            cfg,
            layers: LayerPlanner::new(acc, cfg),
        }
    }

    /// Share `memo` across this planner's selection passes (and with any
    /// other planner holding a clone of the same `Arc`).
    #[must_use]
    pub fn with_memo(mut self, memo: Arc<LayerMemo>) -> Self {
        self.layers = self.layers.clone().with_memo(memo);
        self
    }

    pub fn accelerator(&self) -> &AcceleratorConfig {
        &self.acc
    }

    pub fn config(&self) -> &ManagerConfig {
        &self.cfg
    }

    /// The layer-level planner backing the selection pass.
    pub fn layer_planner(&self) -> &LayerPlanner {
        &self.layers
    }

    /// Plan `net` under `scheme` — the single entry point the cache key,
    /// serve worker, CLI, and sweeps dispatch through.
    pub fn plan(
        &self,
        net: &Network,
        scheme: PlanScheme,
        cancel: &CancelToken,
    ) -> Result<ExecutionPlan, PlanError> {
        match scheme {
            PlanScheme::Heterogeneous => self.heterogeneous_with(net, cancel),
            PlanScheme::BestHomogeneous => self.best_homogeneous_with(net, cancel),
        }
    }

    /// The heterogeneous execution plan (`Het`): Algorithm 1 applied per
    /// layer under the configured scheduler. With
    /// [`SchedulerKind::Global`](crate::SchedulerKind) the greedy plan is
    /// still built first — the global pass must beat it or fall back to
    /// it byte-identically.
    pub fn heterogeneous_with(
        &self,
        net: &Network,
        cancel: &CancelToken,
    ) -> Result<ExecutionPlan, PlanError> {
        match self.cfg.scheduler {
            crate::SchedulerKind::Greedy => self.greedy_heterogeneous_with(net, cancel),
            crate::SchedulerKind::Global => crate::global::heterogeneous(self, net, cancel),
        }
    }

    /// The greedy heterogeneous pipeline (selection → inter-layer →
    /// finish), regardless of the configured scheduler. The global pass
    /// uses this as its fallback baseline.
    pub(crate) fn greedy_heterogeneous_with(
        &self,
        net: &Network,
        cancel: &CancelToken,
    ) -> Result<ExecutionPlan, PlanError> {
        let _net_span = smm_obs::span!("plan.network", "{} ({})", net.name, "het");
        let decisions = self.selection_pass(net, None, cancel)?;
        Ok(self.finish_pass(net, Scheme::Heterogeneous, decisions))
    }

    /// A homogeneous execution plan: every layer constrained to `kind`,
    /// under the configured scheduler.
    pub fn homogeneous_with(
        &self,
        net: &Network,
        kind: PolicyKind,
        cancel: &CancelToken,
    ) -> Result<ExecutionPlan, PlanError> {
        match self.cfg.scheduler {
            crate::SchedulerKind::Greedy => self.greedy_homogeneous_with(net, kind, cancel),
            crate::SchedulerKind::Global => crate::global::homogeneous(self, net, kind, cancel),
        }
    }

    /// The greedy homogeneous pipeline, regardless of the configured
    /// scheduler. The global pass uses this as its fallback baseline.
    pub(crate) fn greedy_homogeneous_with(
        &self,
        net: &Network,
        kind: PolicyKind,
        cancel: &CancelToken,
    ) -> Result<ExecutionPlan, PlanError> {
        let _net_span = smm_obs::span!("plan.network", "{} (hom {:?})", net.name, kind);
        let decisions = self.selection_pass(net, Some(kind), cancel)?;
        Ok(self.finish_pass(net, Scheme::Homogeneous(kind), decisions))
    }

    /// The best homogeneous plan under the objective (`Hom` in the
    /// figures): evaluate all named policies and keep the lexicographic
    /// winner. A fired token aborts the whole evaluation rather than
    /// returning a partially-compared winner.
    pub fn best_homogeneous_with(
        &self,
        net: &Network,
        cancel: &CancelToken,
    ) -> Result<ExecutionPlan, PlanError> {
        let mut best: Option<ExecutionPlan> = None;
        let mut last_err = None;
        for kind in PolicyKind::NAMED {
            match self.homogeneous_with(net, kind, cancel) {
                Ok(plan) => {
                    let obj = self.cfg.objective;
                    let better = best.as_ref().is_none_or(|b| {
                        obj.key(plan.totals.accesses_elems, plan.totals.latency_cycles)
                            < obj.key(b.totals.accesses_elems, b.totals.latency_cycles)
                    });
                    if better {
                        best = Some(plan);
                    }
                }
                Err(e @ PlanError::Cancelled { .. }) => return Err(e),
                Err(e) => last_err = Some(e),
            }
        }
        best.ok_or_else(|| last_err.expect("at least one policy attempted"))
    }

    /// Pass 1 — per-layer selection. Layers are independent, so the pass
    /// fans out over rayon; the token is still checked per layer, so a
    /// fired deadline aborts within one layer's planning time and
    /// reports how many layers had completed.
    fn selection_pass(
        &self,
        net: &Network,
        constraint: Option<PolicyKind>,
        cancel: &CancelToken,
    ) -> Result<Vec<LayerDecision>, PlanError> {
        if cancel.is_cancelled() {
            return Err(PlanError::Cancelled { layers_done: 0 });
        }
        let done = AtomicUsize::new(0);
        net.layers
            .par_iter()
            .enumerate()
            .map(|(i, layer)| {
                if cancel.is_cancelled() {
                    return Err(PlanError::Cancelled {
                        layers_done: done.load(Ordering::Relaxed),
                    });
                }
                let _layer_span = smm_obs::span!("plan.layer", "{}", layer.name);
                let est = match constraint {
                    None => self.layers.select(&layer.shape),
                    Some(kind) => self.layers.select_constrained(kind, &layer.shape),
                };
                let est = est.ok_or_else(|| PlanError::LayerDoesNotFit {
                    layer: layer.name.clone(),
                    glb_elements: self.acc.glb_elements(),
                })?;
                if constraint.is_none() {
                    smm_obs::add(smm_obs::Counter::PlannerLayersPlanned, 1);
                }
                done.fetch_add(1, Ordering::Relaxed);
                Ok(LayerDecision::new(i, layer.name.clone(), est))
            })
            .collect()
    }

    /// Passes 2 and 3 — the Section 5.4 inter-layer rewrite (when
    /// enabled) followed by plan assembly and totals refresh. Prefetch
    /// accounting (the Eq. 2 allocation doubling) already happened per
    /// candidate inside the selection pass; the finish pass only folds
    /// the per-layer results into plan totals.
    fn finish_pass(
        &self,
        net: &Network,
        scheme: Scheme,
        decisions: Vec<LayerDecision>,
    ) -> ExecutionPlan {
        let mut plan = ExecutionPlan::new(net.name.clone(), scheme, decisions, &self.acc);
        if self.cfg.inter_layer_reuse {
            crate::interlayer::apply(&mut plan, net, &self.acc, self.cfg.objective);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;
    use smm_arch::ByteSize;
    use smm_model::zoo;

    fn planner(kb: u64, objective: Objective) -> Planner {
        Planner::new(
            AcceleratorConfig::paper_default(ByteSize::from_kb(kb)),
            ManagerConfig::new(objective),
        )
    }

    #[test]
    fn memoized_plan_is_identical_to_unmemoized() {
        for objective in [Objective::Accesses, Objective::Latency] {
            for kb in [64, 256] {
                let plain = planner(kb, objective);
                let memo = Arc::new(LayerMemo::default());
                let memoized = planner(kb, objective).with_memo(Arc::clone(&memo));
                for net in zoo::all_networks() {
                    let a = plain
                        .heterogeneous_with(&net, &CancelToken::none())
                        .unwrap();
                    let b = memoized
                        .heterogeneous_with(&net, &CancelToken::none())
                        .unwrap();
                    assert_eq!(a, b, "{} @ {kb}kB {objective:?}", net.name);
                }
            }
        }
    }

    #[test]
    fn memo_hits_repeated_shapes_within_one_network() {
        let memo = Arc::new(LayerMemo::default());
        let p = planner(64, Objective::Accesses).with_memo(Arc::clone(&memo));
        let net = zoo::resnet18();
        p.heterogeneous_with(&net, &CancelToken::none()).unwrap();
        let distinct: std::collections::HashSet<_> = net.layers.iter().map(|l| l.shape).collect();
        let stats = memo.stats();
        assert_eq!(stats.misses as usize, distinct.len());
        assert_eq!(
            stats.hits as usize,
            net.layers.len() - distinct.len(),
            "every repeated shape must hit"
        );
        assert!(stats.hits > 0, "ResNet-18 has repeated blocks");
        assert_eq!(memo.len(), distinct.len());
    }

    #[test]
    fn memo_is_shared_across_plans_of_the_same_model() {
        let memo = Arc::new(LayerMemo::default());
        let p = planner(64, Objective::Accesses).with_memo(Arc::clone(&memo));
        let net = zoo::resnet18();
        p.heterogeneous_with(&net, &CancelToken::none()).unwrap();
        let after_first = memo.stats();
        p.heterogeneous_with(&net, &CancelToken::none()).unwrap();
        let after_second = memo.stats();
        // The second plan is all hits: same shapes, same accelerator.
        assert_eq!(after_second.misses, after_first.misses);
        assert_eq!(
            after_second.hits,
            after_first.hits + net.layers.len() as u64
        );
        assert!(after_second.hit_rate() > after_first.hit_rate());
    }

    #[test]
    fn memo_distinguishes_constraint_and_accelerator() {
        let memo = Arc::new(LayerMemo::default());
        let net = zoo::resnet18();
        let p64 = planner(64, Objective::Accesses).with_memo(Arc::clone(&memo));
        let p256 = planner(256, Objective::Accesses).with_memo(Arc::clone(&memo));
        let a64 = p64.heterogeneous_with(&net, &CancelToken::none()).unwrap();
        let a256 = p256.heterogeneous_with(&net, &CancelToken::none()).unwrap();
        // Different GLB sizes must not share entries: the plans differ.
        assert_ne!(a64.totals.accesses_elems, a256.totals.accesses_elems);
        // Constrained and unconstrained selections are keyed apart too.
        let hom = p64
            .homogeneous_with(&net, PolicyKind::P2FilterReuse, &CancelToken::none())
            .unwrap();
        assert_eq!(
            a64,
            p64.heterogeneous_with(&net, &CancelToken::none()).unwrap()
        );
        assert_ne!(a64, hom);
    }

    #[test]
    fn zero_capacity_memo_still_plans_correctly() {
        let memo = Arc::new(LayerMemo::new(0));
        let p = planner(64, Objective::Accesses).with_memo(Arc::clone(&memo));
        let net = zoo::resnet18();
        let with = p.heterogeneous_with(&net, &CancelToken::none()).unwrap();
        let without = planner(64, Objective::Accesses)
            .heterogeneous_with(&net, &CancelToken::none())
            .unwrap();
        assert_eq!(with, without);
        assert!(memo.is_empty(), "capacity 0 must never insert");
        assert_eq!(memo.stats().hits, 0);
    }

    #[test]
    fn plan_dispatches_on_scheme() {
        let p = planner(64, Objective::Accesses);
        let net = zoo::resnet18();
        let het = p
            .plan(&net, PlanScheme::Heterogeneous, &CancelToken::none())
            .unwrap();
        let hom = p
            .plan(&net, PlanScheme::BestHomogeneous, &CancelToken::none())
            .unwrap();
        assert_eq!(
            het,
            p.heterogeneous_with(&net, &CancelToken::none()).unwrap()
        );
        assert_eq!(
            hom,
            p.best_homogeneous_with(&net, &CancelToken::none()).unwrap()
        );
    }

    #[test]
    fn cancelled_selection_reports_progress() {
        let p = planner(64, Objective::Accesses);
        let net = zoo::resnet18();
        let expired = CancelToken::with_timeout(std::time::Duration::ZERO);
        assert_eq!(
            p.heterogeneous_with(&net, &expired).unwrap_err(),
            PlanError::Cancelled { layers_done: 0 }
        );
    }
}
