//! The `GlobalSchedule` pass: exact inter-layer scheduling by dynamic
//! programming.
//!
//! The paper's pipeline is greedy twice over: Algorithm 1 picks each
//! layer's policy in isolation, and the Section 5.4 pass then enables
//! producer→consumer handoffs one transition at a time, never
//! reconsidering a layer's policy in the light of a *later* opportunity.
//! Joint approaches — Li et al. (arXiv:2311.18246) schedule, allocate,
//! and replace tensors over the whole network; SoMa (arXiv:2501.12634)
//! searches the DRAM communication schedule explicitly — show that the
//! coupled decision space holds real traffic savings.
//!
//! This module searches that coupled space exactly for our execution
//! model. Because a plan's objective decomposes per layer once you know
//! (a) which policy the layer runs and (b) whether its ifmap is already
//! resident / its ofmap stays resident, the whole space collapses to a
//! dynamic program over layers with a two-value state: *was the
//! previous layer's ofmap handed off on-chip?* For every layer the DP
//! weighs each feasible policy candidate (Algorithm 1's full candidate
//! list) against both states and both handoff decisions, subject to
//! exactly the feasibility rules the greedy pass and the `smm-check`
//! re-derivation enforce:
//!
//! 1. a handoff requires chaining shapes and a producer policy that
//!    leaves the whole ofmap resident (SMM007);
//! 2. a consumer's allocation must coexist with the retained ofmap:
//!    `ofmap(i−1) + required(i) ≤ GLB` (SMM008).
//!
//! The candidate set is a superset of everything the greedy pipeline
//! can reach (its handoff pass only ever switches producers to
//! intra-layer or policy 3 — both already in the list), so the DP
//! optimum can never lose to greedy. Still, the pass *proves* it: the
//! greedy plan is always built first, and unless the DP plan is
//! strictly better on the plan-level objective key the greedy plan is
//! returned byte-identically (`global.fallbacks` counts these).
//!
//! Unlike the greedy pipeline, the DP always explores handoffs — the
//! `inter_layer_reuse` knob gates only the §5.4 pass. Cost is
//! `O(layers × candidates × 4)` transitions; exact search at these
//! sizes is cheaper than one layer's tile-size fallback search.

use crate::manager::PlanError;
use crate::plan::{ExecutionPlan, LayerDecision, Scheme};
use crate::planner::Planner;
use crate::{CancelToken, Objective};
use smm_arch::AcceleratorConfig;
use smm_model::Network;
use smm_policy::{estimate, PolicyEstimate, PolicyKind};

/// Objective key of a whole plan, the quantity the DP minimizes and the
/// fallback comparison uses.
fn plan_key(plan: &ExecutionPlan, objective: Objective) -> (u64, u64) {
    objective.key(plan.totals.accesses_elems, plan.totals.latency_cycles)
}

/// One layer's candidate pool for the DP.
struct LayerCandidates {
    /// Feasible estimates; indices `>= normal` are handoff-only
    /// producers (see [`handoff_extras`]).
    pool: Vec<PolicyEstimate>,
    /// Number of leading candidates usable without a handoff.
    normal: usize,
}

/// Resident-ofmap policies the greedy §5.4 pass may switch a producer
/// to. Under a homogeneous constraint these fall outside the named
/// policy's pool, so the DP admits them only when the layer actually
/// hands its ofmap off — the same bargain the greedy pass strikes.
fn handoff_extras(
    pool: &[PolicyEstimate],
    shape: &smm_model::LayerShape,
    acc: &AcceleratorConfig,
) -> Vec<PolicyEstimate> {
    let mut out = Vec::new();
    for kind in [PolicyKind::IntraLayer, PolicyKind::P3PerChannel] {
        for prefetch in [false, true] {
            if let Some(e) = estimate(kind, shape, acc, prefetch) {
                if e.fits(acc) && !pool.contains(&e) && !out.contains(&e) {
                    out.push(e);
                }
            }
        }
    }
    out
}

/// The objective key one decision contributes, given its reuse flags.
fn decision_key(
    est: &PolicyEstimate,
    ifmap_from_glb: bool,
    ofmap_kept_on_chip: bool,
    acc: &AcceleratorConfig,
    objective: Objective,
) -> (u64, u64) {
    let mut d = LayerDecision::new(0, String::new(), est.clone());
    d.ifmap_from_glb = ifmap_from_glb;
    d.ofmap_kept_on_chip = ofmap_kept_on_chip;
    objective.key(
        d.effective_accesses().total(),
        d.effective_latency(acc).cycles,
    )
}

fn add_key(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
    (a.0 + b.0, a.1 + b.1)
}

/// Run the DP and reconstruct the optimal decisions, or `None` when some
/// layer has no feasible candidate (the greedy baseline will have
/// reported the failure already).
fn search(
    planner: &Planner,
    net: &Network,
    constraint: Option<PolicyKind>,
    cancel: &CancelToken,
) -> Result<Option<Vec<LayerDecision>>, PlanError> {
    let acc = *planner.accelerator();
    let objective = planner.config().objective;
    let glb = acc.glb_elements();
    let n = net.layers.len();

    // Per-layer candidate pools, in deterministic enumeration order.
    let mut cands: Vec<LayerCandidates> = Vec::with_capacity(n);
    for (i, layer) in net.layers.iter().enumerate() {
        if cancel.is_cancelled() {
            return Err(PlanError::Cancelled { layers_done: i });
        }
        let pool = planner
            .layer_planner()
            .feasible_candidates(&layer.shape, constraint);
        if pool.is_empty() {
            return Ok(None);
        }
        let normal = pool.len();
        let mut pool = pool;
        if constraint.is_some() {
            let extras = handoff_extras(&pool, &layer.shape, &acc);
            pool.extend(extras);
        }
        cands.push(LayerCandidates { pool, normal });
    }

    // Does the transition i → i+1 chain at all?
    let chains: Vec<bool> = net
        .layers
        .windows(2)
        .map(|w| crate::interlayer::shapes_chain(&w[0], &w[1]))
        .collect();

    // best[s] = minimal prefix key reaching the current layer with
    // incoming state s (s = 1: previous ofmap retained on-chip).
    // parent[i][s_in] = (previous state, candidate index at layer i−1)
    // for the best path that enters layer i in state s_in.
    let mut best: [Option<(u64, u64)>; 2] = [Some((0, 0)), None];
    let mut parent: Vec<[Option<(u8, usize)>; 2]> = vec![[None; 2]; n + 1];
    let mut transitions = 0u64;

    for i in 0..n {
        if cancel.is_cancelled() {
            return Err(PlanError::Cancelled { layers_done: i });
        }
        let prev_ofmap = if i > 0 {
            net.layers[i - 1].shape.ofmap_elems()
        } else {
            0
        };
        let mut next: [Option<(u64, u64)>; 2] = [None, None];
        let mut next_parent: [Option<(u8, usize)>; 2] = [None; 2];
        for s_in in 0..2usize {
            let Some(prefix) = best[s_in] else { continue };
            for (ci, est) in cands[i].pool.iter().enumerate() {
                // SMM008: a consumer's allocation coexists with the
                // retained producer ofmap.
                if s_in == 1 && prev_ofmap + est.required_elems() > glb {
                    continue;
                }
                let handoffs: &[bool] = if i + 1 < n && chains[i] && est.ofmap_resident_at_end {
                    &[false, true]
                } else {
                    &[false]
                };
                for &h in handoffs {
                    // Handoff-only producers must actually hand off.
                    if !h && ci >= cands[i].normal {
                        continue;
                    }
                    transitions += 1;
                    let key = add_key(prefix, decision_key(est, s_in == 1, h, &acc, objective));
                    let slot = usize::from(h);
                    if next[slot].is_none_or(|cur| key < cur) {
                        next[slot] = Some(key);
                        next_parent[slot] = Some((s_in as u8, ci));
                    }
                }
            }
        }
        best = next;
        parent[i + 1] = next_parent;
    }
    if smm_obs::enabled() {
        smm_obs::add(smm_obs::Counter::GlobalDpTransitions, transitions);
    }

    // The last layer has no consumer, so the run must end in state 0.
    if best[0].is_none() {
        return Ok(None);
    }
    let mut states = vec![0u8; n + 1];
    for i in (1..=n).rev() {
        let (prev, _) = parent[i][states[i] as usize].expect("reachable DP state has a parent");
        states[i - 1] = prev;
    }
    let mut decisions = Vec::with_capacity(n);
    for (i, layer) in net.layers.iter().enumerate() {
        let (_, ci) = parent[i + 1][states[i + 1] as usize].expect("path covers every layer");
        let mut d = LayerDecision::new(i, layer.name.clone(), cands[i].pool[ci].clone());
        d.ifmap_from_glb = states[i] == 1;
        d.ofmap_kept_on_chip = states[i + 1] == 1;
        decisions.push(d);
    }
    Ok(Some(decisions))
}

/// Build the DP plan for `scheme`, then keep it only if it strictly
/// beats the greedy baseline on the objective — otherwise return the
/// greedy plan unchanged.
fn beat_or_fall_back(
    planner: &Planner,
    net: &Network,
    constraint: Option<PolicyKind>,
    scheme: Scheme,
    greedy: ExecutionPlan,
    cancel: &CancelToken,
) -> Result<ExecutionPlan, PlanError> {
    let objective = planner.config().objective;
    let Some(decisions) = search(planner, net, constraint, cancel)? else {
        return Ok(greedy);
    };
    let global = ExecutionPlan::new(net.name.clone(), scheme, decisions, planner.accelerator());
    if plan_key(&global, objective) < plan_key(&greedy, objective) {
        Ok(global)
    } else {
        if smm_obs::enabled() {
            smm_obs::add(smm_obs::Counter::GlobalFallbacks, 1);
        }
        Ok(greedy)
    }
}

/// Globally-scheduled heterogeneous plan (the `Het` scheme under
/// [`SchedulerKind::Global`](crate::SchedulerKind)).
pub(crate) fn heterogeneous(
    planner: &Planner,
    net: &Network,
    cancel: &CancelToken,
) -> Result<ExecutionPlan, PlanError> {
    let _span = smm_obs::span!("plan.network", "{} (het global)", net.name);
    let greedy = planner.greedy_heterogeneous_with(net, cancel)?;
    beat_or_fall_back(planner, net, None, Scheme::Heterogeneous, greedy, cancel)
}

/// Globally-scheduled homogeneous plan: every layer constrained to
/// `kind` (handoff producers may still switch to a resident-ofmap
/// policy, exactly as the greedy §5.4 pass may).
pub(crate) fn homogeneous(
    planner: &Planner,
    net: &Network,
    kind: PolicyKind,
    cancel: &CancelToken,
) -> Result<ExecutionPlan, PlanError> {
    let _span = smm_obs::span!("plan.network", "{} (hom {:?} global)", net.name, kind);
    let greedy = planner.greedy_homogeneous_with(net, kind, cancel)?;
    beat_or_fall_back(
        planner,
        net,
        Some(kind),
        Scheme::Homogeneous(kind),
        greedy,
        cancel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ManagerConfig, PlanScheme, SchedulerKind};
    use smm_arch::ByteSize;
    use smm_model::zoo;

    fn planner(kb: u64, objective: Objective, scheduler: SchedulerKind) -> Planner {
        Planner::new(
            AcceleratorConfig::paper_default(ByteSize::from_kb(kb)),
            ManagerConfig::new(objective).with_scheduler(scheduler),
        )
    }

    fn key(p: &ExecutionPlan, o: Objective) -> (u64, u64) {
        plan_key(p, o)
    }

    #[test]
    fn global_never_loses_to_greedy_across_zoo() {
        let nets: Vec<_> = zoo::all_networks()
            .into_iter()
            .chain(zoo::transformer_networks())
            .collect();
        for objective in [Objective::Accesses, Objective::Latency] {
            for kb in [64, 256, 1024] {
                for net in &nets {
                    for scheme in [PlanScheme::Heterogeneous, PlanScheme::BestHomogeneous] {
                        let greedy = planner(kb, objective, SchedulerKind::Greedy)
                            .plan(net, scheme, &CancelToken::none())
                            .unwrap();
                        let global = planner(kb, objective, SchedulerKind::Global)
                            .plan(net, scheme, &CancelToken::none())
                            .unwrap();
                        assert!(
                            key(&global, objective) <= key(&greedy, objective),
                            "{} @ {kb}kB {objective:?} {scheme:?}: global {:?} > greedy {:?}",
                            net.name,
                            key(&global, objective),
                            key(&greedy, objective),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn global_beats_or_matches_greedy_with_reuse_enabled() {
        // The greedy baseline at its strongest: §5.4 handoffs on.
        for net in zoo::all_networks() {
            let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(1024));
            let cfg = ManagerConfig::new(Objective::Accesses).with_inter_layer_reuse(true);
            let greedy = Planner::new(acc, cfg)
                .heterogeneous_with(&net, &CancelToken::none())
                .unwrap();
            let global = Planner::new(acc, cfg.with_scheduler(SchedulerKind::Global))
                .heterogeneous_with(&net, &CancelToken::none())
                .unwrap();
            assert!(
                global.totals.accesses_elems <= greedy.totals.accesses_elems,
                "{}",
                net.name
            );
        }
    }

    #[test]
    fn global_strictly_beats_plain_greedy_somewhere() {
        // Without the §5.4 pass the greedy plan leaves every handoff on
        // the table; at 1 MB the DP must find at least one on a chained
        // network.
        let net = zoo::mnasnet();
        let greedy = planner(1024, Objective::Accesses, SchedulerKind::Greedy)
            .heterogeneous_with(&net, &CancelToken::none())
            .unwrap();
        let global = planner(1024, Objective::Accesses, SchedulerKind::Global)
            .heterogeneous_with(&net, &CancelToken::none())
            .unwrap();
        assert!(global.totals.accesses_elems < greedy.totals.accesses_elems);
        assert!(global.decisions.iter().any(|d| d.ifmap_from_glb));
    }

    #[test]
    fn fallback_is_byte_identical() {
        // A single-layer network has no inter-layer state to exploit:
        // the DP ties greedy and must return the greedy plan unchanged.
        let net =
            smm_model::Network::new("single", vec![zoo::resnet18().layers[0].clone()]).unwrap();
        let greedy = planner(256, Objective::Accesses, SchedulerKind::Greedy)
            .heterogeneous_with(&net, &CancelToken::none())
            .unwrap();
        let global = planner(256, Objective::Accesses, SchedulerKind::Global)
            .heterogeneous_with(&net, &CancelToken::none())
            .unwrap();
        assert_eq!(greedy, global);
    }

    #[test]
    fn global_plans_satisfy_handoff_invariants() {
        // The invariants smm-check re-derives (SMM007/SMM008).
        for net in zoo::all_networks()
            .into_iter()
            .chain(zoo::transformer_networks())
        {
            let p = planner(1024, Objective::Accesses, SchedulerKind::Global);
            let plan = p.heterogeneous_with(&net, &CancelToken::none()).unwrap();
            let acc = p.accelerator();
            let glb = acc.glb_elements();
            for i in 0..plan.decisions.len() {
                let d = &plan.decisions[i];
                assert!(d.estimate.fits(acc), "{}/{}", net.name, d.layer_name);
                if d.ofmap_kept_on_chip {
                    assert!(d.estimate.ofmap_resident_at_end, "{}", d.layer_name);
                    assert!(i + 1 < plan.decisions.len());
                    assert!(plan.decisions[i + 1].ifmap_from_glb);
                    assert!(crate::interlayer::shapes_chain(
                        &net.layers[i],
                        &net.layers[i + 1]
                    ));
                }
                if d.ifmap_from_glb {
                    assert!(i > 0);
                    assert!(plan.decisions[i - 1].ofmap_kept_on_chip);
                    assert!(
                        net.layers[i - 1].shape.ofmap_elems() + d.estimate.required_elems() <= glb,
                        "{}/{}",
                        net.name,
                        d.layer_name
                    );
                }
            }
        }
    }

    #[test]
    fn homogeneous_global_keeps_constraint_except_handoff_producers() {
        let p = planner(1024, Objective::Accesses, SchedulerKind::Global);
        let plan = p
            .homogeneous_with(
                &zoo::mobilenet(),
                PolicyKind::P2FilterReuse,
                &CancelToken::none(),
            )
            .unwrap();
        for d in &plan.decisions {
            let ok = d.estimate.kind == PolicyKind::P2FilterReuse
                || d.estimate.kind == PolicyKind::Fallback
                || (d.ofmap_kept_on_chip
                    && matches!(
                        d.estimate.kind,
                        PolicyKind::IntraLayer | PolicyKind::P3PerChannel
                    ));
            assert!(ok, "{}: {:?}", d.layer_name, d.estimate.kind);
        }
    }

    #[test]
    fn cancellation_propagates() {
        let p = planner(64, Objective::Accesses, SchedulerKind::Global);
        let expired = CancelToken::with_timeout(std::time::Duration::ZERO);
        assert!(matches!(
            p.heterogeneous_with(&zoo::resnet18(), &expired),
            Err(PlanError::Cancelled { .. })
        ));
    }

    #[test]
    fn global_is_deterministic() {
        let net = zoo::mobilenetv2();
        let a = planner(256, Objective::Latency, SchedulerKind::Global)
            .heterogeneous_with(&net, &CancelToken::none())
            .unwrap();
        let b = planner(256, Objective::Latency, SchedulerKind::Global)
            .heterogeneous_with(&net, &CancelToken::none())
            .unwrap();
        assert_eq!(a, b);
    }

    proptest::proptest! {
        /// On arbitrary small networks — not just the curated zoo — the
        /// global scheduler never produces a worse plan than greedy
        /// under either objective.
        #[test]
        fn global_never_loses_to_greedy_on_random_networks(
            layer_count in 1usize..6,
            seed in 0u64..300,
            kb in proptest::sample::select(&[64u64, 256][..]),
        ) {
            use smm_model::{Layer, LayerKind, LayerShape, Network};
            let mut layers = Vec::new();
            let mut ch = 1 + (seed % 16) as u32;
            for i in 0..layer_count {
                let r = seed
                    .wrapping_mul(0x9e37_79b9)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x2545_f491_4f6c_dd1d);
                let pointwise = r & 1 == 0;
                let k = if pointwise { 1 } else { 3 };
                let nf = 1 + ((r >> 8) % 64) as u32;
                let shape = LayerShape {
                    ifmap_h: 4 + ((r >> 16) % 29) as u32,
                    ifmap_w: 4 + ((r >> 24) % 29) as u32,
                    in_channels: ch,
                    filter_h: k,
                    filter_w: k,
                    num_filters: nf,
                    stride: 1 + ((r >> 32) % 2) as u32,
                    padding: k / 2,
                    depthwise: false,
                };
                proptest::prop_assume!(shape.validate().is_ok());
                let kind = if pointwise {
                    LayerKind::PointwiseConv
                } else {
                    LayerKind::Conv
                };
                layers.push(Layer::new(format!("l{i}"), kind, shape).unwrap());
                ch = nf;
            }
            let net = Network::new("prop", layers).unwrap();
            for objective in [Objective::Accesses, Objective::Latency] {
                let greedy = planner(kb, objective, SchedulerKind::Greedy)
                    .plan(&net, PlanScheme::Heterogeneous, &CancelToken::none())
                    .unwrap();
                let global = planner(kb, objective, SchedulerKind::Global)
                    .plan(&net, PlanScheme::Heterogeneous, &CancelToken::none())
                    .unwrap();
                proptest::prop_assert!(
                    key(&global, objective) <= key(&greedy, objective),
                    "{objective:?} @ {kb}kB: global {:?} > greedy {:?}",
                    key(&global, objective),
                    key(&greedy, objective),
                );
            }
        }
    }
}
