//! Cooperative cancellation for long-running planning calls.
//!
//! The planner is a tight loop over layers; a serving layer that
//! enforces per-request deadlines needs a way to abandon a plan midway
//! without killing the thread. A [`CancelToken`] carries an optional
//! wall-clock deadline and an optional shared stop flag; the planner
//! checks [`CancelToken::is_cancelled`] between layers and returns
//! [`PlanError::Cancelled`](crate::PlanError::Cancelled) when it fires.
//!
//! Checks are cheap (one `Instant::now` and/or one atomic load per
//! layer), so the token can be threaded through every entry point; the
//! default [`CancelToken::none`] never cancels.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cancellation signal observed cooperatively by the planner.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    stop: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A token that never cancels (the default for direct API calls).
    pub fn none() -> Self {
        CancelToken::default()
    }

    /// A token that cancels once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            deadline: Some(deadline),
            stop: None,
        }
    }

    /// A token that cancels `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// A token that cancels when `stop` becomes true (e.g. server
    /// shutdown), in addition to any deadline already set.
    pub fn with_stop_flag(mut self, stop: Arc<AtomicBool>) -> Self {
        self.stop = Some(stop);
        self
    }

    /// The wall-clock deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Has the deadline passed or the stop flag been raised?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        if let Some(stop) = &self.stop {
            // Relaxed: the flag is a latched one-way signal and carries
            // no data; the planner only needs to observe it eventually
            // (it re-checks every layer).
            if stop.load(Ordering::Relaxed) {
                return true;
            }
        }
        false
    }

    /// Time remaining until the deadline (`None` when no deadline is
    /// set; zero when it has already passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_none());
        assert!(t.remaining().is_none());
    }

    #[test]
    fn past_deadline_cancels() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        let far = CancelToken::with_timeout(Duration::from_hours(1));
        assert!(!far.is_cancelled());
        assert!(far.remaining().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn stop_flag_cancels() {
        let stop = Arc::new(AtomicBool::new(false));
        let t = CancelToken::none().with_stop_flag(stop.clone());
        assert!(!t.is_cancelled());
        stop.store(true, Ordering::Relaxed);
        assert!(t.is_cancelled());
    }
}
