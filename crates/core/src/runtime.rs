//! Dynamic re-planning under changing capacity.
//!
//! The paper argues its lightweight estimators allow "the memory
//! management to change dynamically even as the requirements change
//! during runtime" (Section 2.3). This module simulates exactly that: a
//! layer-by-layer run during which the GLB space available to the model
//! changes (a co-tenant arrives or leaves, the OS reclaims SRAM, …), and
//! the manager re-plans each remaining layer against the capacity it
//! actually has when the layer starts.

use crate::plan::{ExecutionPlan, LayerDecision, Scheme};
use crate::planner::LayerPlanner;
use crate::{ManagerConfig, PlanError};
use smm_arch::{AcceleratorConfig, ByteSize};
use smm_model::Network;

/// A capacity change taking effect when layer `at_layer` starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityEvent {
    /// Index of the first layer planned under the new capacity.
    pub at_layer: usize,
    /// The GLB space available from that point on.
    pub glb: ByteSize,
}

/// The outcome of a dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicRun {
    /// The per-layer plan actually executed.
    pub plan: ExecutionPlan,
    /// Capacity in effect for each layer.
    pub capacity_trace: Vec<ByteSize>,
}

impl DynamicRun {
    /// Number of layers planned under a different policy than the static
    /// plan at the initial capacity would have used.
    pub fn replanned_layers(&self, static_plan: &ExecutionPlan) -> usize {
        self.plan
            .decisions
            .iter()
            .zip(&static_plan.decisions)
            .filter(|(d, s)| {
                d.estimate.kind != s.estimate.kind || d.estimate.prefetch != s.estimate.prefetch
            })
            .count()
    }
}

/// Execute `net` layer by layer, re-planning against `events` (sorted or
/// not; the last event at or before a layer wins). Inter-layer reuse is
/// not applied across capacity changes — a shrink may invalidate a
/// retained ofmap, so the dynamic path keeps layers independent.
pub fn run_with_events(
    acc: AcceleratorConfig,
    cfg: ManagerConfig,
    net: &Network,
    events: &[CapacityEvent],
) -> Result<DynamicRun, PlanError> {
    let _span = smm_obs::span!("runtime.dynamic", "{} ({} events)", net.name, events.len());
    let mut sorted: Vec<&CapacityEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.at_layer);

    let mut decisions = Vec::with_capacity(net.layers.len());
    let mut capacity_trace = Vec::with_capacity(net.layers.len());
    let mut current = acc.glb;
    let cfg = cfg.with_inter_layer_reuse(false);
    for (i, layer) in net.layers.iter().enumerate() {
        for e in sorted.iter().filter(|e| e.at_layer == i) {
            current = e.glb;
        }
        capacity_trace.push(current);
        // Plan just this layer under the live capacity via the shared
        // selection pass (Algorithm 1's inner loop).
        let live = acc.with_glb(current);
        let planner = LayerPlanner::new(live, cfg);
        let _layer_span = smm_obs::span!("plan.layer", "{}", layer.name);
        let est = planner
            .select(&layer.shape)
            .ok_or_else(|| PlanError::LayerDoesNotFit {
                layer: layer.name.clone(),
                glb_elements: live.glb_elements(),
            })?;
        smm_obs::add(smm_obs::Counter::PlannerLayersPlanned, 1);
        decisions.push(LayerDecision::new(i, layer.name.clone(), est));
    }
    let mut plan = ExecutionPlan::new(net.name.clone(), Scheme::Heterogeneous, decisions, &acc);
    plan.refresh_totals(&acc);
    Ok(DynamicRun {
        plan,
        capacity_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manager, Objective};
    use smm_model::zoo;

    fn acc(kb: u64) -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(kb))
    }

    #[test]
    fn no_events_matches_static_plan() {
        let net = zoo::resnet18();
        let cfg = ManagerConfig::new(Objective::Accesses);
        let run = run_with_events(acc(256), cfg, &net, &[]).unwrap();
        let static_plan = Manager::new(acc(256), cfg).heterogeneous(&net).unwrap();
        assert_eq!(run.plan.totals, static_plan.totals);
        assert_eq!(run.replanned_layers(&static_plan), 0);
        assert!(run
            .capacity_trace
            .iter()
            .all(|c| *c == ByteSize::from_kb(256)));
    }

    #[test]
    fn mid_run_shrink_forces_replanning() {
        let net = zoo::resnet18();
        let cfg = ManagerConfig::new(Objective::Accesses);
        let events = [CapacityEvent {
            at_layer: 10,
            glb: ByteSize::from_kb(48),
        }];
        let run = run_with_events(acc(1024), cfg, &net, &events).unwrap();
        let static_plan = Manager::new(acc(1024), cfg).heterogeneous(&net).unwrap();
        // The tail runs under 48 kB: policies must change somewhere.
        assert!(run.replanned_layers(&static_plan) > 0);
        // And every decision respects the capacity live at its layer.
        for (d, cap) in run.plan.decisions.iter().zip(&run.capacity_trace) {
            let live = acc(1024).with_glb(*cap);
            assert!(d.estimate.fits(&live), "{}", d.layer_name);
        }
        // Traffic can only get worse than the static 1 MB plan.
        assert!(run.plan.totals.accesses_elems >= static_plan.totals.accesses_elems);
    }

    #[test]
    fn capacity_can_recover() {
        let net = zoo::mobilenet();
        let cfg = ManagerConfig::new(Objective::Accesses);
        let events = [
            CapacityEvent {
                at_layer: 5,
                glb: ByteSize::from_kb(32),
            },
            CapacityEvent {
                at_layer: 15,
                glb: ByteSize::from_kb(512),
            },
        ];
        let run = run_with_events(acc(512), cfg, &net, &events).unwrap();
        assert_eq!(run.capacity_trace[4], ByteSize::from_kb(512));
        assert_eq!(run.capacity_trace[5], ByteSize::from_kb(32));
        assert_eq!(run.capacity_trace[15], ByteSize::from_kb(512));
    }

    #[test]
    fn impossible_capacity_errors_with_layer_name() {
        let net = zoo::resnet18();
        let cfg = ManagerConfig::new(Objective::Accesses);
        let events = [CapacityEvent {
            at_layer: 3,
            glb: ByteSize(64),
        }];
        let err = run_with_events(acc(256), cfg, &net, &events).unwrap_err();
        assert!(matches!(err, PlanError::LayerDoesNotFit { .. }));
    }
}
