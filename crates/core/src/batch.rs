//! Batched execution (the *global reuse* of Section 2.2).
//!
//! The paper evaluates batch size 1 ("the most appropriate for latency
//! constrained applications"); this extension estimates what happens
//! when several inputs share one plan. Layer-by-layer execution with a
//! batch means each layer runs `batch` times back to back — and if the
//! layer's policy keeps its **entire filter set** resident, the filters
//! are fetched once for the whole batch instead of once per image
//! (the network filters "are used every time a new input is fed").

use crate::{ExecutionPlan, PlanTotals};
use smm_arch::{AcceleratorConfig, ByteSize};
use smm_model::Network;

/// Whether a decision keeps the full filter set of its layer resident
/// for the whole layer (the precondition for cross-image filter reuse).
fn filters_fully_resident(d: &crate::LayerDecision, net: &Network) -> bool {
    let layer = &net.layers[d.layer_index];
    d.estimate.resident.filters >= layer.shape.filter_elems()
}

/// Totals for executing `batch` inputs under an existing plan.
///
/// Ifmap and ofmap traffic scale with the batch; filter traffic scales
/// only for layers whose policy re-streams filters per image. Compute
/// scales with the batch; transfer cycles follow the scaled traffic.
pub fn batched_totals(
    plan: &ExecutionPlan,
    net: &Network,
    acc: &AcceleratorConfig,
    batch: u64,
) -> PlanTotals {
    assert!(batch >= 1, "batch size must be positive");
    let mut elems = 0u64;
    let mut latency = 0u64;
    let mut compute = 0u64;
    let mut transfer = 0u64;
    for d in &plan.decisions {
        let a = d.effective_accesses();
        let filter_factor = if filters_fully_resident(d, net) {
            1
        } else {
            batch
        };
        let traffic = (a.ifmap_loads + a.ofmap_stores + a.psum_spill_loads + a.psum_spill_stores)
            * batch
            + a.filter_loads * filter_factor;
        let layer_compute = d.estimate.latency.compute_cycles * batch;
        let l = d.estimate.latency_for_traffic(acc, traffic);
        // latency_for_traffic keeps the single-image compute; rebuild with
        // the batched compute under the same overlap rule.
        let layer_latency = if d.estimate.prefetch {
            layer_compute.max(l.transfer_cycles)
        } else {
            layer_compute + l.transfer_cycles
        };
        elems += traffic;
        compute += layer_compute;
        transfer += l.transfer_cycles;
        latency += layer_latency;
    }
    PlanTotals {
        accesses_elems: elems,
        accesses_bytes: ByteSize::from_elements(elems, acc.data_width),
        latency_cycles: latency,
        compute_cycles: compute,
        transfer_cycles: transfer,
    }
}

/// Filter traffic amortization: the ratio of per-image traffic at
/// `batch` to per-image traffic at batch 1 (1.0 = no amortization,
/// smaller = better).
pub fn per_image_traffic_ratio(
    plan: &ExecutionPlan,
    net: &Network,
    acc: &AcceleratorConfig,
    batch: u64,
) -> f64 {
    let b = batched_totals(plan, net, acc, batch);
    let single = batched_totals(plan, net, acc, 1);
    (b.accesses_elems as f64 / batch as f64) / single.accesses_elems as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manager, ManagerConfig, Objective};
    use smm_model::zoo;

    fn setup(kb: u64) -> (Network, AcceleratorConfig, ExecutionPlan) {
        let net = zoo::resnet18();
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(kb));
        let plan = Manager::new(acc, ManagerConfig::new(Objective::Accesses))
            .heterogeneous(&net)
            .unwrap();
        (net, acc, plan)
    }

    #[test]
    fn batch_one_matches_plan_totals() {
        let (net, acc, plan) = setup(256);
        let b1 = batched_totals(&plan, &net, &acc, 1);
        assert_eq!(b1.accesses_elems, plan.totals.accesses_elems);
        assert_eq!(b1.latency_cycles, plan.totals.latency_cycles);
    }

    #[test]
    fn filter_traffic_amortizes_across_the_batch() {
        let (net, acc, plan) = setup(256);
        // Per-image traffic at batch 8 must be at most the single-image
        // traffic, and strictly less when any layer holds its filters.
        let ratio = per_image_traffic_ratio(&plan, &net, &acc, 8);
        assert!(ratio <= 1.0 + 1e-12);
        let any_resident = plan
            .decisions
            .iter()
            .any(|d| filters_fully_resident(d, &net));
        if any_resident {
            assert!(ratio < 1.0, "ratio {ratio}");
        }
    }

    #[test]
    fn traffic_grows_sublinearly_but_compute_linearly() {
        let (net, acc, plan) = setup(256);
        let b1 = batched_totals(&plan, &net, &acc, 1);
        let b4 = batched_totals(&plan, &net, &acc, 4);
        assert!(b4.accesses_elems <= 4 * b1.accesses_elems);
        assert_eq!(b4.compute_cycles, 4 * b1.compute_cycles);
        assert!(b4.latency_cycles >= b1.latency_cycles);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let (net, acc, plan) = setup(64);
        batched_totals(&plan, &net, &acc, 0);
    }
}
