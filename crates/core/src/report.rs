//! Formatting helpers for paper-style tables, benefit percentages, and
//! machine-readable plan exports.

use crate::ExecutionPlan;
use smm_arch::AcceleratorConfig;

/// Benefit of `new` over `baseline` in percent: positive = improvement
/// (fewer accesses / less latency). This is the quantity plotted in
/// Figures 9–11.
pub fn benefit_pct(baseline: f64, new: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (baseline - new) / baseline * 100.0
}

/// A minimal fixed-width text table (right-aligned numeric cells, left
/// aligned first column), good enough for terminal experiment output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Render with column-wise width fitting.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = widths[0]));
                } else {
                    line.push_str(&format!("  {:>width$}", c, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Export a plan as CSV, one row per layer, for spreadsheets and
/// plotting scripts. Columns: layer, policy, prefetch, block_n,
/// alloc_ifmap/filters/ofmap (elements), required_bytes,
/// ifmap/filter/ofmap traffic (elements, after plan-level optimizations),
/// latency_cycles, inter-layer flags.
pub fn plan_csv(plan: &ExecutionPlan, acc: &AcceleratorConfig) -> String {
    let mut out = String::from(
        "layer,policy,prefetch,block_n,alloc_ifmap,alloc_filters,alloc_ofmap,\
         required_bytes,ifmap_loads,filter_loads,ofmap_stores,psum_spills,\
         latency_cycles,ifmap_from_glb,ofmap_kept_on_chip\n",
    );
    for d in &plan.decisions {
        let alloc = d.estimate.allocation();
        let a = d.effective_accesses();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            d.layer_name,
            d.estimate.kind.label(),
            d.estimate.prefetch,
            d.estimate
                .block_n
                .map(|n| n.to_string())
                .unwrap_or_default(),
            alloc.ifmap,
            alloc.filters,
            alloc.ofmap,
            d.estimate.required_bytes(acc).bytes(),
            a.ifmap_loads,
            a.filter_loads,
            a.ofmap_stores,
            a.psum_spill_loads + a.psum_spill_stores,
            d.effective_latency(acc).cycles,
            d.ifmap_from_glb,
            d.ofmap_kept_on_chip,
        ));
    }
    out
}

/// Escape a string for embedding in a JSON string literal.
///
/// This is the one escaping routine shared by every hand-written JSON
/// emitter in the workspace (`plan_json`, the serving protocol, and the
/// checker's reports), so the emitters cannot drift apart.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Export a plan as a single deterministic JSON object — the structured
/// form of what `smm analyze` prints: per-layer policy assignments with
/// allocations, traffic, and latency, plus the plan totals and coverage
/// metrics. Field order and formatting are stable, so equal plans
/// serialize to byte-identical strings (the plan-cache byte-identity
/// guarantee of the serving layer rests on this).
pub fn plan_json(plan: &ExecutionPlan, acc: &AcceleratorConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256 + 256 * plan.decisions.len());
    let _ = write!(
        out,
        "{{\"network\":\"{}\",\"scheme\":\"{}\",\"glb_bytes\":{},\"data_width_bits\":{},",
        json_escape(&plan.network),
        plan.scheme.label(),
        acc.glb.bytes(),
        acc.data_width.bits()
    );
    out.push_str("\"layers\":[");
    for (i, d) in plan.decisions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let alloc = d.estimate.allocation();
        let a = d.effective_accesses();
        let _ = write!(
            out,
            "{{\"layer\":\"{}\",\"policy\":\"{}\",\"prefetch\":{},\"block_n\":{},\
             \"alloc\":{{\"ifmap\":{},\"filters\":{},\"ofmap\":{}}},\"required_bytes\":{},\
             \"accesses\":{{\"ifmap_loads\":{},\"filter_loads\":{},\"ofmap_stores\":{},\"psum_spills\":{}}},\
             \"latency_cycles\":{},\"ifmap_from_glb\":{},\"ofmap_kept_on_chip\":{}}}",
            json_escape(&d.layer_name),
            d.estimate.kind.label(),
            d.estimate.prefetch,
            d.estimate
                .block_n.map_or_else(|| "null".into(), |n| n.to_string()),
            alloc.ifmap,
            alloc.filters,
            alloc.ofmap,
            d.estimate.required_bytes(acc).bytes(),
            a.ifmap_loads,
            a.filter_loads,
            a.ofmap_stores,
            a.psum_spill_loads + a.psum_spill_stores,
            d.effective_latency(acc).cycles,
            d.ifmap_from_glb,
            d.ofmap_kept_on_chip,
        );
    }
    let t = &plan.totals;
    let _ = write!(
        out,
        "],\"totals\":{{\"accesses_elems\":{},\"accesses_bytes\":{},\"latency_cycles\":{},\
         \"compute_cycles\":{},\"transfer_cycles\":{}}},",
        t.accesses_elems,
        t.accesses_bytes.bytes(),
        t.latency_cycles,
        t.compute_cycles,
        t.transfer_cycles
    );
    let policies: Vec<String> = plan
        .policies_used()
        .iter()
        .map(|(k, p)| format!("\"{}{}\"", k.label(), if *p { "+p" } else { "" }))
        .collect();
    let _ = write!(
        out,
        "\"prefetch_coverage\":{:.4},\"policies_used\":[{}]}}",
        plan.prefetch_coverage(),
        policies.join(",")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manager, ManagerConfig, Objective};
    use smm_arch::ByteSize;
    use smm_model::zoo;

    #[test]
    fn plan_csv_has_one_row_per_layer() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        let plan = Manager::new(acc, ManagerConfig::new(Objective::Accesses))
            .heterogeneous(&zoo::resnet18())
            .unwrap();
        let csv = plan_csv(&plan, &acc);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 22); // header + 21 layers
        assert!(lines[0].starts_with("layer,policy"));
        assert!(lines[1].starts_with("conv1,"));
        // Every row has the full column count.
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "{l}");
        }
    }

    #[test]
    fn plan_json_is_valid_and_deterministic() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        let m = Manager::new(acc, ManagerConfig::new(Objective::Accesses));
        let plan = m.heterogeneous(&zoo::resnet18()).unwrap();
        let a = plan_json(&plan, &acc);
        let b = plan_json(&m.heterogeneous(&zoo::resnet18()).unwrap(), &acc);
        assert_eq!(a, b, "equal plans must serialize byte-identically");

        let v = smm_obs::json::parse(&a).expect("plan JSON must parse");
        let smm_obs::json::Value::Array(layers) = v.get("layers").unwrap() else {
            panic!("layers must be an array");
        };
        assert_eq!(layers.len(), plan.decisions.len());
        assert!(matches!(
            v.get("totals").and_then(|t| t.get("latency_cycles")),
            Some(smm_obs::json::Value::Number(n)) if *n > 0.0
        ));
        assert!(matches!(
            layers[0].get("policy"),
            Some(smm_obs::json::Value::String(_))
        ));
    }

    #[test]
    fn benefit_sign_convention() {
        assert_eq!(benefit_pct(100.0, 80.0), 20.0);
        assert_eq!(benefit_pct(100.0, 133.0), -33.0);
        assert_eq!(benefit_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["model", "64kB", "128kB"]);
        t.row(vec!["ResNet18".into(), "12.3".into(), "4.5".into()]);
        t.row(vec!["MobileNet".into(), "7.0".into(), "3.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("model"));
        assert!(lines[2].starts_with("ResNet18"));
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
