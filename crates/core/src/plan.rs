use serde::{Deserialize, Serialize};
use smm_arch::{AcceleratorConfig, ByteSize};
use smm_policy::{AccessCounts, LatencyEstimate, PolicyEstimate, PolicyKind};

/// Whether a plan applies one policy everywhere or the per-layer best.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// Every layer runs the same policy (`Hom` in the paper's figures).
    Homogeneous(PolicyKind),
    /// Each layer runs the policy that best serves the objective (`Het`).
    Heterogeneous,
}

impl Scheme {
    /// Figure label (`Hom` / `Het`).
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Homogeneous(_) => "Hom",
            Scheme::Heterogeneous => "Het",
        }
    }
}

/// One layer's assignment in an execution plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerDecision {
    /// Index in the network's layer order.
    pub layer_index: usize,
    /// Layer name.
    pub layer_name: String,
    /// The chosen policy estimate.
    pub estimate: PolicyEstimate,
    /// Inter-layer reuse consumer: the ifmap is already resident in the
    /// GLB (produced by the previous layer), so no ifmap loads happen.
    pub ifmap_from_glb: bool,
    /// Inter-layer reuse producer: the ofmap stays on-chip for the next
    /// layer, so no ofmap stores happen.
    pub ofmap_kept_on_chip: bool,
}

impl LayerDecision {
    pub(crate) fn new(layer_index: usize, layer_name: String, estimate: PolicyEstimate) -> Self {
        LayerDecision {
            layer_index,
            layer_name,
            estimate,
            ifmap_from_glb: false,
            ofmap_kept_on_chip: false,
        }
    }

    /// Off-chip traffic after plan-level optimizations.
    pub fn effective_accesses(&self) -> AccessCounts {
        let mut a = self.estimate.accesses;
        if self.ifmap_from_glb {
            a.ifmap_loads = 0;
        }
        if self.ofmap_kept_on_chip {
            a.ofmap_stores = 0;
        }
        a
    }

    /// Latency after plan-level optimizations.
    pub fn effective_latency(&self, acc: &AcceleratorConfig) -> LatencyEstimate {
        let traffic = self.effective_accesses().total();
        if traffic == self.estimate.accesses.total() {
            self.estimate.latency
        } else {
            self.estimate.latency_for_traffic(acc, traffic)
        }
    }
}

/// Aggregate totals of an execution plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanTotals {
    /// Off-chip elements moved over the whole network.
    pub accesses_elems: u64,
    /// Off-chip volume in bytes (Figure 5's unit is MB).
    pub accesses_bytes: ByteSize,
    /// End-to-end latency estimate in cycles.
    pub latency_cycles: u64,
    /// Total compute cycles (for reference).
    pub compute_cycles: u64,
    /// Total transfer cycles (for reference).
    pub transfer_cycles: u64,
}

/// A complete per-layer policy assignment for one network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Network name.
    pub network: String,
    /// Plan flavour (Hom/Het).
    pub scheme: Scheme,
    /// Per-layer assignments, in execution order.
    pub decisions: Vec<LayerDecision>,
    /// Aggregate totals (kept in sync by [`refresh_totals`](Self::refresh_totals)).
    pub totals: PlanTotals,
}

impl ExecutionPlan {
    pub(crate) fn new(
        network: String,
        scheme: Scheme,
        decisions: Vec<LayerDecision>,
        acc: &AcceleratorConfig,
    ) -> Self {
        let mut plan = ExecutionPlan {
            network,
            scheme,
            decisions,
            totals: PlanTotals {
                accesses_elems: 0,
                accesses_bytes: ByteSize::ZERO,
                latency_cycles: 0,
                compute_cycles: 0,
                transfer_cycles: 0,
            },
        };
        plan.refresh_totals(acc);
        plan
    }

    /// Recompute the aggregate totals from the per-layer decisions (call
    /// after mutating decisions, e.g. in the inter-layer reuse pass).
    pub fn refresh_totals(&mut self, acc: &AcceleratorConfig) {
        let mut elems = 0u64;
        let mut latency = 0u64;
        let mut compute = 0u64;
        let mut transfer = 0u64;
        for d in &self.decisions {
            elems += d.effective_accesses().total();
            let l = d.effective_latency(acc);
            latency += l.cycles;
            compute += l.compute_cycles;
            transfer += l.transfer_cycles;
        }
        self.totals = PlanTotals {
            accesses_elems: elems,
            accesses_bytes: ByteSize::from_elements(elems, acc.data_width),
            latency_cycles: latency,
            compute_cycles: compute,
            transfer_cycles: transfer,
        };
    }

    /// Fraction of layers whose chosen policy prefetches (Figure 10's
    /// "prefetching coverage").
    pub fn prefetch_coverage(&self) -> f64 {
        if self.decisions.is_empty() {
            return 0.0;
        }
        let n = self
            .decisions
            .iter()
            .filter(|d| d.estimate.prefetch)
            .count();
        n as f64 / self.decisions.len() as f64
    }

    /// Fraction of producer→consumer transitions that keep the ofmap
    /// on-chip (Figure 11's "inter-layer reuse coverage"), over the
    /// transitions where reuse is possible at all (`possible` comes from
    /// the inter-layer pass).
    pub fn inter_layer_coverage(&self, possible: usize) -> f64 {
        if possible == 0 {
            return 0.0;
        }
        let n = self.decisions.iter().filter(|d| d.ifmap_from_glb).count();
        n as f64 / possible as f64
    }

    /// The distinct policies the plan uses, with their prefetch flags —
    /// the "memory policies used" column of Table 4.
    pub fn policies_used(&self) -> Vec<(PolicyKind, bool)> {
        let mut used: Vec<(PolicyKind, bool)> = Vec::new();
        for d in &self.decisions {
            let key = (d.estimate.kind, d.estimate.prefetch);
            if !used.contains(&key) {
                used.push(key);
            }
        }
        used.sort_by_key(|(k, p)| (k.label(), *p));
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_model::LayerShape;
    use smm_policy::estimate;

    fn acc() -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(256))
    }

    fn shape() -> LayerShape {
        LayerShape {
            ifmap_h: 28,
            ifmap_w: 28,
            in_channels: 64,
            filter_h: 3,
            filter_w: 3,
            num_filters: 64,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    fn decision(prefetch: bool) -> LayerDecision {
        let est = estimate(PolicyKind::P1IfmapReuse, &shape(), &acc(), prefetch).unwrap();
        LayerDecision::new(0, "l".into(), est)
    }

    #[test]
    fn effective_accesses_honour_flags() {
        let mut d = decision(false);
        let base = d.effective_accesses();
        assert_eq!(base.total(), d.estimate.accesses.total());
        d.ifmap_from_glb = true;
        assert_eq!(d.effective_accesses().ifmap_loads, 0);
        d.ofmap_kept_on_chip = true;
        assert_eq!(d.effective_accesses().ofmap_stores, 0);
        assert_eq!(d.effective_accesses().total(), base.filter_loads);
    }

    #[test]
    fn effective_latency_shrinks_with_elided_traffic() {
        let mut d = decision(false);
        let before = d.effective_latency(&acc()).cycles;
        d.ifmap_from_glb = true;
        let after = d.effective_latency(&acc()).cycles;
        assert!(after < before);
    }

    #[test]
    fn totals_track_decisions() {
        let a = acc();
        let mut plan = ExecutionPlan::new(
            "net".into(),
            Scheme::Heterogeneous,
            vec![decision(false), decision(true)],
            &a,
        );
        let t0 = plan.totals;
        assert_eq!(
            t0.accesses_elems,
            2 * decision(false).effective_accesses().total()
        );
        plan.decisions[1].ofmap_kept_on_chip = true;
        plan.refresh_totals(&a);
        assert!(plan.totals.accesses_elems < t0.accesses_elems);
    }

    #[test]
    fn coverage_metrics() {
        let a = acc();
        let mut plan = ExecutionPlan::new(
            "net".into(),
            Scheme::Heterogeneous,
            vec![decision(false), decision(true), decision(true)],
            &a,
        );
        assert!((plan.prefetch_coverage() - 2.0 / 3.0).abs() < 1e-9);
        plan.decisions[2].ifmap_from_glb = true;
        assert!((plan.inter_layer_coverage(2) - 0.5).abs() < 1e-9);
        assert_eq!(plan.inter_layer_coverage(0), 0.0);
    }

    #[test]
    fn policies_used_deduplicates() {
        let a = acc();
        let plan = ExecutionPlan::new(
            "net".into(),
            Scheme::Heterogeneous,
            vec![decision(false), decision(false), decision(true)],
            &a,
        );
        let used = plan.policies_used();
        assert_eq!(used.len(), 2);
        assert!(used.contains(&(PolicyKind::P1IfmapReuse, false)));
        assert!(used.contains(&(PolicyKind::P1IfmapReuse, true)));
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::Heterogeneous.label(), "Het");
        assert_eq!(
            Scheme::Homogeneous(PolicyKind::P2FilterReuse).label(),
            "Hom"
        );
    }
}
