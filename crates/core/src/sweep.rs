//! Rayon-parallel experiment matrices.
//!
//! The paper's figures sweep 6 models × 5 buffer sizes × several schemes.
//! Each cell is independent, so the sweep is an embarrassingly parallel
//! map — exactly the shape Rayon's parallel iterators are built for.

use crate::{CancelToken, ExecutionPlan, ManagerConfig, NetworkRef, PlanError, PlanSpec, Planner};
use smm_arch::{AcceleratorConfig, ByteSize};
use smm_model::Network;

/// One cell of a plan matrix.
#[derive(Debug, Clone)]
pub struct PlanCell {
    pub network: String,
    pub glb_kb: u64,
    pub plan: ExecutionPlan,
}

/// Which plan flavour a sweep should produce per cell. Since the
/// pass-based refactor this is the same type as the cache key's
/// [`PlanScheme`](crate::PlanScheme) — a sweep cell is just one
/// [`PlanSpec`] evaluated through the shared [`Planner`] pipeline.
pub use crate::cache::PlanScheme as SweepScheme;

/// Evaluate `networks × glb_kbs` in parallel with one manager
/// configuration, returning cells in deterministic
/// (network-major, size-minor) order. Each cell is described by a
/// [`PlanSpec`] derived from the matrix coordinates and planned through
/// the pass-based [`Planner`].
pub fn plan_matrix(
    base: AcceleratorConfig,
    cfg: ManagerConfig,
    scheme: SweepScheme,
    networks: &[Network],
    glb_kbs: &[u64],
) -> Result<Vec<PlanCell>, PlanError> {
    let specs: Vec<PlanSpec> = networks
        .iter()
        .flat_map(|net| {
            let net_ref = NetworkRef::from_network(net);
            glb_kbs.iter().map(move |&kb| {
                PlanSpec::new(
                    net_ref.clone(),
                    base.with_glb(ByteSize::from_kb(kb)),
                    cfg,
                    scheme,
                )
            })
        })
        .collect();
    let _span = smm_obs::span!("sweep.matrix", "{} cells", specs.len());
    sweep_cells(&specs)
}

/// Plan a batch of independent cell specs in parallel, in input order.
pub(crate) fn sweep_cells(specs: &[PlanSpec]) -> Result<Vec<PlanCell>, PlanError> {
    use rayon::prelude::*;
    specs
        .par_iter()
        .map(|spec| {
            let kb = spec.accelerator.glb.bytes() / 1024;
            let _cell_span = smm_obs::span!("sweep.cell", "{}@{}kB", spec.network.name(), kb);
            smm_obs::add(smm_obs::Counter::SweepCells, 1);
            let net = spec.resolve()?;
            let plan = Planner::new(spec.accelerator, spec.config).plan(
                &net,
                spec.scheme,
                &CancelToken::none(),
            )?;
            Ok(PlanCell {
                network: net.name,
                glb_kb: kb,
                plan,
            })
        })
        .collect()
}

/// Convenience lookup into a matrix produced by [`plan_matrix`].
pub fn cell<'a>(cells: &'a [PlanCell], network: &str, glb_kb: u64) -> Option<&'a PlanCell> {
    cells
        .iter()
        .find(|c| c.network == network && c.glb_kb == glb_kb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manager, Objective, Scheme};
    use smm_model::zoo;

    fn base() -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(64))
    }

    #[test]
    fn matrix_covers_cross_product_in_order() {
        let nets = vec![zoo::resnet18(), zoo::mobilenet()];
        let cells = plan_matrix(
            base(),
            ManagerConfig::new(Objective::Accesses),
            SweepScheme::Heterogeneous,
            &nets,
            &[64, 256],
        )
        .unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells
                .iter()
                .map(|c| (c.network.as_str(), c.glb_kb))
                .collect::<Vec<_>>(),
            vec![
                ("ResNet18", 64),
                ("ResNet18", 256),
                ("MobileNet", 64),
                ("MobileNet", 256)
            ]
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let nets = vec![zoo::mnasnet()];
        let cfg = ManagerConfig::new(Objective::Accesses);
        let cells =
            plan_matrix(base(), cfg, SweepScheme::Heterogeneous, &nets, &[64, 1024]).unwrap();
        for c in &cells {
            let manager = Manager::new(base().with_glb(ByteSize::from_kb(c.glb_kb)), cfg);
            let seq = manager.heterogeneous(&nets[0]).unwrap();
            assert_eq!(seq.totals, c.plan.totals, "{} @ {}kB", c.network, c.glb_kb);
        }
    }

    #[test]
    fn scheme_flag_selects_hom() {
        let nets = vec![zoo::resnet18()];
        let cfg = ManagerConfig::new(Objective::Accesses);
        let cells = plan_matrix(base(), cfg, SweepScheme::BestHomogeneous, &nets, &[64]).unwrap();
        assert!(matches!(cells[0].plan.scheme, Scheme::Homogeneous(_)));
    }

    #[test]
    fn cell_lookup() {
        let nets = vec![zoo::resnet18()];
        let cfg = ManagerConfig::new(Objective::Accesses);
        let cells = plan_matrix(base(), cfg, SweepScheme::Heterogeneous, &nets, &[64]).unwrap();
        assert!(cell(&cells, "ResNet18", 64).is_some());
        assert!(cell(&cells, "ResNet18", 128).is_none());
        assert!(cell(&cells, "VGG", 64).is_none());
    }
}
