//! Analytic cost prediction over a [`PlanSpec`].
//!
//! The serving stack's stream controller (smm-serve + smm-stream)
//! ranks pre-warm candidates by *windowed arrival rate × predicted
//! cost* and feeds predicted miss costs into admission. Both decisions
//! need a number before a request is ever planned, so this module
//! exposes the paper's Eq. 1 latency model — already computed by the
//! planner as [`PlanTotals::latency_cycles`] — as a standalone
//! prediction: resolve the spec, run the analytic planner, convert
//! cycles to wall time at the nominal clock.
//!
//! The conversion is deliberately simple: the architecture model is
//! cycle-accurate but clockless, so we pin a nominal [`CLOCK_MHZ`]
//! (1 GHz, the class of edge accelerator the paper models). The
//! absolute microseconds matter less than the *ordering* they induce —
//! the controller compares predictions against each other and against
//! measured EWMA service times, both of which it learns online.

use crate::cache::PlanKey;
use crate::manager::PlanError;
use crate::plan::PlanTotals;
use crate::planner::LayerMemo;
use crate::spec::PlanSpec;
use crate::CancelToken;
use std::sync::Arc;

/// Nominal accelerator clock used to convert Eq.-1 cycle counts into
/// microseconds: 1000 cycles per µs (1 GHz).
pub const CLOCK_MHZ: u64 = 1_000;

/// Convert a cycle count to microseconds at the nominal clock,
/// rounding up so a nonzero cost never predicts as free.
#[must_use]
pub fn cycles_to_us(cycles: u64) -> u64 {
    cycles.div_ceil(CLOCK_MHZ)
}

/// The analytic cost of one planning job, per image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictedCost {
    /// Eq.-1 makespan of the plan, in cycles.
    pub latency_cycles: u64,
    /// Pure compute portion, in cycles.
    pub compute_cycles: u64,
    /// Pure transfer portion, in cycles.
    pub transfer_cycles: u64,
    /// [`Self::latency_cycles`] at the nominal [`CLOCK_MHZ`].
    pub latency_us: u64,
}

impl PredictedCost {
    /// Derive the prediction from totals the planner already produced
    /// (the zero-extra-work path when a plan is in hand).
    #[must_use]
    pub fn from_totals(totals: &PlanTotals) -> Self {
        PredictedCost {
            latency_cycles: totals.latency_cycles,
            compute_cycles: totals.compute_cycles,
            transfer_cycles: totals.transfer_cycles,
            latency_us: cycles_to_us(totals.latency_cycles),
        }
    }
}

/// Resolve and plan `spec`, returning its analytic cost along with the
/// cache key the plan would be stored under.
///
/// This runs the full planner (optionally memoized), so it costs one
/// real planning pass — callers on a hot path should prefer
/// [`PredictedCost::from_totals`] on a plan they already have, or cache
/// the result keyed by the returned [`PlanKey`]. The background
/// pre-warm controller is the intended caller: it plans anyway, and the
/// prediction rides along for free.
pub fn predict(
    spec: &PlanSpec,
    memo: Option<&Arc<LayerMemo>>,
) -> Result<(PlanKey, PredictedCost), PlanError> {
    let net = spec.resolve()?;
    let key = spec.cache_key(&net);
    let mut planner = spec.planner();
    if let Some(memo) = memo {
        planner = planner.with_memo(Arc::clone(memo));
    }
    let plan = planner.plan(&net, spec.scheme, &CancelToken::none())?;
    Ok((key, PredictedCost::from_totals(&plan.totals)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PlanScheme;
    use crate::{ManagerConfig, NetworkRef, Objective};
    use smm_arch::{AcceleratorConfig, ByteSize};

    fn spec(model: &str, kb: u64) -> PlanSpec {
        PlanSpec::new(
            NetworkRef::Zoo(model.into()),
            AcceleratorConfig::paper_default(ByteSize::from_kb(kb)),
            ManagerConfig::new(Objective::Latency),
            PlanScheme::Heterogeneous,
        )
    }

    #[test]
    fn rounds_up_and_never_predicts_free() {
        assert_eq!(cycles_to_us(0), 0);
        assert_eq!(cycles_to_us(1), 1);
        assert_eq!(cycles_to_us(999), 1);
        assert_eq!(cycles_to_us(1_000), 1);
        assert_eq!(cycles_to_us(1_001), 2);
    }

    #[test]
    fn prediction_matches_the_plan_it_came_from() {
        let s = spec("resnet18", 64);
        let (key, cost) = predict(&s, None).unwrap();
        let plan = s.run(&CancelToken::none()).unwrap();
        assert_eq!(cost, PredictedCost::from_totals(&plan.totals));
        assert_eq!(key, s.cache_key(&s.resolve().unwrap()));
        assert!(cost.latency_us > 0);
        assert_eq!(cost.latency_us, cycles_to_us(plan.totals.latency_cycles));
    }

    #[test]
    fn bigger_buffers_never_predict_slower() {
        let small = predict(&spec("mobilenet", 32), None).unwrap().1;
        let large = predict(&spec("mobilenet", 512), None).unwrap().1;
        assert!(
            large.latency_us <= small.latency_us,
            "512kB {} vs 32kB {}",
            large.latency_us,
            small.latency_us
        );
    }

    #[test]
    fn memoized_prediction_is_identical() {
        let s = spec("googlenet", 128);
        let memo = Arc::new(LayerMemo::default());
        let cold = predict(&s, Some(&memo)).unwrap();
        let warm = predict(&s, Some(&memo)).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold, predict(&s, None).unwrap());
    }
}
