//! Multi-tenant scratchpad partitioning.
//!
//! The paper's introduction names "support for multi-tenancy" as one of
//! the pressures demanding more flexible memory management. This
//! extension answers the concrete question: two models sharing one
//! accelerator with a statically partitioned GLB — how should the pool
//! be split? Each candidate split plans both tenants independently with
//! the memory manager and the best split under the combined objective
//! wins.

use crate::{CancelToken, ExecutionPlan, ManagerConfig, PlanError, Planner};
use smm_arch::{AcceleratorConfig, ByteSize};
use smm_model::Network;

/// A chosen partition of the GLB between two tenants.
#[derive(Debug, Clone)]
pub struct TenancyPlan {
    /// Bytes assigned to tenant A (the remainder goes to B).
    pub split_a: ByteSize,
    pub plan_a: ExecutionPlan,
    pub plan_b: ExecutionPlan,
}

impl TenancyPlan {
    /// Combined off-chip traffic in elements.
    pub fn combined_accesses(&self) -> u64 {
        self.plan_a.totals.accesses_elems + self.plan_b.totals.accesses_elems
    }

    /// Combined latency when the tenants time-share the array (sum).
    pub fn combined_latency(&self) -> u64 {
        self.plan_a.totals.latency_cycles + self.plan_b.totals.latency_cycles
    }
}

/// Search static splits in `step` increments for the best combined
/// objective. Splits where either tenant cannot plan are skipped; errors
/// only surface if *no* split works.
pub fn partition(
    acc: AcceleratorConfig,
    cfg: ManagerConfig,
    tenant_a: &Network,
    tenant_b: &Network,
    step_pct: u32,
) -> Result<TenancyPlan, PlanError> {
    assert!((1..=50).contains(&step_pct), "step must be 1..=50 percent");
    let total = acc.glb.bytes();
    let mut best: Option<TenancyPlan> = None;
    let mut last_err = None;
    let mut pct = step_pct;
    while pct < 100 {
        let a_bytes = ByteSize(total * pct as u64 / 100);
        let b_bytes = ByteSize(total - a_bytes.bytes());
        let pa = Planner::new(acc.with_glb(a_bytes), cfg);
        let pb = Planner::new(acc.with_glb(b_bytes), cfg);
        let open = CancelToken::none();
        match (
            pa.heterogeneous_with(tenant_a, &open),
            pb.heterogeneous_with(tenant_b, &open),
        ) {
            (Ok(plan_a), Ok(plan_b)) => {
                let cand = TenancyPlan {
                    split_a: a_bytes,
                    plan_a,
                    plan_b,
                };
                let better = best.as_ref().is_none_or(|b| {
                    cfg.objective
                        .key(cand.combined_accesses(), cand.combined_latency())
                        < cfg
                            .objective
                            .key(b.combined_accesses(), b.combined_latency())
                });
                if better {
                    best = Some(cand);
                }
            }
            (Err(e), _) | (_, Err(e)) => last_err = Some(e),
        }
        pct += step_pct;
    }
    best.ok_or_else(|| {
        last_err.unwrap_or(PlanError::LayerDoesNotFit {
            layer: "<no split evaluated>".into(),
            glb_elements: acc.glb_elements(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manager, Objective};
    use smm_model::zoo;

    fn acc(kb: u64) -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(kb))
    }

    #[test]
    fn partition_finds_a_feasible_split() {
        let t = partition(
            acc(256),
            ManagerConfig::new(Objective::Accesses),
            &zoo::mobilenet(),
            &zoo::resnet18(),
            10,
        )
        .unwrap();
        assert!(t.split_a.bytes() > 0);
        assert!(t.split_a.bytes() < 256 * 1024);
        assert_eq!(t.plan_a.network, "MobileNet");
        assert_eq!(t.plan_b.network, "ResNet18");
    }

    #[test]
    fn best_split_beats_or_matches_fifty_fifty() {
        let cfg = ManagerConfig::new(Objective::Accesses);
        let a = zoo::mobilenetv2();
        let b = zoo::googlenet();
        let best = partition(acc(256), cfg, &a, &b, 10).unwrap();
        let half = ByteSize::from_kb(128);
        let pa = Manager::new(acc(256).with_glb(half), cfg)
            .heterogeneous(&a)
            .unwrap();
        let pb = Manager::new(acc(256).with_glb(half), cfg)
            .heterogeneous(&b)
            .unwrap();
        assert!(best.combined_accesses() <= pa.totals.accesses_elems + pb.totals.accesses_elems);
    }

    #[test]
    fn too_small_pool_errors() {
        let err = partition(
            acc(2),
            ManagerConfig::new(Objective::Accesses),
            &zoo::resnet18(),
            &zoo::mobilenet(),
            25,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::LayerDoesNotFit { .. }));
    }

    #[test]
    fn finer_steps_never_hurt() {
        let cfg = ManagerConfig::new(Objective::Accesses);
        let a = zoo::mnasnet();
        let b = zoo::resnet18();
        let coarse = partition(acc(512), cfg, &a, &b, 25).unwrap();
        let fine = partition(acc(512), cfg, &a, &b, 5).unwrap();
        assert!(fine.combined_accesses() <= coarse.combined_accesses());
    }

    #[test]
    #[should_panic(expected = "step must be")]
    fn bad_step_rejected() {
        let _ = partition(
            acc(64),
            ManagerConfig::new(Objective::Accesses),
            &zoo::resnet18(),
            &zoo::resnet18(),
            0,
        );
    }
}
