use crate::plan::ExecutionPlan;
use crate::planner::{LayerPlanner, Planner};
use serde::{Deserialize, Serialize};
use smm_arch::AcceleratorConfig;
use smm_model::Network;
use smm_policy::{PolicyEstimate, PolicyKind};
use std::fmt;

/// The two optimization objectives of Section 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Objective 1: reduce off-chip data transfers under the memory
    /// constraint.
    Accesses,
    /// Objective 2: reduce latency under the memory constraint.
    Latency,
}

impl Objective {
    /// Figure 8 suffix (`_a` / `_l`).
    pub fn suffix(&self) -> &'static str {
        match self {
            Objective::Accesses => "_a",
            Objective::Latency => "_l",
        }
    }

    /// The lexicographic comparison key of Algorithm 1 lines 11–15:
    /// the primary metric first, the other as tie-breaker. Candidate
    /// `a` beats candidate `b` iff `key(a) < key(b)` — strictly better
    /// on the primary metric, or equal primary and strictly better
    /// secondary. Every objective comparison in the workspace (layer
    /// selection, best-homogeneous search, the §5.4 inter-layer pass,
    /// tenancy partitioning, the checker) goes through this helper.
    pub fn key(self, accesses: u64, latency: u64) -> (u64, u64) {
        match self {
            Objective::Accesses => (accesses, latency),
            Objective::Latency => (latency, accesses),
        }
    }

    /// [`key`](Self::key) applied to a policy estimate.
    pub fn estimate_key(self, e: &PolicyEstimate) -> (u64, u64) {
        self.key(e.accesses.total(), e.latency.cycles)
    }
}

/// Which inter-layer scheduler assembles the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The paper's pipeline: Algorithm 1 per layer, optionally followed
    /// by the Section 5.4 greedy handoff pass.
    Greedy,
    /// The [`GlobalSchedule`](crate::global) pass: an exact dynamic
    /// program over per-layer policy choices and inter-layer handoff
    /// state. Guaranteed to beat or match the greedy plan on the
    /// objective; falls back byte-identically to the greedy plan when
    /// the search finds nothing strictly better.
    Global,
}

impl SchedulerKind {
    /// CLI / wire label (`greedy` / `global`).
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Greedy => "greedy",
            SchedulerKind::Global => "global",
        }
    }

    /// Parse a CLI / wire label.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "greedy" => Some(SchedulerKind::Greedy),
            "global" => Some(SchedulerKind::Global),
            _ => None,
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Knobs of the memory-management technique. Prefetching and inter-layer
/// reuse can be disabled to reproduce the Figure 10 / Figure 11
/// ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ManagerConfig {
    pub objective: Objective,
    /// Allow the double-buffered `+p` policy variants (Eq. 2).
    pub allow_prefetch: bool,
    /// Enable the Section 5.4 inter-layer reuse pass.
    pub inter_layer_reuse: bool,
    /// Which inter-layer scheduler assembles the plan.
    pub scheduler: SchedulerKind,
}

impl ManagerConfig {
    /// Default configuration for an objective: prefetching allowed,
    /// inter-layer reuse off (the paper's base `Hom`/`Het` schemes;
    /// Section 5.4 evaluates inter-layer reuse separately), greedy
    /// scheduling.
    pub fn new(objective: Objective) -> Self {
        ManagerConfig {
            objective,
            allow_prefetch: true,
            inter_layer_reuse: false,
            scheduler: SchedulerKind::Greedy,
        }
    }

    pub fn with_prefetch(mut self, allow: bool) -> Self {
        self.allow_prefetch = allow;
        self
    }

    pub fn with_inter_layer_reuse(mut self, enable: bool) -> Self {
        self.inter_layer_reuse = enable;
        self
    }

    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }
}

/// Planning failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No policy — not even the fallback tiling — fits the layer in the
    /// GLB.
    LayerDoesNotFit { layer: String, glb_elements: u64 },
    /// A [`CancelToken`](crate::CancelToken) fired (deadline passed or
    /// stop flag raised) before the plan completed; `layers_done` layers
    /// had been planned.
    Cancelled { layers_done: usize },
    /// A [`PlanSpec`](crate::PlanSpec) could not be resolved into a
    /// planning job (unknown zoo model, malformed inline topology, …).
    InvalidSpec { message: String },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::LayerDoesNotFit {
                layer,
                glb_elements,
            } => write!(
                f,
                "layer {layer}: no policy fits a GLB of {glb_elements} elements"
            ),
            PlanError::Cancelled { layers_done } => {
                write!(f, "planning cancelled after {layers_done} layers")
            }
            PlanError::InvalidSpec { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One candidate's diagnostics from [`Manager::explain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateReport {
    pub estimate: PolicyEstimate,
    /// Satisfies the GLB constraint (Algorithm 1 line 10).
    pub feasible: bool,
    /// Would win Algorithm 1's inner loop.
    pub chosen: bool,
}

/// The memory-management analyser (Figure 4's "Analyser" box).
///
/// Since the pass-based refactor this is a thin facade over
/// [`Planner`](crate::Planner): it keeps the original entry points
/// (`heterogeneous`, `homogeneous`, `best_homogeneous`, `explain`)
/// working unchanged, always with the layer-decision memo disabled so
/// its observable behaviour — candidate counts, estimator calls, spans —
/// is exactly the pre-refactor one. Callers that want memoization or
/// explicit pass control use [`Planner`](crate::Planner) directly.
#[derive(Debug, Clone)]
pub struct Manager {
    acc: AcceleratorConfig,
    cfg: ManagerConfig,
}

impl Manager {
    pub fn new(acc: AcceleratorConfig, cfg: ManagerConfig) -> Self {
        Manager { acc, cfg }
    }

    pub fn accelerator(&self) -> &AcceleratorConfig {
        &self.acc
    }

    pub fn config(&self) -> &ManagerConfig {
        &self.cfg
    }

    /// The unmemoized pipeline this facade delegates to.
    fn planner(&self) -> Planner {
        Planner::new(self.acc, self.cfg)
    }

    /// Explain Algorithm 1's choice for one layer: every candidate with
    /// its metrics, feasibility, and whether it won. Chosen = the same
    /// candidate the selection pass would pick.
    pub fn explain(&self, shape: &smm_model::LayerShape) -> Vec<CandidateReport> {
        LayerPlanner::new(self.acc, self.cfg).explain(shape)
    }

    /// The heterogeneous execution plan (`Het`): Algorithm 1 applied per
    /// layer.
    pub fn heterogeneous(&self, net: &Network) -> Result<ExecutionPlan, PlanError> {
        self.heterogeneous_with(net, &crate::CancelToken::none())
    }

    /// [`heterogeneous`](Self::heterogeneous) with cooperative
    /// cancellation: the token is checked before each layer, so a fired
    /// deadline aborts within one layer's planning time.
    pub fn heterogeneous_with(
        &self,
        net: &Network,
        cancel: &crate::CancelToken,
    ) -> Result<ExecutionPlan, PlanError> {
        self.planner().heterogeneous_with(net, cancel)
    }

    /// A homogeneous execution plan: every layer constrained to `kind`.
    pub fn homogeneous(&self, net: &Network, kind: PolicyKind) -> Result<ExecutionPlan, PlanError> {
        self.homogeneous_with(net, kind, &crate::CancelToken::none())
    }

    /// [`homogeneous`](Self::homogeneous) with cooperative cancellation.
    pub fn homogeneous_with(
        &self,
        net: &Network,
        kind: PolicyKind,
        cancel: &crate::CancelToken,
    ) -> Result<ExecutionPlan, PlanError> {
        self.planner().homogeneous_with(net, kind, cancel)
    }

    /// The best homogeneous plan under the objective (`Hom` in the
    /// figures): evaluate all named policies and keep the winner.
    pub fn best_homogeneous(&self, net: &Network) -> Result<ExecutionPlan, PlanError> {
        self.best_homogeneous_with(net, &crate::CancelToken::none())
    }

    /// [`best_homogeneous`](Self::best_homogeneous) with cooperative
    /// cancellation. A fired token aborts the whole evaluation rather
    /// than returning a partially-compared winner.
    pub fn best_homogeneous_with(
        &self,
        net: &Network,
        cancel: &crate::CancelToken,
    ) -> Result<ExecutionPlan, PlanError> {
        self.planner().best_homogeneous_with(net, cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_arch::ByteSize;
    use smm_model::zoo;

    fn manager(kb: u64, objective: Objective) -> Manager {
        Manager::new(
            AcceleratorConfig::paper_default(ByteSize::from_kb(kb)),
            ManagerConfig::new(objective),
        )
    }

    #[test]
    fn het_plan_covers_every_layer() {
        let m = manager(64, Objective::Accesses);
        let plan = m.heterogeneous(&zoo::resnet18()).unwrap();
        assert_eq!(plan.decisions.len(), 21);
        for d in &plan.decisions {
            assert!(d.estimate.fits(m.accelerator()), "{}", d.layer_name);
        }
    }

    #[test]
    fn het_never_loses_to_hom() {
        // The heterogeneous plan optimizes each layer independently, so it
        // can never do worse than any homogeneous plan.
        for kb in [64, 256, 1024] {
            let m = manager(kb, Objective::Accesses);
            for net in zoo::all_networks() {
                let het = m.heterogeneous(&net).unwrap();
                let hom = m.best_homogeneous(&net).unwrap();
                assert!(
                    het.totals.accesses_elems <= hom.totals.accesses_elems,
                    "{} @ {kb}kB",
                    net.name
                );
            }
        }
    }

    #[test]
    fn latency_objective_never_slower_than_accesses_objective() {
        for net in zoo::all_networks() {
            let ma = manager(64, Objective::Accesses);
            let ml = manager(64, Objective::Latency);
            let pa = ma.heterogeneous(&net).unwrap();
            let pl = ml.heterogeneous(&net).unwrap();
            assert!(
                pl.totals.latency_cycles <= pa.totals.latency_cycles,
                "{}",
                net.name
            );
            // And symmetrically for accesses.
            assert!(pa.totals.accesses_elems <= pl.totals.accesses_elems);
        }
    }

    #[test]
    fn bigger_glb_never_hurts() {
        let net = zoo::mobilenetv2();
        let mut last = u64::MAX;
        for kb in [64, 128, 256, 512, 1024] {
            let m = manager(kb, Objective::Accesses);
            let plan = m.heterogeneous(&net).unwrap();
            assert!(plan.totals.accesses_elems <= last, "{kb}kB regressed");
            last = plan.totals.accesses_elems;
        }
    }

    #[test]
    fn disallowing_prefetch_removes_prefetch_decisions() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(256));
        let m = Manager::new(
            acc,
            ManagerConfig::new(Objective::Latency).with_prefetch(false),
        );
        let plan = m.heterogeneous(&zoo::mobilenet()).unwrap();
        assert_eq!(plan.prefetch_coverage(), 0.0);
    }

    #[test]
    fn latency_objective_uses_prefetch() {
        let m = manager(256, Objective::Latency);
        let plan = m.heterogeneous(&zoo::mobilenet()).unwrap();
        assert!(plan.prefetch_coverage() > 0.5);
    }

    #[test]
    fn homogeneous_plans_use_single_kind_or_fallback() {
        let m = manager(64, Objective::Accesses);
        let plan = m
            .homogeneous(&zoo::resnet18(), PolicyKind::P2FilterReuse)
            .unwrap();
        for d in &plan.decisions {
            assert!(
                d.estimate.kind == PolicyKind::P2FilterReuse
                    || d.estimate.kind == PolicyKind::Fallback,
                "{}: {:?}",
                d.layer_name,
                d.estimate.kind
            );
        }
    }

    #[test]
    fn tiny_glb_fails_with_layer_name() {
        let m = manager(1, Objective::Accesses);
        let err = m.heterogeneous(&zoo::resnet18()).unwrap_err();
        assert!(matches!(err, PlanError::LayerDoesNotFit { .. }));
        assert!(err.to_string().contains("elements"));
    }

    #[test]
    fn expired_token_cancels_both_schemes() {
        let m = manager(64, Objective::Accesses);
        let net = zoo::resnet18();
        let expired = crate::CancelToken::with_timeout(std::time::Duration::ZERO);
        assert_eq!(
            m.heterogeneous_with(&net, &expired).unwrap_err(),
            PlanError::Cancelled { layers_done: 0 }
        );
        assert!(matches!(
            m.best_homogeneous_with(&net, &expired).unwrap_err(),
            PlanError::Cancelled { layers_done: 0 }
        ));
        // A token that never fires changes nothing.
        let open = crate::CancelToken::none();
        assert_eq!(
            m.heterogeneous_with(&net, &open).unwrap(),
            m.heterogeneous(&net).unwrap()
        );
    }

    #[test]
    fn objective_suffixes() {
        assert_eq!(Objective::Accesses.suffix(), "_a");
        assert_eq!(Objective::Latency.suffix(), "_l");
    }

    #[test]
    fn objective_key_orders_lexicographically() {
        let o = Objective::Accesses;
        // Strictly better primary wins regardless of secondary.
        assert!(o.key(10, 999) < o.key(11, 0));
        // Equal primary falls back to secondary.
        assert!(o.key(10, 5) < o.key(10, 6));
        // Latency swaps the roles.
        let l = Objective::Latency;
        assert!(l.key(999, 10) < l.key(0, 11));
        assert_eq!(l.key(3, 7), (7, 3));
    }

    #[test]
    fn explain_marks_exactly_one_winner() {
        let m = manager(64, Objective::Accesses);
        let net = zoo::resnet18();
        for layer in &net.layers {
            let report = m.explain(&layer.shape);
            let winners = report.iter().filter(|c| c.chosen).count();
            assert_eq!(winners, 1, "{}", layer.name);
            let winner = report.iter().find(|c| c.chosen).unwrap();
            assert!(winner.feasible, "{}", layer.name);
            // No feasible candidate beats the winner on the objective.
            for c in report.iter().filter(|c| c.feasible) {
                assert!(
                    (c.estimate.accesses.total(), c.estimate.latency.cycles)
                        >= (
                            winner.estimate.accesses.total(),
                            winner.estimate.latency.cycles
                        )
                        || c.chosen,
                    "{}",
                    layer.name
                );
            }
        }
    }
}
