//! Property tests: on arbitrary (small) layer shapes, every policy
//! estimate that exists must replay to exactly its own numbers.

use proptest::prelude::*;
use smm_arch::{AcceleratorConfig, ByteSize};
use smm_exec::replay;
use smm_model::LayerShape;
use smm_policy::{estimate, PolicyKind};

fn arb_shape() -> impl Strategy<Value = LayerShape> {
    (
        2u32..20, // ifmap_h
        2u32..20, // ifmap_w
        1u32..6,  // in_channels
        1u32..4,  // filter (square)
        2u32..10, // num_filters
        1u32..3,  // stride
        0u32..2,  // padding
        any::<bool>(),
    )
        .prop_map(|(ih, iw, ci, k, nf, s, p, dw)| LayerShape {
            ifmap_h: ih,
            ifmap_w: iw,
            in_channels: ci,
            filter_h: k,
            filter_w: k,
            num_filters: if dw { ci } else { nf },
            stride: s,
            padding: p,
            depthwise: dw,
        })
        .prop_filter("shape must validate", |s| s.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every named-policy estimate replays exactly, for every budget.
    #[test]
    fn estimates_replay_exactly(shape in arb_shape(), kb in 1u64..64) {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(kb));
        for kind in PolicyKind::ALL {
            let Some(est) = estimate(kind, &shape, &acc, false) else { continue };
            let replayed = replay(&shape, &est)
                .unwrap_or_else(|e| panic!("{kind:?} on {shape:?}: {e}"));
            prop_assert!(
                replayed.matches(&est),
                "{kind:?} on {shape:?}: est {:?} vs got {replayed:?}",
                est.accesses
            );
        }
    }

    /// Prefetch variants describe the same schedule: identical traffic,
    /// same replay, twice the allocation.
    #[test]
    fn prefetch_variant_is_schedule_equivalent(shape in arb_shape()) {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        for kind in PolicyKind::NAMED {
            let (Some(plain), Some(pf)) = (
                estimate(kind, &shape, &acc, false),
                estimate(kind, &shape, &acc, true),
            ) else { continue };
            // Identical block size means identical schedule.
            if plain.block_n == pf.block_n {
                prop_assert_eq!(plain.accesses, pf.accesses, "{:?}", kind);
                let r = replay(&shape, &pf).unwrap();
                prop_assert!(r.matches(&pf), "{:?}", kind);
            }
        }
    }
}
