//! Per-policy schedule lowering.
//!
//! Each function replays exactly the tile schedule Section 3.2 describes
//! for its policy. Streaming semantics: rows the window skips (stride
//! gaps) and rows after the last window still cross the DRAM interface
//! once — the estimators count the whole padded ifmap per pass, and a
//! burst DMA engine fetches it that way.

use crate::engine::{Engine, ExecError, Replay};
use smm_model::LayerShape;
use smm_policy::{FallbackTiling, LoopOrder, PolicyEstimate, PolicyKind};
use std::ops::Range;

/// A height-wise sliding window over a set of channels: tracks the next
/// unfetched row per channel so overlap is retained, gaps are streamed,
/// and each padded row is charged exactly once per pass.
struct Slider {
    fetched: Vec<u64>,
    pad_h: u64,
}

impl Slider {
    fn new(channels: usize, pad_h: u64) -> Self {
        Slider {
            fetched: vec![0; channels],
            pad_h,
        }
    }

    /// Single-channel slider tracking one concrete channel.
    fn single(pad_h: u64) -> Self {
        Slider::new(1, pad_h)
    }

    /// Advance the window over engine channel `chan` (tracked in
    /// `slot`) to `rows`, evicting everything above the window and
    /// charging skipped rows as streamed.
    fn advance(
        &mut self,
        e: &mut Engine,
        slot: usize,
        chan: u64,
        rows: Range<u64>,
    ) -> Result<(), ExecError> {
        let f = &mut self.fetched[slot];
        e.evict_ifmap_rows(chan, 0..rows.start);
        if *f < rows.start {
            e.stream_ifmap_rows(chan, *f..rows.start);
            *f = rows.start;
        }
        if *f < rows.end {
            e.fill_ifmap_rows(chan, rows.start.max(*f)..rows.end)?;
            *f = rows.end;
        } else {
            // Window already fetched (fill would dedup anyway); ensure the
            // overlap that survived eviction is still resident.
            e.fill_ifmap_rows(chan, rows.clone())?;
        }
        Ok(())
    }

    /// Stream the trailing padded rows of the channel in `slot` and
    /// release it.
    fn finish(&mut self, e: &mut Engine, slot: usize, chan: u64) {
        let f = &mut self.fetched[slot];
        if *f < self.pad_h {
            e.stream_ifmap_rows(chan, *f..self.pad_h);
            *f = self.pad_h;
        }
        e.evict_ifmap_rows(chan, 0..self.pad_h);
    }
}

/// Input-row window of output row `oy`, clipped to the padded height.
fn window(shape: &LayerShape, oy: u64) -> Range<u64> {
    let s = shape.stride as u64;
    let fh = shape.filter_h as u64;
    let pad_h = shape.padded_h() as u64;
    let start = (oy * s).min(pad_h);
    start..(oy * s + fh).min(pad_h)
}

/// Replay a policy estimate's schedule for `shape`. The engine's
/// scratchpad is sized to exactly the estimator's single-copy footprint;
/// overflow means the memory estimator is wrong.
pub fn replay(shape: &LayerShape, est: &PolicyEstimate) -> Result<Replay, ExecError> {
    run(Engine::new(shape, est.resident.total()), shape, est).map(|(r, _, _)| r)
}

/// Replay with command recording: the [`crate::Program`] lowering path.
pub(crate) fn replay_recorded(
    shape: &LayerShape,
    est: &PolicyEstimate,
) -> Result<crate::Program, ExecError> {
    let (replay, commands, meta) = run(Engine::recording(shape, est.resident.total()), shape, est)?;
    Ok(crate::Program {
        commands,
        meta,
        replay,
    })
}

type RunOutput = (
    Replay,
    Vec<crate::program::Command>,
    Vec<crate::program::CommandMeta>,
);

fn run(mut e: Engine, shape: &LayerShape, est: &PolicyEstimate) -> Result<RunOutput, ExecError> {
    let _span = smm_obs::span!("exec.replay", "{:?}", est.kind);
    let dma_before = smm_obs::counter_value(smm_obs::Counter::ReplayDmaCommands);
    let ci = shape.in_channels as u64;
    let nf = shape.num_filters as u64;
    let (oh, _) = shape.output_hw();
    let (oh, pad_h) = (oh as u64, shape.padded_h() as u64);

    match est.kind {
        PolicyKind::IntraLayer => {
            for c in 0..ci {
                e.fill_ifmap_rows(c, 0..pad_h)?;
            }
            e.fill_filters(0..nf)?;
            for f in 0..shape.out_channels() as u64 {
                e.alloc_ofmap_rows(f, 0..oh)?;
            }
            for f in 0..shape.out_channels() as u64 {
                e.store_ofmap_rows(f, 0..oh);
            }
        }
        PolicyKind::P1IfmapReuse => {
            e.fill_filters(0..nf)?;
            let mut slider = Slider::new(ci as usize, pad_h);
            for oy in 0..oh {
                let w = window(shape, oy);
                for c in 0..ci {
                    slider.advance(&mut e, c as usize, c, w.clone())?;
                }
                for f in 0..shape.out_channels() as u64 {
                    e.alloc_ofmap_rows(f, oy..oy + 1)?;
                }
                for f in 0..shape.out_channels() as u64 {
                    e.store_ofmap_rows(f, oy..oy + 1);
                }
            }
            for c in 0..ci {
                slider.finish(&mut e, c as usize, c);
            }
        }
        PolicyKind::P2FilterReuse => {
            for c in 0..ci {
                e.fill_ifmap_rows(c, 0..pad_h)?;
            }
            for f in 0..nf {
                e.fill_filters(f..f + 1)?;
                e.alloc_ofmap_rows(f, 0..oh)?;
                e.store_ofmap_rows(f, 0..oh);
                e.evict_filters(f..f + 1);
            }
        }
        PolicyKind::P3PerChannel => {
            // The whole ofmap accumulates on-chip across channel passes.
            for f in 0..shape.out_channels() as u64 {
                e.alloc_ofmap_rows(f, 0..oh)?;
            }
            if shape.depthwise {
                // Single-channel filters: all resident at once, each
                // channel pair processed independently.
                e.fill_filters(0..nf)?;
                for c in 0..ci {
                    let mut slider = Slider::single(pad_h);
                    for oy in 0..oh {
                        slider.advance(&mut e, 0, c, window(shape, oy))?;
                    }
                    slider.finish(&mut e, 0, c);
                }
                e.evict_filters(0..nf);
            } else {
                for c in 0..ci {
                    for f in 0..nf {
                        e.fill_filter_channel(f, c)?;
                    }
                    let mut slider = Slider::single(pad_h);
                    for oy in 0..oh {
                        slider.advance(&mut e, 0, c, window(shape, oy))?;
                    }
                    slider.finish(&mut e, 0, c);
                    for f in 0..nf {
                        e.evict_filter_channel(f, c);
                    }
                }
            }
            for f in 0..shape.out_channels() as u64 {
                e.store_ofmap_rows(f, 0..oh);
            }
        }
        PolicyKind::P4PartialIfmap => {
            let n = est.block_n.expect("P4 carries a block size");
            let blocks = nf.div_ceil(n);
            for b in 0..blocks {
                let fs = b * n..((b + 1) * n).min(nf);
                e.fill_filters(fs.clone())?;
                if shape.depthwise {
                    // Each filter touches only its own channel: slide the
                    // window over the block's channels only.
                    for c in fs.clone() {
                        let mut slider = Slider::single(pad_h);
                        for oy in 0..oh {
                            slider.advance(&mut e, 0, c, window(shape, oy))?;
                            e.alloc_ofmap_rows(c, oy..oy + 1)?;
                            e.store_ofmap_rows(c, oy..oy + 1);
                        }
                        slider.finish(&mut e, 0, c);
                    }
                } else {
                    let mut slider = Slider::new(ci as usize, pad_h);
                    for oy in 0..oh {
                        let w = window(shape, oy);
                        for c in 0..ci {
                            slider.advance(&mut e, c as usize, c, w.clone())?;
                        }
                        for f in fs.clone() {
                            e.alloc_ofmap_rows(f, oy..oy + 1)?;
                        }
                        for f in fs.clone() {
                            e.store_ofmap_rows(f, oy..oy + 1);
                        }
                    }
                    for c in 0..ci {
                        slider.finish(&mut e, c as usize, c);
                    }
                }
                e.evict_filters(fs);
            }
        }
        PolicyKind::P5PartialPerChannel => {
            let n = est.block_n.expect("P5 carries a block size");
            let blocks = nf.div_ceil(n);
            for b in 0..blocks {
                let fs = b * n..((b + 1) * n).min(nf);
                for f in fs.clone() {
                    e.alloc_ofmap_rows(f, 0..oh)?;
                }
                if shape.depthwise {
                    for c in fs.clone() {
                        e.fill_filter_channel(c, 0)?;
                        let mut slider = Slider::single(pad_h);
                        for oy in 0..oh {
                            slider.advance(&mut e, 0, c, window(shape, oy))?;
                        }
                        slider.finish(&mut e, 0, c);
                        e.evict_filter_channel(c, 0);
                    }
                } else {
                    for c in 0..ci {
                        for f in fs.clone() {
                            e.fill_filter_channel(f, c)?;
                        }
                        let mut slider = Slider::single(pad_h);
                        for oy in 0..oh {
                            slider.advance(&mut e, 0, c, window(shape, oy))?;
                        }
                        slider.finish(&mut e, 0, c);
                        for f in fs.clone() {
                            e.evict_filter_channel(f, c);
                        }
                    }
                }
                for f in fs.clone() {
                    e.store_ofmap_rows(f, 0..oh);
                }
            }
        }
        PolicyKind::Fallback => {
            let tiling = est.fallback.expect("fallback carries its tiling");
            replay_fallback(&mut e, shape, &tiling)?;
        }
    }

    if smm_obs::enabled() {
        let issued = smm_obs::counter_value(smm_obs::Counter::ReplayDmaCommands) - dma_before;
        smm_obs::observe(smm_obs::Histogram::DmaCommandsPerReplay, issued);
    }
    let commands = e.take_commands();
    let meta = e.take_meta();
    Ok((e.replay, commands, meta))
}

/// Replay the generic blocked fallback schedule.
fn replay_fallback(
    e: &mut Engine,
    shape: &LayerShape,
    t: &FallbackTiling,
) -> Result<(), ExecError> {
    let ci = shape.in_channels as u64;
    let nf = shape.num_filters as u64;
    let (oh, _) = shape.output_hw();
    let (oh, pad_h) = (oh as u64, shape.padded_h() as u64);
    let s = shape.stride as u64;
    let fh = shape.filter_h as u64;
    let n_rt = oh.div_ceil(t.row_block);
    let n_fb = nf.div_ceil(t.filter_block);
    let n_cb = ci.div_ceil(t.channel_block);

    let tile_in_rows = |rt: u64| -> Range<u64> {
        let start = (rt * t.row_block * s).min(pad_h);
        let end = (start + (t.row_block - 1) * s + fh).min(pad_h);
        start..end
    };
    let tile_out_rows = |rt: u64| -> Range<u64> {
        let start = rt * t.row_block;
        start..(start + t.row_block).min(oh)
    };

    if shape.depthwise {
        // One channel per filter: the filter block brings its channels.
        for fb in 0..n_fb {
            let fs = fb * t.filter_block..((fb + 1) * t.filter_block).min(nf);
            e.fill_filters(fs.clone())?;
            for rt in 0..n_rt {
                e.evict_ifmap_all();
                let rows = tile_in_rows(rt);
                for c in fs.clone() {
                    e.fill_ifmap_rows(c, rows.clone())?;
                }
                let orows = tile_out_rows(rt);
                for c in fs.clone() {
                    e.alloc_ofmap_rows(c, orows.clone())?;
                }
                for c in fs.clone() {
                    e.store_ofmap_rows(c, orows.clone());
                }
            }
            e.evict_ifmap_all();
            e.evict_filters(fs);
        }
        return Ok(());
    }

    match t.order {
        LoopOrder::RowsOuter => {
            for fb in 0..n_fb {
                let fs = fb * t.filter_block..((fb + 1) * t.filter_block).min(nf);
                let block_resident = t.channel_block >= ci;
                if block_resident {
                    e.fill_filters(fs.clone())?;
                }
                for rt in 0..n_rt {
                    e.evict_ifmap_all();
                    let rows = tile_in_rows(rt);
                    if !block_resident {
                        // Re-stream the whole block for this row tile.
                        e.stream_filters(fs.clone());
                    }
                    // Channel chunks accumulate into the resident ofmap
                    // tile; each chunk's ifmap rows come and go.
                    let orows = tile_out_rows(rt);
                    for f in fs.clone() {
                        e.alloc_ofmap_rows(f, orows.clone())?;
                    }
                    for cb in 0..n_cb {
                        let cs = cb * t.channel_block..((cb + 1) * t.channel_block).min(ci);
                        for c in cs.clone() {
                            e.fill_ifmap_rows(c, rows.clone())?;
                        }
                        for c in cs {
                            e.evict_ifmap_rows(c, rows.clone());
                        }
                    }
                    for f in fs.clone() {
                        e.store_ofmap_rows(f, orows.clone());
                    }
                }
                if block_resident {
                    e.evict_filters(fs);
                }
            }
        }
        LoopOrder::ChannelsOuter => {
            for fb in 0..n_fb {
                let fs = fb * t.filter_block..((fb + 1) * t.filter_block).min(nf);
                for cb in 0..n_cb {
                    let cs = cb * t.channel_block..((cb + 1) * t.channel_block).min(ci);
                    for f in fs.clone() {
                        for c in cs.clone() {
                            e.fill_filter_channel(f, c)?;
                        }
                    }
                    for rt in 0..n_rt {
                        e.evict_ifmap_all();
                        let rows = tile_in_rows(rt);
                        for c in cs.clone() {
                            e.fill_ifmap_rows(c, rows.clone())?;
                        }
                        let orows = tile_out_rows(rt);
                        if cb == 0 {
                            for f in fs.clone() {
                                e.alloc_ofmap_rows(f, orows.clone())?;
                            }
                        } else {
                            for f in fs.clone() {
                                e.reload_psum_rows(f, orows.clone())?;
                            }
                        }
                        for f in fs.clone() {
                            e.store_ofmap_rows(f, orows.clone());
                        }
                    }
                    e.evict_ifmap_all();
                    for f in fs.clone() {
                        for c in cs.clone() {
                            e.evict_filter_channel(f, c);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_arch::{AcceleratorConfig, ByteSize};
    use smm_policy::estimate;

    fn acc(kb: u64) -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(kb))
    }

    fn conv(ih: u32, ci: u32, k: u32, nf: u32, s: u32, dw: bool) -> LayerShape {
        let shape = LayerShape {
            ifmap_h: ih,
            ifmap_w: ih,
            in_channels: ci,
            filter_h: k,
            filter_w: k,
            num_filters: if dw { ci } else { nf },
            stride: s,
            padding: k / 2,
            depthwise: dw,
        };
        shape.validate().unwrap();
        shape
    }

    fn check(shape: &LayerShape, kind: PolicyKind, kb: u64) {
        let Some(est) = estimate(kind, shape, &acc(kb), false) else {
            return;
        };
        let replayed = replay(shape, &est).unwrap_or_else(|e| {
            panic!("{kind:?} on {shape:?}: {e}");
        });
        assert!(
            replayed.matches(&est),
            "{kind:?} on {shape:?}:\n  est  {:?}\n  got  {replayed:?}",
            est.accesses
        );
    }

    #[test]
    fn named_policies_replay_exactly_on_standard_conv() {
        let s = conv(14, 32, 3, 48, 1, false);
        for kind in PolicyKind::NAMED {
            check(&s, kind, 256);
        }
    }

    #[test]
    fn named_policies_replay_exactly_on_strided_conv() {
        let s = conv(28, 16, 3, 32, 2, false);
        for kind in PolicyKind::NAMED {
            check(&s, kind, 128);
        }
    }

    #[test]
    fn named_policies_replay_exactly_on_pointwise() {
        let s = conv(14, 64, 1, 128, 1, false);
        for kind in PolicyKind::NAMED {
            check(&s, kind, 128);
        }
    }

    #[test]
    fn strided_pointwise_projection_replays() {
        // The gap-row case: 1×1 stride-2 windows skip every other row.
        let s = conv(28, 32, 1, 64, 2, false);
        for kind in PolicyKind::NAMED {
            check(&s, kind, 128);
        }
    }

    #[test]
    fn depthwise_policies_replay_exactly() {
        let s = conv(28, 48, 3, 48, 1, true);
        for kind in PolicyKind::NAMED {
            check(&s, kind, 64);
        }
    }

    #[test]
    fn fully_connected_policies_replay_exactly() {
        let s = conv(1, 256, 1, 100, 1, false);
        for kind in PolicyKind::NAMED {
            check(&s, kind, 64);
        }
    }

    #[test]
    fn small_blocks_force_many_p4_passes() {
        let s = conv(14, 32, 3, 48, 1, false);
        // Tiny budget → small n → several ifmap passes.
        let est = estimate(PolicyKind::P4PartialIfmap, &s, &acc(16), false).unwrap();
        assert!(est.block_n.unwrap() < 48);
        let replayed = replay(&s, &est).unwrap();
        assert!(replayed.matches(&est));
        assert!(replayed.ifmap_loads > s.padded_ifmap_elems());
    }

    #[test]
    fn fallback_rows_outer_replays() {
        let s = conv(28, 64, 3, 96, 1, false);
        // Budget small enough that no named policy fits.
        let est = estimate(PolicyKind::Fallback, &s, &acc(8), false).unwrap();
        let replayed = replay(&s, &est).unwrap();
        assert!(
            replayed.matches(&est),
            "est {:?}\ngot {replayed:?}",
            est.accesses
        );
    }

    #[test]
    fn fallback_depthwise_replays() {
        let s = conv(56, 64, 3, 64, 1, true);
        let est = estimate(PolicyKind::Fallback, &s, &acc(4), false).unwrap();
        let replayed = replay(&s, &est).unwrap();
        assert!(replayed.matches(&est));
    }

    #[test]
    fn peak_residency_validates_memory_estimator() {
        // The scratchpad is sized to exactly the estimator's footprint;
        // a successful replay is itself the capacity proof. Spot-check
        // that the peak actually approaches the bound for the resident
        // policies (they claim to *use* that memory).
        let s = conv(14, 32, 3, 48, 1, false);
        let est = estimate(PolicyKind::IntraLayer, &s, &acc(1024), false).unwrap();
        let replayed = replay(&s, &est).unwrap();
        assert_eq!(replayed.peak_resident, est.resident.total());
    }
}
