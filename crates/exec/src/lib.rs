//! Executable tile schedules for the scratchpad policies.
//!
//! The paper's estimators (`estimate_memory` / `estimate_accesses`) are
//! closed-form; this crate *lowers* each policy into the concrete
//! DMA-level schedule it describes — fills, evictions, streams and
//! write-backs over an element-granular [`smm_trace::Scratchpad`] — and
//! replays it. Two properties fall out, and the tests assert both for
//! every policy on every layer shape tried:
//!
//! 1. **Traffic validation** — the replayed DRAM traffic equals the
//!    estimator's `AccessCounts`, element for element.
//! 2. **Capacity validation** — the replay never holds more resident
//!    elements than the estimator's memory requirement (a scratchpad of
//!    exactly that size never overflows).
//!
//! This is the proposal-side counterpart of the baseline's trace mode
//! (`smm_systolic::schedule`), and the reproduction's stand-in for the
//! paper's "results … have been validated against \[28\]".
//!
//! # Example
//!
//! ```
//! use smm_arch::{AcceleratorConfig, ByteSize};
//! use smm_exec::replay;
//! use smm_model::zoo;
//! use smm_policy::{estimate, PolicyKind};
//!
//! let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(256));
//! let layer = &zoo::resnet18().layers[5];
//! let est = estimate(PolicyKind::P1IfmapReuse, &layer.shape, &acc, false).unwrap();
//! let replayed = replay(&layer.shape, &est).unwrap();
//! assert!(replayed.matches(&est));
//! ```

mod engine;
mod program;
mod resolver;
mod run;

pub use engine::{Engine, ExecError, Replay};
pub use program::{Command, CommandMeta, Program};
pub use resolver::{Action, AddressResolver, Operand, ResolveError, ResolvedCommand};
pub use run::replay;
