//! DMA command streams.
//!
//! The paper's future work is integrating the technique "into an open
//! source DL compiler such as TVM". The artifact such an integration
//! needs is exactly what the replay engine already performs: an ordered
//! stream of DMA commands. This module records that stream — a concrete,
//! inspectable lowering of a policy decision — and can encode it as a
//! compact binary trace.

use crate::engine::{ExecError, Replay};
use crate::run::replay_recorded;
use smm_model::LayerShape;
use smm_policy::PolicyEstimate;
use smm_trace::{TraceRecord, TraceWriter};
use std::fmt;
use std::ops::Range;

/// One DMA-level command of a lowered layer schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Fetch padded-ifmap rows of one channel into the GLB.
    FillIfmapRows { channel: u64, rows: Range<u64> },
    /// Stream padded-ifmap rows through without retaining them.
    StreamIfmapRows { channel: u64, rows: Range<u64> },
    /// Release padded-ifmap rows of one channel.
    EvictIfmapRows { channel: u64, rows: Range<u64> },
    /// Fetch whole filters.
    FillFilters { filters: Range<u64> },
    /// Stream whole filters through.
    StreamFilters { filters: Range<u64> },
    /// Release whole filters.
    EvictFilters { filters: Range<u64> },
    /// Fetch one channel slice of one filter.
    FillFilterChannel { filter: u64, channel: u64 },
    /// Stream one channel slice of one filter.
    StreamFilterChannel { filter: u64, channel: u64 },
    /// Release one channel slice of one filter.
    EvictFilterChannel { filter: u64, channel: u64 },
    /// Reserve GLB space for ofmap rows of one output channel.
    AllocOfmapRows { channel: u64, rows: Range<u64> },
    /// Write ofmap rows of one output channel off-chip.
    StoreOfmapRows { channel: u64, rows: Range<u64> },
    /// Re-fetch spilled partial sums.
    ReloadPsumRows { channel: u64, rows: Range<u64> },
}

/// Per-command measurements recorded while the command stream was
/// replayed: what the command actually moved over the off-chip
/// interface (after residency dedup — a refill of resident rows moves
/// nothing) and the scratchpad footprint right after it ran. Consumers
/// like the `smm-sim` discrete-event simulator price commands from
/// these numbers instead of re-deriving the engine's dedup semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandMeta {
    /// Elements the command moved over the DRAM interface (0 for
    /// evicts, allocs, and fills whose range was already resident).
    pub dram_elems: u64,
    /// True when the movement was chip→DRAM (ofmap stores).
    pub is_write: bool,
    /// Elements resident in the scratchpad after the command executed.
    pub resident_after: u64,
}

impl Command {
    /// Whether this command moves data over the off-chip interface.
    pub fn touches_dram(&self) -> bool {
        !matches!(
            self,
            Command::EvictIfmapRows { .. }
                | Command::EvictFilters { .. }
                | Command::EvictFilterChannel { .. }
                | Command::AllocOfmapRows { .. }
        )
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::FillIfmapRows { channel, rows } => {
                write!(
                    f,
                    "fill   ifmap  c{channel} rows {}..{}",
                    rows.start, rows.end
                )
            }
            Command::StreamIfmapRows { channel, rows } => {
                write!(
                    f,
                    "stream ifmap  c{channel} rows {}..{}",
                    rows.start, rows.end
                )
            }
            Command::EvictIfmapRows { channel, rows } => {
                write!(
                    f,
                    "evict  ifmap  c{channel} rows {}..{}",
                    rows.start, rows.end
                )
            }
            Command::FillFilters { filters } => {
                write!(f, "fill   filter f{}..f{}", filters.start, filters.end)
            }
            Command::StreamFilters { filters } => {
                write!(f, "stream filter f{}..f{}", filters.start, filters.end)
            }
            Command::EvictFilters { filters } => {
                write!(f, "evict  filter f{}..f{}", filters.start, filters.end)
            }
            Command::FillFilterChannel { filter, channel } => {
                write!(f, "fill   filter f{filter} ch {channel}")
            }
            Command::StreamFilterChannel { filter, channel } => {
                write!(f, "stream filter f{filter} ch {channel}")
            }
            Command::EvictFilterChannel { filter, channel } => {
                write!(f, "evict  filter f{filter} ch {channel}")
            }
            Command::AllocOfmapRows { channel, rows } => {
                write!(
                    f,
                    "alloc  ofmap  c{channel} rows {}..{}",
                    rows.start, rows.end
                )
            }
            Command::StoreOfmapRows { channel, rows } => {
                write!(
                    f,
                    "store  ofmap  c{channel} rows {}..{}",
                    rows.start, rows.end
                )
            }
            Command::ReloadPsumRows { channel, rows } => {
                write!(
                    f,
                    "reload psum   c{channel} rows {}..{}",
                    rows.start, rows.end
                )
            }
        }
    }
}

/// A lowered layer schedule: the command stream, the per-command
/// measurements recorded while it was replayed, and the traffic it
/// produced.
#[derive(Debug, Clone)]
pub struct Program {
    pub commands: Vec<Command>,
    /// Parallel to `commands`: the measurement of each command.
    pub meta: Vec<CommandMeta>,
    pub replay: Replay,
}

impl Program {
    /// Lower one policy decision into its command stream (replaying it in
    /// the process, so the program is validated as it is produced).
    pub fn lower(shape: &LayerShape, est: &PolicyEstimate) -> Result<Program, ExecError> {
        let _span = smm_obs::span!("exec.lower", "{:?}", est.kind);
        replay_recorded(shape, est)
    }

    /// Human-readable listing.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.commands.iter().enumerate() {
            out.push_str(&format!("{i:>6}  {c}\n"));
        }
        out
    }

    /// Encode the DRAM-touching commands as a binary trace (one record
    /// per command, sequence number as the cycle stamp).
    ///
    /// # Panics
    /// If a command's range is inverted or spans more than `u32::MAX`
    /// rows/filters (it cannot fit a trace record) — the panic names the
    /// offending command index instead of silently wrapping the count.
    pub fn encode_trace(&self) -> bytes::Bytes {
        // Checked width of `r`, anchored to command `i`: an inverted or
        // absurdly wide range in a corrupt stream must not wrap into a
        // small, plausible-looking record count.
        fn span(i: usize, r: &Range<u64>) -> u32 {
            r.end
                .checked_sub(r.start)
                .and_then(|n| u32::try_from(n).ok())
                .unwrap_or_else(|| {
                    panic!(
                        "command {i}: range {}..{} does not fit a u32 trace record",
                        r.start, r.end
                    )
                })
        }
        let mut w = TraceWriter::new();
        for (i, c) in self.commands.iter().enumerate() {
            if !c.touches_dram() {
                continue;
            }
            let (addr, count, is_read) = match c {
                Command::FillIfmapRows { channel, rows }
                | Command::StreamIfmapRows { channel, rows } => {
                    (channel << 32 | rows.start, span(i, rows), true)
                }
                Command::FillFilters { filters } | Command::StreamFilters { filters } => {
                    (1 << 48 | filters.start, span(i, filters), true)
                }
                Command::FillFilterChannel { filter, channel }
                | Command::StreamFilterChannel { filter, channel } => {
                    (1 << 48 | filter << 16 | channel, 1, true)
                }
                Command::StoreOfmapRows { channel, rows } => {
                    (2 << 48 | channel << 32 | rows.start, span(i, rows), false)
                }
                Command::ReloadPsumRows { channel, rows } => {
                    (2 << 48 | channel << 32 | rows.start, span(i, rows), true)
                }
                _ => unreachable!("touches_dram filtered the rest"),
            };
            w.push(TraceRecord {
                cycle: i as u64,
                addr,
                count,
                is_read,
            });
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_arch::{AcceleratorConfig, ByteSize};
    use smm_policy::{estimate, PolicyKind};

    fn small_layer() -> LayerShape {
        LayerShape {
            ifmap_h: 8,
            ifmap_w: 8,
            in_channels: 4,
            filter_h: 3,
            filter_w: 3,
            num_filters: 8,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    fn est(kind: PolicyKind) -> PolicyEstimate {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        estimate(kind, &small_layer(), &acc, false).unwrap()
    }

    #[test]
    fn lowering_produces_a_validated_program() {
        for kind in PolicyKind::NAMED {
            let e = est(kind);
            let p = Program::lower(&small_layer(), &e).unwrap();
            assert!(!p.commands.is_empty(), "{kind:?}");
            assert!(p.replay.matches(&e), "{kind:?}");
        }
    }

    #[test]
    fn meta_is_parallel_and_sums_to_the_replay() {
        for kind in PolicyKind::NAMED {
            let e = est(kind);
            let p = Program::lower(&small_layer(), &e).unwrap();
            assert_eq!(p.meta.len(), p.commands.len(), "{kind:?}");
            let reads: u64 = p
                .meta
                .iter()
                .filter(|m| !m.is_write)
                .map(|m| m.dram_elems)
                .sum();
            let writes: u64 = p
                .meta
                .iter()
                .filter(|m| m.is_write)
                .map(|m| m.dram_elems)
                .sum();
            assert_eq!(
                reads,
                p.replay.ifmap_loads + p.replay.filter_loads + p.replay.ofmap_reads,
                "{kind:?}"
            );
            assert_eq!(writes, p.replay.ofmap_writes, "{kind:?}");
            let peak = p.meta.iter().map(|m| m.resident_after).max().unwrap_or(0);
            assert_eq!(peak, p.replay.peak_resident, "{kind:?}");
            for (c, m) in p.commands.iter().zip(&p.meta) {
                if !c.touches_dram() {
                    assert_eq!(m.dram_elems, 0, "{kind:?}: {c}");
                }
                assert_eq!(
                    m.is_write,
                    matches!(c, Command::StoreOfmapRows { .. }),
                    "{kind:?}: {c}"
                );
            }
        }
    }

    #[test]
    fn listing_is_line_per_command() {
        let e = est(PolicyKind::P2FilterReuse);
        let p = Program::lower(&small_layer(), &e).unwrap();
        assert_eq!(p.listing().lines().count(), p.commands.len());
        assert!(p.listing().contains("fill   ifmap"));
        assert!(p.listing().contains("store  ofmap"));
    }

    #[test]
    fn p1_program_slides_a_window() {
        let e = est(PolicyKind::P1IfmapReuse);
        let p = Program::lower(&small_layer(), &e).unwrap();
        let evicts = p
            .commands
            .iter()
            .filter(|c| matches!(c, Command::EvictIfmapRows { .. }))
            .count();
        assert!(evicts > 4, "a sliding window evicts as it goes: {evicts}");
    }

    #[test]
    fn binary_trace_round_trips() {
        let e = est(PolicyKind::IntraLayer);
        let p = Program::lower(&small_layer(), &e).unwrap();
        let encoded = p.encode_trace();
        let decoded = TraceWriter::decode(&encoded).unwrap();
        let dram_cmds = p.commands.iter().filter(|c| c.touches_dram()).count();
        assert_eq!(decoded.len(), dram_cmds);
        assert!(decoded.iter().any(|r| !r.is_read), "stores present");
    }

    #[test]
    // The inverted range below is the corruption under test.
    #[allow(clippy::reversed_empty_ranges)]
    fn encode_trace_names_the_command_that_cannot_fit_a_record() {
        let e = est(PolicyKind::IntraLayer);
        let mut p = Program::lower(&small_layer(), &e).unwrap();
        // A u64::MAX-adjacent width (and, below, an inverted range) must
        // panic with the command index, not wrap into a small count.
        p.commands[0] = Command::FillIfmapRows {
            channel: 0,
            rows: 0..u64::MAX - 1,
        };
        let err = std::panic::catch_unwind(move || p.encode_trace()).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("command 0"), "{msg}");
        assert!(msg.contains("does not fit"), "{msg}");

        let e = est(PolicyKind::IntraLayer);
        let mut p = Program::lower(&small_layer(), &e).unwrap();
        p.commands[1] = Command::StoreOfmapRows {
            channel: 0,
            rows: 5..2,
        };
        assert!(std::panic::catch_unwind(move || p.encode_trace()).is_err());
    }

    #[test]
    fn touches_dram_classification() {
        assert!(Command::FillFilters { filters: 0..2 }.touches_dram());
        assert!(!Command::EvictFilters { filters: 0..2 }.touches_dram());
        assert!(!Command::AllocOfmapRows {
            channel: 0,
            rows: 0..1
        }
        .touches_dram());
        assert!(Command::ReloadPsumRows {
            channel: 0,
            rows: 0..1
        }
        .touches_dram());
    }
}
