//! Command-stream IR accessors: a checked address resolver shared by the
//! replay engine and the static analyzer.
//!
//! [`Engine`](crate::Engine) computes flat element-address ranges for
//! every DMA command it executes; `smm-lint` re-derives the same ranges
//! to analyze a [`Program`](crate::Program) *without* replaying it. Both
//! go through this one resolver so the two mappings cannot drift: a
//! command resolves to one [`ResolvedCommand`] — an action class, an
//! operand region, and an address range — or to a [`ResolveError`]
//! anchored to the offending command.
//!
//! All width/element arithmetic here is overflow-checked (`rows ×
//! row_elems` products included): a corrupt stream with pathological
//! ranges produces a line-anchored error, never a silently wrapped
//! address.

use crate::program::Command;
use smm_model::LayerShape;
use std::fmt;
use std::ops::Range;

/// What a command does to its address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Fetch into the scratchpad; already-resident elements are free.
    Fill,
    /// Move through the scratchpad without residency; always charged.
    Stream,
    /// Release residency; no DRAM traffic.
    Evict,
    /// Reserve space for data produced on-chip; no DRAM traffic.
    Alloc,
    /// Write off-chip and release (ofmap stores / psum spills).
    Store,
    /// Re-fetch previously spilled partial sums (charged as reads).
    Reload,
}

impl Action {
    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Action::Fill => "fill",
            Action::Stream => "stream",
            Action::Evict => "evict",
            Action::Alloc => "alloc",
            Action::Store => "store",
            Action::Reload => "reload",
        }
    }
}

/// Which operand region a command touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Padded input feature map.
    Ifmap,
    /// Filter weights.
    Filter,
    /// Output feature map (including partial sums).
    Ofmap,
}

impl Operand {
    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Operand::Ifmap => "ifmap",
            Operand::Filter => "filter",
            Operand::Ofmap => "ofmap",
        }
    }
}

/// One command resolved to its flat element-address range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedCommand {
    /// Action class of the command.
    pub action: Action,
    /// Operand region the range lies in.
    pub operand: Operand,
    /// Flat element addresses the command touches.
    pub range: Range<u64>,
}

impl ResolvedCommand {
    /// Elements in the resolved range.
    pub fn elems(&self) -> u64 {
        self.range.end - self.range.start
    }
}

/// A command (or layer) whose addresses cannot be computed: indices out
/// of the layer's bounds, or arithmetic that would overflow `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveError {
    /// Index of the offending command in the stream, when command-scoped.
    pub command: Option<usize>,
    /// What went wrong, with the offending numbers.
    pub message: String,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.command {
            Some(i) => write!(f, "command {i}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for ResolveError {}

/// Flat element-address layout of one layer, mirroring
/// [`smm_trace::AddressMap`]: ifmap (channel-major over the padded
/// extent, base 0), filters (filter-major), ofmap (channel-major), laid
/// out back to back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressResolver {
    pad_h: u64,
    pad_w: u64,
    in_ch: u64,
    filt_per_f: u64,
    filt_chans: u64,
    num_f: u64,
    out_h: u64,
    out_w: u64,
    out_ch: u64,
    filter_base: u64,
    ofmap_base: u64,
    end: u64,
}

fn mul(a: u64, b: u64, what: &str) -> Result<u64, ResolveError> {
    a.checked_mul(b).ok_or_else(|| ResolveError {
        command: None,
        message: format!("{what}: {a} * {b} overflows u64"),
    })
}

fn add(a: u64, b: u64, what: &str) -> Result<u64, ResolveError> {
    a.checked_add(b).ok_or_else(|| ResolveError {
        command: None,
        message: format!("{what}: {a} + {b} overflows u64"),
    })
}

impl AddressResolver {
    /// Build the layout for `shape`, checking that the whole address
    /// space fits in `u64`.
    pub fn new(shape: &LayerShape) -> Result<Self, ResolveError> {
        let pad_h = u64::from(shape.padded_h());
        let pad_w = u64::from(shape.padded_w());
        let in_ch = u64::from(shape.in_channels);
        let filt_per_f = shape.single_filter_elems();
        let filt_chans = shape.filter_channels();
        let num_f = u64::from(shape.num_filters);
        let (oh, ow) = shape.output_hw();
        let (out_h, out_w) = (u64::from(oh), u64::from(ow));
        let out_ch = u64::from(shape.out_channels());
        let ifmap_elems = mul(
            mul(pad_h, pad_w, "padded ifmap plane")?,
            in_ch,
            "ifmap region",
        )?;
        let filter_elems = mul(filt_per_f, num_f, "filter region")?;
        let ofmap_elems = mul(mul(out_h, out_w, "ofmap plane")?, out_ch, "ofmap region")?;
        let filter_base = ifmap_elems;
        let ofmap_base = add(filter_base, filter_elems, "filter region end")?;
        let end = add(ofmap_base, ofmap_elems, "ofmap region end")?;
        Ok(AddressResolver {
            pad_h,
            pad_w,
            in_ch,
            filt_per_f,
            filt_chans,
            num_f,
            out_h,
            out_w,
            out_ch,
            filter_base,
            ofmap_base,
            end,
        })
    }

    /// Total element footprint of all three regions.
    pub fn total_elems(&self) -> u64 {
        self.end
    }

    /// Address range of the whole ifmap region.
    pub fn ifmap_region(&self) -> Range<u64> {
        0..self.filter_base
    }

    /// Address range of the whole filter region.
    pub fn filter_region(&self) -> Range<u64> {
        self.filter_base..self.ofmap_base
    }

    /// Address range of the whole ofmap region.
    pub fn ofmap_region(&self) -> Range<u64> {
        self.ofmap_base..self.end
    }

    fn checked_ifmap_rows(&self, c: u64, rows: &Range<u64>) -> Result<Range<u64>, ResolveError> {
        let oob = |message: String| ResolveError {
            command: None,
            message,
        };
        if c >= self.in_ch {
            return Err(oob(format!("ifmap channel {c} >= {}", self.in_ch)));
        }
        if rows.start > rows.end || rows.end > self.pad_h {
            return Err(oob(format!(
                "ifmap rows {}..{} outside 0..{}",
                rows.start, rows.end, self.pad_h
            )));
        }
        let first = mul(c, self.pad_h, "ifmap channel offset")?
            .checked_add(rows.start)
            .ok_or_else(|| oob("ifmap row offset overflows u64".into()))?;
        let start = mul(first, self.pad_w, "ifmap row address")?;
        let width = mul(rows.end - rows.start, self.pad_w, "ifmap rows * row_elems")?;
        Ok(start..add(start, width, "ifmap range end")?)
    }

    fn checked_filters(&self, fs: &Range<u64>) -> Result<Range<u64>, ResolveError> {
        if fs.start > fs.end || fs.end > self.num_f {
            return Err(ResolveError {
                command: None,
                message: format!("filters {}..{} outside 0..{}", fs.start, fs.end, self.num_f),
            });
        }
        let start = add(
            self.filter_base,
            mul(fs.start, self.filt_per_f, "filter offset")?,
            "filter start",
        )?;
        let width = mul(fs.end - fs.start, self.filt_per_f, "filters * filter_elems")?;
        Ok(start..add(start, width, "filter range end")?)
    }

    fn checked_filter_channel(&self, f: u64, c: u64) -> Result<Range<u64>, ResolveError> {
        if f >= self.num_f || c >= self.filt_chans {
            return Err(ResolveError {
                command: None,
                message: format!(
                    "filter channel (f{f}, c{c}) outside {} filters * {} channels",
                    self.num_f, self.filt_chans
                ),
            });
        }
        let per_channel = self.filt_per_f / self.filt_chans;
        let base = self.checked_filters(&(f..f + 1))?.start;
        let start = add(
            base,
            mul(c, per_channel, "filter channel offset")?,
            "filter channel",
        )?;
        Ok(start..add(start, per_channel, "filter channel end")?)
    }

    fn checked_ofmap_rows(&self, c: u64, rows: &Range<u64>) -> Result<Range<u64>, ResolveError> {
        let oob = |message: String| ResolveError {
            command: None,
            message,
        };
        if c >= self.out_ch {
            return Err(oob(format!("ofmap channel {c} >= {}", self.out_ch)));
        }
        if rows.start > rows.end || rows.end > self.out_h {
            return Err(oob(format!(
                "ofmap rows {}..{} outside 0..{}",
                rows.start, rows.end, self.out_h
            )));
        }
        let first = mul(c, self.out_h, "ofmap channel offset")?
            .checked_add(rows.start)
            .ok_or_else(|| oob("ofmap row offset overflows u64".into()))?;
        let start = add(
            self.ofmap_base,
            mul(first, self.out_w, "ofmap row address")?,
            "ofmap start",
        )?;
        let width = mul(rows.end - rows.start, self.out_w, "ofmap rows * row_elems")?;
        Ok(start..add(start, width, "ofmap range end")?)
    }

    /// Resolve the command at stream position `index` into its action,
    /// operand, and address range. Errors are anchored to `index`.
    pub fn resolve(&self, index: usize, cmd: &Command) -> Result<ResolvedCommand, ResolveError> {
        let anchor = |mut e: ResolveError| {
            e.command = Some(index);
            e
        };
        let (action, operand, range) = match cmd {
            Command::FillIfmapRows { channel, rows } => (
                Action::Fill,
                Operand::Ifmap,
                self.checked_ifmap_rows(*channel, rows).map_err(anchor)?,
            ),
            Command::StreamIfmapRows { channel, rows } => (
                Action::Stream,
                Operand::Ifmap,
                self.checked_ifmap_rows(*channel, rows).map_err(anchor)?,
            ),
            Command::EvictIfmapRows { channel, rows } => (
                Action::Evict,
                Operand::Ifmap,
                self.checked_ifmap_rows(*channel, rows).map_err(anchor)?,
            ),
            Command::FillFilters { filters } => (
                Action::Fill,
                Operand::Filter,
                self.checked_filters(filters).map_err(anchor)?,
            ),
            Command::StreamFilters { filters } => (
                Action::Stream,
                Operand::Filter,
                self.checked_filters(filters).map_err(anchor)?,
            ),
            Command::EvictFilters { filters } => (
                Action::Evict,
                Operand::Filter,
                self.checked_filters(filters).map_err(anchor)?,
            ),
            Command::FillFilterChannel { filter, channel } => (
                Action::Fill,
                Operand::Filter,
                self.checked_filter_channel(*filter, *channel)
                    .map_err(anchor)?,
            ),
            Command::StreamFilterChannel { filter, channel } => (
                Action::Stream,
                Operand::Filter,
                self.checked_filter_channel(*filter, *channel)
                    .map_err(anchor)?,
            ),
            Command::EvictFilterChannel { filter, channel } => (
                Action::Evict,
                Operand::Filter,
                self.checked_filter_channel(*filter, *channel)
                    .map_err(anchor)?,
            ),
            Command::AllocOfmapRows { channel, rows } => (
                Action::Alloc,
                Operand::Ofmap,
                self.checked_ofmap_rows(*channel, rows).map_err(anchor)?,
            ),
            Command::StoreOfmapRows { channel, rows } => (
                Action::Store,
                Operand::Ofmap,
                self.checked_ofmap_rows(*channel, rows).map_err(anchor)?,
            ),
            Command::ReloadPsumRows { channel, rows } => (
                Action::Reload,
                Operand::Ofmap,
                self.checked_ofmap_rows(*channel, rows).map_err(anchor)?,
            ),
        };
        Ok(ResolvedCommand {
            action,
            operand,
            range,
        })
    }

    /// Address range of padded-ifmap rows `rows` of channel `c`.
    /// Panics on out-of-bounds input — the replay engine only computes
    /// ranges for commands it generated itself.
    pub fn ifmap_rows(&self, c: u64, rows: Range<u64>) -> Range<u64> {
        self.checked_ifmap_rows(c, &rows)
            .expect("engine-generated ifmap range resolves")
    }

    /// Address range of whole filters `fs` (panics like
    /// [`ifmap_rows`](Self::ifmap_rows)).
    pub fn filters(&self, fs: Range<u64>) -> Range<u64> {
        self.checked_filters(&fs)
            .expect("engine-generated filter range resolves")
    }

    /// Address range of channel `c` of filter `f` (`F_H·F_W` contiguous
    /// elements — filters are stored filter-major, channel-minor).
    pub fn filter_channel(&self, f: u64, c: u64) -> Range<u64> {
        self.checked_filter_channel(f, c)
            .expect("engine-generated filter-channel range resolves")
    }

    /// Address range of ofmap rows `rows` of output channel `c`.
    pub fn ofmap_rows(&self, c: u64, rows: Range<u64>) -> Range<u64> {
        self.checked_ofmap_rows(c, &rows)
            .expect("engine-generated ofmap range resolves")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> LayerShape {
        LayerShape {
            ifmap_h: 8,
            ifmap_w: 8,
            in_channels: 2,
            filter_h: 3,
            filter_w: 3,
            num_filters: 4,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    /// A shape whose operand regions multiply out past `u64::MAX`.
    /// `LayerShape::validate` rejects it, but the resolver must not
    /// trust its caller to have validated.
    fn pathological() -> LayerShape {
        LayerShape {
            ifmap_h: u32::MAX - 2,
            ifmap_w: u32::MAX - 2,
            in_channels: u32::MAX - 2,
            filter_h: 1,
            filter_w: 1,
            num_filters: 1,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    #[test]
    fn layout_matches_the_trace_address_map() {
        let s = shape();
        let r = AddressResolver::new(&s).unwrap();
        let m = smm_trace::AddressMap::new(10, 10, 2, 18, 4, 8, 8, 4);
        assert_eq!(r.total_elems(), m.total_elems());
        assert_eq!(r.ifmap_rows(1, 2..5), m.ifmap_rows(1, 2..5));
        assert_eq!(r.filters(1..3), m.filters(1..3));
        assert_eq!(r.ofmap_rows(2, 0..8).start, m.ofmap(2, 0, 0));
        assert_eq!(
            r.ofmap_rows(2, 0..8).end - r.ofmap_rows(2, 0..8).start,
            8 * 8
        );
    }

    #[test]
    fn resolve_classifies_all_variants() {
        let r = AddressResolver::new(&shape()).unwrap();
        let cases: [(Command, Action, Operand); 6] = [
            (
                Command::FillIfmapRows {
                    channel: 0,
                    rows: 0..3,
                },
                Action::Fill,
                Operand::Ifmap,
            ),
            (
                Command::StreamFilters { filters: 0..2 },
                Action::Stream,
                Operand::Filter,
            ),
            (
                Command::EvictFilterChannel {
                    filter: 1,
                    channel: 1,
                },
                Action::Evict,
                Operand::Filter,
            ),
            (
                Command::AllocOfmapRows {
                    channel: 2,
                    rows: 1..4,
                },
                Action::Alloc,
                Operand::Ofmap,
            ),
            (
                Command::StoreOfmapRows {
                    channel: 2,
                    rows: 1..4,
                },
                Action::Store,
                Operand::Ofmap,
            ),
            (
                Command::ReloadPsumRows {
                    channel: 0,
                    rows: 0..1,
                },
                Action::Reload,
                Operand::Ofmap,
            ),
        ];
        for (cmd, action, operand) in cases {
            let rc = r.resolve(0, &cmd).unwrap();
            assert_eq!(rc.action, action, "{cmd}");
            assert_eq!(rc.operand, operand, "{cmd}");
            assert!(rc.elems() > 0, "{cmd}");
        }
    }

    #[test]
    // The inverted range below is one of the malformed commands under test.
    #[allow(clippy::reversed_empty_ranges)]
    fn out_of_bounds_commands_error_with_the_command_index() {
        let r = AddressResolver::new(&shape()).unwrap();
        let bad = [
            Command::FillIfmapRows {
                channel: 9,
                rows: 0..1,
            },
            Command::FillIfmapRows {
                channel: 0,
                rows: 0..999,
            },
            Command::FillFilters { filters: 3..99 },
            Command::FillFilterChannel {
                filter: 0,
                channel: 77,
            },
            Command::StoreOfmapRows {
                channel: 0,
                rows: 5..2,
            },
            Command::StoreOfmapRows {
                channel: 44,
                rows: 0..1,
            },
        ];
        for (i, cmd) in bad.iter().enumerate() {
            let err = r.resolve(i, cmd).unwrap_err();
            assert_eq!(err.command, Some(i), "{cmd}");
            assert!(
                err.to_string().starts_with(&format!("command {i}:")),
                "{err}"
            );
        }
    }

    #[test]
    fn u64_overflowing_layouts_are_errors_not_wraps() {
        let err = AddressResolver::new(&pathological()).unwrap_err();
        assert!(err.to_string().contains("overflows u64"), "{err}");
    }

    #[test]
    fn u64_max_adjacent_ranges_resolve_or_error_cleanly() {
        // A 1-element-wide degenerate layer: the address space is tiny,
        // so `u64::MAX`-adjacent command ranges must error, not wrap
        // into a small (aliasing) address.
        let r = AddressResolver::new(&shape()).unwrap();
        let cmd = Command::FillIfmapRows {
            channel: 0,
            rows: u64::MAX - 1..u64::MAX,
        };
        let err = r.resolve(3, &cmd).unwrap_err();
        assert_eq!(err.command, Some(3));
        assert!(err.message.contains("outside"), "{err}");
        // And a range whose *width* alone would overflow the product
        // with the row element count.
        let cmd = Command::StoreOfmapRows {
            channel: 0,
            rows: 0..u64::MAX,
        };
        assert!(r.resolve(4, &cmd).is_err());
    }

    #[test]
    fn empty_ranges_resolve_to_empty() {
        let r = AddressResolver::new(&shape()).unwrap();
        let rc = r
            .resolve(
                0,
                &Command::EvictIfmapRows {
                    channel: 1,
                    rows: 4..4,
                },
            )
            .unwrap();
        assert_eq!(rc.elems(), 0);
    }
}
