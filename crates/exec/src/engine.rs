//! The replay engine: a unified scratchpad with per-operand traffic
//! attribution and peak-residency tracking.

use crate::program::{Command, CommandMeta};
use crate::resolver::AddressResolver;
use smm_model::LayerShape;
use smm_policy::{AccessCounts, PolicyEstimate};
use smm_trace::{DramCounter, Scratchpad};
use std::fmt;
use std::ops::Range;

/// Replay failure: the schedule needed more scratchpad than the
/// estimator's memory requirement — a bug in one of the two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    pub message: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule replay failed: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

/// Observed traffic and residency of one replayed layer schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Replay {
    /// Ifmap elements read from DRAM.
    pub ifmap_loads: u64,
    /// Filter elements read from DRAM.
    pub filter_loads: u64,
    /// Ofmap elements written to DRAM (final stores *and* partial-sum
    /// spills — the replay cannot distinguish them, the estimator can).
    pub ofmap_writes: u64,
    /// Ofmap elements read back from DRAM (partial-sum spill re-loads).
    pub ofmap_reads: u64,
    /// Peak simultaneously-resident elements.
    pub peak_resident: u64,
}

impl Replay {
    /// Total elements moved.
    pub fn total(&self) -> u64 {
        self.ifmap_loads + self.filter_loads + self.ofmap_writes + self.ofmap_reads
    }

    /// Does the replay agree with the estimator, both on traffic and on
    /// the capacity bound?
    pub fn matches(&self, est: &PolicyEstimate) -> bool {
        self.ifmap_loads == est.accesses.ifmap_loads
            && self.filter_loads == est.accesses.filter_loads
            && self.ofmap_writes == est.accesses.ofmap_stores + est.accesses.psum_spill_stores
            && self.ofmap_reads == est.accesses.psum_spill_loads
            && self.peak_resident <= est.resident.total()
    }

    /// The replayed traffic as estimator-shaped counts (spill stores are
    /// folded into `ofmap_stores`).
    pub fn as_access_counts(&self) -> AccessCounts {
        AccessCounts {
            ifmap_loads: self.ifmap_loads,
            filter_loads: self.filter_loads,
            ofmap_stores: self.ofmap_writes,
            psum_spill_stores: 0,
            psum_spill_loads: self.ofmap_reads,
        }
    }
}

/// The scheduling engine: one unified scratchpad (the GLB), a checked
/// address resolver, and traffic attribution per operand.
pub struct Engine {
    map: AddressResolver,
    sp: Scratchpad,
    dram: DramCounter,
    shape: LayerShape,
    pub replay: Replay,
    record: Option<Vec<Command>>,
    meta: Option<Vec<CommandMeta>>,
}

impl Engine {
    /// Build an engine with a scratchpad of exactly `capacity` elements
    /// (the estimator's single-copy footprint).
    ///
    /// # Panics
    /// If the layer's address space overflows `u64` — impossible for
    /// shapes accepted by `LayerShape::validate`.
    pub fn new(shape: &LayerShape, capacity: u64) -> Self {
        let map = AddressResolver::new(shape).expect("layer address space fits in u64");
        let dram = DramCounter::new();
        let sp = Scratchpad::new(capacity, dram.clone());
        Engine {
            map,
            sp,
            dram,
            shape: *shape,
            replay: Replay::default(),
            record: None,
            meta: None,
        }
    }

    /// Same engine, but recording every command it executes (for
    /// [`crate::Program`] lowering).
    pub fn recording(shape: &LayerShape, capacity: u64) -> Self {
        let mut e = Engine::new(shape, capacity);
        e.record = Some(Vec::new());
        e.meta = Some(Vec::new());
        e
    }

    /// Take the recorded command stream (empty unless built with
    /// [`recording`](Self::recording)).
    pub fn take_commands(&mut self) -> Vec<Command> {
        self.record.take().unwrap_or_default()
    }

    /// Take the per-command measurements recorded alongside the command
    /// stream (parallel to [`take_commands`](Self::take_commands)).
    pub fn take_meta(&mut self) -> Vec<CommandMeta> {
        self.meta.take().unwrap_or_default()
    }

    fn push_cmd(&mut self, cmd: Command) {
        smm_obs::add(smm_obs::Counter::ReplayDmaCommands, 1);
        if let Some(r) = &mut self.record {
            r.push(cmd);
        }
    }

    /// Record the measurement for the command pushed last. Called after
    /// the operation executed, so `dram_elems` is the dedup-aware charge
    /// and `resident_after` reflects the post-command footprint. Error
    /// paths may skip this, but they abort the whole replay, so the two
    /// recorded vectors only ever reach callers in sync.
    fn note(&mut self, dram_elems: u64, is_write: bool) {
        if let Some(m) = &mut self.meta {
            m.push(CommandMeta {
                dram_elems,
                is_write,
                resident_after: self.sp.resident_count(),
            });
        }
    }

    fn track_peak(&mut self) {
        self.replay.peak_resident = self.replay.peak_resident.max(self.sp.resident_count());
    }

    fn charged_fill(&mut self, range: Range<u64>) -> Result<u64, ExecError> {
        let before = self.dram.reads();
        self.sp.fill(range).map_err(|e| ExecError {
            message: e.to_string(),
        })?;
        self.track_peak();
        Ok(self.dram.reads() - before)
    }

    /// Bring padded-ifmap rows of one channel on-chip (misses charged).
    pub fn fill_ifmap_rows(&mut self, c: u64, rows: Range<u64>) -> Result<(), ExecError> {
        if rows.is_empty() {
            return Ok(());
        }
        self.push_cmd(Command::FillIfmapRows {
            channel: c,
            rows: rows.clone(),
        });
        let r = self.map.ifmap_rows(c, rows);
        let n = self.charged_fill(r)?;
        self.replay.ifmap_loads += n;
        self.note(n, false);
        Ok(())
    }

    /// Stream padded-ifmap rows through without residency (burst transit
    /// of rows between or after the windows; each element still crosses
    /// the interface once, as the estimator counts).
    pub fn stream_ifmap_rows(&mut self, c: u64, rows: Range<u64>) {
        if rows.is_empty() {
            return;
        }
        self.push_cmd(Command::StreamIfmapRows {
            channel: c,
            rows: rows.clone(),
        });
        let r = self.map.ifmap_rows(c, rows);
        let n = r.end - r.start;
        self.replay.ifmap_loads += n;
        self.sp.stream(r);
        self.note(n, false);
    }

    /// Drop padded-ifmap rows of one channel.
    pub fn evict_ifmap_rows(&mut self, c: u64, rows: Range<u64>) {
        if rows.is_empty() {
            return;
        }
        self.push_cmd(Command::EvictIfmapRows {
            channel: c,
            rows: rows.clone(),
        });
        let r = self.map.ifmap_rows(c, rows);
        self.sp.evict(r);
        self.note(0, false);
    }

    /// Drop the whole ifmap region.
    pub fn evict_ifmap_all(&mut self) {
        for c in 0..self.shape.in_channels as u64 {
            self.evict_ifmap_rows(c, 0..self.shape.padded_h() as u64);
        }
    }

    /// Bring whole filters on-chip.
    pub fn fill_filters(&mut self, fs: Range<u64>) -> Result<(), ExecError> {
        if fs.is_empty() {
            return Ok(());
        }
        self.push_cmd(Command::FillFilters {
            filters: fs.clone(),
        });
        let r = self.map.filters(fs);
        let n = self.charged_fill(r)?;
        self.replay.filter_loads += n;
        self.note(n, false);
        Ok(())
    }

    /// Stream whole filters through without residency.
    pub fn stream_filters(&mut self, fs: Range<u64>) {
        if fs.is_empty() {
            return;
        }
        self.push_cmd(Command::StreamFilters {
            filters: fs.clone(),
        });
        let r = self.map.filters(fs);
        let n = r.end - r.start;
        self.replay.filter_loads += n;
        self.sp.stream(r);
        self.note(n, false);
    }

    /// Drop whole filters.
    pub fn evict_filters(&mut self, fs: Range<u64>) {
        if fs.is_empty() {
            return;
        }
        self.push_cmd(Command::EvictFilters {
            filters: fs.clone(),
        });
        let r = self.map.filters(fs);
        self.sp.evict(r);
        self.note(0, false);
    }

    /// Bring channel `c` of filter `f` on-chip.
    pub fn fill_filter_channel(&mut self, f: u64, c: u64) -> Result<(), ExecError> {
        self.push_cmd(Command::FillFilterChannel {
            filter: f,
            channel: c,
        });
        let r = self.map.filter_channel(f, c);
        let n = self.charged_fill(r)?;
        self.replay.filter_loads += n;
        self.note(n, false);
        Ok(())
    }

    /// Stream channel `c` of filter `f` through without residency.
    pub fn stream_filter_channel(&mut self, f: u64, c: u64) {
        self.push_cmd(Command::StreamFilterChannel {
            filter: f,
            channel: c,
        });
        let r = self.map.filter_channel(f, c);
        let n = r.end - r.start;
        self.replay.filter_loads += n;
        self.sp.stream(r);
        self.note(n, false);
    }

    /// Drop channel `c` of filter `f`.
    pub fn evict_filter_channel(&mut self, f: u64, c: u64) {
        self.push_cmd(Command::EvictFilterChannel {
            filter: f,
            channel: c,
        });
        self.sp.evict(self.map.filter_channel(f, c));
        self.note(0, false);
    }

    /// Allocate space for ofmap rows of one channel (produced on-chip).
    pub fn alloc_ofmap_rows(&mut self, c: u64, rows: Range<u64>) -> Result<(), ExecError> {
        if rows.is_empty() {
            return Ok(());
        }
        self.push_cmd(Command::AllocOfmapRows {
            channel: c,
            rows: rows.clone(),
        });
        let r = self.map.ofmap_rows(c, rows);
        self.sp.allocate(r).map_err(|e| ExecError {
            message: e.to_string(),
        })?;
        self.track_peak();
        self.note(0, false);
        Ok(())
    }

    /// Write ofmap rows of one channel off-chip and release the space.
    pub fn store_ofmap_rows(&mut self, c: u64, rows: Range<u64>) {
        if rows.is_empty() {
            return;
        }
        self.push_cmd(Command::StoreOfmapRows {
            channel: c,
            rows: rows.clone(),
        });
        let r = self.map.ofmap_rows(c, rows);
        let n = r.end - r.start;
        self.replay.ofmap_writes += n;
        self.sp.writeback(r);
        self.note(n, true);
    }

    /// Re-load previously spilled partial sums (charged as ofmap reads).
    pub fn reload_psum_rows(&mut self, c: u64, rows: Range<u64>) -> Result<(), ExecError> {
        if rows.is_empty() {
            return Ok(());
        }
        self.push_cmd(Command::ReloadPsumRows {
            channel: c,
            rows: rows.clone(),
        });
        let r = self.map.ofmap_rows(c, rows);
        let before = self.dram.reads();
        self.sp.fill(r).map_err(|e| ExecError {
            message: e.to_string(),
        })?;
        self.track_peak();
        let n = self.dram.reads() - before;
        self.replay.ofmap_reads += n;
        self.note(n, false);
        Ok(())
    }

    /// The layer shape being replayed.
    pub fn shape(&self) -> &LayerShape {
        &self.shape
    }

    /// The address resolver mapping commands to element ranges (shared
    /// with the static analyzer, so the two mappings cannot drift).
    pub fn resolver(&self) -> &AddressResolver {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> LayerShape {
        LayerShape {
            ifmap_h: 8,
            ifmap_w: 8,
            in_channels: 2,
            filter_h: 3,
            filter_w: 3,
            num_filters: 4,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    #[test]
    fn attribution_by_operand() {
        let s = shape();
        let mut e = Engine::new(&s, 10_000);
        e.fill_ifmap_rows(0, 0..3).unwrap();
        e.fill_filters(0..2).unwrap();
        e.alloc_ofmap_rows(0, 0..1).unwrap();
        e.store_ofmap_rows(0, 0..1);
        assert_eq!(e.replay.ifmap_loads, 3 * 10);
        assert_eq!(e.replay.filter_loads, 2 * 18);
        assert_eq!(e.replay.ofmap_writes, 8);
        assert_eq!(e.replay.ofmap_reads, 0);
    }

    #[test]
    fn refill_is_free_restream_is_not() {
        let s = shape();
        let mut e = Engine::new(&s, 10_000);
        e.fill_ifmap_rows(0, 0..3).unwrap();
        e.fill_ifmap_rows(0, 1..4).unwrap(); // 1 new row
        assert_eq!(e.replay.ifmap_loads, 4 * 10);
        e.stream_ifmap_rows(0, 0..2); // always charged
        assert_eq!(e.replay.ifmap_loads, 6 * 10);
    }

    #[test]
    fn peak_residency_tracked() {
        let s = shape();
        let mut e = Engine::new(&s, 10_000);
        e.fill_ifmap_rows(0, 0..5).unwrap();
        e.evict_ifmap_rows(0, 0..4);
        e.fill_filters(0..1).unwrap();
        assert_eq!(e.replay.peak_resident, 50);
    }

    #[test]
    fn capacity_violation_is_an_error() {
        let s = shape();
        let mut e = Engine::new(&s, 16);
        assert!(e.fill_ifmap_rows(0, 0..3).is_err());
    }

    #[test]
    fn filter_channel_ranges_are_disjoint_per_filter() {
        let s = shape();
        let e = Engine::new(&s, 10_000);
        let a = e.resolver().filter_channel(1, 0);
        let b = e.resolver().filter_channel(1, 1);
        assert_eq!(a.end, b.start);
        assert_eq!(b.end - a.start, s.single_filter_elems());
    }

    #[test]
    fn psum_reload_counts_as_ofmap_read() {
        let s = shape();
        let mut e = Engine::new(&s, 10_000);
        e.alloc_ofmap_rows(0, 0..2).unwrap();
        e.store_ofmap_rows(0, 0..2);
        e.reload_psum_rows(0, 0..2).unwrap();
        assert_eq!(e.replay.ofmap_writes, 16);
        assert_eq!(e.replay.ofmap_reads, 16);
    }
}
