//! The corruption harness: seed specific defects into known-good plans
//! and assert each corruption class is caught by its expected `SMM*`
//! diagnostic code. Extra diagnostics are allowed (one corruption can
//! legitimately violate several invariants); a *missing* expected code
//! means the checker has a blind spot.

use smm_arch::{AcceleratorConfig, ByteSize};
use smm_check::{check_plan, Code};
use smm_core::{ExecutionPlan, Manager, ManagerConfig, Objective};
use smm_model::{zoo, Network};
use smm_policy::PolicyKind;

fn acc_kb(kb: u64) -> AcceleratorConfig {
    AcceleratorConfig::paper_default(ByteSize::from_kb(kb))
}

fn plan(net: &Network, acc: AcceleratorConfig, reuse: bool) -> ExecutionPlan {
    Manager::new(
        acc,
        ManagerConfig::new(Objective::Accesses).with_inter_layer_reuse(reuse),
    )
    .heterogeneous(net)
    .expect("planning must succeed")
}

/// Find a `(net, acc, plan, layer)` tuple whose decision satisfies
/// `pred`, searching the zoo across GLB sizes. Panics if no bundled
/// model exercises the wanted decision shape — that would make the
/// corresponding mutation untestable.
fn find_decision(
    what: &str,
    kbs: &[u64],
    pred: impl Fn(&smm_core::LayerDecision) -> bool,
) -> (Network, AcceleratorConfig, ExecutionPlan, usize) {
    for &kb in kbs {
        for net in zoo::all_networks() {
            let acc = acc_kb(kb);
            let p = plan(&net, acc, false);
            if let Some(i) = p.decisions.iter().position(&pred) {
                return (net, acc, p, i);
            }
        }
    }
    panic!("no bundled model produced a decision with: {what}");
}

/// Baseline sanity: the harness only mutates plans that start clean.
fn assert_clean(p: &ExecutionPlan, net: &Network, acc: &AcceleratorConfig) {
    let report = check_plan(p, net, acc);
    assert!(
        report.is_clean(),
        "seed plan must be clean before mutation: {:?}",
        report.diagnostics
    );
}

#[test]
fn inflated_resident_tile_is_caught() {
    let net = zoo::resnet18();
    let acc = acc_kb(128);
    let mut p = plan(&net, acc, false);
    assert_clean(&p, &net, &acc);

    p.decisions[3].estimate.resident.ifmap *= 3;
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::ResidentMismatch), "{report:?}");
    assert_eq!(report.diagnostics[0].layer, Some(3));
}

#[test]
fn oversized_allocation_violates_glb_capacity() {
    let net = zoo::resnet18();
    let acc = acc_kb(64);
    let mut p = plan(&net, acc, false);
    assert_clean(&p, &net, &acc);

    // Claim a working set larger than the whole GLB. Both the recorded
    // footprint (capacity check) and the re-derivation (mismatch) fire.
    p.decisions[0].estimate.resident.filters += acc.glb_elements();
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::GlbCapacityExceeded), "{report:?}");
    assert!(report.has_code(Code::ResidentMismatch));
}

#[test]
fn swapped_policy_kind_is_caught() {
    // Relabel a minimum-transfer policy without recomputing its numbers:
    // the recorded footprint no longer matches the claimed policy.
    let (net, acc, mut p, i) = find_decision("a policy-1 layer", &[128, 256], |d| {
        d.estimate.kind == PolicyKind::P1IfmapReuse
    });
    assert_clean(&p, &net, &acc);

    p.decisions[i].estimate.kind = PolicyKind::P2FilterReuse;
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::ResidentMismatch), "{report:?}");
}

#[test]
fn dropped_prefetch_space_is_caught() {
    // Keep the overlapped (max of compute/transfer) latency but clear the
    // prefetch flag: the plan claims pipelined latency without paying
    // Eq. 2's double-buffer space.
    let (net, acc, mut p, i) = find_decision("a prefetching layer", &[64, 128, 256], |d| {
        d.estimate.prefetch
            && d.estimate.latency.cycles
                < d.estimate.latency.compute_cycles + d.estimate.latency.transfer_cycles
    });
    assert_clean(&p, &net, &acc);

    p.decisions[i].estimate.prefetch = false;
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::LatencyMismatch), "{report:?}");
}

#[test]
fn prefetch_without_budget_is_caught() {
    // The converse: claim double-buffered prefetch on a layer whose
    // doubled allocation cannot fit the GLB.
    let (net, acc, mut p, i) = find_decision(
        "a non-prefetch layer with more than half the GLB",
        &[64],
        |d| !d.estimate.prefetch && 2 * d.estimate.required_elems() > acc_kb(64).glb_elements(),
    );
    assert_clean(&p, &net, &acc);

    p.decisions[i].estimate.prefetch = true;
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::GlbCapacityExceeded), "{report:?}");
}

#[test]
fn misreported_traffic_is_caught() {
    let net = zoo::mobilenet();
    let acc = acc_kb(128);
    let mut p = plan(&net, acc, false);
    assert_clean(&p, &net, &acc);

    // Halve the reported ifmap loads: the classic "our traffic is lower
    // than it really is" misreport.
    p.decisions[5].estimate.accesses.ifmap_loads /= 2;
    p.refresh_totals(&acc);
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::TrafficMismatch), "{report:?}");
}

#[test]
fn tampered_totals_are_caught() {
    let net = zoo::googlenet();
    let acc = acc_kb(256);
    let mut p = plan(&net, acc, false);
    assert_clean(&p, &net, &acc);

    p.totals.accesses_elems /= 2;
    p.totals.latency_cycles -= 1;
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::TotalsMismatch), "{report:?}");
    // Only the totals were touched; per-layer checks stay silent.
    assert!(!report.has_code(Code::TrafficMismatch));
}

#[test]
fn out_of_range_filter_block_is_caught() {
    let (net, acc, mut p, i) = find_decision("a partial policy (4/5)", &[64, 128], |d| {
        matches!(
            d.estimate.kind,
            PolicyKind::P4PartialIfmap | PolicyKind::P5PartialPerChannel
        )
    });
    assert_clean(&p, &net, &acc);

    // n must lie in [1, F#); F# itself is out of range.
    let nf = u64::from(net.layers[i].shape.num_filters);
    p.decisions[i].estimate.block_n = Some(nf);
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::BlockOutOfBounds), "{report:?}");

    // A missing block on a partial policy is equally structural.
    p.decisions[i].estimate.block_n = None;
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::BlockOutOfBounds), "{report:?}");
}

#[test]
fn invalid_fallback_tiling_is_caught() {
    let (net, acc, mut p, i) = find_decision("a fallback layer", &[8, 16, 32], |d| {
        d.estimate.kind == PolicyKind::Fallback
    });
    assert_clean(&p, &net, &acc);

    // A row block beyond the output height was never a search candidate.
    let (oh, _) = net.layers[i].shape.output_hw();
    let t = p.decisions[i].estimate.fallback.as_mut().unwrap();
    t.row_block = u64::from(oh) + 1;
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::FallbackTilingInvalid), "{report:?}");

    // Dropping the tiling entirely leaves the fallback unexplained.
    p.decisions[i].estimate.fallback = None;
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::FallbackTilingInvalid), "{report:?}");
}

#[test]
fn orphan_handoff_flags_are_caught() {
    let net = zoo::mobilenetv2();
    let acc = acc_kb(256);
    let mut p = plan(&net, acc, false);
    assert_clean(&p, &net, &acc);

    // A consumer with no producer keeping its ofmap on-chip.
    p.decisions[4].ifmap_from_glb = true;
    p.refresh_totals(&acc);
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::HandoffBroken), "{report:?}");

    // The first layer can never have a resident ifmap.
    let mut p2 = plan(&net, acc, false);
    p2.decisions[0].ifmap_from_glb = true;
    p2.refresh_totals(&acc);
    let report = check_plan(&p2, &net, &acc);
    assert!(report.has_code(Code::HandoffBroken), "{report:?}");
}

#[test]
fn producer_without_resident_ofmap_is_caught() {
    // Pair the flags up correctly but on a producer whose policy streams
    // the ofmap out — the "reused" tensor was never resident.
    let (net, acc, mut p, i) = find_decision(
        "a non-resident producer with a chained consumer",
        &[128, 256],
        |d| !d.estimate.ofmap_resident_at_end,
    );
    // The found layer must have a successor for the pairing; re-search
    // confines `i` to non-terminal layers via the network length.
    assert!(i + 1 < p.decisions.len(), "need a non-terminal producer");
    assert_clean(&p, &net, &acc);

    p.decisions[i].ofmap_kept_on_chip = true;
    p.decisions[i + 1].ifmap_from_glb = true;
    p.refresh_totals(&acc);
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::HandoffBroken), "{report:?}");
}

#[test]
fn handoff_overflow_is_caught() {
    // Start from a genuinely enabled inter-layer transition, then inflate
    // the consumer's working set so the retained ofmap no longer fits
    // beside it (but the consumer alone still fits, so SMM001 is silent).
    let mut found = false;
    'outer: for kb in [512u64, 1024] {
        for net in zoo::all_networks() {
            let acc = acc_kb(kb);
            let mut p = plan(&net, acc, true);
            let cap = acc.glb_elements();
            for i in 1..p.decisions.len() {
                if !p.decisions[i].ifmap_from_glb {
                    continue;
                }
                let carried = net.layers[i - 1].shape.ofmap_elems();
                let d = &p.decisions[i];
                let alloc = d.estimate.required_elems();
                let factor = d.estimate.buffer_factor();
                // Grow the allocation past capacity − carried, staying at
                // or below capacity on its own.
                let needed_alloc = cap - (alloc + carried) + 1;
                let delta_resident = needed_alloc.div_ceil(factor);
                if alloc + delta_resident * factor > cap {
                    continue;
                }
                assert_clean(&p, &net, &acc);
                p.decisions[i].estimate.resident.ifmap += delta_resident;
                let report = check_plan(&p, &net, &acc);
                assert!(report.has_code(Code::HandoffOverflow), "{report:?}");
                assert!(!report.has_code(Code::GlbCapacityExceeded), "{report:?}");
                found = true;
                break 'outer;
            }
        }
    }
    assert!(
        found,
        "no enabled transition left room for the overflow seed"
    );
}

#[test]
fn shuffled_layer_order_is_caught() {
    let net = zoo::mnasnet();
    let acc = acc_kb(256);
    let mut p = plan(&net, acc, false);
    assert_clean(&p, &net, &acc);

    p.decisions.swap(2, 3);
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::MalformedPlan), "{report:?}");

    // Dropping a layer outright is also structural.
    let mut p2 = plan(&net, acc, false);
    p2.decisions.pop();
    let report = check_plan(&p2, &net, &acc);
    assert!(report.has_code(Code::MalformedPlan), "{report:?}");
}

#[test]
fn mislabelled_homogeneous_scheme_is_flagged() {
    // A heterogeneous plan relabelled as homogeneous policy-1: any layer
    // running a different named policy betrays the label.
    let (net, acc, mut p, _) = find_decision("a non-P1 named layer", &[64, 128], |d| {
        d.estimate.kind != PolicyKind::P1IfmapReuse && d.estimate.kind != PolicyKind::Fallback
    });
    assert_clean(&p, &net, &acc);

    p.scheme = smm_core::Scheme::Homogeneous(PolicyKind::P1IfmapReuse);
    let report = check_plan(&p, &net, &acc);
    assert!(report.has_code(Code::MalformedPlan), "{report:?}");
    // Mislabelling is suspicious, not infeasible: a warning, not an error.
    assert_eq!(report.error_count(), 0, "{report:?}");
}

#[test]
fn divergent_simulation_is_flagged() {
    // SMM011 guards the simulator-vs-estimator agreement: a simulated
    // latency far from the analytic number is a modeling bug in one of
    // the two. The check takes plain cycle counts, so a mutation is
    // just a divergent pair.
    use smm_check::{check_sim_divergence, DEFAULT_SIM_TOLERANCE};

    assert!(check_sim_divergence("net", 1_000, 1_000, DEFAULT_SIM_TOLERANCE).is_none());
    let just_inside = (1_000.0 * (1.0 + DEFAULT_SIM_TOLERANCE)) as u64;
    assert!(check_sim_divergence("net", 1_000, just_inside, DEFAULT_SIM_TOLERANCE).is_none());

    let d = check_sim_divergence("net", 1_000, 2_000, DEFAULT_SIM_TOLERANCE)
        .expect("2x divergence must fire");
    assert_eq!(d.code, Code::SimDivergence);
    assert_eq!(d.code.as_str(), "SMM011");
    assert!(d.message.contains("diverges"), "{}", d.message);

    // Both directions count, and a zero analytic latency must not panic.
    assert!(check_sim_divergence("net", 1_000, 100, DEFAULT_SIM_TOLERANCE).is_some());
    assert!(check_sim_divergence("net", 0, 50, DEFAULT_SIM_TOLERANCE).is_some());
    assert!(check_sim_divergence("net", 0, 0, DEFAULT_SIM_TOLERANCE).is_none());
}

#[test]
fn every_code_has_a_mutation_that_triggers_it() {
    // Meta-test: every code in the catalogue has a mutation test that
    // triggers it. SMM001–SMM011 are covered by the harness above;
    // SMM012–SMM018 are the command-stream linter's codes, covered by
    // the parallel harness in `crates/lint/tests/mutations.rs`. Keep
    // this in sync when adding codes — an uncovered code is an untested
    // claim.
    let covered = [
        Code::GlbCapacityExceeded,
        Code::ResidentMismatch,
        Code::BlockOutOfBounds,
        Code::FallbackTilingInvalid,
        Code::TrafficMismatch,
        Code::LatencyMismatch,
        Code::HandoffBroken,
        Code::HandoffOverflow,
        Code::TotalsMismatch,
        Code::MalformedPlan,
        Code::SimDivergence,
        Code::UseBeforeFill,
        Code::RedundantTransfer,
        Code::LedgerDivergence,
        Code::StoreBeforeAlloc,
        Code::ResidencyLeak,
        Code::OccupancyMismatch,
        Code::StreamTrafficMismatch,
    ];
    assert_eq!(covered.len(), Code::ALL.len());
    for code in Code::ALL {
        assert!(covered.contains(&code), "uncovered diagnostic {code}");
    }
}
