//! No-false-positives guarantee: every plan the planner emits — across
//! the six Table-2 models, both objectives, prefetch on/off, inter-layer
//! reuse on/off, all paper GLB sizes, and both schemes — passes the
//! checker with **zero** diagnostics, plus a proptest over arbitrary
//! valid topologies.

use proptest::prelude::*;
use smm_arch::{AcceleratorConfig, ByteSize, GLB_SIZES_KB};
use smm_check::check_plan;
use smm_core::{Manager, ManagerConfig, Objective};
use smm_model::{zoo, Layer, LayerKind, LayerShape, Network};

fn manager(kb: u64, objective: Objective, prefetch: bool, reuse: bool) -> Manager {
    Manager::new(
        AcceleratorConfig::paper_default(ByteSize::from_kb(kb)),
        ManagerConfig::new(objective)
            .with_prefetch(prefetch)
            .with_inter_layer_reuse(reuse),
    )
}

/// The acceptance matrix of the issue: all six bundled models × both
/// objectives × prefetch on/off, heterogeneous plans at every paper GLB
/// size with the inter-layer pass enabled.
#[test]
fn every_zoo_plan_is_clean() {
    for net in zoo::all_networks() {
        for objective in [Objective::Accesses, Objective::Latency] {
            for prefetch in [false, true] {
                for &kb in &GLB_SIZES_KB {
                    let m = manager(kb, objective, prefetch, true);
                    let plan = m.heterogeneous(&net).unwrap_or_else(|e| {
                        panic!("{} @ {kb}kB: {e:?}", net.name);
                    });
                    let report = check_plan(&plan, &net, m.accelerator());
                    assert!(
                        report.is_clean(),
                        "{} @ {kb}kB {objective:?} prefetch={prefetch}: {:#?}",
                        net.name,
                        report.diagnostics
                    );
                }
            }
        }
    }
}

/// Homogeneous and best-homogeneous plans are equally clean (they take
/// the fallback path far more often).
#[test]
fn homogeneous_zoo_plans_are_clean() {
    for net in zoo::all_networks() {
        for &kb in &[64u64, 256, 1024] {
            let m = manager(kb, Objective::Accesses, true, false);
            if let Ok(plan) = m.best_homogeneous(&net) {
                let report = check_plan(&plan, &net, m.accelerator());
                assert!(
                    report.is_clean(),
                    "{} hom @ {kb}kB: {:#?}",
                    net.name,
                    report.diagnostics
                );
            }
        }
    }
}

/// With the inter-layer pass on, the Section 5.4 rewrite may switch a
/// homogeneous plan's handoff producers to a resident-ofmap policy;
/// the checker must recognize the switch instead of warning about a
/// foreign policy kind.
#[test]
fn homogeneous_plans_with_reuse_are_clean() {
    let mut switches = 0usize;
    for net in zoo::all_networks() {
        for &kb in &[256u64, 1024] {
            let m = manager(kb, Objective::Accesses, true, true);
            if let Ok(plan) = m.best_homogeneous(&net) {
                let report = check_plan(&plan, &net, m.accelerator());
                assert!(
                    report.is_clean(),
                    "{} hom+reuse @ {kb}kB: {:#?}",
                    net.name,
                    report.diagnostics
                );
                if let smm_core::Scheme::Homogeneous(kind) = plan.scheme {
                    switches += plan
                        .decisions
                        .iter()
                        .filter(|d| d.ofmap_kept_on_chip && d.estimate.kind != kind)
                        .count();
                }
            }
        }
    }
    // The exemption must actually be exercised, not vacuously pass.
    assert!(switches > 0, "no hom plan produced a handoff switch");
}

/// The extended networks (AlexNet, VGG16, …) stress much larger layers.
#[test]
fn extended_network_plans_are_clean() {
    for net in zoo::extended_networks() {
        for &kb in &[64u64, 512] {
            let m = manager(kb, Objective::Latency, true, true);
            let plan = m.heterogeneous(&net).unwrap();
            let report = check_plan(&plan, &net, m.accelerator());
            assert!(
                report.is_clean(),
                "{} @ {kb}kB: {:#?}",
                net.name,
                report.diagnostics
            );
        }
    }
}

/// Strategy for one valid conv/depthwise layer shape.
fn arb_shape() -> impl Strategy<Value = LayerShape> {
    (
        4u32..48, // ifmap_h == ifmap_w
        1u32..48, // in_channels
        1u32..4,  // filter_h == filter_w
        1u32..96, // num_filters
        1u32..3,  // stride
        any::<bool>(),
    )
        .prop_map(|(ih, ci, f, nf, s, dw)| {
            let depthwise = dw && nf == ci;
            LayerShape {
                ifmap_h: ih,
                ifmap_w: ih,
                in_channels: ci,
                filter_h: f,
                filter_w: f,
                num_filters: if depthwise { ci } else { nf },
                stride: s,
                padding: f / 2,
                depthwise,
            }
        })
        .prop_filter("valid shape", |s| s.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary valid topologies (random layer stacks, so both
    /// chained and non-chained transitions occur), every planner-emitted
    /// plan passes with zero diagnostics.
    #[test]
    fn arbitrary_topologies_plan_clean(
        shapes in proptest::collection::vec(arb_shape(), 1..8),
        kb in proptest::sample::select(&[32u64, 64, 128, 512]),
        latency_objective in any::<bool>(),
        prefetch in any::<bool>(),
        reuse in any::<bool>(),
    ) {
        let layers: Vec<Layer> = shapes
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let kind = if s.depthwise {
                    LayerKind::DepthwiseConv
                } else {
                    LayerKind::Conv
                };
                Layer::new(format!("l{i}"), kind, *s).unwrap()
            })
            .collect();
        let net = Network::new("prop", layers).unwrap();
        let objective = if latency_objective {
            Objective::Latency
        } else {
            Objective::Accesses
        };
        let m = manager(kb, objective, prefetch, reuse);
        // Tiny GLBs can make a layer outright unplannable; that is a
        // planner error, not a checker concern.
        let Ok(plan) = m.heterogeneous(&net) else { return Ok(()); };
        let report = check_plan(&plan, &net, m.accelerator());
        prop_assert!(
            report.is_clean(),
            "GLB {kb}kB {objective:?} prefetch={prefetch} reuse={reuse}: {:#?}",
            report.diagnostics
        );
    }
}
