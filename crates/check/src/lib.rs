//! `smm-check`: a static verifier and invariant linter for execution
//! plans.
//!
//! The planner (Algorithm 1 plus the inter-layer pass) *produces* plans;
//! nothing downstream re-checks them. A silently-infeasible plan — one
//! whose working set exceeds the GLB, whose recorded traffic disagrees
//! with its tiling, or whose inter-layer flags point at a tensor that was
//! never resident — would be cached by the serving layer and handed to
//! every client. This crate is the independent oracle: it takes any
//! [`ExecutionPlan`] plus the accelerator spec, **re-derives** each
//! layer's footprint, traffic, and latency from the paper's equations
//! (never trusting the numbers recorded in the plan), rebuilds the GLB
//! occupancy timeline, and emits structured diagnostics with stable
//! `SMM###` codes.
//!
//! The checks, by code (see `docs/CHECKING.md` for the full catalogue):
//!
//! | code   | invariant |
//! |--------|-----------|
//! | SMM001 | total allocation ≤ GLB capacity (Eq. 1, with Eq. 2's ×2 under prefetch) |
//! | SMM002 | recorded resident footprint matches the policy's re-derived working set |
//! | SMM003 | policies 4/5 carry a block size `n ∈ [1, F#)`; no other policy does |
//! | SMM004 | fallback tilings are within Algorithm 1 bounds and cover the layer |
//! | SMM005 | recorded off-chip traffic matches the re-derived estimate |
//! | SMM006 | recorded latency matches `latency(compute, traffic, prefetch)` |
//! | SMM007 | inter-layer flags pair up and the reused tensor was actually resident |
//! | SMM008 | retained ofmap + consumer allocation fit the GLB together (§5.4) |
//! | SMM009 | plan totals equal the sum of per-layer effective estimates |
//! | SMM010 | plan structure mirrors the network (layer count/order/scheme) |
//! | SMM011 | simulated latency (`smm-sim`) within tolerance of the analytic estimate |
//!
//! Codes SMM012–SMM018 belong to the command-stream linter (`smm-lint`,
//! see `docs/LINTING.md`): they are defined here so every `SMM###` code
//! lives in one registry, but they are emitted by `smm_lint::lint_plan`
//! over lowered DMA streams, not by [`check_plan`]:
//!
//! | code   | invariant |
//! |--------|-----------|
//! | SMM012 | every final store's inputs were delivered first (no use-before-fill) |
//! | SMM013 | no transfer re-fetches or re-streams provably-resident bytes |
//! | SMM014 | per-command ledger (claimed traffic/residency) matches the dataflow |
//! | SMM015 | stores only write scratchpad ranges that are resident (alloc'd) |
//! | SMM016 | no ofmap bytes are left resident (allocated but never stored) |
//! | SMM017 | derived peak occupancy equals the recorded peak and fits Eq. 1 |
//! | SMM018 | statically derived per-operand traffic equals the recorded replay |

mod derive;
mod render;
mod verify;

pub use derive::{rederive, DeriveError, Derived};
pub use render::{render_text, report_json};

use smm_arch::AcceleratorConfig;
use smm_core::ExecutionPlan;
use smm_model::Network;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not infeasible (e.g. a mislabelled scheme).
    Warning,
    /// The plan violates a correctness invariant.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes. Codes are append-only: once published a code
/// never changes meaning, so tooling can match on the string form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Total GLB allocation exceeds capacity (Eq. 1 / Eq. 2).
    GlbCapacityExceeded,
    /// Recorded resident footprint disagrees with the re-derivation.
    ResidentMismatch,
    /// Filter-block size missing, spurious, or out of `[1, F#)`.
    BlockOutOfBounds,
    /// Fallback tiling missing, spurious, or outside Algorithm 1 bounds.
    FallbackTilingInvalid,
    /// Recorded off-chip traffic disagrees with the re-derivation.
    TrafficMismatch,
    /// Recorded latency disagrees with the re-derived cycle model.
    LatencyMismatch,
    /// Inter-layer reuse flags unpaired or reused tensor not resident.
    HandoffBroken,
    /// Retained ofmap plus consumer allocation exceed the GLB (§5.4).
    HandoffOverflow,
    /// Plan totals disagree with the sum of per-layer estimates.
    TotalsMismatch,
    /// Plan structure does not mirror the network.
    MalformedPlan,
    /// Simulated latency diverges from the analytic estimate beyond the
    /// configured tolerance.
    SimDivergence,
    /// A store consumed input bytes that were never filled (smm-lint).
    UseBeforeFill,
    /// A transfer re-fetched or re-streamed provably-resident bytes
    /// (smm-lint).
    RedundantTransfer,
    /// The per-command ledger (claimed DRAM traffic or residency)
    /// diverges from the statically derived dataflow, or a command is
    /// malformed (smm-lint).
    LedgerDivergence,
    /// A store wrote a scratchpad range that was not resident — no alloc
    /// (or a shrunken one) preceded it (smm-lint).
    StoreBeforeAlloc,
    /// Ofmap bytes were allocated or reloaded but never stored — output
    /// left resident at end of stream (smm-lint).
    ResidencyLeak,
    /// Derived peak occupancy disagrees with the recorded peak or
    /// exceeds the plan's Eq. 1 working set (smm-lint).
    OccupancyMismatch,
    /// Statically derived per-operand traffic disagrees with the
    /// recorded replay totals (smm-lint).
    StreamTrafficMismatch,
}

impl Code {
    /// All codes, in numeric order.
    pub const ALL: [Code; 18] = [
        Code::GlbCapacityExceeded,
        Code::ResidentMismatch,
        Code::BlockOutOfBounds,
        Code::FallbackTilingInvalid,
        Code::TrafficMismatch,
        Code::LatencyMismatch,
        Code::HandoffBroken,
        Code::HandoffOverflow,
        Code::TotalsMismatch,
        Code::MalformedPlan,
        Code::SimDivergence,
        Code::UseBeforeFill,
        Code::RedundantTransfer,
        Code::LedgerDivergence,
        Code::StoreBeforeAlloc,
        Code::ResidencyLeak,
        Code::OccupancyMismatch,
        Code::StreamTrafficMismatch,
    ];

    /// The stable `SMM###` string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::GlbCapacityExceeded => "SMM001",
            Code::ResidentMismatch => "SMM002",
            Code::BlockOutOfBounds => "SMM003",
            Code::FallbackTilingInvalid => "SMM004",
            Code::TrafficMismatch => "SMM005",
            Code::LatencyMismatch => "SMM006",
            Code::HandoffBroken => "SMM007",
            Code::HandoffOverflow => "SMM008",
            Code::TotalsMismatch => "SMM009",
            Code::MalformedPlan => "SMM010",
            Code::SimDivergence => "SMM011",
            Code::UseBeforeFill => "SMM012",
            Code::RedundantTransfer => "SMM013",
            Code::LedgerDivergence => "SMM014",
            Code::StoreBeforeAlloc => "SMM015",
            Code::ResidencyLeak => "SMM016",
            Code::OccupancyMismatch => "SMM017",
            Code::StreamTrafficMismatch => "SMM018",
        }
    }

    /// One-line description of the invariant the code enforces.
    pub fn summary(self) -> &'static str {
        match self {
            Code::GlbCapacityExceeded => "GLB capacity exceeded",
            Code::ResidentMismatch => "resident footprint mismatch",
            Code::BlockOutOfBounds => "filter block out of bounds",
            Code::FallbackTilingInvalid => "fallback tiling invalid",
            Code::TrafficMismatch => "off-chip traffic mismatch",
            Code::LatencyMismatch => "latency mismatch",
            Code::HandoffBroken => "inter-layer handoff broken",
            Code::HandoffOverflow => "inter-layer occupancy overflow",
            Code::TotalsMismatch => "plan totals mismatch",
            Code::MalformedPlan => "malformed plan structure",
            Code::SimDivergence => "simulated latency divergence",
            Code::UseBeforeFill => "use before fill in command stream",
            Code::RedundantTransfer => "redundant transfer of resident bytes",
            Code::LedgerDivergence => "command ledger divergence",
            Code::StoreBeforeAlloc => "store of non-resident range",
            Code::ResidencyLeak => "ofmap residency leaked past end of stream",
            Code::OccupancyMismatch => "peak occupancy proof mismatch",
            Code::StreamTrafficMismatch => "derived stream traffic mismatch",
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: what went wrong, how badly, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity class.
    pub severity: Severity,
    /// Layer index in execution order, when the finding is layer-scoped.
    pub layer: Option<usize>,
    /// Layer name, when layer-scoped.
    pub layer_name: Option<String>,
    /// Human-readable explanation with the numbers that disagree.
    pub message: String,
}

impl Diagnostic {
    fn plan_level(code: Code, severity: Severity, message: String) -> Self {
        Diagnostic {
            code,
            severity,
            layer: None,
            layer_name: None,
            message,
        }
    }

    fn layer_level(code: Code, layer: usize, name: &str, message: String) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            layer: Some(layer),
            layer_name: Some(name.to_string()),
            message,
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.code, self.severity.label())?;
        if let (Some(i), Some(name)) = (self.layer, self.layer_name.as_deref()) {
            write!(f, " layer {i} ({name})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// One step of the re-derived GLB occupancy timeline (elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyStep {
    /// Layer index in execution order.
    pub layer: usize,
    /// The layer's own allocation, including Eq. 2's prefetch doubling.
    pub allocation: u64,
    /// A producer ofmap retained across the transition into this layer
    /// (inter-layer reuse), coexisting with the allocation.
    pub carried_in: u64,
    /// Total occupancy at this step.
    pub total: u64,
}

/// Tolerances for the consistency checks. The defaults are exact —
/// the planner and the checker implement the same integer equations, so
/// any drift is a bug. A non-zero tolerance (fraction, e.g. `0.01` for
/// 1 %) admits externally-produced plans whose estimators round
/// differently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckConfig {
    /// Allowed relative error on traffic, latency, and totals.
    pub tolerance: f64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig { tolerance: 0.0 }
    }
}

impl CheckConfig {
    /// Is `got` within the configured tolerance of `want`?
    pub(crate) fn close(self, got: u64, want: u64) -> bool {
        if got == want {
            return true;
        }
        let (got, want) = (got as f64, want as f64);
        (got - want).abs() <= self.tolerance * want.abs().max(1.0)
    }
}

/// The full verification result for one plan.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Network the plan targets.
    pub network: String,
    /// GLB capacity in elements the plan was checked against.
    pub capacity_elems: u64,
    /// Re-derived occupancy timeline, one step per layer.
    pub timeline: Vec<OccupancyStep>,
    /// All findings, in layer order (plan-level findings last).
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// True when no diagnostics (of any severity) were emitted.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Does any finding carry `code`?
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Peak occupancy over the timeline (elements).
    pub fn peak_occupancy(&self) -> u64 {
        self.timeline.iter().map(|s| s.total).max().unwrap_or(0)
    }
}

/// Verify `plan` against `net` and `acc` with exact tolerances.
///
/// Every number the report compares against is re-derived from the
/// layer shapes and the plan's *choices* (policy, prefetch flag, block
/// size, tiling) — the plan's recorded footprints, traffic, and latency
/// are treated as claims to be checked, not ground truth.
pub fn check_plan(plan: &ExecutionPlan, net: &Network, acc: &AcceleratorConfig) -> CheckReport {
    check_plan_with(plan, net, acc, CheckConfig::default())
}

/// Default relative tolerance for the SMM011 simulated-vs-analytic
/// cross-check. The discrete-event simulator models pipeline effects
/// the closed-form estimator abstracts away (the first prefetch of a
/// window cannot overlap compute, trailing stores flush after the last
/// tile), so a clean simulation legitimately lands near — not exactly
/// on — the analytic number. The bound is calibrated against the
/// worst divergence observed over the golden matrix (6 zoo models ×
/// {het, hom} × {64, 256, 1024 kB}): 0.15% end-to-end, 1.9% on the
/// worst single layer (see `docs/SIMULATION.md`), with an order of
/// magnitude of headroom for future models.
pub const DEFAULT_SIM_TOLERANCE: f64 = 0.02;

/// Cross-check a simulated end-to-end latency against the analytic
/// plan latency (diagnostic SMM011).
///
/// Returns `None` when the relative divergence
/// `|simulated − analytic| / max(analytic, 1)` is within `tolerance`,
/// and an error-severity [`Diagnostic`] otherwise. The caller decides
/// what "simulated" means — the check is only meaningful for a clean
/// simulation (no bandwidth derate, jitter, contention, or fault
/// injection), since scenario knobs exist precisely to move latency
/// away from the analytic model.
pub fn check_sim_divergence(
    network: &str,
    analytic_cycles: u64,
    simulated_cycles: u64,
    tolerance: f64,
) -> Option<Diagnostic> {
    let want = analytic_cycles as f64;
    let divergence = (simulated_cycles as f64 - want).abs() / want.max(1.0);
    if divergence <= tolerance {
        return None;
    }
    Some(Diagnostic::plan_level(
        Code::SimDivergence,
        Severity::Error,
        format!(
            "{network}: simulated latency {simulated_cycles} diverges from \
             analytic {analytic_cycles} by {:.1}% (tolerance {:.1}%)",
            divergence * 100.0,
            tolerance * 100.0
        ),
    ))
}

/// [`check_plan`] with explicit tolerances.
pub fn check_plan_with(
    plan: &ExecutionPlan,
    net: &Network,
    acc: &AcceleratorConfig,
    cfg: CheckConfig,
) -> CheckReport {
    let _span = smm_obs::span!("check.plan", "{}", plan.network);
    let report = verify::run(plan, net, acc, cfg);
    if smm_obs::enabled() {
        smm_obs::add(smm_obs::Counter::CheckRuns, 1);
        smm_obs::add(
            smm_obs::Counter::CheckDiagnostics,
            report.diagnostics.len() as u64,
        );
    }
    report
}
