//! Text and JSON rendering of a [`CheckReport`].
//!
//! The JSON form embeds the plan via [`smm_core::report::plan_json`] —
//! the same serializer `smm analyze --json` uses — so the plan fields of
//! `smm check --json` can never drift from the analyze output.

use crate::CheckReport;
use smm_arch::AcceleratorConfig;
use smm_core::report::{json_escape, plan_json};
use smm_core::ExecutionPlan;
use std::fmt::Write as _;

/// Render a report for the terminal: verdict, capacity summary, and one
/// line per finding.
pub fn render_text(report: &CheckReport, plan: &ExecutionPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "check {}: {} layers, scheme {}, GLB {} elements",
        report.network,
        plan.decisions.len(),
        plan.scheme.label(),
        report.capacity_elems
    );
    let peak = report.peak_occupancy();
    let pct = if report.capacity_elems == 0 {
        0.0
    } else {
        peak as f64 / report.capacity_elems as f64 * 100.0
    };
    let _ = writeln!(out, "peak occupancy {peak} elements ({pct:.1}% of GLB)");
    if report.is_clean() {
        out.push_str("OK: all invariants hold (0 diagnostics)\n");
        return out;
    }
    for d in &report.diagnostics {
        let _ = writeln!(out, "{d}");
    }
    let errors = report.error_count();
    let warnings = report.diagnostics.len() - errors;
    let _ = writeln!(out, "FAIL: {errors} error(s), {warnings} warning(s)");
    out
}

/// Render a report as a single deterministic JSON object. The `plan`
/// field is exactly the object `smm analyze --json` prints.
pub fn report_json(report: &CheckReport, plan: &ExecutionPlan, acc: &AcceleratorConfig) -> String {
    let mut out = String::with_capacity(512 + 128 * report.diagnostics.len());
    let _ = write!(
        out,
        "{{\"network\":\"{}\",\"capacity_elems\":{},\"peak_occupancy_elems\":{},\
         \"clean\":{},\"errors\":{},\"warnings\":{},",
        json_escape(&report.network),
        report.capacity_elems,
        report.peak_occupancy(),
        report.is_clean(),
        report.error_count(),
        report.diagnostics.len() - report.error_count(),
    );
    out.push_str("\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"layer\":{},\"layer_name\":{},\"message\":\"{}\"}}",
            d.code,
            d.severity.label(),
            d.layer.map_or_else(|| "null".into(), |l| l.to_string()),
            d.layer_name
                .as_deref()
                .map_or_else(|| "null".into(), |s| format!("\"{}\"", json_escape(s))),
            json_escape(&d.message),
        );
    }
    out.push_str("],\"timeline\":[");
    for (i, s) in report.timeline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"layer\":{},\"allocation\":{},\"carried_in\":{},\"total\":{}}}",
            s.layer, s.allocation, s.carried_in, s.total
        );
    }
    let _ = write!(out, "],\"plan\":{}}}", plan_json(plan, acc));
    out
}

#[cfg(test)]
mod tests {
    use crate::check_plan;
    use smm_arch::{AcceleratorConfig, ByteSize};
    use smm_core::{Manager, ManagerConfig, Objective};
    use smm_model::zoo;

    #[test]
    fn json_report_parses_and_embeds_plan() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(128));
        let net = zoo::resnet18();
        let plan = Manager::new(acc, ManagerConfig::new(Objective::Accesses))
            .heterogeneous(&net)
            .unwrap();
        let report = check_plan(&plan, &net, &acc);
        let json = super::report_json(&report, &plan, &acc);
        let v = smm_obs::json::parse(&json).expect("report JSON must parse");
        assert!(matches!(
            v.get("clean"),
            Some(smm_obs::json::Value::Bool(true))
        ));
        // The embedded plan is byte-identical to the analyze serializer.
        let embedded = v.get("plan").unwrap();
        let smm_obs::json::Value::Array(layers) = embedded.get("layers").unwrap() else {
            panic!("plan.layers must be an array");
        };
        assert_eq!(layers.len(), plan.decisions.len());
        let smm_obs::json::Value::Array(timeline) = v.get("timeline").unwrap() else {
            panic!("timeline must be an array");
        };
        assert_eq!(timeline.len(), plan.decisions.len());
    }

    #[test]
    fn text_report_is_ok_for_clean_plan() {
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(128));
        let net = zoo::mobilenet();
        let plan = Manager::new(acc, ManagerConfig::new(Objective::Latency))
            .heterogeneous(&net)
            .unwrap();
        let report = check_plan(&plan, &net, &acc);
        let text = super::render_text(&report, &plan);
        assert!(text.contains("OK: all invariants hold"), "{text}");
    }
}
