//! The invariant battery: structure, per-layer re-derivation, capacity,
//! inter-layer handoffs, occupancy timeline, and totals.

use crate::derive::{rederive, DeriveError};
use crate::{CheckConfig, CheckReport, Code, Diagnostic, OccupancyStep, Severity};
use smm_arch::AcceleratorConfig;
use smm_core::interlayer::shapes_chain;
use smm_core::{ExecutionPlan, Scheme};
use smm_model::Network;
use smm_policy::PolicyKind;

pub(crate) fn run(
    plan: &ExecutionPlan,
    net: &Network,
    acc: &AcceleratorConfig,
    cfg: CheckConfig,
) -> CheckReport {
    let capacity = acc.glb_elements();
    let mut diags = Vec::new();

    // --- SMM010: the plan must mirror the network it claims to plan. ---
    if plan.network != net.name {
        diags.push(Diagnostic::plan_level(
            Code::MalformedPlan,
            Severity::Error,
            format!(
                "plan targets network \"{}\" but was checked against \"{}\"",
                plan.network, net.name
            ),
        ));
    }
    if plan.decisions.len() != net.layers.len() {
        diags.push(Diagnostic::plan_level(
            Code::MalformedPlan,
            Severity::Error,
            format!(
                "plan has {} decisions for a {}-layer network",
                plan.decisions.len(),
                net.layers.len()
            ),
        ));
    }
    let n = plan.decisions.len().min(net.layers.len());
    for (i, (d, layer)) in plan.decisions.iter().zip(&net.layers).enumerate() {
        if d.layer_index != i || d.layer_name != layer.name {
            diags.push(Diagnostic::layer_level(
                Code::MalformedPlan,
                i,
                &layer.name,
                format!(
                    "decision {} records layer {} (\"{}\") out of execution order",
                    i, d.layer_index, d.layer_name
                ),
            ));
        }
    }
    if let Scheme::Homogeneous(kind) = plan.scheme {
        for (i, d) in plan.decisions.iter().take(n).enumerate() {
            // Algorithm 1's homogeneous mode may still fall back to tiling
            // when the named policy does not fit, and the Section 5.4
            // inter-layer pass may switch a handoff producer to a
            // resident-ofmap policy; anything else is foreign.
            let handoff_switch = d.ofmap_kept_on_chip
                && matches!(
                    d.estimate.kind,
                    PolicyKind::IntraLayer | PolicyKind::P3PerChannel
                );
            if d.estimate.kind != kind && d.estimate.kind != PolicyKind::Fallback && !handoff_switch
            {
                diags.push(Diagnostic {
                    code: Code::MalformedPlan,
                    severity: Severity::Warning,
                    layer: Some(i),
                    layer_name: Some(d.layer_name.clone()),
                    message: format!(
                        "homogeneous {} plan assigns {}",
                        kind.label(),
                        d.estimate.kind.label()
                    ),
                });
            }
        }
    }

    // --- Per-layer re-derivation: SMM001..SMM006. ---
    for (i, (d, layer)) in plan.decisions.iter().zip(&net.layers).enumerate() {
        let est = &d.estimate;
        let shape = &layer.shape;
        let name = &layer.name;

        let derived = match rederive(
            shape,
            acc,
            est.kind,
            est.prefetch,
            est.block_n,
            est.fallback.as_ref(),
        ) {
            Ok(derived) => derived,
            Err(err) => {
                let code = match err {
                    DeriveError::MissingTiling
                    | DeriveError::SpuriousTiling
                    | DeriveError::TilingOutOfRange { .. }
                    | DeriveError::TilingChannelsUncoupled { .. } => Code::FallbackTilingInvalid,
                    _ => Code::BlockOutOfBounds,
                };
                diags.push(Diagnostic::layer_level(
                    code,
                    i,
                    name,
                    format!("{} ({})", err, est.kind.label()),
                ));
                continue;
            }
        };

        // SMM002: the recorded working set is what the policy implies.
        if est.resident != derived.resident
            || est.ofmap_resident_at_end != derived.ofmap_resident_at_end
        {
            diags.push(Diagnostic::layer_level(
                Code::ResidentMismatch,
                i,
                name,
                format!(
                    "{} records resident (ifmap {}, filters {}, ofmap {}, at-end {}) \
                     but re-derivation gives (ifmap {}, filters {}, ofmap {}, at-end {})",
                    est.kind.label(),
                    est.resident.ifmap,
                    est.resident.filters,
                    est.resident.ofmap,
                    est.ofmap_resident_at_end,
                    derived.resident.ifmap,
                    derived.resident.filters,
                    derived.resident.ofmap,
                    derived.ofmap_resident_at_end,
                ),
            ));
        }

        // SMM001: Eq. 1 requires the allocation to fit the GLB; Eq. 2
        // doubles every tile under prefetch. Checked against both the
        // recorded and the re-derived footprint, so an under-reported
        // working set cannot hide an overflow.
        let factor = est.buffer_factor();
        let recorded_alloc = est.required_elems();
        let derived_alloc = derived.resident.total() * factor;
        if recorded_alloc > capacity || derived_alloc > capacity {
            let actual = recorded_alloc.max(derived_alloc);
            diags.push(Diagnostic::layer_level(
                Code::GlbCapacityExceeded,
                i,
                name,
                format!(
                    "allocation {} elements exceeds GLB capacity {}{}",
                    actual,
                    capacity,
                    if est.prefetch {
                        " (includes the ×2 prefetch double-buffer of Eq. 2)"
                    } else {
                        ""
                    },
                ),
            ));
        }

        // SMM005: recorded traffic is what the choice implies, and never
        // below the one-load-per-element lower bound.
        let (ra, da) = (&est.accesses, &derived.accesses);
        let traffic_ok = cfg.close(ra.ifmap_loads, da.ifmap_loads)
            && cfg.close(ra.filter_loads, da.filter_loads)
            && cfg.close(ra.ofmap_stores, da.ofmap_stores)
            && cfg.close(ra.psum_spill_stores, da.psum_spill_stores)
            && cfg.close(ra.psum_spill_loads, da.psum_spill_loads);
        if !traffic_ok {
            diags.push(Diagnostic::layer_level(
                Code::TrafficMismatch,
                i,
                name,
                format!(
                    "{} records traffic (ifmap {}, filters {}, ofmap {}, spills {}) \
                     but re-derivation gives (ifmap {}, filters {}, ofmap {}, spills {})",
                    est.kind.label(),
                    ra.ifmap_loads,
                    ra.filter_loads,
                    ra.ofmap_stores,
                    ra.psum_spill_stores + ra.psum_spill_loads,
                    da.ifmap_loads,
                    da.filter_loads,
                    da.ofmap_stores,
                    da.psum_spill_stores + da.psum_spill_loads,
                ),
            ));
        }

        // SMM006: recorded latency is the cycle model applied to the
        // recorded prefetch flag and re-derived traffic.
        let (rl, dl) = (&est.latency, &derived.latency);
        let latency_ok = cfg.close(rl.compute_cycles, dl.compute_cycles)
            && cfg.close(rl.transfer_cycles, dl.transfer_cycles)
            && cfg.close(rl.cycles, dl.cycles);
        if !latency_ok {
            diags.push(Diagnostic::layer_level(
                Code::LatencyMismatch,
                i,
                name,
                format!(
                    "records latency (compute {}, transfer {}, total {}) but the cycle \
                     model with prefetch={} gives (compute {}, transfer {}, total {})",
                    rl.compute_cycles,
                    rl.transfer_cycles,
                    rl.cycles,
                    est.prefetch,
                    dl.compute_cycles,
                    dl.transfer_cycles,
                    dl.cycles,
                ),
            ));
        }
    }

    // --- SMM007: inter-layer flags pair up and the tensor was resident. ---
    for i in 0..n {
        let d = &plan.decisions[i];
        if d.ifmap_from_glb {
            if i == 0 {
                diags.push(Diagnostic::layer_level(
                    Code::HandoffBroken,
                    i,
                    &d.layer_name,
                    "first layer claims its ifmap is already in the GLB".to_string(),
                ));
            } else {
                let producer = &plan.decisions[i - 1];
                if !producer.ofmap_kept_on_chip {
                    diags.push(Diagnostic::layer_level(
                        Code::HandoffBroken,
                        i,
                        &d.layer_name,
                        format!(
                            "consumes its ifmap from the GLB but layer {} (\"{}\") \
                             did not keep its ofmap on-chip",
                            i - 1,
                            producer.layer_name
                        ),
                    ));
                }
                if !shapes_chain(&net.layers[i - 1], &net.layers[i]) {
                    diags.push(Diagnostic::layer_level(
                        Code::HandoffBroken,
                        i,
                        &d.layer_name,
                        format!(
                            "consumes its ifmap from the GLB but layer {} (\"{}\") \
                             does not produce this layer's input shape",
                            i - 1,
                            net.layers[i - 1].name
                        ),
                    ));
                }
            }
        }
        if d.ofmap_kept_on_chip {
            if !d.estimate.ofmap_resident_at_end {
                diags.push(Diagnostic::layer_level(
                    Code::HandoffBroken,
                    i,
                    &d.layer_name,
                    format!(
                        "keeps its ofmap on-chip but policy {} does not leave \
                         the whole ofmap resident at layer end",
                        d.estimate.kind.label()
                    ),
                ));
            }
            if i + 1 >= n || !plan.decisions[i + 1].ifmap_from_glb {
                diags.push(Diagnostic::layer_level(
                    Code::HandoffBroken,
                    i,
                    &d.layer_name,
                    "keeps its ofmap on-chip but no next layer consumes it".to_string(),
                ));
            }
        }
    }

    // --- Occupancy timeline + SMM008. ---
    // During layer i the GLB holds the layer's own allocation plus, when
    // the ifmap is staged from a retained producer ofmap, that retained
    // copy (Section 5.4's coexistence condition).
    let mut timeline = Vec::with_capacity(n);
    for i in 0..n {
        let d = &plan.decisions[i];
        let allocation = d.estimate.required_elems();
        let carried_in = if d.ifmap_from_glb && i > 0 {
            net.layers[i - 1].shape.ofmap_elems()
        } else {
            0
        };
        let total = allocation + carried_in;
        if total > capacity && allocation <= capacity {
            diags.push(Diagnostic::layer_level(
                Code::HandoffOverflow,
                i,
                &d.layer_name,
                format!(
                    "retained ofmap of layer {} ({} elements) plus this layer's \
                     allocation ({} elements) exceed GLB capacity {}",
                    i - 1,
                    carried_in,
                    allocation,
                    capacity
                ),
            ));
        }
        timeline.push(OccupancyStep {
            layer: i,
            allocation,
            carried_in,
            total,
        });
    }

    // --- SMM009: totals are the sum of per-layer effective estimates. ---
    let mut elems = 0u64;
    let mut latency = 0u64;
    let mut compute = 0u64;
    let mut transfer = 0u64;
    for d in &plan.decisions {
        elems += d.effective_accesses().total();
        let l = d.effective_latency(acc);
        latency += l.cycles;
        compute += l.compute_cycles;
        transfer += l.transfer_cycles;
    }
    let t = &plan.totals;
    let pairs = [
        ("accesses_elems", t.accesses_elems, elems),
        ("latency_cycles", t.latency_cycles, latency),
        ("compute_cycles", t.compute_cycles, compute),
        ("transfer_cycles", t.transfer_cycles, transfer),
    ];
    for (field, recorded, rederived) in pairs {
        if !cfg.close(recorded, rederived) {
            diags.push(Diagnostic::plan_level(
                Code::TotalsMismatch,
                Severity::Error,
                format!("totals.{field} records {recorded} but the decisions sum to {rederived}"),
            ));
        }
    }

    CheckReport {
        network: plan.network.clone(),
        capacity_elems: capacity,
        timeline,
        diagnostics: diags,
    }
}
