//! Independent re-derivation of a policy's working set, off-chip
//! traffic, and latency from the paper's equations.
//!
//! This module deliberately re-implements the estimators of
//! `smm-policy` instead of calling them: the checker must not share the
//! planner's code path, or a bug in the estimators would validate its
//! own output. The inputs are only the layer *shape* and the plan's
//! recorded *choices* (policy kind, prefetch flag, filter block,
//! fallback tiling); everything numeric is recomputed here.

use smm_arch::AcceleratorConfig;
use smm_model::LayerShape;
use smm_policy::{AccessCounts, FallbackTiling, Footprint, LatencyEstimate, LoopOrder, PolicyKind};

/// A structural reason the recorded choice cannot be re-derived at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeriveError {
    /// Policies 4/5 need a recorded filter block; none was present.
    MissingBlock,
    /// A policy other than 4/5 carried a filter block.
    SpuriousBlock(u64),
    /// The recorded filter block is outside `n ∈ [1, F#)`.
    BlockOutOfRange {
        /// Recorded block size.
        n: u64,
        /// The layer's filter count `F#`.
        num_filters: u64,
    },
    /// Policies 4/5 require at least two filters (`n ∈ [1, F#)` empty).
    PartialPolicyInapplicable,
    /// The fallback policy needs a recorded tiling; none was present.
    MissingTiling,
    /// A named policy carried a fallback tiling.
    SpuriousTiling,
    /// A tiling block is zero or exceeds its dimension.
    TilingOutOfRange {
        /// Which block (`row_block` / `filter_block` / `channel_block`).
        field: &'static str,
        /// Recorded value.
        value: u64,
        /// Inclusive upper bound from the layer shape.
        max: u64,
    },
    /// Depth-wise fallback tilings must couple channels to filters.
    TilingChannelsUncoupled {
        /// Recorded filter block.
        filter_block: u64,
        /// Recorded channel block.
        channel_block: u64,
    },
}

impl std::fmt::Display for DeriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeriveError::MissingBlock => {
                write!(
                    f,
                    "policy requires a filter block size but none is recorded"
                )
            }
            DeriveError::SpuriousBlock(n) => {
                write!(f, "policy takes no filter block but records n={n}")
            }
            DeriveError::BlockOutOfRange { n, num_filters } => {
                write!(f, "filter block n={n} outside [1, {num_filters})")
            }
            DeriveError::PartialPolicyInapplicable => {
                write!(f, "partial policies need at least two filters")
            }
            DeriveError::MissingTiling => {
                write!(f, "fallback policy without a recorded tiling")
            }
            DeriveError::SpuriousTiling => {
                write!(f, "named policy carries a fallback tiling")
            }
            DeriveError::TilingOutOfRange { field, value, max } => {
                write!(f, "{field}={value} outside [1, {max}]")
            }
            DeriveError::TilingChannelsUncoupled {
                filter_block,
                channel_block,
            } => write!(
                f,
                "depth-wise tiling must couple channels to filters \
                 (filter_block={filter_block}, channel_block={channel_block})"
            ),
        }
    }
}

/// The re-derived ground truth for one (layer, choice) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Derived {
    /// Single-copy resident footprint (elements).
    pub resident: Footprint,
    /// Off-chip traffic (elements), before plan-level optimizations.
    pub accesses: AccessCounts,
    /// Latency under the plan's prefetch flag.
    pub latency: LatencyEstimate,
    /// Whether the policy leaves the whole ofmap resident at layer end.
    pub ofmap_resident_at_end: bool,
}

impl Derived {
    /// The lexicographic rank of this candidate under `objective` — the
    /// exact key Algorithm 1 minimises ([`smm_core::Objective::key`]),
    /// so checker-side rankings can never drift from the planner's
    /// ordering.
    pub fn objective_key(&self, objective: smm_core::Objective) -> (u64, u64) {
        objective.key(self.accesses.total(), self.latency.cycles)
    }
}

/// Minimum-transfer traffic (Section 3): every element moved once.
fn min_traffic(shape: &LayerShape) -> AccessCounts {
    AccessCounts {
        ifmap_loads: shape.padded_ifmap_elems(),
        filter_loads: shape.filter_elems(),
        ofmap_stores: shape.ofmap_elems(),
        psum_spill_stores: 0,
        psum_spill_loads: 0,
    }
}

/// Latency model: MACs over throughput for compute, traffic over DRAM
/// bandwidth for transfer; prefetch overlaps the two (Section 5.2).
fn latency(
    shape: &LayerShape,
    acc: &AcceleratorConfig,
    traffic_elems: u64,
    prefetch: bool,
) -> LatencyEstimate {
    let compute_cycles = shape.macs().div_ceil(acc.macs_per_cycle());
    let transfer_cycles = acc.transfer_cycles(traffic_elems);
    let cycles = if prefetch {
        compute_cycles.max(transfer_cycles)
    } else {
        compute_cycles + transfer_cycles
    };
    LatencyEstimate {
        compute_cycles,
        transfer_cycles,
        cycles,
    }
}

/// Validate a fallback tiling against Algorithm 1's bounds: every block
/// in `[1, dim]` (a block of the full dimension is the degenerate
/// single-tile case; anything larger was never a search candidate), and
/// depth-wise tilings couple the channel block to the filter block.
fn validate_tiling(shape: &LayerShape, t: &FallbackTiling) -> Result<(), DeriveError> {
    let (oh, _) = shape.output_hw();
    let bounds = [
        ("row_block", t.row_block, u64::from(oh)),
        ("filter_block", t.filter_block, u64::from(shape.num_filters)),
        (
            "channel_block",
            t.channel_block,
            u64::from(shape.in_channels),
        ),
    ];
    for (field, value, max) in bounds {
        if value == 0 || value > max {
            return Err(DeriveError::TilingOutOfRange { field, value, max });
        }
    }
    if shape.depthwise && t.channel_block != t.filter_block {
        return Err(DeriveError::TilingChannelsUncoupled {
            filter_block: t.filter_block,
            channel_block: t.channel_block,
        });
    }
    Ok(())
}

/// Footprint and traffic of a fallback tiling (Section 5.3's blocked
/// schedule), mirroring the search's cost model including the
/// depth-wise coupling of channels to filters.
fn fallback_cost(shape: &LayerShape, t: &FallbackTiling) -> (Footprint, AccessCounts) {
    let fh = u64::from(shape.filter_h);
    let fw = u64::from(shape.filter_w);
    let s = u64::from(shape.stride);
    let pad_h = u64::from(shape.padded_h());
    let pad_w = u64::from(shape.padded_w());
    let (oh, ow) = shape.output_hw();
    let (oh, ow) = (u64::from(oh), u64::from(ow));
    let ci = u64::from(shape.in_channels);
    let nf = u64::from(shape.num_filters);

    // Input rows covered by one tile of `row_block` output rows, and the
    // total rows swept per vertical pass (consecutive tiles share
    // `F_H − S` rows).
    let in_rows = ((t.row_block - 1) * s + fh).min(pad_h);
    let n_rt = oh.div_ceil(t.row_block);
    let ov = fh.saturating_sub(s);
    let rows_swept = (pad_h + (n_rt - 1) * ov).min(n_rt * ((t.row_block - 1) * s + fh));

    if shape.depthwise {
        // Each depth-wise filter carries exactly its own channel: the
        // resident set scales with the filter block, the ifmap is swept
        // once in total, and nothing spills.
        let n = t.filter_block;
        let resident = Footprint {
            ifmap: in_rows * pad_w * n,
            filters: shape.single_filter_elems() * n,
            ofmap: t.row_block * ow * n,
        };
        let accesses = AccessCounts {
            ifmap_loads: rows_swept * pad_w * ci,
            filter_loads: shape.filter_elems(),
            ofmap_stores: shape.ofmap_elems(),
            psum_spill_stores: 0,
            psum_spill_loads: 0,
        };
        return (resident, accesses);
    }

    let resident = Footprint {
        ifmap: in_rows * pad_w * t.channel_block,
        filters: fh * fw * t.channel_block * t.filter_block,
        ofmap: t.row_block * ow * t.filter_block,
    };
    let n_fb = nf.div_ceil(t.filter_block);
    let n_cb = ci.div_ceil(t.channel_block);
    let ifmap_loads = n_fb * rows_swept * pad_w * ci;
    let accesses = match t.order {
        // Channels accumulate innermost: no spills, but a filter block
        // with non-resident channels re-streams once per row tile.
        LoopOrder::RowsOuter => AccessCounts {
            ifmap_loads,
            filter_loads: if t.channel_block >= ci {
                shape.filter_elems()
            } else {
                n_rt * shape.filter_elems()
            },
            ofmap_stores: shape.ofmap_elems(),
            psum_spill_stores: 0,
            psum_spill_loads: 0,
        },
        // Filters stream once; partial sums spill between channel passes.
        LoopOrder::ChannelsOuter => AccessCounts {
            ifmap_loads,
            filter_loads: shape.filter_elems(),
            ofmap_stores: shape.ofmap_elems(),
            psum_spill_stores: (n_cb - 1) * shape.ofmap_elems(),
            psum_spill_loads: (n_cb - 1) * shape.ofmap_elems(),
        },
    };
    (resident, accesses)
}

/// Re-derive the ground truth for one layer from the plan's choices.
///
/// `block_n` and `tiling` are the values the plan recorded; their mere
/// presence is checked against the policy kind (policies 4/5 must carry
/// a block, only the fallback carries a tiling).
pub fn rederive(
    shape: &LayerShape,
    acc: &AcceleratorConfig,
    kind: PolicyKind,
    prefetch: bool,
    block_n: Option<u64>,
    tiling: Option<&FallbackTiling>,
) -> Result<Derived, DeriveError> {
    let fh = u64::from(shape.filter_h);
    let fw = u64::from(shape.filter_w);
    let pad_w = u64::from(shape.padded_w());
    let ci = u64::from(shape.in_channels);
    let nf = u64::from(shape.num_filters);
    let fc = shape.filter_channels();
    let (oh, ow) = shape.output_hw();
    let (oh, ow) = (u64::from(oh), u64::from(ow));
    let co = u64::from(shape.out_channels());

    let takes_block = matches!(
        kind,
        PolicyKind::P4PartialIfmap | PolicyKind::P5PartialPerChannel
    );
    if !takes_block {
        if let Some(n) = block_n {
            return Err(DeriveError::SpuriousBlock(n));
        }
    }
    if kind != PolicyKind::Fallback && tiling.is_some() {
        return Err(DeriveError::SpuriousTiling);
    }

    let (resident, accesses, ofmap_resident) = match kind {
        // Intra-layer reuse (Eq. 1): everything resident, minimum traffic.
        PolicyKind::IntraLayer => (
            Footprint {
                ifmap: shape.padded_ifmap_elems(),
                filters: shape.filter_elems(),
                ofmap: shape.ofmap_elems(),
            },
            min_traffic(shape),
            true,
        ),
        // Policy 1 (§3.2): F_H-row sliding window over all channels, all
        // filters resident, one row-set of the ofmap.
        PolicyKind::P1IfmapReuse => (
            Footprint {
                ifmap: fh * pad_w * ci,
                filters: shape.filter_elems(),
                ofmap: ow * co,
            },
            min_traffic(shape),
            false,
        ),
        // Policy 2: whole ifmap, one filter, one output channel.
        PolicyKind::P2FilterReuse => (
            Footprint {
                ifmap: shape.padded_ifmap_elems(),
                filters: shape.single_filter_elems(),
                ofmap: oh * ow,
            },
            min_traffic(shape),
            false,
        ),
        // Policy 3: one channel of every filter; ofmap accumulates.
        PolicyKind::P3PerChannel => (
            Footprint {
                ifmap: fh * pad_w,
                filters: fh * fw * nf,
                ofmap: shape.ofmap_elems(),
            },
            min_traffic(shape),
            true,
        ),
        // Policies 4/5: a filter block of `n`, re-loading the ifmap once
        // per block (depth-wise layers re-load nothing, §5.1).
        PolicyKind::P4PartialIfmap | PolicyKind::P5PartialPerChannel => {
            if nf < 2 {
                return Err(DeriveError::PartialPolicyInapplicable);
            }
            let n = block_n.ok_or(DeriveError::MissingBlock)?;
            if n == 0 || n >= nf {
                return Err(DeriveError::BlockOutOfRange { n, num_filters: nf });
            }
            let x = if shape.depthwise { 1 } else { nf.div_ceil(n) };
            let mut accesses = min_traffic(shape);
            accesses.ifmap_loads *= x;
            let resident = if kind == PolicyKind::P4PartialIfmap {
                Footprint {
                    ifmap: fh * pad_w * ci,
                    filters: fh * fw * fc * n,
                    ofmap: ow * n,
                }
            } else {
                Footprint {
                    ifmap: fh * pad_w,
                    filters: fh * fw * n,
                    ofmap: oh * ow * n,
                }
            };
            (resident, accesses, false)
        }
        // Fallback: cost of the recorded tiling, after bounds checks.
        PolicyKind::Fallback => {
            let t = tiling.ok_or(DeriveError::MissingTiling)?;
            validate_tiling(shape, t)?;
            let (resident, accesses) = fallback_cost(shape, t);
            (resident, accesses, false)
        }
    };

    let latency = latency(shape, acc, accesses.total(), prefetch);
    Ok(Derived {
        resident,
        accesses,
        latency,
        ofmap_resident_at_end: ofmap_resident,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_arch::ByteSize;
    use smm_policy::estimate;

    fn acc() -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(64))
    }

    fn conv() -> LayerShape {
        LayerShape {
            ifmap_h: 28,
            ifmap_w: 28,
            in_channels: 128,
            filter_h: 3,
            filter_w: 3,
            num_filters: 128,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    fn dw() -> LayerShape {
        LayerShape {
            ifmap_h: 56,
            ifmap_w: 56,
            in_channels: 128,
            filter_h: 3,
            filter_w: 3,
            num_filters: 128,
            stride: 1,
            padding: 1,
            depthwise: true,
        }
    }

    /// The re-derivation must agree with the planner's estimators on
    /// every policy the planner can emit — otherwise the checker would
    /// flag healthy plans.
    #[test]
    fn rederivation_matches_estimators() {
        let a = acc();
        for shape in [conv(), dw()] {
            for kind in PolicyKind::ALL {
                for prefetch in [false, true] {
                    let Some(e) = estimate(kind, &shape, &a, prefetch) else {
                        continue;
                    };
                    let d = rederive(&shape, &a, kind, prefetch, e.block_n, e.fallback.as_ref())
                        .unwrap_or_else(|err| panic!("{kind} pf={prefetch}: {err}"));
                    assert_eq!(d.resident, e.resident, "{kind} pf={prefetch}");
                    assert_eq!(d.accesses, e.accesses, "{kind} pf={prefetch}");
                    assert_eq!(d.latency, e.latency, "{kind} pf={prefetch}");
                    assert_eq!(
                        d.ofmap_resident_at_end, e.ofmap_resident_at_end,
                        "{kind} pf={prefetch}"
                    );
                }
            }
        }
    }

    /// The planner's chosen policy must carry the minimal
    /// [`Derived::objective_key`] among all feasible candidates: the
    /// checker ranks with the same lexicographic key Algorithm 1 uses.
    #[test]
    fn objective_key_ranks_candidates_like_the_planner() {
        use smm_core::{LayerPlanner, ManagerConfig, Objective};
        let a = acc();
        for shape in [conv(), dw()] {
            for objective in [Objective::Accesses, Objective::Latency] {
                let lp = LayerPlanner::new(a, ManagerConfig::new(objective));
                let cands = lp.explain(&shape);
                let rank = |c: &smm_core::CandidateReport| {
                    rederive(
                        &shape,
                        &a,
                        c.estimate.kind,
                        c.estimate.prefetch,
                        c.estimate.block_n,
                        c.estimate.fallback.as_ref(),
                    )
                    .unwrap()
                    .objective_key(objective)
                };
                let chosen = cands.iter().find(|c| c.chosen).expect("a policy fits");
                let best = rank(chosen);
                for c in cands.iter().filter(|c| c.feasible) {
                    assert!(
                        best <= rank(c),
                        "{objective:?}: {} beats chosen",
                        c.estimate.kind
                    );
                }
            }
        }
    }

    #[test]
    fn structural_errors_detected() {
        let a = acc();
        let s = conv();
        assert_eq!(
            rederive(&s, &a, PolicyKind::P4PartialIfmap, false, None, None),
            Err(DeriveError::MissingBlock)
        );
        assert_eq!(
            rederive(&s, &a, PolicyKind::IntraLayer, false, Some(4), None),
            Err(DeriveError::SpuriousBlock(4))
        );
        assert!(matches!(
            rederive(
                &s,
                &a,
                PolicyKind::P5PartialPerChannel,
                false,
                Some(128),
                None
            ),
            Err(DeriveError::BlockOutOfRange { .. })
        ));
        assert_eq!(
            rederive(&s, &a, PolicyKind::Fallback, false, None, None),
            Err(DeriveError::MissingTiling)
        );
        let t = FallbackTiling {
            row_block: 0,
            filter_block: 1,
            channel_block: 1,
            order: LoopOrder::RowsOuter,
        };
        assert!(matches!(
            rederive(&s, &a, PolicyKind::Fallback, false, None, Some(&t)),
            Err(DeriveError::TilingOutOfRange {
                field: "row_block",
                ..
            })
        ));
    }

    #[test]
    fn depthwise_tiling_must_couple_channels() {
        let t = FallbackTiling {
            row_block: 4,
            filter_block: 8,
            channel_block: 2,
            order: LoopOrder::RowsOuter,
        };
        assert!(matches!(
            rederive(&dw(), &acc(), PolicyKind::Fallback, false, None, Some(&t)),
            Err(DeriveError::TilingChannelsUncoupled { .. })
        ));
    }
}
