//! Tables 2–4 of the paper.

use crate::acc;
use smm_arch::DataWidth;
use smm_core::report::TextTable;
use smm_core::{Manager, ManagerConfig, Objective};
use smm_model::zoo;
use smm_policy::{estimate, PolicyKind};

/// Table 2: the DL models studied.
pub fn table2() -> String {
    let mut t = TextTable::new(&["Network", "Number of Layers", "Types of Layers"]);
    for net in zoo::all_networks() {
        let stats = net.stats(DataWidth::W8);
        let kinds: Vec<&str> = stats.kinds.iter().map(|k| k.code()).collect();
        t.row(vec![
            net.name.clone(),
            stats.layers.to_string(),
            kinds.join(", "),
        ]);
    }
    format!(
        "Table 2: characteristics of the DL models studied\n{}",
        t.render()
    )
}

/// Maximum over layers of a policy's memory requirement, in kB at 8-bit.
/// (Policy 4/5 are memory-dependent and excluded, as in the paper.)
pub fn max_policy_kb(net: &smm_model::Network, kind: PolicyKind) -> f64 {
    // A generous budget so P4/P5-style self-sizing never truncates.
    let a = acc(1 << 20);
    net.layers
        .iter()
        .filter_map(|l| estimate(kind, &l.shape, &a, false))
        .map(|e| e.required_bytes(&a).kb())
        .fold(0.0, f64::max)
}

/// Table 3: maximum memory requirements for the minimum-transfer
/// policies.
pub fn table3() -> String {
    let mut t = TextTable::new(&["Network", "intra-layer", "Policy 1", "Policy 2", "Policy 3"]);
    for net in zoo::all_networks() {
        t.row(vec![
            net.name.clone(),
            format!("{:.1}", max_policy_kb(&net, PolicyKind::IntraLayer)),
            format!("{:.1}", max_policy_kb(&net, PolicyKind::P1IfmapReuse)),
            format!("{:.1}", max_policy_kb(&net, PolicyKind::P2FilterReuse)),
            format!("{:.1}", max_policy_kb(&net, PolicyKind::P3PerChannel)),
        ]);
    }
    format!(
        "Table 3: maximum memory requirements (kB) for policies where each \
         element is transferred only once\n{}",
        t.render()
    )
}

/// Table 4: memory policies used for a 64 kB GLB (heterogeneous scheme,
/// accesses objective).
pub fn table4() -> String {
    let manager = Manager::new(acc(64), ManagerConfig::new(Objective::Accesses));
    let mut t = TextTable::new(&["Network", "Memory policies used"]);
    for net in zoo::all_networks() {
        let plan = manager.heterogeneous(&net).expect("64kB plans");
        let mut parts: Vec<String> = Vec::new();
        for (kind, prefetch) in plan.policies_used() {
            parts.push(format!(
                "{}{}",
                kind.label(),
                if prefetch { "+p" } else { "" }
            ));
        }
        t.row(vec![net.name.clone(), parts.join(", ")]);
    }
    format!("Table 4: memory policies for 64kB GLB size\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_magnitudes_match_paper() {
        // Paper's Table 3 values (kB): our encodings should land close.
        // GoogLeNet intra-layer: 2051 kB; MobileNet intra-layer: 1178 kB.
        let googlenet = max_policy_kb(&zoo::googlenet(), PolicyKind::IntraLayer);
        assert!((googlenet - 2051.0).abs() < 60.0, "{googlenet}");
        let mobilenet = max_policy_kb(&zoo::mobilenet(), PolicyKind::IntraLayer);
        assert!((mobilenet - 1178.0).abs() < 40.0, "{mobilenet}");
        // MnasNet intra-layer: 1252.3 kB.
        let mnasnet = max_policy_kb(&zoo::mnasnet(), PolicyKind::IntraLayer);
        assert!((mnasnet - 1252.3).abs() < 40.0, "{mnasnet}");
    }

    #[test]
    fn policy_1_and_2_need_less_than_intra_layer() {
        for net in zoo::all_networks() {
            let intra = max_policy_kb(&net, PolicyKind::IntraLayer);
            for kind in [PolicyKind::P1IfmapReuse, PolicyKind::P2FilterReuse] {
                assert!(
                    max_policy_kb(&net, kind) <= intra + 1e-6,
                    "{} {kind:?}",
                    net.name
                );
            }
        }
    }

    #[test]
    fn table4_lists_multiple_policies_per_network() {
        let out = table4();
        // The heterogeneity claim: at 64 kB each network mixes policies.
        for net in zoo::all_networks() {
            let line = out
                .lines()
                .find(|l| l.starts_with(&net.name))
                .unwrap_or_else(|| panic!("{} missing", net.name));
            assert!(line.matches(',').count() >= 1, "{line}");
        }
    }

    #[test]
    fn renders_are_nonempty() {
        for f in [table2, table3, table4] {
            assert!(f().lines().count() > 6);
        }
    }
}
