//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! Each experiment is a function that computes the underlying data and a
//! renderer that prints the same rows/series the paper reports. The
//! `reproduce` binary dispatches on experiment id:
//!
//! ```text
//! cargo run -p smm-bench --release --bin reproduce -- all
//! cargo run -p smm-bench --release --bin reproduce -- fig5
//! ```
//!
//! | id     | paper content                                            |
//! |--------|----------------------------------------------------------|
//! | table2 | model inventory                                          |
//! | table3 | max memory per minimum-transfer policy                   |
//! | table4 | memory policies used at 64 kB                            |
//! | fig1   | motivational buffer mappings (two synthetic cases)       |
//! | fig2   | ifmap re-loads per access direction                      |
//! | fig3   | ResNet18 per-layer memory breakdown                      |
//! | fig5   | off-chip volume: baselines vs Hom vs Het                 |
//! | fig6   | Het memory breakdown for ResNet18 @ 64 kB                |
//! | fig7   | Het-over-Hom benefit vs data width (MobileNetV2)         |
//! | fig8   | latency: baseline vs Hom/Het × objective                 |
//! | fig9   | Het_l vs Het_a benefit at 64 kB                          |
//! | fig10  | prefetching on/off benefit + coverage (MobileNet)        |
//! | fig11  | inter-layer reuse on/off benefit + coverage (MnasNet)    |

pub mod ablations;
pub mod accesses;
pub mod chart;
pub mod extensions;
pub mod latency;
pub mod motivation;
pub mod tables;

use smm_arch::{AcceleratorConfig, ByteSize};

/// The paper's GLB sweep in kB.
pub const SIZES_KB: [u64; 5] = smm_arch::GLB_SIZES_KB;

/// The paper's accelerator at a given GLB size.
pub fn acc(kb: u64) -> AcceleratorConfig {
    AcceleratorConfig::paper_default(ByteSize::from_kb(kb))
}

/// One registered experiment: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// Experiment registry.
pub fn experiments() -> Vec<Experiment> {
    vec![
        (
            "table2",
            "model inventory",
            tables::table2 as fn() -> String,
        ),
        (
            "table3",
            "max memory per min-transfer policy",
            tables::table3,
        ),
        ("table4", "memory policies used at 64kB", tables::table4),
        ("fig1", "motivational buffer mappings", motivation::fig1),
        (
            "fig2",
            "ifmap re-loads per access direction",
            motivation::fig2,
        ),
        (
            "fig3",
            "ResNet18 per-layer memory breakdown",
            motivation::fig3,
        ),
        (
            "fig5",
            "off-chip accesses: baselines vs Hom/Het",
            accesses::fig5,
        ),
        (
            "fig6",
            "Het memory breakdown, ResNet18 @ 64kB",
            accesses::fig6,
        ),
        ("fig7", "Het-over-Hom benefit vs data width", accesses::fig7),
        ("fig8", "latency: baseline vs Hom/Het", latency::fig8),
        ("fig9", "Het_l vs Het_a benefit @ 64kB", latency::fig9),
        (
            "fig10",
            "prefetching ablation (MobileNet)",
            ablations::fig10,
        ),
        (
            "fig11",
            "inter-layer reuse ablation (MnasNet)",
            ablations::fig11,
        ),
        (
            "energy",
            "energy comparison at 64kB (extension)",
            extensions::energy,
        ),
        (
            "validate",
            "schedule-replay estimator validation (extension)",
            extensions::validate,
        ),
        (
            "dataflow",
            "baseline dataflow ablation OS/WS/IS (extension)",
            extensions::dataflow,
        ),
        (
            "dse",
            "heuristic policies vs tile-size DSE (extension)",
            extensions::dse,
        ),
    ]
}
