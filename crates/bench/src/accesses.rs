//! Figures 5–7: the access-reduction results.

use crate::chart::bar_block;
use crate::{acc, SIZES_KB};
use rayon::prelude::*;
use smm_arch::{ByteSize, DataWidth};
use smm_core::report::{benefit_pct, TextTable};
use smm_core::sweep::{plan_matrix, SweepScheme};
use smm_core::{Manager, ManagerConfig, Objective};
use smm_model::zoo;
use smm_systolic::{simulate_network, BaselineConfig, BufferSplit};

/// One Figure 5 row: off-chip MB per scheme for (network, GLB size).
#[derive(Debug, Clone)]
pub struct Fig5Row {
    pub network: String,
    pub glb_kb: u64,
    /// MB for sa_25_75, sa_50_50, sa_75_25.
    pub baselines: [f64; 3],
    pub hom: f64,
    pub het: f64,
}

impl Fig5Row {
    pub fn best_baseline(&self) -> f64 {
        self.baselines.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Compute the full Figure 5 matrix (all models × all GLB sizes).
pub fn fig5_data() -> Vec<Fig5Row> {
    let nets = zoo::all_networks();
    let cfg = ManagerConfig::new(Objective::Accesses);
    let hom = plan_matrix(acc(64), cfg, SweepScheme::BestHomogeneous, &nets, &SIZES_KB)
        .expect("hom matrix");
    let het = plan_matrix(acc(64), cfg, SweepScheme::Heterogeneous, &nets, &SIZES_KB)
        .expect("het matrix");

    let cells: Vec<(usize, usize)> = (0..nets.len())
        .flat_map(|n| (0..SIZES_KB.len()).map(move |g| (n, g)))
        .collect();
    cells
        .par_iter()
        .map(|&(n, g)| {
            let net = &nets[n];
            let kb = SIZES_KB[g];
            let a = acc(kb);
            let mut baselines = [0.0; 3];
            for (bi, &split) in BufferSplit::ALL.iter().enumerate() {
                baselines[bi] = simulate_network(&BaselineConfig::paper(a, split), net)
                    .total_bytes
                    .mb();
            }
            let idx = n * SIZES_KB.len() + g;
            Fig5Row {
                network: net.name.clone(),
                glb_kb: kb,
                baselines,
                hom: hom[idx].plan.totals.accesses_bytes.mb(),
                het: het[idx].plan.totals.accesses_bytes.mb(),
            }
        })
        .collect()
}

/// Figure 5 rendered: one block per model, the paper's five bars as
/// columns.
pub fn fig5() -> String {
    let data = fig5_data();
    let mut out = String::from("Figure 5: volume of off-chip memory accesses (MB) per scheme\n");
    for net in zoo::all_networks() {
        out.push_str(&format!("\n{}\n", net.name));
        let mut t = TextTable::new(&[
            "GLB",
            "sa_25_75",
            "sa_50_50",
            "sa_75_25",
            "Hom",
            "Het",
            "Het reduction",
        ]);
        for row in data.iter().filter(|r| r.network == net.name) {
            t.row(vec![
                format!("{}kB", row.glb_kb),
                format!("{:.2}", row.baselines[0]),
                format!("{:.2}", row.baselines[1]),
                format!("{:.2}", row.baselines[2]),
                format!("{:.2}", row.hom),
                format!("{:.2}", row.het),
                format!("{:.1}%", benefit_pct(row.best_baseline(), row.het)),
            ]);
        }
        out.push_str(&t.render());
        // The paper's bar view at the tightest buffer size.
        if let Some(row) = data
            .iter()
            .find(|r| r.network == net.name && r.glb_kb == 64)
        {
            out.push_str("64kB bars:\n");
            out.push_str(&bar_block(
                &[
                    ("sa_25_75".to_string(), row.baselines[0]),
                    ("sa_50_50".to_string(), row.baselines[1]),
                    ("sa_75_25".to_string(), row.baselines[2]),
                    ("Hom".to_string(), row.hom),
                    ("Het".to_string(), row.het),
                ],
                40,
            ));
        }
    }
    out
}

/// Figure 6: heterogeneous-scheme memory breakdown for ResNet18 @ 64 kB.
pub fn fig6() -> String {
    let a = acc(64);
    let manager = Manager::new(a, ManagerConfig::new(Objective::Accesses));
    let plan = manager.heterogeneous(&zoo::resnet18()).expect("plan");
    let mut out = String::from(
        "Figure 6: Het memory breakdown for ResNet18, 64 kB GLB \
         (allocated kB per data type; 50-50 baseline partition would be 30/30)\n",
    );
    let mut t = TextTable::new(&[
        "layer",
        "policy",
        "ifmap kB",
        "filter kB",
        "ofmap kB",
        "total",
    ]);
    for d in &plan.decisions {
        let alloc = d.estimate.allocation();
        let kb = |elems: u64| format!("{:.1}", ByteSize::from_elements(elems, a.data_width).kb());
        t.row(vec![
            d.layer_name.clone(),
            format!(
                "{}{}",
                d.estimate.kind.label(),
                if d.estimate.prefetch { "+p" } else { "" }
            ),
            kb(alloc.ifmap),
            kb(alloc.filters),
            kb(alloc.ofmap),
            kb(alloc.total()),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 7 data point: Het's access reduction over Hom, in percent.
pub fn fig7_benefit(width: DataWidth, glb_kb: u64) -> f64 {
    let a = acc(glb_kb).with_data_width(width);
    let net = zoo::mobilenetv2();
    let cfg = ManagerConfig::new(Objective::Accesses);
    let hom = Manager::new(a, cfg).best_homogeneous(&net).expect("hom");
    let het = Manager::new(a, cfg).heterogeneous(&net).expect("het");
    benefit_pct(
        hom.totals.accesses_elems as f64,
        het.totals.accesses_elems as f64,
    )
}

/// Figure 7: benefit of Het over Hom for different data widths
/// (MobileNetV2).
pub fn fig7() -> String {
    let mut out =
        String::from("Figure 7: access reduction of Het over Hom for MobileNetV2 (percent)\n");
    let mut t = TextTable::new(&["GLB", "8-bit", "16-bit", "32-bit"]);
    for &kb in &SIZES_KB {
        t.row(vec![
            format!("{kb}kB"),
            format!("{:.1}%", fig7_benefit(DataWidth::W8, kb)),
            format!("{:.1}%", fig7_benefit(DataWidth::W16, kb)),
            format!("{:.1}%", fig7_benefit(DataWidth::W32, kb)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "Wider data widths raise the pressure on the GLB, widening the gap \
         between Het and Hom at small sizes; the gap fades as capacity grows.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_het_wins_big_at_64kb() {
        // Paper: Het reduction at 64 kB ranges from ~43% to ~80%.
        let data = fig5_data();
        for row in data.iter().filter(|r| r.glb_kb == 64) {
            let red = benefit_pct(row.best_baseline(), row.het);
            assert!(red > 15.0, "{}: only {red:.1}%", row.network);
        }
        let resnet = data
            .iter()
            .find(|r| r.network == "ResNet18" && r.glb_kb == 64)
            .unwrap();
        assert!(
            benefit_pct(resnet.best_baseline(), resnet.het) > 60.0,
            "headline reduction missing"
        );
    }

    #[test]
    fn fig5_het_never_above_hom() {
        for row in fig5_data() {
            assert!(
                row.het <= row.hom + 1e-9,
                "{} @ {}kB",
                row.network,
                row.glb_kb
            );
        }
    }

    #[test]
    fn fig5_baseline_gap_closes_at_1mb() {
        let data = fig5_data();
        for net in ["ResNet18", "GoogLeNet"] {
            let row = data
                .iter()
                .find(|r| r.network == net && r.glb_kb == 1024)
                .unwrap();
            let ratio = row.het / row.best_baseline();
            assert!((0.7..1.3).contains(&ratio), "{net}: ratio {ratio}");
        }
    }

    #[test]
    fn fig7_wider_widths_increase_het_benefit_at_small_sizes() {
        // Paper: 69% extra reduction at 64 kB for 32-bit vs near-zero for
        // 8-bit at large sizes.
        let w32_small = fig7_benefit(DataWidth::W32, 64);
        let w8_large = fig7_benefit(DataWidth::W8, 1024);
        assert!(w32_small >= w8_large, "{w32_small} vs {w8_large}");
        assert!(w32_small >= 0.0);
    }

    #[test]
    fn fig6_mixes_policies_across_the_network() {
        let out = fig6();
        // The breakdown must show at least two distinct policies.
        let mut seen = std::collections::BTreeSet::new();
        for line in out.lines().skip(3) {
            if let Some(policy) = line.split_whitespace().nth(1) {
                seen.insert(policy.to_string());
            }
        }
        assert!(seen.len() >= 2, "{seen:?}");
    }
}
