//! Figures 1–3: the motivation section's evidence.

use smm_arch::{ByteSize, DataWidth};
use smm_core::report::TextTable;
use smm_model::{zoo, LayerShape};
use smm_policy::window::{ifmap_traffic, AccessDirection};

/// Figure 1: two cases inspired by ResNet18's layer requirements — one
/// filter-heavy, one ofmap-heavy — mapped onto (a) fixed separate
/// buffers and (b) a managed global buffer of the same total size.
pub fn fig1() -> String {
    // Requirements in kB, shaped like ResNet18's early vs late layers.
    let cases = [
        ("A (filter-heavy)", 16.0_f64, 40.0_f64, 8.0_f64),
        ("B (ofmap-heavy)", 12.0, 8.0, 44.0),
    ];
    let total = 72.0; // total on-chip kB in both organizations
    let (sep_i, sep_f, sep_o) = (24.0, 24.0, 24.0);

    let mut out =
        String::from("Figure 1: separate buffers vs managed global buffer (requirements in kB)\n");
    let mut t = TextTable::new(&[
        "case",
        "ifmap",
        "filter",
        "ofmap",
        "separate fits?",
        "global fits?",
        "global slack",
    ]);
    for (name, i, f, o) in cases {
        let sep_ok = i <= sep_i && f <= sep_f && o <= sep_o;
        let glb_ok = i + f + o <= total;
        t.row(vec![
            name.into(),
            format!("{i:.0}"),
            format!("{f:.0}"),
            format!("{o:.0}"),
            if sep_ok { "yes" } else { "NO" }.into(),
            if glb_ok { "yes" } else { "NO" }.into(),
            format!("{:.0} kB for reuse/prefetch", total - i - f - o),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "With fixed 24/24/24 partitions each case overflows one buffer while \
         another sits idle; the managed global buffer fits both and turns the \
         slack into extra reuse (access goal) or prefetch space (latency goal).\n",
    );
    out
}

/// Figure 2: elements re-loaded per traversal direction for a tiled
/// ifmap (the paper's turquoise cells).
pub fn fig2() -> String {
    let shape = LayerShape {
        ifmap_h: 56,
        ifmap_w: 56,
        in_channels: 32,
        filter_h: 3,
        filter_w: 3,
        num_filters: 64,
        stride: 1,
        padding: 1,
        depthwise: false,
    };
    let unique = shape.padded_ifmap_elems();
    let mut out = String::from("Figure 2: ifmap elements fetched per access direction\n");
    let mut t = TextTable::new(&["traversal", "tile", "fetched", "re-loaded", "overhead"]);
    let mut row = |label: &str, tile: &str, fetched: u64| {
        t.row(vec![
            label.into(),
            tile.into(),
            fetched.to_string(),
            (fetched - unique).to_string(),
            format!("{:.1}%", (fetched - unique) as f64 / unique as f64 * 100.0),
        ]);
    };
    let full = shape.padded_w() as u64;
    row(
        "height-wise (sliding window)",
        "F_H x full width",
        ifmap_traffic(&shape, 3, full, AccessDirection::HeightWise).unwrap(),
    );
    row(
        "height-wise, narrow strips",
        "F_H x 16",
        ifmap_traffic(&shape, 3, 16, AccessDirection::HeightWise).unwrap(),
    );
    row(
        "width-wise, short bands",
        "16 x full width",
        ifmap_traffic(&shape, 16, full, AccessDirection::WidthWise).unwrap(),
    );
    row(
        "depth-wise, 16x16 tiles",
        "16 x 16",
        ifmap_traffic(&shape, 16, 16, AccessDirection::DepthWise).unwrap(),
    );
    out.push_str(&t.render());
    out.push_str("The policies use the first traversal: full-width windows re-load nothing.\n");
    out
}

/// Figure 3: memory breakdown into the different data types for each
/// layer of ResNet18 (kB at 8-bit).
pub fn fig3() -> String {
    let net = zoo::resnet18();
    let mut out = String::from(
        "Figure 3: ResNet18 per-layer memory breakdown (kB; bar = ifmap/filter/ofmap)\n",
    );
    let mut t = TextTable::new(&["layer", "ifmap kB", "filter kB", "ofmap kB", "total kB"]);
    for (l, fp) in net.layers.iter().zip(net.footprints(DataWidth::W8)) {
        t.row(vec![
            l.name.clone(),
            format!("{:.1}", fp.ifmap.kb()),
            format!("{:.1}", fp.filters.kb()),
            format!("{:.1}", fp.ofmap.kb()),
            format!("{:.1}", fp.total().kb()),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// The Figure 3 series as raw data (used by tests and EXPERIMENTS.md).
pub fn fig3_series() -> Vec<(String, ByteSize, ByteSize, ByteSize)> {
    let net = zoo::resnet18();
    net.layers
        .iter()
        .zip(net.footprints(DataWidth::W8))
        .map(|(l, fp)| (l.name.clone(), fp.ifmap, fp.filters, fp.ofmap))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_first_layers_are_fmap_heavy_last_are_filter_heavy() {
        // "the first layers require more memory for the ifmap and ofmap,
        // while the last layers require more memory for the filters."
        let series = fig3_series();
        let (_, i0, f0, o0) = &series[0];
        assert!(i0.bytes() + o0.bytes() > 10 * f0.bytes());
        // Last conv stage (before the classifier).
        let (_, il, fl, ol) = &series[series.len() - 2];
        assert!(fl.bytes() > il.bytes() + ol.bytes());
    }

    #[test]
    fn fig2_direction_ordering() {
        let out = fig2();
        assert!(out.contains("0.0%"), "sliding window must re-load nothing");
        // Depth-wise tiled traversal is the most expensive direction.
        let lines: Vec<&str> = out.lines().collect();
        let pct = |l: &str| -> f64 {
            l.split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        let height = lines.iter().find(|l| l.contains("narrow strips")).unwrap();
        let depth = lines.iter().find(|l| l.contains("depth-wise")).unwrap();
        assert!(pct(depth) >= pct(height));
    }

    #[test]
    fn fig1_global_buffer_fits_both_cases() {
        let out = fig1();
        assert_eq!(out.matches("NO").count(), 2, "separate buffers fail both");
        assert_eq!(out.matches("yes").count(), 2, "global buffer fits both");
    }
}
