//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p smm-bench --release --bin reproduce -- all
//! cargo run -p smm-bench --release --bin reproduce -- fig5 fig8
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = smm_bench::experiments();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: reproduce <experiment>... | all\n\nexperiments:");
        for (id, desc, _) in &registry {
            eprintln!("  {id:<8} {desc}");
        }
        return ExitCode::FAILURE;
    }

    let wanted: Vec<&str> = if args.iter().any(|a| a == "all") {
        registry.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for id in wanted {
        let Some((_, _, run)) = registry.iter().find(|(rid, _, _)| *rid == id) else {
            eprintln!("unknown experiment {id:?}; try --help");
            return ExitCode::FAILURE;
        };
        let start = std::time::Instant::now();
        let output = run();
        println!("==================== {id} ====================");
        println!("{output}");
        println!("[{id} regenerated in {:.2?}]\n", start.elapsed());
    }
    ExitCode::SUCCESS
}
