//! Figures 8 and 9: the latency results and the objective trade-off.

use crate::{acc, SIZES_KB};
use smm_core::report::{benefit_pct, TextTable};
use smm_core::{Manager, ManagerConfig, Objective};
use smm_model::zoo;
use smm_systolic::{simulate_network, BaselineConfig, BufferSplit};

/// One Figure 8 row: latency (cycles) for one (network, GLB size).
#[derive(Debug, Clone)]
pub struct Fig8Row {
    pub network: String,
    pub glb_kb: u64,
    /// Stall-free SCALE-Sim latency (buffer-size independent).
    pub baseline: u64,
    pub hom_a: u64,
    pub het_a: u64,
    pub hom_l: u64,
    pub het_l: u64,
}

/// Compute the Figure 8 matrix.
pub fn fig8_data() -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for net in zoo::all_networks() {
        let baseline =
            simulate_network(&BaselineConfig::paper(acc(64), BufferSplit::SA_50_50), &net)
                .latency_cycles;
        for &kb in &SIZES_KB {
            let a = acc(kb);
            let plan = |obj| {
                Manager::new(a, ManagerConfig::new(obj))
                    .best_homogeneous(&net)
                    .expect("hom")
                    .totals
                    .latency_cycles
            };
            let het = |obj| {
                Manager::new(a, ManagerConfig::new(obj))
                    .heterogeneous(&net)
                    .expect("het")
                    .totals
                    .latency_cycles
            };
            rows.push(Fig8Row {
                network: net.name.clone(),
                glb_kb: kb,
                baseline,
                hom_a: plan(Objective::Accesses),
                het_a: het(Objective::Accesses),
                hom_l: plan(Objective::Latency),
                het_l: het(Objective::Latency),
            });
        }
    }
    rows
}

/// Figure 8 rendered.
pub fn fig8() -> String {
    let data = fig8_data();
    let mut out = String::from(
        "Figure 8: inference latency (cycles). Baseline is stall-free and \
         buffer-size independent, as in the paper.\n",
    );
    for net in zoo::all_networks() {
        out.push_str(&format!("\n{}\n", net.name));
        let mut t = TextTable::new(&["GLB", "baseline", "Hom_a", "Het_a", "Hom_l", "Het_l"]);
        for row in data.iter().filter(|r| r.network == net.name) {
            t.row(vec![
                format!("{}kB", row.glb_kb),
                row.baseline.to_string(),
                row.hom_a.to_string(),
                row.het_a.to_string(),
                row.hom_l.to_string(),
                row.het_l.to_string(),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// One Figure 9 bar pair: benefit (positive) / penalty (negative) of the
/// latency-optimized Het over the access-optimized Het, at 64 kB.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    pub network: String,
    pub latency_benefit_pct: f64,
    pub access_benefit_pct: f64,
}

/// Compute the Figure 9 series.
pub fn fig9_data() -> Vec<Fig9Row> {
    let a = acc(64);
    zoo::all_networks()
        .into_iter()
        .map(|net| {
            let het_a = Manager::new(a, ManagerConfig::new(Objective::Accesses))
                .heterogeneous(&net)
                .expect("het_a");
            let het_l = Manager::new(a, ManagerConfig::new(Objective::Latency))
                .heterogeneous(&net)
                .expect("het_l");
            Fig9Row {
                network: net.name,
                latency_benefit_pct: benefit_pct(
                    het_a.totals.latency_cycles as f64,
                    het_l.totals.latency_cycles as f64,
                ),
                access_benefit_pct: benefit_pct(
                    het_a.totals.accesses_elems as f64,
                    het_l.totals.accesses_elems as f64,
                ),
            }
        })
        .collect()
}

/// Figure 9 rendered.
pub fn fig9() -> String {
    let mut out = String::from(
        "Figure 9: Het optimized for latency vs Het optimized for accesses, \
         64 kB GLB (positive = benefit, negative = penalty)\n",
    );
    let mut t = TextTable::new(&["Network", "latency benefit", "accesses benefit"]);
    for row in fig9_data() {
        t.row(vec![
            row.network,
            format!("{:+.1}%", row.latency_benefit_pct),
            format!("{:+.1}%", row.access_benefit_pct),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "Optimizing for latency spends buffer space on prefetching; any access \
         penalty is the reuse that space no longer captures.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_latency_objective_never_loses_to_access_objective() {
        for row in fig8_data() {
            assert!(
                row.het_l <= row.het_a,
                "{} @ {}kB: {} > {}",
                row.network,
                row.glb_kb,
                row.het_l,
                row.het_a
            );
            assert!(row.hom_l <= row.hom_a, "{} @ {}kB", row.network, row.glb_kb);
        }
    }

    #[test]
    fn fig8_het_beats_baseline_latency_at_1mb() {
        // Paper headline: up to 56% latency reduction at the largest size.
        let data = fig8_data();
        let mut wins = 0;
        for row in data.iter().filter(|r| r.glb_kb == 1024) {
            if row.het_l < row.baseline {
                wins += 1;
            }
        }
        assert!(wins >= 4, "Het_l beats baseline for only {wins}/6 models");
    }

    #[test]
    fn fig9_latency_never_negative_accesses_never_positive() {
        for row in fig9_data() {
            assert!(
                row.latency_benefit_pct >= -1e-9,
                "{}: latency objective made latency worse",
                row.network
            );
            assert!(
                row.access_benefit_pct <= 1e-9,
                "{}: latency objective cannot reduce accesses below Het_a",
                row.network
            );
        }
    }
}
