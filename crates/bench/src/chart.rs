//! Minimal ASCII bar charts, so the `reproduce` binary's output reads
//! like the paper's figures rather than just tables.

/// A horizontal bar scaled so `max` fills `width` characters.
pub fn hbar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.clamp(1, width))
}

/// A labelled bar block: one line per `(label, value)`, bars scaled to
/// the maximum value, numeric value appended.
pub fn bar_block(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        out.push_str(&format!(
            "{label:<label_w$}  {:<width$}  {value:.2}\n",
            hbar(*value, max, width)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        assert_eq!(hbar(10.0, 10.0, 20).len(), 20);
        assert_eq!(hbar(5.0, 10.0, 20).len(), 10);
        assert_eq!(hbar(0.0, 10.0, 20).len(), 0);
        // Tiny nonzero values still show one mark.
        assert_eq!(hbar(0.01, 10.0, 20).len(), 1);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(hbar(1.0, 0.0, 20), "");
        assert_eq!(bar_block(&[], 20), "");
    }

    #[test]
    fn block_lines_align() {
        let rows = vec![("sa_25_75".to_string(), 113.6), ("Het".to_string(), 16.1)];
        let out = bar_block(&rows, 30);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("sa_25_75"));
        assert!(lines[0].len() >= lines[1].len());
        assert!(out.contains("16.10"));
    }
}
