//! Figures 10 and 11: the prefetching and inter-layer reuse ablations.

use crate::{acc, SIZES_KB};
use smm_core::report::{benefit_pct, TextTable};
use smm_core::{interlayer, Manager, ManagerConfig, Objective};
use smm_model::zoo;

/// One ablation row: benefit of enabling a feature, plus its coverage.
#[derive(Debug, Clone)]
pub struct AblationRow {
    pub glb_kb: u64,
    pub access_benefit_pct: f64,
    pub latency_benefit_pct: f64,
    pub coverage_pct: f64,
}

/// Figure 10 data: Het (latency objective) with prefetching enabled vs
/// disabled, for MobileNet.
pub fn fig10_data() -> Vec<AblationRow> {
    let net = zoo::mobilenet();
    SIZES_KB
        .iter()
        .map(|&kb| {
            let a = acc(kb);
            let on = Manager::new(a, ManagerConfig::new(Objective::Latency))
                .heterogeneous(&net)
                .expect("prefetch on");
            let off = Manager::new(
                a,
                ManagerConfig::new(Objective::Latency).with_prefetch(false),
            )
            .heterogeneous(&net)
            .expect("prefetch off");
            AblationRow {
                glb_kb: kb,
                access_benefit_pct: benefit_pct(
                    off.totals.accesses_elems as f64,
                    on.totals.accesses_elems as f64,
                ),
                latency_benefit_pct: benefit_pct(
                    off.totals.latency_cycles as f64,
                    on.totals.latency_cycles as f64,
                ),
                coverage_pct: on.prefetch_coverage() * 100.0,
            }
        })
        .collect()
}

/// Figure 10 rendered.
pub fn fig10() -> String {
    let mut out = String::from(
        "Figure 10: Het with prefetching enabled vs disabled (MobileNet). \
         Coverage = share of layers using a +p policy.\n",
    );
    let mut t = TextTable::new(&["GLB", "accesses benefit", "latency benefit", "coverage"]);
    for row in fig10_data() {
        t.row(vec![
            format!("{}kB", row.glb_kb),
            format!("{:+.1}%", row.access_benefit_pct),
            format!("{:+.1}%", row.latency_benefit_pct),
            format!("{:.0}%", row.coverage_pct),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 11 data: Het (accesses objective) with inter-layer reuse
/// enabled vs disabled, for MnasNet.
pub fn fig11_data() -> Vec<AblationRow> {
    let net = zoo::mnasnet();
    let possible = interlayer::possible_transitions(&net);
    SIZES_KB
        .iter()
        .map(|&kb| {
            let a = acc(kb);
            let on = Manager::new(
                a,
                ManagerConfig::new(Objective::Accesses).with_inter_layer_reuse(true),
            )
            .heterogeneous(&net)
            .expect("ilr on");
            let off = Manager::new(a, ManagerConfig::new(Objective::Accesses))
                .heterogeneous(&net)
                .expect("ilr off");
            AblationRow {
                glb_kb: kb,
                access_benefit_pct: benefit_pct(
                    off.totals.accesses_elems as f64,
                    on.totals.accesses_elems as f64,
                ),
                latency_benefit_pct: benefit_pct(
                    off.totals.latency_cycles as f64,
                    on.totals.latency_cycles as f64,
                ),
                coverage_pct: on.inter_layer_coverage(possible) * 100.0,
            }
        })
        .collect()
}

/// Geometric mean of the access / latency benefit at 1 MB over all
/// models (the paper reports 47% / 8%).
pub fn fig11_geomean_at_1mb() -> (f64, f64) {
    let mut acc_prod = 1.0f64;
    let mut lat_prod = 1.0f64;
    let mut n = 0u32;
    for net in zoo::all_networks() {
        let a = acc(1024);
        let on = Manager::new(
            a,
            ManagerConfig::new(Objective::Accesses).with_inter_layer_reuse(true),
        )
        .heterogeneous(&net)
        .expect("ilr on");
        let off = Manager::new(a, ManagerConfig::new(Objective::Accesses))
            .heterogeneous(&net)
            .expect("ilr off");
        // Geometric mean over ratios, reported as a benefit percentage.
        acc_prod *= on.totals.accesses_elems as f64 / off.totals.accesses_elems.max(1) as f64;
        lat_prod *= on.totals.latency_cycles as f64 / off.totals.latency_cycles.max(1) as f64;
        n += 1;
    }
    let gm = |p: f64| (1.0 - p.powf(1.0 / n as f64)) * 100.0;
    (gm(acc_prod), gm(lat_prod))
}

/// Figure 11 rendered.
pub fn fig11() -> String {
    let mut out = String::from(
        "Figure 11: Het with inter-layer reuse enabled vs disabled (MnasNet). \
         Coverage = enabled transitions / chainable transitions.\n",
    );
    let mut t = TextTable::new(&["GLB", "accesses benefit", "latency benefit", "coverage"]);
    for row in fig11_data() {
        t.row(vec![
            format!("{}kB", row.glb_kb),
            format!("{:+.1}%", row.access_benefit_pct),
            format!("{:+.1}%", row.latency_benefit_pct),
            format!("{:.0}%", row.coverage_pct),
        ]);
    }
    out.push_str(&t.render());
    let (acc_gm, lat_gm) = fig11_geomean_at_1mb();
    out.push_str(&format!(
        "Geometric-mean benefit at 1MB over all models: {acc_gm:.0}% accesses, \
         {lat_gm:.0}% latency.\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_prefetch_always_helps_latency() {
        for row in fig10_data() {
            assert!(
                row.latency_benefit_pct >= -1e-9,
                "{}kB: {}",
                row.glb_kb,
                row.latency_benefit_pct
            );
        }
    }

    #[test]
    fn fig10_coverage_is_high_and_grows() {
        // Paper: 93% at 64 kB, 100% from 256 kB up.
        let data = fig10_data();
        assert!(data[0].coverage_pct > 50.0, "{:?}", data[0]);
        assert!(data[4].coverage_pct >= data[0].coverage_pct - 1.0);
    }

    #[test]
    fn fig10_small_buffer_trades_accesses_for_latency() {
        // Paper: at 64 kB the latency benefit costs ~35% extra accesses;
        // large buffers do not suffer the trade-off.
        let data = fig10_data();
        assert!(
            data[0].access_benefit_pct <= 1e-9,
            "prefetching cannot reduce accesses: {:?}",
            data[0]
        );
        assert!(data[4].access_benefit_pct >= data[0].access_benefit_pct - 1.0);
    }

    #[test]
    fn fig11_benefit_and_coverage_grow_with_size() {
        let data = fig11_data();
        assert!(
            data[4].access_benefit_pct >= data[0].access_benefit_pct,
            "{data:?}"
        );
        assert!(data[4].coverage_pct > 50.0, "{data:?}");
        assert!(data[4].access_benefit_pct > 20.0, "{data:?}");
    }

    #[test]
    fn fig11_geomean_is_substantial_at_1mb() {
        let (acc_gm, lat_gm) = fig11_geomean_at_1mb();
        assert!(acc_gm > 10.0, "accesses geomean {acc_gm}");
        assert!(lat_gm >= 0.0, "latency geomean {lat_gm}");
    }
}
