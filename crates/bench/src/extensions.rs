//! Extension experiments beyond the paper's figures: the energy
//! quantification behind its Section 2.3 argument, and the
//! schedule-replay validation summary (the reproduction's analogue of
//! "results … have been validated against \[28\]").

use crate::acc;
use rayon::prelude::*;
use smm_core::energy::{plan_energy, traffic_energy, EnergyModel};
use smm_core::report::TextTable;
use smm_core::{Manager, ManagerConfig, Objective};
use smm_exec::replay;
use smm_model::zoo;
use smm_policy::estimate_all;
use smm_systolic::{simulate_network, BaselineConfig, BufferSplit};

/// Energy comparison at 64 kB: best fixed-split baseline vs Het, using
/// the default DRAM≈100×MAC coefficients.
pub fn energy() -> String {
    let model = EnergyModel::default();
    let a = acc(64);
    let manager = Manager::new(a, ManagerConfig::new(Objective::Accesses));
    let mut out = String::from(
        "Energy at 64 kB (default coefficients: DRAM 20 pJ/B, SRAM 1 pJ/B, MAC 0.2 pJ)\n",
    );
    let mut t = TextTable::new(&[
        "Network",
        "baseline uJ",
        "Het uJ",
        "saved",
        "baseline DRAM share",
        "Het DRAM share",
    ]);
    for net in zoo::all_networks() {
        let base_bytes = BufferSplit::ALL
            .iter()
            .map(|&s| {
                simulate_network(&BaselineConfig::paper(a, s), &net)
                    .total_bytes
                    .bytes()
            })
            .min()
            .expect("three splits");
        let base_e = traffic_energy(&model, base_bytes, &net);
        let plan = manager.heterogeneous(&net).expect("plan");
        let het_e = plan_energy(&model, &plan, &net);
        t.row(vec![
            net.name.clone(),
            format!("{:.0}", base_e.total_uj()),
            format!("{:.0}", het_e.total_uj()),
            format!(
                "{:.0}%",
                (1.0 - het_e.total_uj() / base_e.total_uj()) * 100.0
            ),
            format!("{:.0}%", base_e.dram_share() * 100.0),
            format!("{:.0}%", het_e.dram_share() * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "Access reduction converts almost directly into energy reduction while \
         DRAM dominates the budget — the paper's Section 2.3 argument.\n",
    );
    out
}

/// Replay-validation summary: every feasible policy estimate on the
/// replayable ResNet18/MobileNetV2 layers, replayed as an executable
/// schedule and compared against the estimator.
pub fn validate() -> String {
    let (ok, total, layers) = validate_bounded(1_000_000, 3_000_000);
    format!(
        "Schedule-replay validation: {ok}/{total} policy estimates on {layers} \
         zoo layers replayed to exactly the estimated traffic within exactly \
         the estimated memory.\n"
    )
}

/// The validation sweep with configurable layer-size bounds (the unit
/// test uses small bounds so a debug run stays fast; the experiment uses
/// generous ones).
pub fn validate_bounded(max_map_elems: u64, max_filter_elems: u64) -> (usize, usize, usize) {
    let a = acc(64);
    let layers: Vec<(String, smm_model::LayerShape)> = [zoo::resnet18(), zoo::mobilenetv2()]
        .iter()
        .flat_map(|net| {
            net.layers
                .iter()
                .map(move |l| (format!("{}/{}", net.name, l.name), l.shape))
        })
        .filter(|(_, s)| {
            s.padded_ifmap_elems() <= max_map_elems
                && s.filter_elems() <= max_filter_elems
                && s.ofmap_elems() <= max_map_elems
        })
        .collect();

    let results: Vec<(usize, usize)> = layers
        .par_iter()
        .map(|(_, shape)| {
            let mut ok = 0;
            let mut total = 0;
            for est in estimate_all(shape, &a) {
                if est.prefetch {
                    continue; // same schedule as the plain variant
                }
                total += 1;
                if replay(shape, &est).is_ok_and(|r| r.matches(&est)) {
                    ok += 1;
                }
            }
            (ok, total)
        })
        .collect();

    let ok: usize = results.iter().map(|r| r.0).sum();
    let total: usize = results.iter().map(|r| r.1).sum();
    (ok, total, layers.len())
}

/// Dataflow ablation: the baseline under OS / WS / IS at 64 kB —
/// justifying the paper's choice of an output-stationary baseline.
pub fn dataflow() -> String {
    use smm_systolic::{simulate_network_dataflow, BaselineConfig, BufferSplit, Dataflow};
    let a = acc(64);
    let cfg = BaselineConfig::paper(a, BufferSplit::SA_50_50);
    let mut out = String::from(
        "Baseline dataflow ablation at 64 kB, sa_50_50 (off-chip MB / compute Mcycles)\n",
    );
    let mut t = TextTable::new(&["Network", "OS", "WS", "IS"]);
    for net in zoo::all_networks() {
        let cell = |df: Dataflow| {
            let (accesses, cycles) = simulate_network_dataflow(&cfg, &net, df);
            format!(
                "{:.1} / {:.1}",
                smm_arch::ByteSize::from_elements(accesses, a.data_width).mb(),
                cycles as f64 / 1e6
            )
        };
        t.row(vec![
            net.name.clone(),
            cell(Dataflow::OutputStationary),
            cell(Dataflow::WeightStationary),
            cell(Dataflow::InputStationary),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "Deep convolution reductions make the stationary dataflows spill \
         partial sums; OS is the strongest baseline to compare against.\n",
    );
    out
}

/// DSE comparator: planning with *only* the generic tile-size search
/// (the design-space-exploration approach of the related work the paper
/// contrasts with) versus the named-policy heterogeneous plan. The
/// policies reach the same or better traffic with a constant-time
/// estimate per candidate instead of a search.
pub fn dse() -> String {
    use std::time::Instant;
    let a = acc(64);
    let manager = Manager::new(a, ManagerConfig::new(Objective::Accesses));
    let mut out = String::from(
        "Heuristic policies vs tile-size DSE at 64 kB (off-chip MB, plan time)
",
    );
    let mut t = TextTable::new(&["Network", "DSE-only MB", "Het MB", "DSE time", "Het time"]);
    for net in zoo::all_networks() {
        let t0 = Instant::now();
        let dse_plan = manager
            .homogeneous(&net, smm_policy::PolicyKind::Fallback)
            .expect("fallback-only plan");
        let dse_time = t0.elapsed();
        let t1 = Instant::now();
        let het = manager.heterogeneous(&net).expect("het plan");
        let het_time = t1.elapsed();
        t.row(vec![
            net.name.clone(),
            format!("{:.2}", dse_plan.totals.accesses_bytes.mb()),
            format!("{:.2}", het.totals.accesses_bytes.mb()),
            format!("{dse_time:.2?}"),
            format!("{het_time:.2?}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "Het includes the search as one candidate, so it is never worse; the \
         named policies avoid paying the search cost on the layers they cover.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dse_never_beats_het() {
        let a = acc(64);
        let manager = Manager::new(a, ManagerConfig::new(Objective::Accesses));
        for net in zoo::all_networks() {
            let dse_plan = manager
                .homogeneous(&net, smm_policy::PolicyKind::Fallback)
                .unwrap();
            let het = manager.heterogeneous(&net).unwrap();
            assert!(
                het.totals.accesses_elems <= dse_plan.totals.accesses_elems,
                "{}",
                net.name
            );
        }
    }

    #[test]
    fn dataflow_table_covers_all_models() {
        let out = dataflow();
        for net in zoo::all_networks() {
            assert!(out.contains(&net.name));
        }
        assert!(out.contains("OS"));
    }

    #[test]
    fn energy_reports_savings_for_every_model() {
        let out = energy();
        // Six data rows, each with a non-negative saving.
        assert_eq!(out.matches('%').count() % 3, 0);
        for net in zoo::all_networks() {
            assert!(out.contains(&net.name), "{} missing", net.name);
        }
    }

    #[test]
    fn validation_is_total_on_small_layers() {
        // Small bounds keep a debug run fast; the release experiment
        // covers much more.
        let (ok, total, layers) = validate_bounded(45_000, 300_000);
        assert!(layers >= 2, "{layers} layers");
        assert!(total >= 10, "{total} estimates");
        assert_eq!(ok, total);
    }
}
