//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - estimator cost per policy (how "lightweight" is lightweight?);
//! - fallback tiling search cost (the expensive escape hatch);
//! - inter-layer reuse pass cost on a full plan;
//! - parallel vs sequential sweep (the Rayon choice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smm_arch::{AcceleratorConfig, ByteSize};
use smm_core::sweep::{plan_matrix, SweepScheme};
use smm_core::{Manager, ManagerConfig, Objective};
use smm_model::zoo;
use smm_policy::{estimate, PolicyKind};
use std::hint::black_box;

fn acc() -> AcceleratorConfig {
    AcceleratorConfig::paper_default(ByteSize::from_kb(64))
}

fn bench_estimators(c: &mut Criterion) {
    let net = zoo::resnet18();
    let shape = net.layer("s2_b1_conv1").expect("layer").shape;
    let a = acc();
    let mut group = c.benchmark_group("estimate");
    for kind in PolicyKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| black_box(estimate(k, &shape, &a, false)));
        });
    }
    group.finish();
}

fn bench_interlayer_pass(c: &mut Criterion) {
    let net = zoo::mnasnet();
    let a = AcceleratorConfig::paper_default(ByteSize::from_mb(1));
    let plain = Manager::new(a, ManagerConfig::new(Objective::Accesses));
    let with_ilr = Manager::new(
        a,
        ManagerConfig::new(Objective::Accesses).with_inter_layer_reuse(true),
    );
    let mut group = c.benchmark_group("interlayer");
    group.bench_function("off", |b| {
        b.iter(|| black_box(plain.heterogeneous(&net).expect("plan")));
    });
    group.bench_function("on", |b| {
        b.iter(|| black_box(with_ilr.heterogeneous(&net).expect("plan")));
    });
    group.finish();
}

fn bench_sweep_parallelism(c: &mut Criterion) {
    let nets = zoo::all_networks();
    let cfg = ManagerConfig::new(Objective::Accesses);
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("rayon_matrix_6x5", |b| {
        b.iter(|| {
            black_box(
                plan_matrix(
                    acc(),
                    cfg,
                    SweepScheme::Heterogeneous,
                    &nets,
                    &smm_arch::GLB_SIZES_KB,
                )
                .expect("matrix"),
            )
        });
    });
    group.bench_function("sequential_6x5", |b| {
        b.iter(|| {
            for net in &nets {
                for &kb in &smm_arch::GLB_SIZES_KB {
                    let a = AcceleratorConfig::paper_default(ByteSize::from_kb(kb));
                    let m = Manager::new(a, cfg);
                    black_box(m.heterogeneous(net).expect("plan"));
                }
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_estimators,
    bench_interlayer_pass,
    bench_sweep_parallelism
);
criterion_main!(benches);
