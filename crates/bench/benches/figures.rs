//! One Criterion target per reproduced table/figure: measures how long
//! each experiment takes to regenerate (and keeps the regeneration code
//! exercised under `cargo bench`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for (id, _desc, run) in smm_bench::experiments() {
        // `validate` replays the whole zoo element-by-element — far too
        // heavy for a timing loop; everything else regenerates in
        // milliseconds and is benchmarked as-is.
        if id == "validate" {
            continue;
        }
        group.bench_function(id, |b| b.iter(|| black_box(run())));
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
