//! Benches for the discrete-event simulator: full-network simulation
//! cost per zoo model, and the marginal cost of the scenario knobs
//! (fault injection draws the PRNG per transfer; a clean run must not
//! pay for it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smm_arch::{AcceleratorConfig, ByteSize};
use smm_core::{Manager, ManagerConfig, Objective};
use smm_model::zoo;
use smm_sim::{simulate_plan, SimConfig};
use std::hint::black_box;

fn bench_simulate_zoo(c: &mut Criterion) {
    let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(256));
    let manager = Manager::new(acc, ManagerConfig::new(Objective::Accesses));
    let mut group = c.benchmark_group("simulate");
    for net in zoo::all_networks() {
        let plan = manager.heterogeneous(&net).expect("plan");
        group.bench_with_input(BenchmarkId::from_parameter(&net.name), &net, |b, net| {
            b.iter(|| {
                black_box(simulate_plan(&plan, net, &acc, &SimConfig::default()).expect("sim"))
            });
        });
    }
    group.finish();
}

fn bench_scenarios(c: &mut Criterion) {
    let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(256));
    let net = zoo::mobilenet();
    let plan = Manager::new(acc, ManagerConfig::new(Objective::Accesses))
        .heterogeneous(&net)
        .expect("plan");
    let scenarios: [(&str, SimConfig); 3] = [
        ("clean", SimConfig::default()),
        (
            "derated",
            SimConfig {
                bw_derate: 2.0,
                contenders: 2,
                ..SimConfig::default()
            },
        ),
        (
            "faulty",
            SimConfig {
                jitter_max_cycles: 8,
                drop_rate: 0.05,
                seed: 7,
                ..SimConfig::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("simulate_scenario");
    for (label, cfg) in scenarios {
        group.bench_function(label, |b| {
            b.iter(|| black_box(simulate_plan(&plan, &net, &acc, &cfg).expect("sim")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulate_zoo, bench_scenarios);
criterion_main!(benches);
