//! The Section 4 runtime claim: "it took approximately one minute to
//! generate the management schemes for all the tested models … while for
//! the SCALE-Sim baseline it took more than 5 hours." These benchmarks
//! measure both sides of that comparison in our reproduction: the
//! analytical plan generation (fast path) and the element-exact
//! trace-mode baseline (slow path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smm_arch::{AcceleratorConfig, ByteSize, GLB_SIZES_KB};
use smm_core::{CancelToken, LayerMemo, Manager, ManagerConfig, Objective, Planner, SchedulerKind};
use smm_model::zoo;
use smm_systolic::schedule::trace_layer;
use smm_systolic::{simulate_network, BaselineConfig, BufferSplit};
use std::hint::black_box;
use std::sync::Arc;

/// Generate Het plans for all models at all paper sizes — the full
/// "management schemes for all the tested models" workload.
fn bench_plan_generation(c: &mut Criterion) {
    let nets = zoo::all_networks();
    c.bench_function("plangen/all_models_all_sizes", |b| {
        b.iter(|| {
            for net in &nets {
                for &kb in &GLB_SIZES_KB {
                    let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(kb));
                    let m = Manager::new(acc, ManagerConfig::new(Objective::Accesses));
                    black_box(m.heterogeneous(net).expect("plan"));
                }
            }
        });
    });
}

/// Greedy vs the global inter-layer DP scheduler: the DP explores the
/// full per-layer candidate pool with handoff state, so its cost over
/// greedy is the price of the §5.4-aware search. Measured on a deep
/// CNN (MobileNetV2) and on the transformer nets, whose GEMM chains
/// are the workload the global pass was built for.
fn bench_global_vs_greedy(c: &mut Criterion) {
    let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(256));
    let open = CancelToken::none();
    let mut group = c.benchmark_group("plangen/scheduler");
    let nets = [zoo::mobilenetv2(), zoo::bert_tiny(), zoo::gemm_bench()];
    for net in &nets {
        for scheduler in [SchedulerKind::Greedy, SchedulerKind::Global] {
            let cfg = ManagerConfig::new(Objective::Accesses).with_scheduler(scheduler);
            let id = BenchmarkId::new(scheduler.label(), net.name.to_lowercase());
            group.bench_function(id, |b| {
                b.iter(|| {
                    let planner = Planner::new(acc, cfg);
                    black_box(planner.heterogeneous_with(net, &open).expect("plan"));
                });
            });
        }
    }
    group.finish();

    // Print the objective side of the trade so the runtime numbers above
    // can be weighed against the traffic they buy.
    for net in &nets {
        let plan_with = |scheduler| {
            Planner::new(
                acc,
                ManagerConfig::new(Objective::Accesses).with_scheduler(scheduler),
            )
            .heterogeneous_with(net, &open)
            .expect("plan")
        };
        let greedy = plan_with(SchedulerKind::Greedy);
        let global = plan_with(SchedulerKind::Global);
        println!(
            "plangen/scheduler: {} @ 256kB: greedy {} elems, global {} elems ({:+.2}%)",
            net.name,
            greedy.totals.accesses_elems,
            global.totals.accesses_elems,
            (global.totals.accesses_elems as f64 / greedy.totals.accesses_elems as f64 - 1.0)
                * 100.0,
        );
    }
}

/// Algorithm 1 with and without the shape-keyed layer memo on one
/// model: repeated shapes (ResNet18 plans the same basic-block shapes
/// many times) make the memoized planner strictly cheaper. The memo's
/// hit/miss counters are printed after each variant so the saving is
/// attributable.
fn bench_memoized_plangen(c: &mut Criterion) {
    let net = zoo::resnet18();
    let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(256));
    let cfg = ManagerConfig::new(Objective::Accesses);
    let open = CancelToken::none();

    let mut group = c.benchmark_group("plangen/memo");
    group.bench_function("off/resnet18", |b| {
        b.iter(|| {
            let planner = Planner::new(acc, cfg);
            black_box(planner.heterogeneous_with(&net, &open).expect("plan"));
        });
    });
    group.bench_function("on/resnet18", |b| {
        b.iter(|| {
            // Fresh memo per iteration: this measures intra-plan reuse
            // (repeated shapes within one network), not warm-cache luck.
            let memo = Arc::new(LayerMemo::default());
            let planner = Planner::new(acc, cfg).with_memo(Arc::clone(&memo));
            black_box(planner.heterogeneous_with(&net, &open).expect("plan"));
        });
    });
    group.finish();

    // Counted run through smm-obs: the planner publishes the same
    // hit/miss tallies on the `planner.memo_*` counters.
    smm_obs::reset();
    smm_obs::set_enabled(true);
    let memo = Arc::new(LayerMemo::default());
    let planner = Planner::new(acc, cfg).with_memo(Arc::clone(&memo));
    planner.heterogeneous_with(&net, &open).expect("plan");
    smm_obs::set_enabled(false);
    let s = memo.stats();
    println!(
        "plangen/memo: resnet18 single plan: {} hits / {} misses ({:.0}% hit rate) \
         [obs: planner.memo_hits={} planner.memo_misses={}]",
        s.hits,
        s.misses,
        s.hit_rate() * 100.0,
        smm_obs::counter_value(smm_obs::Counter::LayerMemoHits),
        smm_obs::counter_value(smm_obs::Counter::LayerMemoMisses),
    );
}

/// A serve-shaped workload: the same model planned N times, as a warm
/// planning server sees it when the plan cache is disabled or keys vary
/// (e.g. per-request batch sizes). One shared memo across all N plans —
/// after the first, every layer is a hit.
fn bench_serve_shaped_workload(c: &mut Criterion) {
    const REPEATS: usize = 8;
    let net = zoo::mobilenetv2();
    let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(256));
    let cfg = ManagerConfig::new(Objective::Accesses);
    let open = CancelToken::none();

    let mut group = c.benchmark_group("plangen/serve_shaped");
    group.bench_function(BenchmarkId::new("memo_off", REPEATS), |b| {
        b.iter(|| {
            for _ in 0..REPEATS {
                let planner = Planner::new(acc, cfg);
                black_box(planner.heterogeneous_with(&net, &open).expect("plan"));
            }
        });
    });
    group.bench_function(BenchmarkId::new("memo_shared", REPEATS), |b| {
        b.iter(|| {
            let memo = Arc::new(LayerMemo::default());
            for _ in 0..REPEATS {
                let planner = Planner::new(acc, cfg).with_memo(Arc::clone(&memo));
                black_box(planner.heterogeneous_with(&net, &open).expect("plan"));
            }
        });
    });
    group.finish();

    smm_obs::reset();
    smm_obs::set_enabled(true);
    let memo = Arc::new(LayerMemo::default());
    for _ in 0..REPEATS {
        let planner = Planner::new(acc, cfg).with_memo(Arc::clone(&memo));
        planner.heterogeneous_with(&net, &open).expect("plan");
    }
    smm_obs::set_enabled(false);
    let s = memo.stats();
    println!(
        "plangen/serve_shaped: {REPEATS}x mobilenetv2, shared memo: \
         {} hits / {} misses ({:.0}% hit rate) \
         [obs: planner.memo_hits={} planner.memo_misses={}]",
        s.hits,
        s.misses,
        s.hit_rate() * 100.0,
        smm_obs::counter_value(smm_obs::Counter::LayerMemoHits),
        smm_obs::counter_value(smm_obs::Counter::LayerMemoMisses),
    );
}

/// One analytical baseline simulation of a full network.
fn bench_baseline_analytic(c: &mut Criterion) {
    let net = zoo::resnet18();
    let cfg = BaselineConfig::paper(
        AcceleratorConfig::paper_default(ByteSize::from_kb(256)),
        BufferSplit::SA_50_50,
    );
    c.bench_function("baseline/analytic_resnet18", |b| {
        b.iter(|| black_box(simulate_network(&cfg, &net)));
    });
}

/// Element-exact trace replay of single layers — the expensive mode that
/// stands in for the 5-hour SCALE-Sim run.
fn bench_baseline_trace(c: &mut Criterion) {
    let net = zoo::resnet18();
    let cfg = BaselineConfig::paper(
        AcceleratorConfig::paper_default(ByteSize::from_kb(256)),
        BufferSplit::SA_50_50,
    );
    let mut group = c.benchmark_group("baseline/trace");
    group.sample_size(10);
    for name in ["s3_b1_conv2", "s4_b1_conv2"] {
        let layer = net.layer(name).expect("zoo layer");
        group.bench_with_input(BenchmarkId::from_parameter(name), layer, |b, l| {
            b.iter(|| black_box(trace_layer(&cfg, &l.shape)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_plan_generation,
    bench_global_vs_greedy,
    bench_memoized_plangen,
    bench_serve_shaped_workload,
    bench_baseline_analytic,
    bench_baseline_trace
);
criterion_main!(benches);
