//! The Section 4 runtime claim: "it took approximately one minute to
//! generate the management schemes for all the tested models … while for
//! the SCALE-Sim baseline it took more than 5 hours." These benchmarks
//! measure both sides of that comparison in our reproduction: the
//! analytical plan generation (fast path) and the element-exact
//! trace-mode baseline (slow path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smm_arch::{AcceleratorConfig, ByteSize, GLB_SIZES_KB};
use smm_core::{Manager, ManagerConfig, Objective};
use smm_model::zoo;
use smm_systolic::schedule::trace_layer;
use smm_systolic::{simulate_network, BaselineConfig, BufferSplit};
use std::hint::black_box;

/// Generate Het plans for all models at all paper sizes — the full
/// "management schemes for all the tested models" workload.
fn bench_plan_generation(c: &mut Criterion) {
    let nets = zoo::all_networks();
    c.bench_function("plangen/all_models_all_sizes", |b| {
        b.iter(|| {
            for net in &nets {
                for &kb in &GLB_SIZES_KB {
                    let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(kb));
                    let m = Manager::new(acc, ManagerConfig::new(Objective::Accesses));
                    black_box(m.heterogeneous(net).expect("plan"));
                }
            }
        });
    });
}

/// One analytical baseline simulation of a full network.
fn bench_baseline_analytic(c: &mut Criterion) {
    let net = zoo::resnet18();
    let cfg = BaselineConfig::paper(
        AcceleratorConfig::paper_default(ByteSize::from_kb(256)),
        BufferSplit::SA_50_50,
    );
    c.bench_function("baseline/analytic_resnet18", |b| {
        b.iter(|| black_box(simulate_network(&cfg, &net)));
    });
}

/// Element-exact trace replay of single layers — the expensive mode that
/// stands in for the 5-hour SCALE-Sim run.
fn bench_baseline_trace(c: &mut Criterion) {
    let net = zoo::resnet18();
    let cfg = BaselineConfig::paper(
        AcceleratorConfig::paper_default(ByteSize::from_kb(256)),
        BufferSplit::SA_50_50,
    );
    let mut group = c.benchmark_group("baseline/trace");
    group.sample_size(10);
    for name in ["s3_b1_conv2", "s4_b1_conv2"] {
        let layer = net.layer(name).expect("zoo layer");
        group.bench_with_input(BenchmarkId::from_parameter(name), layer, |b, l| {
            b.iter(|| black_box(trace_layer(&cfg, &l.shape)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_plan_generation,
    bench_baseline_analytic,
    bench_baseline_trace
);
criterion_main!(benches);
