//! The streaming-analytics overhead budget: tapping every request
//! outcome into the windowing engine must not tax the serve hot path.
//! Three cells measure the claim at increasing scope:
//!
//! - `ring_push_pop` — the raw SPSC lane primitive (nanoseconds).
//! - `tap_emit` — one `StreamHub::emit` through the lane mutex, the
//!   exact per-request cost added to a reactor shard.
//! - `serve_hit_roundtrip/{tap_on,tap_off}` — a full cache-hit
//!   request/response over a persistent connection against a live
//!   server with the tap enabled vs disabled. The acceptance bar is a
//!   <2% throughput delta between the two.

use criterion::{criterion_group, criterion_main, Criterion};
use smm_serve::stream_hub::StreamHub;
use smm_serve::{Server, ServerConfig, ServerHandle};
use smm_stream::{spsc, EventKind, StreamEvent};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// The lane primitive alone: one push + one pop per iteration.
fn bench_ring(c: &mut Criterion) {
    let (mut tx, mut rx) = spsc::<StreamEvent>(1024);
    c.bench_function("stream/ring_push_pop", |b| {
        b.iter(|| {
            tx.push(StreamEvent {
                ts_us: 1,
                cell: 0,
                kind: EventKind::HitInline,
                service_us: 5,
            });
            black_box(rx.pop());
        });
    });
}

/// One tap emit through a hub lane — the cost a reactor shard pays per
/// classified request when streaming is on. The consumer side is left
/// idle, so this measures the producer path with drop-on-full
/// semantics engaged (the lane fills after `LANE_CAP` events and every
/// further emit is a counted drop — the worst case for the producer).
fn bench_tap_emit(c: &mut Criterion) {
    let (hub, _consumers) = StreamHub::new(1, 1_000, 250);
    let req = smm_serve::protocol::parse_request(r#"{"model":"resnet18","glb_kb":64}"#)
        .expect("parse request");
    let cell = hub.cell_of(&req);
    c.bench_function("stream/tap_emit", |b| {
        b.iter(|| {
            hub.emit(0, black_box(cell), EventKind::HitInline, 5);
        });
    });
}

fn spawn(stream: bool) -> ServerHandle {
    Server::spawn(ServerConfig {
        workers: 2,
        cache_cap: 16,
        stream,
        // Measure only the tap: the pre-warm controller's background
        // threads are off so both configs run identical thread sets.
        prewarm: false,
        obs: false,
        ..ServerConfig::default()
    })
    .expect("spawn server")
}

/// A warm cache-hit round-trip over one persistent connection — the
/// PR 9 hit workload — with the tap on vs off.
fn bench_hit_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream/serve_hit_roundtrip");
    for (label, tap) in [("tap_on", true), ("tap_off", false)] {
        let handle = spawn(tap);
        let addr = handle.local_addr();
        let request = "{\"model\":\"resnet18\",\"glb_kb\":64}\n";
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut writer = conn;
        let mut line = String::new();
        // Warm the key: the first request plans, the rest are hits.
        writer.write_all(request.as_bytes()).expect("warm write");
        reader.read_line(&mut line).expect("warm read");
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        group.bench_function(label, |b| {
            b.iter(|| {
                writer.write_all(request.as_bytes()).expect("write");
                line.clear();
                reader.read_line(&mut line).expect("read");
                black_box(line.len());
            });
        });
        drop(reader);
        drop(writer);
        handle.stop();
        handle.join();
    }
    group.finish();
}

criterion_group!(benches, bench_ring, bench_tap_emit, bench_hit_roundtrip);
criterion_main!(benches);
