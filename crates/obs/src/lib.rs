//! Planner observability: counters, histograms, span timings, and a
//! Chrome trace-event exporter.
//!
//! Algorithm 1, the fallback tile search, the sweep matrix, and the
//! `smm-exec` replay are instrumented with this crate so a run can be
//! inspected instead of guessed at: how many candidates the planner
//! weighed per layer, where wall-clock time goes, which layers fell back
//! to the tile search, how many DMA commands a replay issued.
//!
//! # Design
//!
//! One process-global [`Collector`] sits behind an atomic `enabled`
//! flag. Instrumentation is compiled in unconditionally but is
//! **near-free when disabled**: every entry point checks one relaxed
//! atomic load and returns before any formatting, locking, or clock
//! read happens. Hot paths (the estimators, the benches) therefore pay
//! one predictable branch.
//!
//! - **Counters** — fixed registry ([`Counter`]), lock-free atomic adds.
//! - **Histograms** — power-of-two buckets ([`Histogram`]), atomic adds.
//! - **Spans** — scoped guards created by [`span!`]; on drop they fold
//!   the duration into per-name aggregates and append one complete
//!   (`ph: "X"`) trace event.
//! - **Export** — [`report`] renders the aggregate table,
//!   [`chrome_trace_json`] / [`write_chrome_trace`] emit Trace Event
//!   Format JSON that `chrome://tracing` and Perfetto open directly.
//!
//! # Example
//!
//! ```
//! smm_obs::reset();
//! smm_obs::set_enabled(true);
//! {
//!     let _g = smm_obs::span!("plan.layer", "conv{}", 1);
//!     smm_obs::add(smm_obs::Counter::PlannerCandidates, 12);
//! }
//! smm_obs::set_enabled(false);
//! let report = smm_obs::report();
//! assert_eq!(report.counter(smm_obs::Counter::PlannerCandidates), 12);
//! assert!(smm_obs::chrome_trace_json().contains("\"ph\":\"X\""));
//! ```

#![warn(missing_docs)]

pub mod json;
mod report;
mod trace;

pub use report::{CounterRow, HistogramRow, ProfileReport, SpanRow};
pub use trace::{chrome_trace_json, write_chrome_trace};

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The fixed counter registry. Every counter has a stable dotted name
/// used in the profile report and the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Candidate `(policy, prefetch)` estimates Algorithm 1 weighed.
    PlannerCandidates,
    /// Candidates rejected because the prefetch variant did not fit.
    PlannerPrefetchRejected,
    /// Layers planned (one per [`span!`]`("plan.layer")`).
    PlannerLayersPlanned,
    /// Calls into `smm_policy::estimate`.
    EstimatorCalls,
    /// Tile-search invocations of the Algorithm 1 fallback.
    FallbackSearches,
    /// Blockings evaluated across all fallback searches.
    FallbackIterations,
    /// Producer layers switched to a resident-ofmap policy by the
    /// inter-layer reuse pass.
    InterLayerSwitches,
    /// Transitions the inter-layer reuse pass enabled.
    InterLayerTransitions,
    /// Cells evaluated by `smm_core::sweep::plan_matrix`.
    SweepCells,
    /// DMA commands issued by the `smm-exec` replay engine.
    ReplayDmaCommands,
    /// Layers traced by the element-exact systolic baseline.
    BaselineLayersTraced,
    /// Plan-cache lookups that found a cached plan.
    PlanCacheHits,
    /// Plan-cache lookups that missed.
    PlanCacheMisses,
    /// Plans evicted from the cache to make room.
    PlanCacheEvictions,
    /// Planning requests accepted by the serving layer.
    ServeRequests,
    /// Requests shed because the work queue was full.
    ServeShed,
    /// Of the shed requests, those shed by the *adaptive* admission
    /// controller (EWMA-tightened cap or predicted deadline overrun)
    /// rather than by the static queue capacity.
    ServeShedAdaptive,
    /// High-water mark of the planning queue depth (recorded via
    /// [`record_max`], so the counter equals the peak, not a sum).
    ServeQueueDepthPeak,
    /// High-water mark of the EWMA service-latency estimate in
    /// microseconds (recorded via [`record_max`]).
    ServeEwmaLatencyUs,
    /// Plan requests answered inline on the reactor from the plan
    /// cache, without touching the worker queue.
    ServeInlineHits,
    /// Requests that missed their deadline.
    ServeDeadlineExceeded,
    /// Plans verified by `smm-check`.
    CheckRuns,
    /// Diagnostics emitted across all `smm-check` runs.
    CheckDiagnostics,
    /// Plans the serving layer rejected because verification failed.
    ServeVerifyFailed,
    /// Layer-selection lookups answered from the shape-keyed memo.
    LayerMemoHits,
    /// Layer-selection lookups that had to run Algorithm 1's inner loop.
    LayerMemoMisses,
    /// Discrete-event simulator events processed (one per DMA command).
    SimEvents,
    /// Simulated cycles the compute array spent stalled on DMA.
    SimStallCycles,
    /// Simulated DMA transfers that were dropped and re-issued.
    SimDmaRetries,
    /// Simulated cycles where GLB occupancy exceeded capacity.
    SimOccupancyViolations,
    /// DP transitions evaluated by the global inter-layer scheduler.
    GlobalDpTransitions,
    /// Global-scheduler runs that fell back to the greedy plan.
    GlobalFallbacks,
    /// Plan requests the fleet router forwarded to a backend.
    FleetRouted,
    /// Forward attempts retried on the next ring replica.
    FleetRetries,
    /// Requests the router shed because no healthy replica answered.
    FleetShed,
    /// Backends ejected after consecutive forward failures.
    FleetEjections,
    /// Ejected backends re-admitted by a successful health probe.
    FleetReadmissions,
    /// Cached plans migrated between nodes during membership changes.
    FleetMigratedPlans,
    /// Plan bytes moved by warm-cache handoff.
    FleetMigratedBytes,
    /// Command streams analyzed by the `smm-lint` static linter.
    LintPrograms,
    /// Diagnostics emitted across all `smm-lint` runs.
    LintDiagnostics,
    /// Redundant-transfer elements (refetches of resident bytes) the
    /// linter flagged as reclaimable traffic.
    LintRedundantElems,
    /// Classified-request events emitted into the serve stream taps.
    StreamEvents,
    /// Stream events dropped because a shard's tap ring was full.
    StreamDropped,
    /// Stream events that arrived later than the allowed lateness and
    /// were excluded from windowing.
    StreamLate,
    /// Windows closed by the stream collector's watermark.
    StreamWindowsClosed,
    /// Of the shed requests, those shed because the predicted miss cost
    /// could not meet the request's deadline.
    ServeShedPredicted,
    /// Pre-warm planning attempts started by the stream controller.
    ServePrewarmAttempts,
    /// Pre-warmed plans inserted into the cache before a request
    /// missed on them.
    ServePrewarmInserted,
    /// Pre-warm candidates skipped because the plan was already cached
    /// by the time the controller got to them.
    ServePrewarmSkipped,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 50] = [
        Counter::PlannerCandidates,
        Counter::PlannerPrefetchRejected,
        Counter::PlannerLayersPlanned,
        Counter::EstimatorCalls,
        Counter::FallbackSearches,
        Counter::FallbackIterations,
        Counter::InterLayerSwitches,
        Counter::InterLayerTransitions,
        Counter::SweepCells,
        Counter::ReplayDmaCommands,
        Counter::BaselineLayersTraced,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
        Counter::PlanCacheEvictions,
        Counter::ServeRequests,
        Counter::ServeShed,
        Counter::ServeShedAdaptive,
        Counter::ServeQueueDepthPeak,
        Counter::ServeEwmaLatencyUs,
        Counter::ServeInlineHits,
        Counter::ServeDeadlineExceeded,
        Counter::CheckRuns,
        Counter::CheckDiagnostics,
        Counter::ServeVerifyFailed,
        Counter::LayerMemoHits,
        Counter::LayerMemoMisses,
        Counter::SimEvents,
        Counter::SimStallCycles,
        Counter::SimDmaRetries,
        Counter::SimOccupancyViolations,
        Counter::GlobalDpTransitions,
        Counter::GlobalFallbacks,
        Counter::FleetRouted,
        Counter::FleetRetries,
        Counter::FleetShed,
        Counter::FleetEjections,
        Counter::FleetReadmissions,
        Counter::FleetMigratedPlans,
        Counter::FleetMigratedBytes,
        Counter::LintPrograms,
        Counter::LintDiagnostics,
        Counter::LintRedundantElems,
        Counter::StreamEvents,
        Counter::StreamDropped,
        Counter::StreamLate,
        Counter::StreamWindowsClosed,
        Counter::ServeShedPredicted,
        Counter::ServePrewarmAttempts,
        Counter::ServePrewarmInserted,
        Counter::ServePrewarmSkipped,
    ];

    /// Stable dotted name (report rows, Chrome counter events).
    pub fn name(&self) -> &'static str {
        match self {
            Counter::PlannerCandidates => "planner.candidates",
            Counter::PlannerPrefetchRejected => "planner.prefetch_rejected",
            Counter::PlannerLayersPlanned => "planner.layers_planned",
            Counter::EstimatorCalls => "estimator.calls",
            Counter::FallbackSearches => "fallback.searches",
            Counter::FallbackIterations => "fallback.iterations",
            Counter::InterLayerSwitches => "interlayer.switches",
            Counter::InterLayerTransitions => "interlayer.transitions",
            Counter::SweepCells => "sweep.cells",
            Counter::ReplayDmaCommands => "replay.dma_commands",
            Counter::BaselineLayersTraced => "baseline.layers_traced",
            Counter::PlanCacheHits => "plan_cache.hits",
            Counter::PlanCacheMisses => "plan_cache.misses",
            Counter::PlanCacheEvictions => "plan_cache.evictions",
            Counter::ServeRequests => "serve.requests",
            Counter::ServeShed => "serve.shed",
            Counter::ServeShedAdaptive => "serve.shed_adaptive",
            Counter::ServeQueueDepthPeak => "serve.queue_depth_peak",
            Counter::ServeEwmaLatencyUs => "serve.ewma_latency_us",
            Counter::ServeInlineHits => "serve.inline_hits",
            Counter::ServeDeadlineExceeded => "serve.deadline_exceeded",
            Counter::CheckRuns => "check.runs",
            Counter::CheckDiagnostics => "check.diagnostics",
            Counter::ServeVerifyFailed => "serve.verify_failed",
            Counter::LayerMemoHits => "planner.memo_hits",
            Counter::LayerMemoMisses => "planner.memo_misses",
            Counter::SimEvents => "sim.events",
            Counter::SimStallCycles => "sim.stall_cycles",
            Counter::SimDmaRetries => "sim.dma_retries",
            Counter::SimOccupancyViolations => "sim.occupancy_violations",
            Counter::GlobalDpTransitions => "global.dp_transitions",
            Counter::GlobalFallbacks => "global.fallbacks",
            Counter::FleetRouted => "fleet.routed",
            Counter::FleetRetries => "fleet.retries",
            Counter::FleetShed => "fleet.shed",
            Counter::FleetEjections => "fleet.ejections",
            Counter::FleetReadmissions => "fleet.readmissions",
            Counter::FleetMigratedPlans => "fleet.migrated_plans",
            Counter::FleetMigratedBytes => "fleet.migrated_bytes",
            Counter::LintPrograms => "lint.programs",
            Counter::LintDiagnostics => "lint.diagnostics",
            Counter::LintRedundantElems => "lint.redundant_elems",
            Counter::StreamEvents => "stream.events",
            Counter::StreamDropped => "stream.dropped",
            Counter::StreamLate => "stream.late",
            Counter::StreamWindowsClosed => "stream.windows_closed",
            Counter::ServeShedPredicted => "serve.shed_predicted",
            Counter::ServePrewarmAttempts => "serve.prewarm_attempts",
            Counter::ServePrewarmInserted => "serve.prewarm_inserted",
            Counter::ServePrewarmSkipped => "serve.prewarm_skipped",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// The fixed histogram registry (power-of-two buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Histogram {
    /// Candidates weighed per planned layer.
    CandidatesPerLayer,
    /// Blockings evaluated per fallback search.
    FallbackIterationsPerSearch,
    /// DMA commands per replayed layer schedule.
    DmaCommandsPerReplay,
}

impl Histogram {
    /// Every histogram, in report order.
    pub const ALL: [Histogram; 3] = [
        Histogram::CandidatesPerLayer,
        Histogram::FallbackIterationsPerSearch,
        Histogram::DmaCommandsPerReplay,
    ];

    /// Stable dotted name.
    pub fn name(&self) -> &'static str {
        match self {
            Histogram::CandidatesPerLayer => "planner.candidates_per_layer",
            Histogram::FallbackIterationsPerSearch => "fallback.iterations_per_search",
            Histogram::DmaCommandsPerReplay => "replay.dma_commands_per_layer",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

const NUM_COUNTERS: usize = Counter::ALL.len();
const NUM_HISTOGRAMS: usize = Histogram::ALL.len();
/// log2 buckets: bucket `i` counts values in `[2^(i-1), 2^i)`, bucket 0
/// counts zeros and ones.
const HIST_BUCKETS: usize = 33;
/// Trace events are capped so a pathological run cannot exhaust memory;
/// the report notes how many were dropped.
const MAX_TRACE_EVENTS: usize = 1 << 20;

/// Aggregated timing for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans under this name.
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_ns: u64,
    /// Shortest single span, ns.
    pub min_ns: u64,
    /// Longest single span, ns.
    pub max_ns: u64,
}

/// One finished span, as exported to the Chrome trace.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (`"plan.layer"`, …).
    pub name: &'static str,
    /// Optional human detail (layer name, cell label, …).
    pub detail: Option<String>,
    /// Small integer id of the emitting thread.
    pub tid: u64,
    /// Start, microseconds since [`reset`] (or first use).
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// The process-global collector. Use the free functions ([`add`],
/// [`span!`], [`report`], …) rather than constructing one.
pub struct Collector {
    counters: [AtomicU64; NUM_COUNTERS],
    histograms: [[AtomicU64; HIST_BUCKETS]; NUM_HISTOGRAMS],
    spans: Mutex<BTreeMap<&'static str, SpanStats>>,
    events: Mutex<Vec<TraceEvent>>,
    dropped_events: AtomicU64,
    epoch: Mutex<Instant>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Collector> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(|| Collector {
        counters: [ZERO; NUM_COUNTERS],
        histograms: std::array::from_fn(|_| [ZERO; HIST_BUCKETS]),
        spans: Mutex::new(BTreeMap::new()),
        events: Mutex::new(Vec::new()),
        dropped_events: AtomicU64::new(0),
        epoch: Mutex::new(Instant::now()),
    })
}

/// Is collection currently enabled? One relaxed load — this is the
/// fast-path check every instrumentation site performs first.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off. Enabling does not clear prior data; call
/// [`reset`] for a fresh run.
pub fn set_enabled(on: bool) {
    if on {
        collector(); // materialize before the first hot-path hit
    }
    // Release (not SeqCst: nothing orders this flag against other
    // atomics) so a thread that observes `on == true` also observes the
    // materialized collector; the counters themselves are atomics, so
    // the Relaxed fast-path load in `enabled` costs nothing and at
    // worst misses a few events around the toggle instant.
    ENABLED.store(on, Ordering::Release);
}

/// Clear all counters, histograms, span aggregates and trace events,
/// and restart the trace clock.
pub fn reset() {
    let c = collector();
    for a in &c.counters {
        a.store(0, Ordering::Relaxed);
    }
    for h in &c.histograms {
        for b in h {
            b.store(0, Ordering::Relaxed);
        }
    }
    c.spans.lock().clear();
    c.events.lock().clear();
    c.dropped_events.store(0, Ordering::Relaxed);
    *c.epoch.lock() = Instant::now();
}

/// Add `n` to a counter. No-op (one branch) when disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if !enabled() {
        return;
    }
    collector().counters[counter.index()].fetch_add(n, Ordering::Relaxed);
}

/// Raise a counter to `value` if it is currently lower (monotone
/// high-water mark). Gauge-style metrics (queue-depth peak, EWMA
/// estimate) use this so the counter reads as the peak rather than a
/// meaningless sum. No-op when disabled.
#[inline]
pub fn record_max(counter: Counter, value: u64) {
    if !enabled() {
        return;
    }
    collector().counters[counter.index()].fetch_max(value, Ordering::Relaxed);
}

/// Record one observation into a histogram. No-op when disabled.
#[inline]
pub fn observe(hist: Histogram, value: u64) {
    if !enabled() {
        return;
    }
    let bucket = (64 - value.leading_zeros()) as usize; // 0 → 0, 1 → 1, 2..3 → 2, …
    let bucket = bucket.min(HIST_BUCKETS - 1);
    collector().histograms[hist.index()][bucket].fetch_add(1, Ordering::Relaxed);
}

/// Current total of a counter (0 before first use).
pub fn counter_value(counter: Counter) -> u64 {
    match COLLECTOR.get() {
        Some(c) => c.counters[counter.index()].load(Ordering::Relaxed),
        None => 0,
    }
}

/// A point-in-time copy of every counter. Long-lived processes (the
/// planning server) scope per-request metrics by capturing a snapshot
/// before and after the work and reporting the [`delta`](Self::delta) —
/// the process-global totals keep growing, but the delta only contains
/// what happened in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: [u64; NUM_COUNTERS],
}

impl CounterSnapshot {
    /// Capture the current value of every counter.
    pub fn capture() -> Self {
        let mut values = [0u64; NUM_COUNTERS];
        if let Some(c) = COLLECTOR.get() {
            for (v, a) in values.iter_mut().zip(&c.counters) {
                *v = a.load(Ordering::Relaxed);
            }
        }
        CounterSnapshot { values }
    }

    /// Value of one counter at capture time.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.values[counter.index()]
    }

    /// Per-counter difference `later - self` (saturating, so a [`reset`]
    /// between the two snapshots yields zeros rather than wrapping).
    pub fn delta(&self, later: &CounterSnapshot) -> CounterSnapshot {
        let mut values = [0u64; NUM_COUNTERS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = later.values[i].saturating_sub(self.values[i]);
        }
        CounterSnapshot { values }
    }
}

/// Scoped timing guard; created by [`span()`] / [`span!`], records on
/// drop. Inactive guards (collection disabled at creation) do nothing.
pub struct SpanGuard {
    name: &'static str,
    detail: Option<String>,
    start: Option<Instant>,
}

impl SpanGuard {
    fn inactive(name: &'static str) -> Self {
        SpanGuard {
            name,
            detail: None,
            start: None,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        let c = collector();
        let dur_ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        {
            let mut spans = c.spans.lock();
            let s = spans.entry(self.name).or_default();
            s.count += 1;
            s.total_ns = s.total_ns.saturating_add(dur_ns);
            s.min_ns = if s.count == 1 {
                dur_ns
            } else {
                s.min_ns.min(dur_ns)
            };
            s.max_ns = s.max_ns.max(dur_ns);
        }
        let ts_us = {
            let epoch = *c.epoch.lock();
            start
                .saturating_duration_since(epoch)
                .as_micros()
                .min(u64::MAX as u128) as u64
        };
        let mut events = c.events.lock();
        if events.len() < MAX_TRACE_EVENTS {
            events.push(TraceEvent {
                name: self.name,
                detail: self.detail.take(),
                tid: TID.with(|t| *t),
                ts_us,
                dur_us: dur.as_micros().min(u64::MAX as u128) as u64,
            });
        } else {
            c.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Open a span with no detail string. Prefer the [`span!`] macro.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inactive(name);
    }
    SpanGuard {
        name,
        detail: None,
        start: Some(Instant::now()),
    }
}

/// Open a span whose detail string is built lazily — `detail` runs only
/// when collection is enabled. Prefer the [`span!`] macro.
#[inline]
pub fn span_detailed(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inactive(name);
    }
    SpanGuard {
        name,
        detail: Some(detail()),
        start: Some(Instant::now()),
    }
}

/// Open a scoped timing span. Bind the guard (`let _g = …`) so it drops
/// at scope end.
///
/// ```
/// let _g = smm_obs::span!("plan.layer");
/// let _h = smm_obs::span!("plan.layer", "{}@{}kB", "conv1", 64);
/// ```
///
/// The format arguments are evaluated only when collection is enabled.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span($name)
    };
    ($name:literal, $($fmt:tt)+) => {
        $crate::span_detailed($name, || format!($($fmt)+))
    };
}

/// Snapshot all aggregates into a [`ProfileReport`].
pub fn report() -> ProfileReport {
    report::build(collector())
}

pub(crate) fn snapshot_events() -> (Vec<TraceEvent>, u64) {
    let c = collector();
    (
        c.events.lock().clone(),
        c.dropped_events.load(Ordering::Relaxed),
    )
}

impl Collector {
    pub(crate) fn counter_load(&self, i: usize) -> u64 {
        self.counters[i].load(Ordering::Relaxed)
    }

    pub(crate) fn histogram_load(&self, i: usize) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.histograms[i]) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    pub(crate) fn span_snapshot(&self) -> BTreeMap<&'static str, SpanStats> {
        self.spans.lock().clone()
    }
}

/// Serializes tests that mutate the process-global collector. Only
/// compiled for tests; shared with the `trace` module's tests.
#[cfg(test)]
pub(crate) fn test_lock() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; each test takes `test_lock()` so
    // parallel test threads cannot interleave enable/reset cycles.

    #[test]
    fn disabled_is_a_no_op() {
        let _l = test_lock();
        reset();
        set_enabled(false);
        add(Counter::SweepCells, 5);
        let g = span!("test.disabled");
        drop(g);
        assert_eq!(counter_value(Counter::SweepCells), 0);
        assert!(!report().spans.iter().any(|s| s.name == "test.disabled"));
    }

    #[test]
    fn counters_and_spans_accumulate() {
        let _l = test_lock();
        reset();
        set_enabled(true);
        add(Counter::BaselineLayersTraced, 2);
        add(Counter::BaselineLayersTraced, 3);
        {
            let _g = span!("test.span", "layer {}", 7);
        }
        set_enabled(false);
        assert_eq!(counter_value(Counter::BaselineLayersTraced), 5);
        let rep = report();
        let row = rep.spans.iter().find(|s| s.name == "test.span").unwrap();
        assert_eq!(row.stats.count, 1);
        assert!(row.stats.max_ns >= row.stats.min_ns);
        reset();
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let _l = test_lock();
        reset();
        set_enabled(true);
        for v in [0, 1, 2, 3, 4, 1000] {
            observe(Histogram::CandidatesPerLayer, v);
        }
        set_enabled(false);
        let h = collector().histogram_load(Histogram::CandidatesPerLayer.index());
        assert_eq!(h[0], 1); // 0
        assert_eq!(h[1], 1); // 1
        assert_eq!(h[2], 2); // 2, 3
        assert_eq!(h[3], 1); // 4
        assert_eq!(h[10], 1); // 1000 ∈ [512, 1024)
        assert_eq!(h.iter().sum::<u64>(), 6);
        reset();
    }

    #[test]
    fn lazy_detail_not_built_when_disabled() {
        let _l = test_lock();
        set_enabled(false);
        let _g = span_detailed("test.lazy", || panic!("must not run"));
    }

    /// Regression test for per-request metric scoping: a second
    /// "request"'s snapshot delta must not include the first request's
    /// counters, even though the global totals keep accumulating.
    #[test]
    fn snapshot_deltas_scope_requests() {
        let _l = test_lock();
        reset();
        set_enabled(true);

        // Request 1 plans 30 candidates.
        let before1 = CounterSnapshot::capture();
        add(Counter::PlannerCandidates, 30);
        add(Counter::PlanCacheMisses, 1);
        let after1 = CounterSnapshot::capture();

        // Request 2 plans 12.
        let before2 = CounterSnapshot::capture();
        add(Counter::PlannerCandidates, 12);
        add(Counter::PlanCacheHits, 1);
        let after2 = CounterSnapshot::capture();
        set_enabled(false);

        let d1 = before1.delta(&after1);
        let d2 = before2.delta(&after2);
        assert_eq!(d1.counter(Counter::PlannerCandidates), 30);
        assert_eq!(d2.counter(Counter::PlannerCandidates), 12);
        assert_eq!(d2.counter(Counter::PlanCacheMisses), 0);
        assert_eq!(d2.counter(Counter::PlanCacheHits), 1);
        // The global total still holds both requests.
        assert_eq!(counter_value(Counter::PlannerCandidates), 42);
        // A reset between snapshots saturates to zero instead of wrapping.
        let before3 = CounterSnapshot::capture();
        reset();
        let after3 = CounterSnapshot::capture();
        assert_eq!(
            before3.delta(&after3).counter(Counter::PlannerCandidates),
            0
        );
    }
}
