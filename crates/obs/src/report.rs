//! Aggregated profile report: counter totals, histogram summaries, and
//! per-span timing rows, with a plain-text `Display` rendering.

use crate::{Collector, Counter, Histogram, SpanStats};
use std::fmt;

/// One counter row in a [`ProfileReport`].
#[derive(Debug, Clone)]
pub struct CounterRow {
    /// Which counter.
    pub counter: Counter,
    /// Its total.
    pub value: u64,
}

/// One histogram row in a [`ProfileReport`].
#[derive(Debug, Clone)]
pub struct HistogramRow {
    /// Which histogram.
    pub histogram: Histogram,
    /// Number of observations.
    pub count: u64,
    /// Upper bound (exclusive, power of two) of the median bucket; 1
    /// means the median observation was 0 or 1.
    pub p50_bound: u64,
    /// Upper bound of the bucket holding the largest observation.
    pub max_bound: u64,
}

/// One span row in a [`ProfileReport`].
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Span name.
    pub name: &'static str,
    /// Aggregated timings.
    pub stats: SpanStats,
}

/// Snapshot of everything the collector aggregated for one run.
///
/// Obtain via [`crate::report`]; render with `Display` (what
/// `smm-cli --profile` prints) or consume the fields directly.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Counters with non-zero totals, in registry order.
    pub counters: Vec<CounterRow>,
    /// Histograms with at least one observation, in registry order.
    pub histograms: Vec<HistogramRow>,
    /// Span aggregates, sorted by descending total time.
    pub spans: Vec<SpanRow>,
    /// Trace events dropped after the in-memory cap was hit.
    pub dropped_events: u64,
}

impl ProfileReport {
    /// Total for `counter` (0 if it never fired).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|r| r.counter == counter)
            .map_or(0, |r| r.value)
    }

    /// True when nothing was recorded (collection likely disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty()
    }
}

pub(crate) fn build(c: &Collector) -> ProfileReport {
    let counters = Counter::ALL
        .iter()
        .map(|&k| CounterRow {
            counter: k,
            value: c.counter_load(k.index()),
        })
        .filter(|r| r.value > 0)
        .collect();

    let histograms = Histogram::ALL
        .iter()
        .filter_map(|&k| {
            let buckets = c.histogram_load(k.index());
            let count: u64 = buckets.iter().sum();
            if count == 0 {
                return None;
            }
            let mut seen = 0u64;
            let mut p50_bucket = 0usize;
            for (i, &b) in buckets.iter().enumerate() {
                seen += b;
                if seen * 2 >= count {
                    p50_bucket = i;
                    break;
                }
            }
            let max_bucket = buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
            Some(HistogramRow {
                histogram: k,
                count,
                p50_bound: bucket_bound(p50_bucket),
                max_bound: bucket_bound(max_bucket),
            })
        })
        .collect();

    let mut spans: Vec<SpanRow> = c
        .span_snapshot()
        .into_iter()
        .map(|(name, stats)| SpanRow { name, stats })
        .collect();
    spans.sort_by_key(|r| std::cmp::Reverse(r.stats.total_ns));

    ProfileReport {
        counters,
        histograms,
        spans,
        dropped_events: c.dropped_events.load(std::sync::atomic::Ordering::Relaxed),
    }
}

/// Exclusive upper bound of log2 bucket `i` (bucket 0 holds {0, 1}).
fn bucket_bound(i: usize) -> u64 {
    1u64 << i.min(63)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "profile: no data collected (was --profile enabled?)");
        }
        writeln!(f, "== profile: spans ==")?;
        writeln!(
            f,
            "{:<28} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "span", "count", "total", "mean", "min", "max"
        )?;
        for row in &self.spans {
            let s = &row.stats;
            let mean = s.total_ns.checked_div(s.count).unwrap_or(0);
            writeln!(
                f,
                "{:<28} {:>8} {:>12} {:>12} {:>12} {:>12}",
                row.name,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(mean),
                fmt_ns(s.min_ns),
                fmt_ns(s.max_ns)
            )?;
        }
        writeln!(f, "\n== profile: counters ==")?;
        for row in &self.counters {
            writeln!(f, "{:<32} {:>12}", row.counter.name(), row.value)?;
        }
        if !self.histograms.is_empty() {
            writeln!(f, "\n== profile: histograms (log2 buckets) ==")?;
            writeln!(
                f,
                "{:<32} {:>8} {:>10} {:>10}",
                "histogram", "count", "p50<", "max<"
            )?;
            for row in &self.histograms {
                writeln!(
                    f,
                    "{:<32} {:>8} {:>10} {:>10}",
                    row.histogram.name(),
                    row.count,
                    row.p50_bound,
                    row.max_bound
                )?;
            }
        }
        if self.dropped_events > 0 {
            writeln!(
                f,
                "\nwarning: {} trace events dropped (in-memory cap)",
                self.dropped_events
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_renders_hint() {
        let rep = ProfileReport {
            counters: vec![],
            histograms: vec![],
            spans: vec![],
            dropped_events: 0,
        };
        assert!(rep.is_empty());
        assert!(format!("{rep}").contains("no data"));
    }

    #[test]
    fn display_contains_rows() {
        let rep = ProfileReport {
            counters: vec![CounterRow {
                counter: Counter::PlannerCandidates,
                value: 42,
            }],
            histograms: vec![],
            spans: vec![SpanRow {
                name: "plan.layer",
                stats: SpanStats {
                    count: 3,
                    total_ns: 3_000_000,
                    min_ns: 900_000,
                    max_ns: 1_200_000,
                },
            }],
            dropped_events: 0,
        };
        let text = format!("{rep}");
        assert!(text.contains("plan.layer"));
        assert!(text.contains("planner.candidates"));
        assert!(text.contains("42"));
    }

    #[test]
    fn bucket_bounds() {
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(1), 2);
        assert_eq!(bucket_bound(10), 1024);
    }
}
