//! Chrome Trace Event Format exporter.
//!
//! Emits the JSON object form (`{"traceEvents": [...]}`) understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). Each
//! finished span becomes one complete event (`"ph": "X"`) with
//! microsecond `ts`/`dur`; counter totals are appended as counter
//! events (`"ph": "C"`) so they show up as tracks.
//!
//! The JSON is written by hand — the schema is flat and fixed, and this
//! crate deliberately has no serialization dependency.

use crate::{snapshot_events, Counter};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Render the collected trace as a Chrome trace-event JSON string.
pub fn chrome_trace_json() -> String {
    let (events, dropped) = snapshot_events();
    let mut out = String::with_capacity(256 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };

    // Process metadata so the tracks have a readable label.
    push_sep(&mut out, &mut first);
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"smm\"}}",
    );

    let mut end_ts = 0u64;
    for ev in &events {
        end_ts = end_ts.max(ev.ts_us + ev.dur_us);
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"smm\",\"name\":\"{}\"",
            ev.tid,
            ev.ts_us,
            ev.dur_us,
            escape(ev.name)
        );
        if let Some(d) = &ev.detail {
            let _ = write!(out, ",\"args\":{{\"detail\":\"{}\"}}", escape(d));
        }
        out.push('}');
    }

    for c in Counter::ALL {
        let v = crate::counter_value(c);
        if v == 0 {
            continue;
        }
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"name\":\"{}\",\
             \"args\":{{\"value\":{}}}}}",
            end_ts,
            escape(c.name()),
            v
        );
    }

    let _ = write!(out, "],\"otherData\":{{\"droppedEvents\":{dropped}}}}}");
    out
}

/// Write the Chrome trace JSON to `path`.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, chrome_trace_json())
}

/// Escape a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use crate::{reset, set_enabled, span};

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_json_is_well_formed_and_has_complete_events() {
        let _l = crate::test_lock();
        reset();
        set_enabled(true);
        for i in 0..3 {
            let _g = crate::span!("trace.test", "layer{i}");
            std::hint::black_box(i);
        }
        {
            let _g = span("trace.plain");
        }
        set_enabled(false);

        let text = chrome_trace_json();
        let value = json::parse(&text).expect("trace JSON must parse");
        let Value::Object(obj) = &value else {
            panic!("top level must be an object")
        };
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key");
        let Value::Array(events) = events else {
            panic!("traceEvents must be an array")
        };
        let complete: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(Value::String(ph)) if ph == "X"))
            .collect();
        assert!(
            complete.len() >= 4,
            "one X event per span, got {}",
            complete.len()
        );
        for e in &complete {
            assert!(matches!(e.get("ts"), Some(Value::Number(_))));
            assert!(matches!(e.get("dur"), Some(Value::Number(_))));
            assert!(matches!(e.get("name"), Some(Value::String(_))));
        }
        reset();
    }
}
