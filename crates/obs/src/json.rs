//! A minimal recursive-descent JSON parser.
//!
//! Exists so tests (here and in `smm-cli`) can validate the exported
//! Chrome trace without an external serialization crate. It accepts
//! strict RFC 8259 JSON; numbers are parsed as `f64`.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved, duplicate keys kept.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &[u8], value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(members)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: decode \uD800-\uDBFF followed
                        // by \uDC00-\uDFFF; lone surrogates are errors.
                        let ch = if (0xD800..=0xDBFF).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from the raw
                    // bytes (input is a &str, so they are valid).
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        self.pos = start + width;
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            parse(r#""a\nb\u0041""#).unwrap(),
            Value::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a":[1,{"b":"x"},null],"c":false}"#).unwrap();
        let Some(Value::Array(items)) = v.get("a") else {
            panic!()
        };
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].get("b"), Some(&Value::String("x".into())));
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::String("😀".into())
        );
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn utf8_passthrough() {
        assert_eq!(
            parse(r#""héllo→""#).unwrap(),
            Value::String("héllo→".into())
        );
    }
}
