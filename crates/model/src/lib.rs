//! CNN model descriptions for scratchpad memory management.
//!
//! The paper's inputs (Figure 4) are a CNN model description plus the
//! accelerator specification. This crate provides the model side:
//!
//! - [`LayerShape`] / [`Layer`] — the per-layer hyperparameters of
//!   Table 1 (`I_H/I_W`, `F_H/F_W`, `C_I`, `F#`, `O_H/O_W`, `C_O`, `S`, `P`)
//!   plus derived quantities: output dimensions, data-type footprints and
//!   MAC counts.
//! - [`Network`] — an ordered, layer-by-layer model (residual connections
//!   serialized, as in the paper's baseline).
//! - [`zoo`] — the six evaluated networks of Table 2: EfficientNetB0,
//!   GoogLeNet, MnasNet, MobileNet, MobileNetV2, ResNet18.
//! - [`topology`] — a SCALE-Sim-style topology CSV reader/writer standing
//!   in for the paper's TensorFlow/PyTorch translator.
//!
//! # Example
//!
//! ```
//! use smm_model::zoo;
//!
//! let net = zoo::resnet18();
//! assert_eq!(net.layers.len(), 21); // Table 2
//! let l1 = &net.layers[0];
//! assert_eq!(l1.shape.output_hw(), (112, 112));
//! ```

#![warn(missing_docs)]

mod layer;
mod network;
pub mod topology;
pub mod zoo;

pub use layer::{Layer, LayerKind, LayerShape, ShapeError};
pub use network::{LayerFootprint, Network, NetworkStats};
