//! SCALE-Sim-style topology files.
//!
//! The paper generates its model descriptions "through code that
//! translates TensorFlow or PyTorch models to the input format of the
//! system". The de-facto input format of the baseline simulator
//! (SCALE-Sim) is a topology CSV with one row per layer:
//!
//! ```text
//! Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width,
//! Channels, Num Filter, Strides,
//! ```
//!
//! This module reads that classic 8-column format and an extended
//! 10-column variant with explicit `Padding` and `Kind` columns (the
//! classic format has neither; on read, padding defaults to 0 and the
//! kind is inferred from the dimensions). [`write()`] always emits the
//! extended format so a written file round-trips losslessly.

use crate::{Layer, LayerKind, LayerShape, Network};
use std::fmt::Write as _;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The file has no layer rows.
    Empty,
    /// A row has the wrong number of columns.
    BadColumnCount {
        /// 1-based line number of the offending row.
        line: usize,
        /// Number of columns the row actually had.
        got: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number of the offending row.
        line: usize,
        /// Name of the field that failed to parse.
        field: &'static str,
    },
    /// The `Kind` column holds an unknown code.
    BadKind {
        /// 1-based line number of the offending row.
        line: usize,
        /// The unrecognized kind code.
        code: String,
    },
    /// The resulting layer failed shape validation.
    BadShape {
        /// 1-based line number of the offending row.
        line: usize,
        /// The shape validation error.
        message: String,
    },
    /// The resulting network failed validation (e.g. duplicate names).
    BadNetwork(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology has no layer rows"),
            TopologyError::BadColumnCount { line, got } => {
                write!(f, "line {line}: expected 8 or 10 columns, got {got}")
            }
            TopologyError::BadNumber { line, field } => {
                write!(f, "line {line}: field {field} is not a number")
            }
            TopologyError::BadKind { line, code } => {
                write!(f, "line {line}: unknown layer kind {code:?}")
            }
            TopologyError::BadShape { line, message } => write!(f, "line {line}: {message}"),
            TopologyError::BadNetwork(m) => write!(f, "topology: {m}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Infer the Table 2 layer kind from dimensions, for classic 8-column
/// rows that carry no explicit kind.
fn infer_kind(shape: &LayerShape) -> LayerKind {
    if shape.depthwise {
        LayerKind::DepthwiseConv
    } else if shape.ifmap_h == 1 && shape.ifmap_w == 1 && shape.filter_h == 1 && shape.filter_w == 1
    {
        LayerKind::FullyConnected
    } else if shape.filter_h == 1 && shape.filter_w == 1 {
        LayerKind::PointwiseConv
    } else {
        LayerKind::Conv
    }
}

fn parse_u32(s: &str, line: usize, field: &'static str) -> Result<u32, TopologyError> {
    s.trim()
        .parse()
        .map_err(|_| TopologyError::BadNumber { line, field })
}

/// Parse a topology CSV into a [`Network`].
///
/// Lines that are blank, start with `#`, or form the classic header row
/// (first cell "Layer name") are skipped. Trailing commas (which
/// SCALE-Sim topology files carry) are tolerated.
pub fn parse(name: impl Into<String>, text: &str) -> Result<Network, TopologyError> {
    let mut layers = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim().trim_end_matches(',');
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if cells[0].eq_ignore_ascii_case("layer name") {
            continue;
        }
        if cells.len() != 8 && cells.len() != 10 {
            return Err(TopologyError::BadColumnCount {
                line,
                got: cells.len(),
            });
        }
        let ifmap_h = parse_u32(cells[1], line, "ifmap height")?;
        let ifmap_w = parse_u32(cells[2], line, "ifmap width")?;
        let filter_h = parse_u32(cells[3], line, "filter height")?;
        let filter_w = parse_u32(cells[4], line, "filter width")?;
        let in_channels = parse_u32(cells[5], line, "channels")?;
        let num_filters = parse_u32(cells[6], line, "num filter")?;
        let stride = parse_u32(cells[7], line, "strides")?;
        let (padding, kind) = if cells.len() == 10 {
            let padding = parse_u32(cells[8], line, "padding")?;
            let kind = LayerKind::from_code(cells[9]).ok_or_else(|| TopologyError::BadKind {
                line,
                code: cells[9].to_string(),
            })?;
            (padding, Some(kind))
        } else {
            (0, None)
        };
        let mut shape = LayerShape {
            ifmap_h,
            ifmap_w,
            in_channels,
            filter_h,
            filter_w,
            num_filters,
            stride,
            padding,
            depthwise: kind.is_some_and(LayerKind::is_depthwise),
        };
        let kind = kind.unwrap_or_else(|| infer_kind(&shape));
        shape.depthwise = kind.is_depthwise();
        let layer = Layer::new(cells[0], kind, shape).map_err(|e| TopologyError::BadShape {
            line,
            message: e.to_string(),
        })?;
        layers.push(layer);
    }
    if layers.is_empty() {
        return Err(TopologyError::Empty);
    }
    Network::new(name, layers).map_err(|e| TopologyError::BadNetwork(e.to_string()))
}

/// Serialize a [`Network`] to the extended 10-column topology format.
pub fn write(net: &Network) -> String {
    let mut out = String::with_capacity(64 * net.layers.len());
    out.push_str(
        "Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, \
         Channels, Num Filter, Strides, Padding, Kind,\n",
    );
    for l in &net.layers {
        let s = &l.shape;
        let _ = writeln!(
            out,
            "{}, {}, {}, {}, {}, {}, {}, {}, {}, {},",
            l.name,
            s.ifmap_h,
            s.ifmap_w,
            s.filter_h,
            s.filter_w,
            s.in_channels,
            s.num_filters,
            s.stride,
            s.padding,
            l.kind.code(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn classic_scale_sim_row_parses() {
        let text = "Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,\n\
                    Conv1, 224, 224, 7, 7, 3, 64, 2,\n";
        let net = parse("test", text).unwrap();
        assert_eq!(net.layers.len(), 1);
        let l = &net.layers[0];
        assert_eq!(l.name, "Conv1");
        assert_eq!(l.kind, LayerKind::Conv);
        assert_eq!(l.shape.padding, 0);
    }

    #[test]
    fn extended_row_carries_padding_and_kind() {
        let text = "dw3, 56, 56, 3, 3, 128, 128, 1, 1, DW,\n";
        let net = parse("test", text).unwrap();
        let l = &net.layers[0];
        assert_eq!(l.kind, LayerKind::DepthwiseConv);
        assert!(l.shape.depthwise);
        assert_eq!(l.shape.padding, 1);
    }

    #[test]
    fn kind_inference_for_classic_rows() {
        let text = "pw, 56, 56, 1, 1, 64, 128, 1,\nfc, 1, 1, 1, 1, 512, 1000, 1,\n";
        let net = parse("t", text).unwrap();
        assert_eq!(net.layers[0].kind, LayerKind::PointwiseConv);
        assert_eq!(net.layers[1].kind, LayerKind::FullyConnected);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# a comment\n\nconv, 8, 8, 3, 3, 4, 8, 1,\n";
        assert_eq!(parse("t", text).unwrap().layers.len(), 1);
    }

    #[test]
    fn bad_inputs_are_reported_with_line_numbers() {
        assert_eq!(parse("t", "").unwrap_err(), TopologyError::Empty);
        assert!(matches!(
            parse("t", "x, 1, 2,\n").unwrap_err(),
            TopologyError::BadColumnCount { line: 1, got: 3 }
        ));
        assert!(matches!(
            parse("t", "x, a, 8, 3, 3, 4, 8, 1,\n").unwrap_err(),
            TopologyError::BadNumber { line: 1, .. }
        ));
        assert!(matches!(
            parse("t", "x, 8, 8, 3, 3, 4, 8, 1, 0, ZZ,\n").unwrap_err(),
            TopologyError::BadKind { line: 1, .. }
        ));
        assert!(matches!(
            parse("t", "x, 8, 8, 9, 9, 4, 8, 1,\n").unwrap_err(),
            TopologyError::BadShape { line: 1, .. }
        ));
    }

    #[test]
    fn absurdly_large_dimensions_error_with_line_number() {
        // Each field individually fits in u32, so parsing succeeds and
        // the overflow guard in shape validation must catch it — as a
        // line-numbered error, never a panic.
        let big = u32::MAX;
        let text = format!("ok, 8, 8, 3, 3, 4, 8, 1,\nhuge, {big}, {big}, 3, 3, {big}, 8, 1,\n");
        let err = parse("t", &text).unwrap_err();
        assert!(matches!(err, TopologyError::BadShape { line: 2, .. }));
        assert!(err.to_string().contains("line 2"), "{err}");
        // A field too big for u32 is a parse error, also with a line.
        let err = parse("t", "x, 99999999999, 8, 3, 3, 4, 8, 1,\n").unwrap_err();
        assert!(matches!(err, TopologyError::BadNumber { line: 1, .. }));
    }

    #[test]
    fn gemm_dimension_overflow_reported_with_line_number() {
        // Every field fits u32 and every raw footprint fits u64, but the
        // derived im2col GEMM operand M·K wraps — the parser must reject
        // the row, naming both the line and the overflowing operand.
        let text = format!(
            "ok, 8, 8, 3, 3, 4, 8, 1,\nhuge_gemm, {h}, {h}, {fh}, {fw}, 1, 1, 1,\n",
            h = 1u32 << 20,
            fh = 1u32 << 12,
            fw = 1u32 << 13,
        );
        let err = parse("t", &text).unwrap_err();
        assert!(
            matches!(err, TopologyError::BadShape { line: 2, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("M*K"), "{err}");
    }

    #[test]
    fn zoo_networks_round_trip() {
        let nets = zoo::all_networks()
            .into_iter()
            .chain(zoo::transformer_networks());
        for net in nets {
            let text = write(&net);
            let parsed =
                parse(net.name.clone(), &text).unwrap_or_else(|e| panic!("{}: {e}", net.name));
            assert_eq!(parsed, net, "{} did not round-trip", net.name);
        }
    }

    #[test]
    fn duplicate_names_rejected_at_network_level() {
        let text = "a, 8, 8, 3, 3, 4, 8, 1,\na, 8, 8, 3, 3, 4, 8, 1,\n";
        assert!(matches!(
            parse("t", text).unwrap_err(),
            TopologyError::BadNetwork(_)
        ));
    }
}
