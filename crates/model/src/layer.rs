use serde::{Deserialize, Serialize};
use std::fmt;

/// The layer categories of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Standard convolution (CV).
    Conv,
    /// Depth-wise convolution (DW): one filter channel per input channel,
    /// no cross-channel reduction.
    DepthwiseConv,
    /// Point-wise convolution (PW): 1×1 standard convolution.
    PointwiseConv,
    /// Fully-connected layer (FC), modelled as a 1×1 convolution over a
    /// 1×1 spatial extent.
    FullyConnected,
    /// Projection layer (PL): the 1×1 strided shortcut convolution in
    /// residual networks.
    Projection,
}

impl LayerKind {
    /// Short code used in Table 2 and in topology files.
    pub fn code(self) -> &'static str {
        match self {
            LayerKind::Conv => "CV",
            LayerKind::DepthwiseConv => "DW",
            LayerKind::PointwiseConv => "PW",
            LayerKind::FullyConnected => "FC",
            LayerKind::Projection => "PL",
        }
    }

    /// Parse a Table 2 code.
    pub fn from_code(code: &str) -> Option<Self> {
        match code {
            "CV" => Some(LayerKind::Conv),
            "DW" => Some(LayerKind::DepthwiseConv),
            "PW" => Some(LayerKind::PointwiseConv),
            "FC" => Some(LayerKind::FullyConnected),
            "PL" => Some(LayerKind::Projection),
            _ => None,
        }
    }

    /// Depth-wise layers reduce over a single channel; everything else
    /// reduces over all input channels.
    #[inline]
    pub fn is_depthwise(self) -> bool {
        matches!(self, LayerKind::DepthwiseConv)
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Errors produced by [`LayerShape::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// A dimension that must be positive is zero.
    ZeroDimension(&'static str),
    /// The (padded) input is smaller than the filter.
    FilterLargerThanInput,
    /// Depth-wise layers must have `num_filters == in_channels`.
    DepthwiseChannelMismatch {
        /// The layer's input channel count.
        in_channels: u32,
        /// The layer's filter count (must equal `in_channels`).
        num_filters: u32,
    },
    /// A derived quantity (padded extent, footprint, or MAC count) would
    /// overflow its integer representation. The payload names the
    /// quantity that overflowed.
    TooLarge(&'static str),
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroDimension(d) => write!(f, "dimension {d} must be positive"),
            ShapeError::FilterLargerThanInput => {
                write!(f, "filter does not fit inside the padded input")
            }
            ShapeError::DepthwiseChannelMismatch {
                in_channels,
                num_filters,
            } => write!(
                f,
                "depth-wise layer needs num_filters ({num_filters}) == in_channels ({in_channels})"
            ),
            ShapeError::TooLarge(what) => {
                write!(f, "layer dimensions too large: {what} overflows")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// The hyperparameters of a convolutional / fully-connected layer
/// (Table 1 of the paper).
///
/// `O_H`, `O_W`, and `C_O` are derived, not stored:
/// `O = (I + 2P − F) / S + 1` per spatial dimension, and
/// `C_O = F#` (for depth-wise layers `C_O = C_I = F#`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerShape {
    /// `I_H`: ifmap height.
    pub ifmap_h: u32,
    /// `I_W`: ifmap width.
    pub ifmap_w: u32,
    /// `C_I`: number of ifmap (and filter) channels.
    pub in_channels: u32,
    /// `F_H`: filter height.
    pub filter_h: u32,
    /// `F_W`: filter width.
    pub filter_w: u32,
    /// `F#`: number of 3-D filters.
    pub num_filters: u32,
    /// `S`: stride (same in both spatial dimensions).
    pub stride: u32,
    /// `P`: padding (same on all sides).
    pub padding: u32,
    /// Whether the layer reduces over one channel (depth-wise) or all.
    pub depthwise: bool,
}

impl LayerShape {
    /// Check the structural invariants. All derived-quantity methods assume
    /// a validated shape.
    pub fn validate(&self) -> Result<(), ShapeError> {
        for (name, v) in [
            ("ifmap_h", self.ifmap_h),
            ("ifmap_w", self.ifmap_w),
            ("in_channels", self.in_channels),
            ("filter_h", self.filter_h),
            ("filter_w", self.filter_w),
            ("num_filters", self.num_filters),
            ("stride", self.stride),
        ] {
            if v == 0 {
                return Err(ShapeError::ZeroDimension(name));
            }
        }
        // Overflow guards come before any call to the derived-quantity
        // methods: those assume a validated shape and use unchecked
        // arithmetic. Compute the padded extents in u64 so even
        // `u32::MAX`-sized inputs from a hostile topology file cannot
        // wrap — they must produce `TooLarge`, never a panic.
        let padded_h = self.ifmap_h as u64 + 2 * self.padding as u64;
        let padded_w = self.ifmap_w as u64 + 2 * self.padding as u64;
        if padded_h > u32::MAX as u64 || padded_w > u32::MAX as u64 {
            return Err(ShapeError::TooLarge("padded ifmap extent"));
        }
        if padded_h < self.filter_h as u64 || padded_w < self.filter_w as u64 {
            return Err(ShapeError::FilterLargerThanInput);
        }
        if self.depthwise && self.num_filters != self.in_channels {
            return Err(ShapeError::DepthwiseChannelMismatch {
                in_channels: self.in_channels,
                num_filters: self.num_filters,
            });
        }
        let too_large = |what| ShapeError::TooLarge(what);
        let filter_channels: u64 = if self.depthwise {
            1
        } else {
            self.in_channels as u64
        };
        padded_h
            .checked_mul(padded_w)
            .and_then(|v| v.checked_mul(self.in_channels as u64))
            .ok_or(too_large("padded ifmap footprint"))?;
        let single_filter = (self.filter_h as u64)
            .checked_mul(self.filter_w as u64)
            .and_then(|v| v.checked_mul(filter_channels))
            .ok_or(too_large("filter footprint"))?;
        single_filter
            .checked_mul(self.num_filters as u64)
            .ok_or(too_large("total filter footprint"))?;
        let oh = (padded_h - self.filter_h as u64) / self.stride as u64 + 1;
        let ow = (padded_w - self.filter_w as u64) / self.stride as u64 + 1;
        let ofmap = oh
            .checked_mul(ow)
            .and_then(|v| v.checked_mul(self.num_filters as u64))
            .ok_or(too_large("ofmap footprint"))?;
        // Derived GEMM dimensions (im2col view, [`gemm_dims`](Self::gemm_dims)):
        // M = O_H·O_W, K = F_H·F_W·(filter channels), N = F#. The planner,
        // checker, and simulator all reason about layers through these
        // operands, so a shape whose im2col matrix (M·K) or GEMM output
        // (M·N) would wrap u64 is rejected here by name — before the MAC
        // check, which would otherwise mask which operand overflowed.
        let m = oh * ow; // each factor < 2^32, cannot wrap u64
        m.checked_mul(single_filter)
            .ok_or(too_large("im2col GEMM operand (M*K)"))?;
        m.checked_mul(self.num_filters as u64)
            .ok_or(too_large("GEMM output (M*N)"))?;
        ofmap
            .checked_mul(single_filter)
            .ok_or(too_large("MAC count"))?;
        Ok(())
    }

    /// Padded ifmap height `I_H + 2P`.
    #[inline]
    pub fn padded_h(&self) -> u32 {
        self.ifmap_h + 2 * self.padding
    }

    /// Padded ifmap width `I_W + 2P`.
    #[inline]
    pub fn padded_w(&self) -> u32 {
        self.ifmap_w + 2 * self.padding
    }

    /// Output spatial dimensions `(O_H, O_W)`.
    #[inline]
    pub fn output_hw(&self) -> (u32, u32) {
        let oh = (self.padded_h() - self.filter_h) / self.stride + 1;
        let ow = (self.padded_w() - self.filter_w) / self.stride + 1;
        (oh, ow)
    }

    /// Number of output channels `C_O`.
    #[inline]
    pub fn out_channels(&self) -> u32 {
        self.num_filters
    }

    /// Unpadded ifmap footprint in elements: `I_H · I_W · C_I`.
    #[inline]
    pub fn ifmap_elems(&self) -> u64 {
        self.ifmap_h as u64 * self.ifmap_w as u64 * self.in_channels as u64
    }

    /// Padded ifmap footprint in elements: `(I_H+2P)(I_W+2P)·C_I`. This is
    /// what the paper stores and transfers ("we consider padding of the
    /// ifmap in our estimations", Section 5.1).
    #[inline]
    pub fn padded_ifmap_elems(&self) -> u64 {
        self.padded_h() as u64 * self.padded_w() as u64 * self.in_channels as u64
    }

    /// Channels each filter carries: 1 for depth-wise layers, `C_I` else.
    #[inline]
    pub fn filter_channels(&self) -> u64 {
        if self.depthwise {
            1
        } else {
            self.in_channels as u64
        }
    }

    /// One filter's footprint in elements: `F_H · F_W ·` filter channels.
    #[inline]
    pub fn single_filter_elems(&self) -> u64 {
        self.filter_h as u64 * self.filter_w as u64 * self.filter_channels()
    }

    /// All filters' footprint in elements.
    #[inline]
    pub fn filter_elems(&self) -> u64 {
        self.single_filter_elems() * self.num_filters as u64
    }

    /// Ofmap footprint in elements: `O_H · O_W · C_O`.
    #[inline]
    pub fn ofmap_elems(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        oh as u64 * ow as u64 * self.out_channels() as u64
    }

    /// Multiply-accumulate operations for the layer:
    /// `O_H·O_W·C_O·F_H·F_W·`(filter channels).
    #[inline]
    pub fn macs(&self) -> u64 {
        self.ofmap_elems() * self.filter_h as u64 * self.filter_w as u64 * self.filter_channels()
    }

    /// GEMM view of the layer after im2col: `(M, N, K)` with
    /// `M = O_H·O_W`, `N = F#`, `K = F_H·F_W·`(filter channels).
    /// Depth-wise layers are `C_I` independent `(M, 1, F_H·F_W)` GEMMs;
    /// this returns the per-channel view with `N = 1` in that case.
    #[inline]
    pub fn gemm_dims(&self) -> (u64, u64, u64) {
        let (oh, ow) = self.output_hw();
        let m = oh as u64 * ow as u64;
        let k = self.filter_h as u64 * self.filter_w as u64 * self.filter_channels();
        let n = if self.depthwise {
            1
        } else {
            self.num_filters as u64
        };
        (m, n, k)
    }
}

/// A named layer of a network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name, unique within a network.
    pub name: String,
    /// Table 2 category.
    pub kind: LayerKind,
    /// Hyperparameters.
    pub shape: LayerShape,
}

impl Layer {
    /// Construct and validate a layer.
    pub fn new(
        name: impl Into<String>,
        kind: LayerKind,
        shape: LayerShape,
    ) -> Result<Self, ShapeError> {
        shape.validate()?;
        if kind.is_depthwise() != shape.depthwise {
            // Keep the redundant flag coherent with the kind.
            return Err(ShapeError::DepthwiseChannelMismatch {
                in_channels: shape.in_channels,
                num_filters: shape.num_filters,
            });
        }
        Ok(Layer {
            name: name.into(),
            kind,
            shape,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn conv224() -> LayerShape {
        // ResNet18 conv1: 224×224×3 input, 7×7×3×64 filters, stride 2, pad 3.
        LayerShape {
            ifmap_h: 224,
            ifmap_w: 224,
            in_channels: 3,
            filter_h: 7,
            filter_w: 7,
            num_filters: 64,
            stride: 2,
            padding: 3,
            depthwise: false,
        }
    }

    #[test]
    fn resnet_conv1_output_dims() {
        let s = conv224();
        s.validate().unwrap();
        assert_eq!(s.output_hw(), (112, 112));
        assert_eq!(s.out_channels(), 64);
    }

    #[test]
    fn resnet_conv1_footprints() {
        let s = conv224();
        assert_eq!(s.ifmap_elems(), 224 * 224 * 3);
        assert_eq!(s.padded_ifmap_elems(), 230 * 230 * 3);
        assert_eq!(s.filter_elems(), 7 * 7 * 3 * 64);
        assert_eq!(s.ofmap_elems(), 112 * 112 * 64);
    }

    #[test]
    fn resnet_conv1_macs() {
        let s = conv224();
        assert_eq!(s.macs(), 112 * 112 * 64 * 7 * 7 * 3);
    }

    #[test]
    fn depthwise_footprints_have_single_channel_filters() {
        let s = LayerShape {
            ifmap_h: 112,
            ifmap_w: 112,
            in_channels: 32,
            filter_h: 3,
            filter_w: 3,
            num_filters: 32,
            stride: 1,
            padding: 1,
            depthwise: true,
        };
        s.validate().unwrap();
        assert_eq!(s.output_hw(), (112, 112));
        assert_eq!(s.filter_elems(), 3 * 3 * 32);
        assert_eq!(s.single_filter_elems(), 9);
        assert_eq!(s.macs(), 112 * 112 * 32 * 9);
        let (m, n, k) = s.gemm_dims();
        assert_eq!((m, n, k), (112 * 112, 1, 9));
    }

    #[test]
    fn depthwise_requires_matching_channels() {
        let s = LayerShape {
            ifmap_h: 8,
            ifmap_w: 8,
            in_channels: 16,
            filter_h: 3,
            filter_w: 3,
            num_filters: 8,
            stride: 1,
            padding: 1,
            depthwise: true,
        };
        assert!(matches!(
            s.validate(),
            Err(ShapeError::DepthwiseChannelMismatch { .. })
        ));
    }

    #[test]
    fn fully_connected_as_1x1_conv() {
        let s = LayerShape {
            ifmap_h: 1,
            ifmap_w: 1,
            in_channels: 512,
            filter_h: 1,
            filter_w: 1,
            num_filters: 1000,
            stride: 1,
            padding: 0,
            depthwise: false,
        };
        s.validate().unwrap();
        assert_eq!(s.output_hw(), (1, 1));
        assert_eq!(s.ifmap_elems(), 512);
        assert_eq!(s.filter_elems(), 512_000);
        assert_eq!(s.ofmap_elems(), 1000);
        assert_eq!(s.macs(), 512_000);
    }

    #[test]
    fn zero_dimension_rejected() {
        let mut s = conv224();
        s.in_channels = 0;
        assert_eq!(s.validate(), Err(ShapeError::ZeroDimension("in_channels")));
        let mut s = conv224();
        s.stride = 0;
        assert_eq!(s.validate(), Err(ShapeError::ZeroDimension("stride")));
    }

    #[test]
    fn oversized_filter_rejected() {
        let mut s = conv224();
        s.filter_h = 231;
        assert_eq!(s.validate(), Err(ShapeError::FilterLargerThanInput));
    }

    #[test]
    fn huge_dimensions_error_instead_of_overflowing() {
        // Padded extent wraps u32: I_H + 2P > u32::MAX.
        let mut s = conv224();
        s.ifmap_h = u32::MAX;
        s.padding = u32::MAX;
        assert_eq!(
            s.validate(),
            Err(ShapeError::TooLarge("padded ifmap extent"))
        );

        // Footprint wraps u64: I_H·I_W·C_I ≈ 2^96 with no padding.
        let mut s = conv224();
        s.ifmap_h = u32::MAX;
        s.ifmap_w = u32::MAX;
        s.in_channels = u32::MAX;
        s.padding = 0;
        assert_eq!(
            s.validate(),
            Err(ShapeError::TooLarge("padded ifmap footprint"))
        );

        // Total filter footprint wraps u64 while the ifmap still fits:
        // single filter ≈ 2^33 elements times 2^31 filters.
        let mut s = conv224();
        s.ifmap_h = 1 << 31;
        s.ifmap_w = 2;
        s.in_channels = 2;
        s.filter_h = 1 << 31;
        s.filter_w = 2;
        s.num_filters = 1 << 31;
        s.stride = 1;
        s.padding = 0;
        assert_eq!(
            s.validate(),
            Err(ShapeError::TooLarge("total filter footprint"))
        );

        // MAC count wraps u64 even though each footprint fits: large
        // spatial output times a large filter volume.
        let mut s = conv224();
        s.ifmap_h = 1 << 20;
        s.ifmap_w = 1 << 20;
        s.in_channels = 1 << 10;
        s.filter_h = 1 << 10;
        s.filter_w = 1 << 10;
        s.num_filters = 1 << 10;
        s.stride = 1;
        s.padding = 0;
        assert!(matches!(s.validate(), Err(ShapeError::TooLarge(_))));

        // The error message names the overflowing quantity.
        let mut s = conv224();
        s.ifmap_h = u32::MAX;
        s.padding = u32::MAX;
        assert!(s.validate().unwrap_err().to_string().contains("too large"));
    }

    #[test]
    fn gemm_dimension_overflow_rejected_by_name() {
        // M·K (the im2col matrix) wraps u64 while every individual
        // footprint still fits: M ≈ 2^40 output pixels, K = 2^25 filter
        // elements, single input channel, one filter.
        let s = LayerShape {
            ifmap_h: 1 << 20,
            ifmap_w: 1 << 20,
            in_channels: 1,
            filter_h: 1 << 12,
            filter_w: 1 << 13,
            num_filters: 1,
            stride: 1,
            padding: 0,
            depthwise: false,
        };
        assert_eq!(
            s.validate(),
            Err(ShapeError::TooLarge("im2col GEMM operand (M*K)"))
        );
        assert!(s.validate().unwrap_err().to_string().contains("M*K"));
    }

    #[test]
    fn layer_kind_codes_round_trip() {
        for k in [
            LayerKind::Conv,
            LayerKind::DepthwiseConv,
            LayerKind::PointwiseConv,
            LayerKind::FullyConnected,
            LayerKind::Projection,
        ] {
            assert_eq!(LayerKind::from_code(k.code()), Some(k));
        }
        assert_eq!(LayerKind::from_code("??"), None);
    }

    #[test]
    fn layer_new_rejects_kind_shape_mismatch() {
        let mut s = conv224();
        s.depthwise = false;
        assert!(Layer::new("x", LayerKind::DepthwiseConv, s).is_err());
    }

    proptest! {
        /// `O = (I + 2P − F)/S + 1` implies the last window fits inside
        /// the padded input for every valid shape.
        #[test]
        fn output_windows_fit_in_padded_input(
            ih in 1u32..64, iw in 1u32..64, ci in 1u32..8,
            fh in 1u32..8, fw in 1u32..8, nf in 1u32..8,
            s in 1u32..4, p in 0u32..4,
        ) {
            let shape = LayerShape {
                ifmap_h: ih, ifmap_w: iw, in_channels: ci,
                filter_h: fh, filter_w: fw, num_filters: nf,
                stride: s, padding: p, depthwise: false,
            };
            prop_assume!(shape.validate().is_ok());
            let (oh, ow) = shape.output_hw();
            prop_assert!( (oh - 1) * s + fh <= shape.padded_h());
            prop_assert!( (ow - 1) * s + fw <= shape.padded_w());
        }

        /// MACs equal the GEMM volume for non-depth-wise layers.
        #[test]
        fn macs_match_gemm_volume(
            ih in 3u32..32, iw in 3u32..32, ci in 1u32..8,
            fh in 1u32..4, fw in 1u32..4, nf in 1u32..16,
        ) {
            let shape = LayerShape {
                ifmap_h: ih, ifmap_w: iw, in_channels: ci,
                filter_h: fh, filter_w: fw, num_filters: nf,
                stride: 1, padding: 0, depthwise: false,
            };
            prop_assume!(shape.validate().is_ok());
            let (m, n, k) = shape.gemm_dims();
            prop_assert_eq!(shape.macs(), m * n * k);
        }

        /// Padding only ever grows the stored ifmap.
        #[test]
        fn padded_at_least_unpadded(
            ih in 1u32..64, iw in 1u32..64, ci in 1u32..8, p in 0u32..4,
        ) {
            let shape = LayerShape {
                ifmap_h: ih, ifmap_w: iw, in_channels: ci,
                filter_h: 1, filter_w: 1, num_filters: 1,
                stride: 1, padding: p, depthwise: false,
            };
            prop_assert!(shape.padded_ifmap_elems() >= shape.ifmap_elems());
        }
    }
}
