use super::{conv, dw, fc, pw};
use crate::{Layer, Network};

/// One inverted-residual (MBConv) block: optional 1×1 expansion,
/// depth-wise 3×3, and 1×1 linear projection.
fn bottleneck(
    layers: &mut Vec<Layer>,
    name: &str,
    hw: u32,
    cin: u32,
    cout: u32,
    expand: u32,
    stride: u32,
) {
    let cexp = cin * expand;
    let mut cur_hw = hw;
    if expand != 1 {
        layers.push(pw(format!("{name}_expand"), hw, cin, cexp));
    }
    layers.push(dw(format!("{name}_dw"), cur_hw, cexp, 3, stride));
    if stride == 2 {
        cur_hw /= 2;
    }
    layers.push(pw(format!("{name}_project"), cur_hw, cexp, cout));
}

/// MobileNetV2 [Sandler et al., CVPR'18], 53 layers (Table 2): the 3×3
/// stem, seventeen inverted-residual bottlenecks
/// (t,c,n,s) = (1,16,1,1),(6,24,2,2),(6,32,3,2),(6,64,4,2),(6,96,3,1),
/// (6,160,3,2),(6,320,1,1), the 1×1×1280 head, and the classifier.
pub fn mobilenetv2() -> Network {
    // (expansion t, out channels c, repeats n, first stride s)
    const CFG: [(u32, u32, u32, u32); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];

    let mut layers = vec![conv("conv1", 224, 3, 3, 32, 2, 1)];
    let mut hw = 112u32;
    let mut cin = 32u32;
    for (gi, &(t, c, n, s)) in CFG.iter().enumerate() {
        for r in 0..n {
            let stride = if r == 0 { s } else { 1 };
            let name = format!("b{}_{}", gi + 1, r + 1);
            bottleneck(&mut layers, &name, hw, cin, c, t, stride);
            if stride == 2 {
                hw /= 2;
            }
            cin = c;
        }
    }
    layers.push(pw("conv_head", hw, cin, 1280));
    layers.push(fc("fc", 1280, 1000));

    Network::new("MobileNetV2", layers).expect("MobileNetV2 definition must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_53_layers() {
        assert_eq!(mobilenetv2().layers.len(), 53);
    }

    #[test]
    fn first_bottleneck_has_no_expansion() {
        let net = mobilenetv2();
        assert!(net.layer("b1_1_expand").is_none());
        assert!(net.layer("b1_1_dw").is_some());
        assert!(net.layer("b2_1_expand").is_some());
    }

    #[test]
    fn head_sees_7x7x320() {
        let net = mobilenetv2();
        let head = net.layer("conv_head").unwrap();
        assert_eq!(head.shape.ifmap_h, 7);
        assert_eq!(head.shape.in_channels, 320);
        assert_eq!(head.shape.out_channels(), 1280);
    }

    #[test]
    fn expansion_factor_applied() {
        let net = mobilenetv2();
        let e = net.layer("b6_2_expand").unwrap();
        assert_eq!(e.shape.in_channels, 160);
        assert_eq!(e.shape.out_channels(), 960);
    }

    #[test]
    fn total_macs_in_expected_range() {
        // MobileNetV2 is ~0.3 GMACs at 224×224.
        let macs: u64 = mobilenetv2().layers.iter().map(|l| l.shape.macs()).sum();
        assert!(macs > 250_000_000, "{macs}");
        assert!(macs < 450_000_000, "{macs}");
    }
}
