//! Extension networks beyond the paper's six (Table 2).
//!
//! These are not part of the reproduction targets; they exist to
//! exercise the memory manager on architectures with very different
//! pressure profiles: VGG16 (enormous feature maps *and* filters —
//! nothing named fits small buffers), AlexNet (large strides and
//! classifier-dominated filters), ResNet34 (a deeper ResNet18),
//! and SqueezeNet (aggressively small filters).

use super::{conv, fc, proj, pw};
use crate::{Layer, Network};

/// ResNet34 [He et al., CVPR'16]: 37 layers — the ResNet18 recipe with
/// 3/4/6/3 basic blocks per stage.
pub fn resnet34() -> Network {
    let mut layers = vec![conv("conv1", 224, 3, 7, 64, 2, 3)];
    // (blocks, spatial in, channels in, channels out)
    let stages: [(u32, u32, u32, u32); 4] = [
        (3, 56, 64, 64),
        (4, 56, 64, 128),
        (6, 28, 128, 256),
        (3, 14, 256, 512),
    ];
    for (si, &(blocks, in_hw, in_ch, out_ch)) in stages.iter().enumerate() {
        let s = si + 1;
        let downsample = in_ch != out_ch;
        let out_hw = if downsample { in_hw / 2 } else { in_hw };
        for b in 1..=blocks {
            let (hw, ch, stride) = if b == 1 && downsample {
                (in_hw, in_ch, 2)
            } else {
                (out_hw, out_ch, 1)
            };
            layers.push(conv(
                format!("s{s}_b{b}_conv1"),
                hw,
                ch,
                3,
                out_ch,
                stride,
                1,
            ));
            layers.push(conv(
                format!("s{s}_b{b}_conv2"),
                out_hw,
                out_ch,
                3,
                out_ch,
                1,
                1,
            ));
            if b == 1 && downsample {
                layers.push(proj(format!("s{s}_proj"), in_hw, in_ch, out_ch, 2));
            }
        }
    }
    layers.push(fc("fc", 512, 1000));
    Network::new("ResNet34", layers).expect("ResNet34 definition must validate")
}

/// VGG16 [Simonyan & Zisserman, 2015]: 16 layers of uniform 3×3
/// convolutions and three huge fully-connected layers.
pub fn vgg16() -> Network {
    let mut layers: Vec<Layer> = Vec::new();
    // (spatial, in channels, out channels) per conv; pools between groups.
    let cfg: [(u32, u32, u32); 13] = [
        (224, 3, 64),
        (224, 64, 64),
        (112, 64, 128),
        (112, 128, 128),
        (56, 128, 256),
        (56, 256, 256),
        (56, 256, 256),
        (28, 256, 512),
        (28, 512, 512),
        (28, 512, 512),
        (14, 512, 512),
        (14, 512, 512),
        (14, 512, 512),
    ];
    for (i, &(hw, cin, cout)) in cfg.iter().enumerate() {
        layers.push(conv(format!("conv{}", i + 1), hw, cin, 3, cout, 1, 1));
    }
    layers.push(fc("fc1", 7 * 7 * 512, 4096));
    layers.push(fc("fc2", 4096, 4096));
    layers.push(fc("fc3", 4096, 1000));
    Network::new("VGG16", layers).expect("VGG16 definition must validate")
}

/// AlexNet [Krizhevsky et al., 2012]: 8 layers.
pub fn alexnet() -> Network {
    let layers = vec![
        conv("conv1", 227, 3, 11, 96, 4, 0),
        conv("conv2", 27, 96, 5, 256, 1, 2),
        conv("conv3", 13, 256, 3, 384, 1, 1),
        conv("conv4", 13, 384, 3, 384, 1, 1),
        conv("conv5", 13, 384, 3, 256, 1, 1),
        fc("fc1", 6 * 6 * 256, 4096),
        fc("fc2", 4096, 4096),
        fc("fc3", 4096, 1000),
    ];
    Network::new("AlexNet", layers).expect("AlexNet definition must validate")
}

/// SqueezeNet 1.0 [Iandola et al., 2016]: 26 layers — a stem, eight fire
/// modules (squeeze 1×1, expand 1×1 + expand 3×3, serialized), plus the
/// 1×1 classifier convolution. Spatial plan follows the original pooling
/// placement (after the stem, fire4 and fire8).
pub fn squeezenet() -> Network {
    fn fire(layers: &mut Vec<Layer>, name: &str, hw: u32, cin: u32, s: u32, e: u32) -> u32 {
        layers.push(pw(format!("{name}_squeeze"), hw, cin, s));
        layers.push(pw(format!("{name}_expand1x1"), hw, s, e));
        layers.push(conv(format!("{name}_expand3x3"), hw, s, 3, e, 1, 1));
        2 * e
    }

    let mut layers = vec![conv("conv1", 224, 3, 7, 96, 2, 0)]; // → 109, pool → 54
    let mut ch = 96;
    ch = fire(&mut layers, "fire2", 54, ch, 16, 64);
    ch = fire(&mut layers, "fire3", 54, ch, 16, 64);
    ch = fire(&mut layers, "fire4", 54, ch, 32, 128); // pool → 27
    ch = fire(&mut layers, "fire5", 27, ch, 32, 128);
    ch = fire(&mut layers, "fire6", 27, ch, 48, 192);
    ch = fire(&mut layers, "fire7", 27, ch, 48, 192);
    ch = fire(&mut layers, "fire8", 27, ch, 64, 256); // pool → 13
    ch = fire(&mut layers, "fire9", 13, ch, 64, 256);
    layers.push(pw("conv10", 13, ch, 1000));
    Network::new("SqueezeNet", layers).expect("SqueezeNet definition must validate")
}

/// The extension networks (not part of the paper's Table 2 set).
pub fn extended_networks() -> Vec<Network> {
    vec![alexnet(), resnet34(), squeezenet(), vgg16()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts() {
        assert_eq!(resnet34().layers.len(), 37);
        assert_eq!(vgg16().layers.len(), 16);
        assert_eq!(alexnet().layers.len(), 8);
        assert_eq!(squeezenet().layers.len(), 26);
    }

    #[test]
    fn all_extended_networks_validate() {
        for net in extended_networks() {
            for l in &net.layers {
                l.shape
                    .validate()
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", net.name, l.name));
            }
        }
    }

    #[test]
    fn vgg16_macs_in_expected_range() {
        // VGG16 is ~15.5 GMACs at 224×224.
        let macs: u64 = vgg16().layers.iter().map(|l| l.shape.macs()).sum();
        assert!(macs > 14_000_000_000, "{macs}");
        assert!(macs < 17_000_000_000, "{macs}");
    }

    #[test]
    fn alexnet_conv1_dims() {
        let net = alexnet();
        assert_eq!(net.layers[0].shape.output_hw(), (55, 55));
    }

    #[test]
    fn resnet34_chains_like_resnet18() {
        let net = resnet34();
        let l = net.layer("s3_b1_conv1").unwrap();
        assert_eq!(l.shape.in_channels, 128);
        assert_eq!(l.shape.out_channels(), 256);
        assert_eq!(l.shape.output_hw(), (14, 14));
    }

    #[test]
    fn squeezenet_fire_channel_flow() {
        let net = squeezenet();
        let s = net.layer("fire5_squeeze").unwrap();
        assert_eq!(s.shape.in_channels, 256);
        assert_eq!(s.shape.out_channels(), 32);
        let c10 = net.layer("conv10").unwrap();
        assert_eq!(c10.shape.in_channels, 512);
    }

    #[test]
    fn resnet34_macs_in_expected_range() {
        // ResNet34 is ~3.6 GMACs at 224×224.
        let macs: u64 = resnet34().layers.iter().map(|l| l.shape.macs()).sum();
        assert!(macs > 3_200_000_000, "{macs}");
        assert!(macs < 4_100_000_000, "{macs}");
    }
}
