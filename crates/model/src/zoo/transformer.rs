//! Transformer / GEMM-heavy workloads.
//!
//! Transformer layers are (batched) GEMMs, and a GEMM maps onto the
//! existing [`LayerShape`] vocabulary as a point-wise convolution over a
//! degenerate `M×1` spatial extent: `ifmap_h = M`, `ifmap_w = 1`,
//! `in_channels = K`, a `1×1` filter, and `num_filters = N` gives
//! [`LayerShape::gemm_dims`] `(M, N, K)` exactly. Every analysis in the
//! workspace — Algorithm 1 policy selection, inter-layer reuse, the
//! checker's re-derivation, and the simulator — already reasons about
//! layers through their footprints and GEMM view, so these networks flow
//! through analyze/plan/serve/check/simulate unchanged.
//!
//! Mapping conventions (documented in `docs/WORKLOADS.md`):
//! - Sequence length becomes the spatial `M` dimension; the model/feature
//!   dimension becomes channels.
//! - Multi-head attention score and context GEMMs are folded across heads
//!   into single MAC-volume-exact GEMMs: scores are `M = S, K = d_model,
//!   N = S` (per-head `h·S·S·d_head = S·S·d_model` MACs) and the context
//!   product is `M = S, K = S, N = d_model`.
//! - Softmax, layer-norm, and residual adds hold no filter state and are
//!   not memory-management decision points; like pooling in the CNN zoo
//!   they are folded away, and the branchy attention dataflow is
//!   serialized into a flat layer order (so consecutive same-shape
//!   projections appear chained to the inter-layer pass, the same
//!   approximation the linearized residual networks already make).

use super::fc;
use crate::{Layer, LayerKind, LayerShape, Network};

/// A GEMM `C[M×N] = A[M×K] · B[K×N]`, encoded as a point-wise convolution
/// over an `M×1` spatial extent.
fn gemm(name: impl Into<String>, m: u32, k: u32, n: u32) -> Layer {
    Layer::new(
        name,
        LayerKind::PointwiseConv,
        LayerShape {
            ifmap_h: m,
            ifmap_w: 1,
            in_channels: k,
            filter_h: 1,
            filter_w: 1,
            num_filters: n,
            stride: 1,
            padding: 0,
            depthwise: false,
        },
    )
    .expect("zoo gemm layer must be valid")
}

/// BERT-Tiny-shaped encoder stack: 2 transformer blocks with
/// `d_model = 128`, 2 heads, `d_ffn = 512`, sequence length 128, plus the
/// pooler and a 2-way classifier head — 18 GEMM layers total.
pub fn bert_tiny() -> Network {
    const SEQ: u32 = 128; // sequence length (spatial M)
    const D: u32 = 128; // d_model
    const FFN: u32 = 512; // feed-forward inner dimension
    let mut layers = Vec::new();
    for b in 0..2 {
        let n = |stage: &str| format!("blk{b}_{stage}");
        layers.push(gemm(n("q_proj"), SEQ, D, D));
        layers.push(gemm(n("k_proj"), SEQ, D, D));
        layers.push(gemm(n("v_proj"), SEQ, D, D));
        // Attention scores QKᵀ, folded across heads (MAC-volume exact).
        layers.push(gemm(n("attn_scores"), SEQ, D, SEQ));
        // Context = scores · V, folded across heads.
        layers.push(gemm(n("attn_context"), SEQ, SEQ, D));
        layers.push(gemm(n("out_proj"), SEQ, D, D));
        layers.push(gemm(n("mlp_fc1"), SEQ, D, FFN));
        layers.push(gemm(n("mlp_fc2"), SEQ, FFN, D));
    }
    layers.push(fc("pooler", D, D));
    layers.push(fc("classifier", D, 2));
    Network::new("BERT-Tiny", layers).expect("BERT-Tiny must validate")
}

/// Pure-GEMM microbenchmark net: six assorted `M×K×N` problems (square,
/// tall-skinny, wide, and reduction-heavy) chosen so no two consecutive
/// layers chain — each GEMM is planned in isolation.
pub fn gemm_bench() -> Network {
    let layers = vec![
        gemm("square_128", 128, 128, 128),
        gemm("square_256", 256, 256, 256),
        gemm("square_512", 512, 512, 512),
        gemm("tall_2048x256x64", 2048, 256, 64),
        gemm("wide_64x512x2048", 64, 512, 2048),
        gemm("kheavy_256x2048x256", 256, 2048, 256),
    ];
    Network::new("GEMM-Bench", layers).expect("GEMM-Bench must validate")
}

/// The transformer/GEMM additions to the zoo, in alphabetical order.
pub fn transformer_networks() -> Vec<Network> {
    vec![bert_tiny(), gemm_bench()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_arch::DataWidth;

    #[test]
    fn bert_tiny_structure() {
        let net = bert_tiny();
        assert_eq!(net.layers.len(), 18);
        // 2 blocks of 8 GEMMs plus pooler and classifier.
        assert_eq!(
            net.layers
                .iter()
                .filter(|l| l.kind == LayerKind::PointwiseConv)
                .count(),
            16
        );
        assert_eq!(
            net.layers
                .iter()
                .filter(|l| l.kind == LayerKind::FullyConnected)
                .count(),
            2
        );
    }

    #[test]
    fn gemm_mapping_is_mac_volume_exact() {
        // One encoder block of BERT-Tiny (S = 128, d = 128, ffn = 512):
        // 4 d×d projections + scores + context + 2 MLP GEMMs.
        let s = 128u64;
        let d = 128u64;
        let ffn = 512u64;
        let block_macs = 4 * s * d * d + 2 * s * s * d + 2 * s * d * ffn;
        let head_macs = d * d + d * 2; // pooler + classifier
        let expected = 2 * block_macs + head_macs;
        assert_eq!(bert_tiny().stats(DataWidth::W8).total_macs, expected);
    }

    #[test]
    fn gemm_layers_expose_their_dims() {
        let net = gemm_bench();
        let l = net.layer("tall_2048x256x64").unwrap();
        assert_eq!(l.shape.gemm_dims(), (2048, 64, 256));
        let l = net.layer("square_512").unwrap();
        assert_eq!(l.shape.gemm_dims(), (512, 512, 512));
    }

    #[test]
    fn gemm_bench_layers_do_not_chain() {
        // Each microbenchmark GEMM must be planned in isolation: no
        // consecutive pair chains (producer ofmap shape ≠ consumer ifmap).
        let net = gemm_bench();
        for pair in net.layers.windows(2) {
            let p = &pair[0].shape;
            let c = &pair[1].shape;
            let (oh, ow) = p.output_hw();
            let chains = p.out_channels() == c.in_channels && (oh, ow) == (c.ifmap_h, c.ifmap_w);
            assert!(!chains, "{} chains into {}", pair[0].name, pair[1].name);
        }
    }
}
