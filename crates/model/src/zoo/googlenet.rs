use super::{conv, fc, pw};
use crate::{Layer, Network};

/// One Inception module: four parallel branches serialized in order
/// (1×1), (3×3 reduce, 3×3), (5×5 reduce, 5×5), (pool projection).
#[allow(clippy::too_many_arguments)]
fn inception(
    layers: &mut Vec<Layer>,
    name: &str,
    hw: u32,
    cin: u32,
    n1: u32,
    n3r: u32,
    n3: u32,
    n5r: u32,
    n5: u32,
    pp: u32,
) -> u32 {
    layers.push(pw(format!("{name}_1x1"), hw, cin, n1));
    layers.push(pw(format!("{name}_3x3_reduce"), hw, cin, n3r));
    layers.push(conv(format!("{name}_3x3"), hw, n3r, 3, n3, 1, 1));
    layers.push(pw(format!("{name}_5x5_reduce"), hw, cin, n5r));
    layers.push(conv(format!("{name}_5x5"), hw, n5r, 5, n5, 1, 2));
    layers.push(pw(format!("{name}_pool_proj"), hw, cin, pp));
    n1 + n3 + n5 + pp
}

/// One auxiliary classifier: after a 4×4 average pool, a 1×1×128
/// convolution and two fully-connected layers.
fn aux_classifier(layers: &mut Vec<Layer>, name: &str, cin: u32) {
    layers.push(pw(format!("{name}_conv"), 4, cin, 128));
    layers.push(fc(format!("{name}_fc1"), 4 * 4 * 128, 1024));
    layers.push(fc(format!("{name}_fc2"), 1024, 1000));
}

/// GoogLeNet [Szegedy et al., CVPR'15], 64 layers (Table 2): stem
/// (7×7 conv, 1×1 reduce, 3×3 conv), nine Inception modules of six
/// convolutions each, the two auxiliary classifiers (three layers each),
/// and the final classifier.
pub fn googlenet() -> Network {
    let mut layers = vec![
        conv("conv1", 224, 3, 7, 64, 2, 3), // → 112, pool → 56
        pw("conv2_reduce", 56, 64, 64),
        conv("conv2", 56, 64, 3, 192, 1, 1), // pool → 28
    ];

    // (name, hw, cin, 1x1, 3x3red, 3x3, 5x5red, 5x5, poolproj)
    let c3a = inception(&mut layers, "inc3a", 28, 192, 64, 96, 128, 16, 32, 32);
    let c3b = inception(&mut layers, "inc3b", 28, c3a, 128, 128, 192, 32, 96, 64);
    // max-pool → 14
    let c4a = inception(&mut layers, "inc4a", 14, c3b, 192, 96, 208, 16, 48, 64);
    aux_classifier(&mut layers, "aux1", c4a);
    let c4b = inception(&mut layers, "inc4b", 14, c4a, 160, 112, 224, 24, 64, 64);
    let c4c = inception(&mut layers, "inc4c", 14, c4b, 128, 128, 256, 24, 64, 64);
    let c4d = inception(&mut layers, "inc4d", 14, c4c, 112, 144, 288, 32, 64, 64);
    aux_classifier(&mut layers, "aux2", c4d);
    let c4e = inception(&mut layers, "inc4e", 14, c4d, 256, 160, 320, 32, 128, 128);
    // max-pool → 7
    let c5a = inception(&mut layers, "inc5a", 7, c4e, 256, 160, 320, 32, 128, 128);
    let c5b = inception(&mut layers, "inc5b", 7, c5a, 384, 192, 384, 48, 128, 128);

    layers.push(fc("fc", c5b, 1000));

    Network::new("GoogLeNet", layers).expect("GoogLeNet definition must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_64_layers() {
        assert_eq!(googlenet().layers.len(), 64);
    }

    #[test]
    fn inception_output_channels_chain() {
        let net = googlenet();
        // inc3a outputs 64+128+32+32 = 256, consumed by inc3b.
        let i3b = net.layer("inc3b_1x1").unwrap();
        assert_eq!(i3b.shape.in_channels, 256);
        // inc4e outputs 832, consumed (after pooling) by inc5a at 7×7.
        let i5a = net.layer("inc5a_1x1").unwrap();
        assert_eq!(i5a.shape.in_channels, 832);
        assert_eq!(i5a.shape.ifmap_h, 7);
    }

    #[test]
    fn classifier_sees_1024_features() {
        let net = googlenet();
        let f = net.layer("fc").unwrap();
        assert_eq!(f.shape.in_channels, 1024);
    }

    #[test]
    fn aux_classifiers_present() {
        let net = googlenet();
        assert_eq!(net.layer("aux1_conv").unwrap().shape.in_channels, 512);
        assert_eq!(net.layer("aux2_conv").unwrap().shape.in_channels, 528);
        assert_eq!(net.layer("aux1_fc1").unwrap().shape.in_channels, 2048);
    }

    #[test]
    fn total_macs_in_expected_range() {
        // GoogLeNet is ~1.5 GMACs at 224×224 (aux heads included).
        let macs: u64 = googlenet().layers.iter().map(|l| l.shape.macs()).sum();
        assert!(macs > 1_200_000_000, "{macs}");
        assert!(macs < 1_900_000_000, "{macs}");
    }
}
