use super::{conv, dw, fc, pw};
use crate::{Layer, Network};

/// One MnasNet MBConv block: 1×1 expansion, depth-wise k×k, 1×1 projection.
#[allow(clippy::too_many_arguments)]
fn mbconv(
    layers: &mut Vec<Layer>,
    name: &str,
    hw: u32,
    cin: u32,
    cout: u32,
    expand: u32,
    k: u32,
    stride: u32,
) -> u32 {
    let cexp = cin * expand;
    layers.push(pw(format!("{name}_expand"), hw, cin, cexp));
    layers.push(dw(format!("{name}_dw"), hw, cexp, k, stride));
    let out_hw = if stride == 2 { hw / 2 } else { hw };
    layers.push(pw(format!("{name}_project"), out_hw, cexp, cout));
    out_hw
}

/// MnasNet-B1 [Tan et al., CVPR'19], 53 layers (Table 2): the 3×3 stem,
/// a depth-wise-separable pair, sixteen MBConv blocks
/// (t,k,c,n,s) = (3,3,24,3,2),(3,5,40,3,2),(6,5,80,3,2),(6,3,96,2,1),
/// (6,5,192,4,2),(6,3,320,1,1), the 1×1×1280 head, and the classifier.
pub fn mnasnet() -> Network {
    const CFG: [(u32, u32, u32, u32, u32); 6] = [
        // (t, k, c, n, s)
        (3, 3, 24, 3, 2),
        (3, 5, 40, 3, 2),
        (6, 5, 80, 3, 2),
        (6, 3, 96, 2, 1),
        (6, 5, 192, 4, 2),
        (6, 3, 320, 1, 1),
    ];

    let mut layers = vec![conv("conv1", 224, 3, 3, 32, 2, 1)];
    // SepConv stage: DW 3×3 on 32 channels, project to 16.
    layers.push(dw("sep_dw", 112, 32, 3, 1));
    layers.push(pw("sep_project", 112, 32, 16));

    let mut hw = 112u32;
    let mut cin = 16u32;
    for (gi, &(t, k, c, n, s)) in CFG.iter().enumerate() {
        for r in 0..n {
            let stride = if r == 0 { s } else { 1 };
            let name = format!("b{}_{}", gi + 1, r + 1);
            hw = mbconv(&mut layers, &name, hw, cin, c, t, k, stride);
            cin = c;
        }
    }
    layers.push(pw("conv_head", hw, cin, 1280));
    layers.push(fc("fc", 1280, 1000));

    Network::new("MnasNet", layers).expect("MnasNet definition must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_53_layers() {
        assert_eq!(mnasnet().layers.len(), 53);
    }

    #[test]
    fn five_by_five_kernels_present() {
        let net = mnasnet();
        let d = net.layer("b2_1_dw").unwrap();
        assert_eq!((d.shape.filter_h, d.shape.filter_w), (5, 5));
        assert_eq!(d.shape.padding, 2);
    }

    #[test]
    fn spatial_plan_ends_at_7x7() {
        let net = mnasnet();
        let head = net.layer("conv_head").unwrap();
        assert_eq!(head.shape.ifmap_h, 7);
        assert_eq!(head.shape.in_channels, 320);
    }

    #[test]
    fn sepconv_reduces_to_16_channels() {
        let net = mnasnet();
        let p = net.layer("sep_project").unwrap();
        assert_eq!(p.shape.out_channels(), 16);
    }

    #[test]
    fn total_macs_in_expected_range() {
        // MnasNet-B1 is ~0.31 GMACs at 224×224.
        let macs: u64 = mnasnet().layers.iter().map(|l| l.shape.macs()).sum();
        assert!(macs > 250_000_000, "{macs}");
        assert!(macs < 450_000_000, "{macs}");
    }
}
