use super::{conv, dw, fc, pw};
use crate::{Layer, Network};

/// One EfficientNet MBConv block: optional 1×1 expansion, depth-wise k×k,
/// squeeze-and-excitation (two FC layers on globally pooled features, with
/// a bottleneck of `cin/4`), and 1×1 linear projection.
#[allow(clippy::too_many_arguments)]
fn mbconv(
    layers: &mut Vec<Layer>,
    name: &str,
    hw: u32,
    cin: u32,
    cout: u32,
    expand: u32,
    k: u32,
    stride: u32,
) -> u32 {
    let cexp = cin * expand;
    if expand != 1 {
        layers.push(pw(format!("{name}_expand"), hw, cin, cexp));
    }
    layers.push(dw(format!("{name}_dw"), hw, cexp, k, stride));
    let out_hw = if stride == 2 { hw / 2 } else { hw };
    // Squeeze-and-excitation operates on 1×1 pooled features; the reduce
    // ratio is 0.25 of the block *input* channels (EfficientNet convention).
    let se = (cin / 4).max(1);
    layers.push(fc(format!("{name}_se_reduce"), cexp, se));
    layers.push(fc(format!("{name}_se_expand"), se, cexp));
    layers.push(pw(format!("{name}_project"), out_hw, cexp, cout));
    out_hw
}

/// EfficientNet-B0 [Tan & Le, ICML'19], 82 layers (Table 2): the 3×3 stem,
/// sixteen MBConv blocks — (t,k,c,n,s) = (1,3,16,1,1),(6,3,24,2,2),
/// (6,5,40,2,2),(6,3,80,3,2),(6,5,112,3,1),(6,5,192,4,2),(6,3,320,1,1) —
/// each including its two squeeze-and-excitation FC layers, the
/// 1×1×1280 head, and the classifier.
pub fn efficientnetb0() -> Network {
    const CFG: [(u32, u32, u32, u32, u32); 7] = [
        // (t, k, c, n, s)
        (1, 3, 16, 1, 1),
        (6, 3, 24, 2, 2),
        (6, 5, 40, 2, 2),
        (6, 3, 80, 3, 2),
        (6, 5, 112, 3, 1),
        (6, 5, 192, 4, 2),
        (6, 3, 320, 1, 1),
    ];

    let mut layers = vec![conv("conv1", 224, 3, 3, 32, 2, 1)];
    let mut hw = 112u32;
    let mut cin = 32u32;
    for (gi, &(t, k, c, n, s)) in CFG.iter().enumerate() {
        for r in 0..n {
            let stride = if r == 0 { s } else { 1 };
            let name = format!("b{}_{}", gi + 1, r + 1);
            hw = mbconv(&mut layers, &name, hw, cin, c, t, k, stride);
            cin = c;
        }
    }
    layers.push(pw("conv_head", hw, cin, 1280));
    layers.push(fc("fc", 1280, 1000));

    Network::new("EfficientNetB0", layers).expect("EfficientNetB0 definition must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn has_82_layers() {
        assert_eq!(efficientnetb0().layers.len(), 82);
    }

    #[test]
    fn se_layers_are_fully_connected() {
        let net = efficientnetb0();
        let se = net.layer("b2_1_se_reduce").unwrap();
        assert_eq!(se.kind, LayerKind::FullyConnected);
        // b2_1 input is 16 channels, expanded ×6 = 96; reduce to 16/4 = 4.
        assert_eq!(se.shape.in_channels, 96);
        assert_eq!(se.shape.out_channels(), 4);
        let see = net.layer("b2_1_se_expand").unwrap();
        assert_eq!(see.shape.in_channels, 4);
        assert_eq!(see.shape.out_channels(), 96);
    }

    #[test]
    fn first_block_skips_expansion() {
        let net = efficientnetb0();
        assert!(net.layer("b1_1_expand").is_none());
        assert!(net.layer("b2_1_expand").is_some());
    }

    #[test]
    fn head_sees_7x7x320() {
        let net = efficientnetb0();
        let head = net.layer("conv_head").unwrap();
        assert_eq!(head.shape.ifmap_h, 7);
        assert_eq!(head.shape.in_channels, 320);
    }

    #[test]
    fn total_macs_in_expected_range() {
        // EfficientNet-B0 is ~0.39 GMACs at 224×224.
        let macs: u64 = efficientnetb0().layers.iter().map(|l| l.shape.macs()).sum();
        assert!(macs > 300_000_000, "{macs}");
        assert!(macs < 500_000_000, "{macs}");
    }
}
