use super::{conv, fc, proj};
use crate::Network;

/// ResNet18 [He et al., CVPR'16], serialized to 21 layers (Table 2):
/// the 7×7 stem, four stages of two basic blocks (two 3×3 convolutions
/// each), the three strided 1×1 projection shortcuts, and the classifier.
///
/// Spatial plan (after the stem's stride-2 conv and the 3×3 max-pool):
/// 224 → 112 → 56 (stage 1) → 28 (stage 2) → 14 (stage 3) → 7 (stage 4).
pub fn resnet18() -> Network {
    let mut layers = vec![conv("conv1", 224, 3, 7, 64, 2, 3)];

    // Stage 1: 56×56, 64 channels, no projection.
    for b in 1..=2 {
        for c in 1..=2 {
            layers.push(conv(format!("s1_b{b}_conv{c}"), 56, 64, 3, 64, 1, 1));
        }
    }

    // Stages 2–4: first block downsamples (stride-2 first conv + projection).
    let stages: [(u32, u32, u32); 3] = [(56, 64, 128), (28, 128, 256), (14, 256, 512)];
    for (si, &(in_hw, in_ch, out_ch)) in stages.iter().enumerate() {
        let s = si + 2;
        let out_hw = in_hw / 2;
        layers.push(conv(
            format!("s{s}_b1_conv1"),
            in_hw,
            in_ch,
            3,
            out_ch,
            2,
            1,
        ));
        layers.push(conv(
            format!("s{s}_b1_conv2"),
            out_hw,
            out_ch,
            3,
            out_ch,
            1,
            1,
        ));
        layers.push(proj(format!("s{s}_proj"), in_hw, in_ch, out_ch, 2));
        layers.push(conv(
            format!("s{s}_b2_conv1"),
            out_hw,
            out_ch,
            3,
            out_ch,
            1,
            1,
        ));
        layers.push(conv(
            format!("s{s}_b2_conv2"),
            out_hw,
            out_ch,
            3,
            out_ch,
            1,
            1,
        ));
    }

    layers.push(fc("fc", 512, 1000));

    Network::new("ResNet18", layers).expect("ResNet18 definition must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_21_layers() {
        assert_eq!(resnet18().layers.len(), 21);
    }

    #[test]
    fn stem_produces_112x112x64() {
        let net = resnet18();
        let stem = &net.layers[0].shape;
        assert_eq!(stem.output_hw(), (112, 112));
        assert_eq!(stem.out_channels(), 64);
    }

    #[test]
    fn stage_transitions_halve_spatial_and_double_channels() {
        let net = resnet18();
        let l = net.layer("s3_b1_conv1").unwrap();
        assert_eq!(l.shape.ifmap_h, 28);
        assert_eq!(l.shape.in_channels, 128);
        assert_eq!(l.shape.output_hw(), (14, 14));
        assert_eq!(l.shape.out_channels(), 256);
    }

    #[test]
    fn projections_match_block_outputs() {
        let net = resnet18();
        for s in 2..=4 {
            let p = net.layer(&format!("s{s}_proj")).unwrap();
            let c2 = net.layer(&format!("s{s}_b1_conv2")).unwrap();
            assert_eq!(p.shape.output_hw(), c2.shape.output_hw());
            assert_eq!(p.shape.out_channels(), c2.shape.out_channels());
        }
    }

    #[test]
    fn total_macs_in_expected_range() {
        // ResNet18 inference is ~1.8 GMACs at 224×224.
        let macs: u64 = resnet18().layers.iter().map(|l| l.shape.macs()).sum();
        assert!(macs > 1_500_000_000, "{macs}");
        assert!(macs < 2_200_000_000, "{macs}");
    }
}
