use super::{conv, dw, fc, pw};
use crate::Network;

/// MobileNet v1 [Howard et al., 2017], 28 layers (Table 2): the 3×3 stem,
/// thirteen depth-wise-separable pairs (DW 3×3 + PW 1×1), and the
/// classifier.
pub fn mobilenet() -> Network {
    // (spatial before the pair, in channels, out channels, dw stride)
    const PAIRS: [(u32, u32, u32, u32); 13] = [
        (112, 32, 64, 1),
        (112, 64, 128, 2),
        (56, 128, 128, 1),
        (56, 128, 256, 2),
        (28, 256, 256, 1),
        (28, 256, 512, 2),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 1024, 2),
        (7, 1024, 1024, 1),
    ];

    let mut layers = vec![conv("conv1", 224, 3, 3, 32, 2, 1)];
    for (i, &(hw, cin, cout, s)) in PAIRS.iter().enumerate() {
        let n = i + 1;
        layers.push(dw(format!("dw{n}"), hw, cin, 3, s));
        let pw_hw = if s == 2 { hw / 2 } else { hw };
        layers.push(pw(format!("pw{n}"), pw_hw, cin, cout));
    }
    layers.push(fc("fc", 1024, 1000));

    Network::new("MobileNet", layers).expect("MobileNet definition must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_28_layers() {
        assert_eq!(mobilenet().layers.len(), 28);
    }

    #[test]
    fn pairs_chain_spatially() {
        let net = mobilenet();
        // Each pw's input spatial extent equals the preceding dw's output.
        for n in 1..=13 {
            let d = net.layer(&format!("dw{n}")).unwrap();
            let p = net.layer(&format!("pw{n}")).unwrap();
            assert_eq!(d.shape.output_hw().0, p.shape.ifmap_h, "pair {n}");
            assert_eq!(d.shape.out_channels(), p.shape.in_channels, "pair {n}");
        }
    }

    #[test]
    fn final_feature_map_is_7x7x1024() {
        let net = mobilenet();
        let last_pw = net.layer("pw13").unwrap();
        assert_eq!(last_pw.shape.output_hw(), (7, 7));
        assert_eq!(last_pw.shape.out_channels(), 1024);
    }

    #[test]
    fn total_macs_in_expected_range() {
        // MobileNet v1 is ~0.57 GMACs at 224×224.
        let macs: u64 = mobilenet().layers.iter().map(|l| l.shape.macs()).sum();
        assert!(macs > 450_000_000, "{macs}");
        assert!(macs < 700_000_000, "{macs}");
    }
}
