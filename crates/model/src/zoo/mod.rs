//! The six evaluated networks of Table 2.
//!
//! Each model is encoded from its published architecture, serialized to a
//! flat layer-by-layer execution order (residual/branch structure is
//! linearized, as the paper's baseline requires). Layer counts match
//! Table 2 exactly: EfficientNetB0 = 82, GoogLeNet = 64, MnasNet = 53,
//! MobileNet = 28, MobileNetV2 = 53, ResNet18 = 21.
//!
//! Counting conventions inferred from Table 2:
//! - GoogLeNet's 64 layers include the two auxiliary classifiers
//!   (3 layers each) present in the training graph.
//! - EfficientNetB0's 82 layers include the two squeeze-and-excitation
//!   fully-connected layers of each MBConv block.
//! - Pooling and element-wise layers hold no filter state and are not
//!   memory-management decision points; they are folded into the spatial
//!   dimensions of the surrounding layers (as SCALE-Sim topologies do).
//!
//! Beyond the paper's six, [`extended_networks`] adds classic CNNs with
//! different pressure profiles and [`transformer_networks`] adds
//! transformer/GEMM-heavy workloads ([`bert_tiny`], [`gemm_bench`])
//! encoded as point-wise convolutions over degenerate `M×1` spatial
//! extents — see `docs/WORKLOADS.md`. [`all_networks`] stays exactly the
//! paper's six so reproduction targets never drift.

mod efficientnetb0;
mod extended;
mod googlenet;
mod mnasnet;
mod mobilenet;
mod mobilenetv2;
mod resnet18;
mod transformer;

pub use efficientnetb0::efficientnetb0;
pub use extended::{alexnet, extended_networks, resnet34, squeezenet, vgg16};
pub use googlenet::googlenet;
pub use mnasnet::mnasnet;
pub use mobilenet::mobilenet;
pub use mobilenetv2::mobilenetv2;
pub use resnet18::resnet18;
pub use transformer::{bert_tiny, gemm_bench, transformer_networks};

use crate::{Layer, LayerKind, LayerShape, Network};

/// All six networks, in the alphabetical order the paper's tables use.
pub fn all_networks() -> Vec<Network> {
    vec![
        efficientnetb0(),
        googlenet(),
        mnasnet(),
        mobilenet(),
        mobilenetv2(),
        resnet18(),
    ]
}

/// Look a zoo network up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Network> {
    match name.to_ascii_lowercase().as_str() {
        "efficientnetb0" | "efficientnet-b0" | "efficientnet" => Some(efficientnetb0()),
        "googlenet" => Some(googlenet()),
        "mnasnet" | "mnasnet-b1" => Some(mnasnet()),
        "mobilenet" | "mobilenetv1" => Some(mobilenet()),
        "mobilenetv2" => Some(mobilenetv2()),
        "resnet18" | "resnet-18" => Some(resnet18()),
        "resnet34" | "resnet-34" => Some(resnet34()),
        "vgg16" | "vgg-16" => Some(vgg16()),
        "alexnet" => Some(alexnet()),
        "squeezenet" => Some(squeezenet()),
        "bert-tiny" | "bert_tiny" | "berttiny" => Some(bert_tiny()),
        "gemm-bench" | "gemm_bench" | "gemmbench" => Some(gemm_bench()),
        _ => None,
    }
}

/// Standard convolution with a square `k×k` filter.
pub(crate) fn conv(
    name: impl Into<String>,
    hw: u32,
    in_ch: u32,
    k: u32,
    out_ch: u32,
    stride: u32,
    padding: u32,
) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv,
        LayerShape {
            ifmap_h: hw,
            ifmap_w: hw,
            in_channels: in_ch,
            filter_h: k,
            filter_w: k,
            num_filters: out_ch,
            stride,
            padding,
            depthwise: false,
        },
    )
    .expect("zoo conv layer must be valid")
}

/// Depth-wise convolution; padding defaults to `k/2` ("same" for odd `k`).
pub(crate) fn dw(name: impl Into<String>, hw: u32, ch: u32, k: u32, stride: u32) -> Layer {
    Layer::new(
        name,
        LayerKind::DepthwiseConv,
        LayerShape {
            ifmap_h: hw,
            ifmap_w: hw,
            in_channels: ch,
            filter_h: k,
            filter_w: k,
            num_filters: ch,
            stride,
            padding: k / 2,
            depthwise: true,
        },
    )
    .expect("zoo depthwise layer must be valid")
}

/// Point-wise (1×1) convolution.
pub(crate) fn pw(name: impl Into<String>, hw: u32, in_ch: u32, out_ch: u32) -> Layer {
    Layer::new(
        name,
        LayerKind::PointwiseConv,
        LayerShape {
            ifmap_h: hw,
            ifmap_w: hw,
            in_channels: in_ch,
            filter_h: 1,
            filter_w: 1,
            num_filters: out_ch,
            stride: 1,
            padding: 0,
            depthwise: false,
        },
    )
    .expect("zoo pointwise layer must be valid")
}

/// Fully-connected layer, modelled as a 1×1 convolution on 1×1 spatial.
pub(crate) fn fc(name: impl Into<String>, in_features: u32, out_features: u32) -> Layer {
    Layer::new(
        name,
        LayerKind::FullyConnected,
        LayerShape {
            ifmap_h: 1,
            ifmap_w: 1,
            in_channels: in_features,
            filter_h: 1,
            filter_w: 1,
            num_filters: out_features,
            stride: 1,
            padding: 0,
            depthwise: false,
        },
    )
    .expect("zoo fc layer must be valid")
}

/// Residual projection: strided 1×1 convolution on the shortcut path.
pub(crate) fn proj(
    name: impl Into<String>,
    hw: u32,
    in_ch: u32,
    out_ch: u32,
    stride: u32,
) -> Layer {
    Layer::new(
        name,
        LayerKind::Projection,
        LayerShape {
            ifmap_h: hw,
            ifmap_w: hw,
            in_channels: in_ch,
            filter_h: 1,
            filter_w: 1,
            num_filters: out_ch,
            stride,
            padding: 0,
            depthwise: false,
        },
    )
    .expect("zoo projection layer must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;
    use smm_arch::DataWidth;

    /// Layer counts of Table 2.
    #[test]
    fn table2_layer_counts() {
        assert_eq!(efficientnetb0().layers.len(), 82);
        assert_eq!(googlenet().layers.len(), 64);
        assert_eq!(mnasnet().layers.len(), 53);
        assert_eq!(mobilenet().layers.len(), 28);
        assert_eq!(mobilenetv2().layers.len(), 53);
        assert_eq!(resnet18().layers.len(), 21);
    }

    /// Layer-type columns of Table 2.
    #[test]
    fn table2_layer_kinds() {
        use LayerKind::*;
        let kinds = |n: crate::Network| {
            let mut k = n.stats(DataWidth::W8).kinds;
            k.sort_by_key(|k| k.code());
            k
        };
        let sorted = |mut v: Vec<LayerKind>| {
            v.sort_by_key(|k| k.code());
            v
        };
        assert_eq!(
            kinds(efficientnetb0()),
            sorted(vec![Conv, DepthwiseConv, PointwiseConv, FullyConnected])
        );
        assert_eq!(
            kinds(googlenet()),
            sorted(vec![Conv, PointwiseConv, FullyConnected])
        );
        assert_eq!(
            kinds(mnasnet()),
            sorted(vec![Conv, DepthwiseConv, PointwiseConv, FullyConnected])
        );
        assert_eq!(
            kinds(mobilenet()),
            sorted(vec![Conv, DepthwiseConv, PointwiseConv, FullyConnected])
        );
        assert_eq!(
            kinds(mobilenetv2()),
            sorted(vec![Conv, DepthwiseConv, PointwiseConv, FullyConnected])
        );
        // Table 2 lists CV, PW, FC, PL for ResNet18; the standard basic-block
        // architecture's only 1×1 convolutions are the strided projection
        // shortcuts, which we classify solely as PL instead of double-listing
        // them as PW.
        assert_eq!(
            kinds(resnet18()),
            sorted(vec![Conv, FullyConnected, Projection])
        );
    }

    /// Every zoo network passes validation and has coherent chained shapes.
    #[test]
    fn all_networks_validate() {
        for net in all_networks() {
            assert!(!net.layers.is_empty(), "{} empty", net.name);
            for l in &net.layers {
                l.shape
                    .validate()
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", net.name, l.name));
            }
        }
    }

    #[test]
    fn by_name_resolves_aliases() {
        assert_eq!(by_name("ResNet18").unwrap().name, "ResNet18");
        assert_eq!(by_name("mobilenetv2").unwrap().name, "MobileNetV2");
        assert_eq!(by_name("efficientnet-b0").unwrap().name, "EfficientNetB0");
        assert!(by_name("vgg19").is_none());
        assert_eq!(by_name("vgg16").unwrap().name, "VGG16");
        assert_eq!(by_name("bert-tiny").unwrap().name, "BERT-Tiny");
        assert_eq!(by_name("BERT_tiny").unwrap().name, "BERT-Tiny");
        assert_eq!(by_name("gemm-bench").unwrap().name, "GEMM-Bench");
    }

    #[test]
    fn transformer_networks_validate_and_order() {
        let names: Vec<String> = transformer_networks().into_iter().map(|n| n.name).collect();
        assert_eq!(names, vec!["BERT-Tiny", "GEMM-Bench"]);
        for net in transformer_networks() {
            for l in &net.layers {
                l.shape
                    .validate()
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", net.name, l.name));
            }
        }
    }

    #[test]
    fn all_networks_ordering_matches_paper_tables() {
        let names: Vec<String> = all_networks().into_iter().map(|n| n.name).collect();
        assert_eq!(
            names,
            vec![
                "EfficientNetB0",
                "GoogLeNet",
                "MnasNet",
                "MobileNet",
                "MobileNetV2",
                "ResNet18"
            ]
        );
    }
}
