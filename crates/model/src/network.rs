use crate::{Layer, LayerKind, ShapeError};
use serde::{Deserialize, Serialize};
use smm_arch::{ByteSize, DataWidth};
use std::collections::BTreeSet;

/// Per-layer memory footprint broken into the three data types, the
/// breakdown plotted in Figure 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerFootprint {
    /// Padded ifmap bytes.
    pub ifmap: ByteSize,
    /// Filter bytes.
    pub filters: ByteSize,
    /// Ofmap bytes.
    pub ofmap: ByteSize,
}

impl LayerFootprint {
    /// Total bytes across all three data types — the per-layer requirement
    /// of full intra-layer reuse.
    pub fn total(&self) -> ByteSize {
        self.ifmap + self.filters + self.ofmap
    }
}

/// Aggregate statistics over a network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of layers.
    pub layers: usize,
    /// Distinct layer kinds present (the "Types of Layers" column of
    /// Table 2).
    pub kinds: Vec<LayerKind>,
    /// Total multiply-accumulate operations for one inference.
    pub total_macs: u64,
    /// Largest single-layer footprint (all three data types).
    pub max_layer_footprint: ByteSize,
}

/// An ordered, layer-by-layer CNN model.
///
/// Residual/branch connections are serialized into a flat layer list, in
/// accordance with the paper's baseline execution model ("the residual
/// connections present in some CNNs are serialized", Section 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    /// Model name (e.g. "ResNet18").
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Construct and validate: every layer shape must be valid and layer
    /// names must be unique.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Result<Self, NetworkError> {
        let name = name.into();
        let mut seen = BTreeSet::new();
        for l in &layers {
            l.shape
                .validate()
                .map_err(|e| NetworkError::BadLayer(l.name.clone(), e))?;
            if !seen.insert(l.name.clone()) {
                return Err(NetworkError::DuplicateLayerName(l.name.clone()));
            }
        }
        if layers.is_empty() {
            return Err(NetworkError::Empty);
        }
        Ok(Network { name, layers })
    }

    /// Per-layer footprint breakdown (Figure 3) at the given data width.
    pub fn footprints(&self, width: DataWidth) -> Vec<LayerFootprint> {
        self.layers
            .iter()
            .map(|l| LayerFootprint {
                ifmap: ByteSize::from_elements(l.shape.padded_ifmap_elems(), width),
                filters: ByteSize::from_elements(l.shape.filter_elems(), width),
                ofmap: ByteSize::from_elements(l.shape.ofmap_elems(), width),
            })
            .collect()
    }

    /// Aggregate statistics at the given data width.
    pub fn stats(&self, width: DataWidth) -> NetworkStats {
        let mut kinds: Vec<LayerKind> = Vec::new();
        for l in &self.layers {
            if !kinds.contains(&l.kind) {
                kinds.push(l.kind);
            }
        }
        let total_macs = self.layers.iter().map(|l| l.shape.macs()).sum();
        let max_layer_footprint = self
            .footprints(width)
            .iter()
            .map(LayerFootprint::total)
            .max()
            .unwrap_or(ByteSize::ZERO);
        NetworkStats {
            layers: self.layers.len(),
            kinds,
            total_macs,
            max_layer_footprint,
        }
    }

    /// Look a layer up by name.
    pub fn layer(&self, name: &str) -> Option<&Layer> {
        self.layers.iter().find(|l| l.name == name)
    }
}

/// Errors produced by [`Network::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A network needs at least one layer.
    Empty,
    /// A layer failed shape validation.
    BadLayer(String, ShapeError),
    /// Two layers share a name.
    DuplicateLayerName(String),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Empty => write!(f, "network has no layers"),
            NetworkError::BadLayer(name, e) => write!(f, "layer {name}: {e}"),
            NetworkError::DuplicateLayerName(name) => {
                write!(f, "duplicate layer name {name}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerShape;

    fn tiny_layer(name: &str) -> Layer {
        Layer::new(
            name,
            LayerKind::Conv,
            LayerShape {
                ifmap_h: 8,
                ifmap_w: 8,
                in_channels: 4,
                filter_h: 3,
                filter_w: 3,
                num_filters: 8,
                stride: 1,
                padding: 1,
                depthwise: false,
            },
        )
        .unwrap()
    }

    #[test]
    fn empty_network_rejected() {
        assert_eq!(Network::new("x", vec![]).unwrap_err(), NetworkError::Empty);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Network::new("x", vec![tiny_layer("a"), tiny_layer("a")]).unwrap_err();
        assert!(matches!(err, NetworkError::DuplicateLayerName(_)));
    }

    #[test]
    fn footprints_match_shape_math() {
        let net = Network::new("x", vec![tiny_layer("a")]).unwrap();
        let fp = net.footprints(DataWidth::W8);
        assert_eq!(fp.len(), 1);
        assert_eq!(fp[0].ifmap.bytes(), 10 * 10 * 4);
        assert_eq!(fp[0].filters.bytes(), 3 * 3 * 4 * 8);
        assert_eq!(fp[0].ofmap.bytes(), 8 * 8 * 8);
        assert_eq!(fp[0].total().bytes(), 400 + 288 + 512);
    }

    #[test]
    fn footprints_scale_with_width() {
        let net = Network::new("x", vec![tiny_layer("a")]).unwrap();
        let fp8 = net.footprints(DataWidth::W8);
        let fp32 = net.footprints(DataWidth::W32);
        assert_eq!(fp32[0].total().bytes(), 4 * fp8[0].total().bytes());
    }

    #[test]
    fn stats_aggregate() {
        let net = Network::new("x", vec![tiny_layer("a"), tiny_layer("b")]).unwrap();
        let s = net.stats(DataWidth::W8);
        assert_eq!(s.layers, 2);
        assert_eq!(s.kinds, vec![LayerKind::Conv]);
        assert_eq!(s.total_macs, 2 * 8 * 8 * 8 * 3 * 3 * 4);
        assert_eq!(s.max_layer_footprint.bytes(), 1200);
    }

    #[test]
    fn layer_lookup() {
        let net = Network::new("x", vec![tiny_layer("a"), tiny_layer("b")]).unwrap();
        assert!(net.layer("b").is_some());
        assert!(net.layer("c").is_none());
    }
}
