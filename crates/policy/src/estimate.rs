use crate::{FallbackTiling, PolicyKind};
use serde::{Deserialize, Serialize};
use smm_arch::{AcceleratorConfig, ByteSize};

/// A per-data-type footprint in **elements** (the unit Algorithm 1's
/// estimators reason in; bytes are derived via the data width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Footprint {
    /// Resident ifmap elements.
    pub ifmap: u64,
    /// Resident filter elements.
    pub filters: u64,
    /// Resident ofmap elements.
    pub ofmap: u64,
}

impl Footprint {
    /// Sum over the three data types.
    #[inline]
    pub fn total(&self) -> u64 {
        self.ifmap + self.filters + self.ofmap
    }

    /// Scale every component (e.g. ×2 for double-buffered prefetching).
    #[inline]
    pub fn scaled(&self, factor: u64) -> Footprint {
        Footprint {
            ifmap: self.ifmap * factor,
            filters: self.filters * factor,
            ofmap: self.ofmap * factor,
        }
    }

    /// Convert to bytes at the accelerator's data width.
    pub fn bytes(&self, acc: &AcceleratorConfig) -> ByteSize {
        ByteSize::from_elements(self.total(), acc.data_width)
    }
}

/// Off-chip traffic in elements, broken down by data type and cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Ifmap elements read from off-chip (padded ifmap × reload factor).
    pub ifmap_loads: u64,
    /// Filter elements read from off-chip.
    pub filter_loads: u64,
    /// Ofmap elements written off-chip.
    pub ofmap_stores: u64,
    /// Extra partial-sum elements written off-chip (fallback tiling only).
    pub psum_spill_stores: u64,
    /// Extra partial-sum elements read back (fallback tiling only).
    pub psum_spill_loads: u64,
}

impl AccessCounts {
    /// Total off-chip elements moved.
    #[inline]
    pub fn total(&self) -> u64 {
        self.ifmap_loads
            + self.filter_loads
            + self.ofmap_stores
            + self.psum_spill_stores
            + self.psum_spill_loads
    }

    /// Total off-chip volume in bytes at the accelerator's data width.
    pub fn bytes(&self, acc: &AcceleratorConfig) -> ByteSize {
        ByteSize::from_elements(self.total(), acc.data_width)
    }
}

/// The latency estimator's output for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencyEstimate {
    /// Cycles the PE array needs for the layer's MACs.
    pub compute_cycles: u64,
    /// Cycles the off-chip interface needs for the layer's traffic.
    pub transfer_cycles: u64,
    /// Estimated layer latency. Without prefetching transfers serialize
    /// with compute (`compute + transfer`); with prefetching the two
    /// overlap in steady state (`max(compute, transfer)`).
    pub cycles: u64,
}

/// The full output of Algorithm 1's three estimators for one
/// (layer, policy, prefetch) combination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyEstimate {
    /// Which policy this estimate describes.
    pub kind: PolicyKind,
    /// Whether the prefetching variant (Eq. 2) is used.
    pub prefetch: bool,
    /// Filter-block size for policies 4/5 (`n ∈ [1, F#)`).
    pub block_n: Option<u64>,
    /// Chosen blocking for the fallback policy.
    pub fallback: Option<FallbackTiling>,
    /// Single-copy resident footprint per data type (the Figure 6
    /// breakdown). With prefetching the *allocation* is twice this; see
    /// [`PolicyEstimate::allocation`].
    pub resident: Footprint,
    /// Off-chip traffic.
    pub accesses: AccessCounts,
    /// Latency estimate.
    pub latency: LatencyEstimate,
    /// True when the policy leaves the complete ofmap resident in the GLB
    /// at the end of the layer (enables inter-layer reuse towards the
    /// next layer).
    pub ofmap_resident_at_end: bool,
}

impl PolicyEstimate {
    /// Double-buffer factor: 2 with prefetching (Eq. 2), 1 without (Eq. 1).
    #[inline]
    pub fn buffer_factor(&self) -> u64 {
        if self.prefetch {
            2
        } else {
            1
        }
    }

    /// GLB elements this estimate actually allocates (per-type, including
    /// the prefetch doubling).
    #[inline]
    pub fn allocation(&self) -> Footprint {
        self.resident.scaled(self.buffer_factor())
    }

    /// `estimate_memory(policy)` of Algorithm 1 — total GLB elements
    /// required.
    #[inline]
    pub fn required_elems(&self) -> u64 {
        self.allocation().total()
    }

    /// Memory requirement in bytes at the accelerator's data width.
    pub fn required_bytes(&self, acc: &AcceleratorConfig) -> ByteSize {
        ByteSize::from_elements(self.required_elems(), acc.data_width)
    }

    /// Whether the estimate satisfies the GLB constraint (line 10 of
    /// Algorithm 1).
    pub fn fits(&self, acc: &AcceleratorConfig) -> bool {
        self.required_elems() <= acc.glb_elements()
    }

    /// Re-derive the latency for a different traffic volume — used when a
    /// plan-level optimization (inter-layer reuse) elides part of this
    /// layer's off-chip traffic after the policy was chosen.
    pub fn latency_for_traffic(
        &self,
        acc: &AcceleratorConfig,
        traffic_elems: u64,
    ) -> LatencyEstimate {
        latency_from(
            acc,
            self.latency.compute_cycles,
            traffic_elems,
            self.prefetch,
        )
    }
}

/// Assemble a [`LatencyEstimate`] from compute cycles and traffic.
pub(crate) fn latency_from(
    acc: &AcceleratorConfig,
    compute_cycles: u64,
    traffic_elems: u64,
    prefetch: bool,
) -> LatencyEstimate {
    let transfer_cycles = acc.transfer_cycles(traffic_elems);
    let cycles = if prefetch {
        compute_cycles.max(transfer_cycles)
    } else {
        compute_cycles + transfer_cycles
    };
    LatencyEstimate {
        compute_cycles,
        transfer_cycles,
        cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_arch::ByteSize;

    fn acc() -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(64))
    }

    #[test]
    fn footprint_totals_and_scaling() {
        let f = Footprint {
            ifmap: 10,
            filters: 20,
            ofmap: 30,
        };
        assert_eq!(f.total(), 60);
        assert_eq!(f.scaled(2).total(), 120);
        assert_eq!(f.bytes(&acc()).bytes(), 60);
    }

    #[test]
    fn access_total_includes_spills() {
        let a = AccessCounts {
            ifmap_loads: 100,
            filter_loads: 50,
            ofmap_stores: 25,
            psum_spill_stores: 10,
            psum_spill_loads: 10,
        };
        assert_eq!(a.total(), 195);
    }

    #[test]
    fn latency_overlap_semantics() {
        let a = acc();
        // 1600 elements at 16 elem/cycle = 100 transfer cycles.
        let no_pf = latency_from(&a, 300, 1600, false);
        assert_eq!(no_pf.transfer_cycles, 100);
        assert_eq!(no_pf.cycles, 400);
        let pf = latency_from(&a, 300, 1600, true);
        assert_eq!(pf.cycles, 300);
        // Transfer-bound with prefetch: bounded by the transfer.
        let pf2 = latency_from(&a, 50, 1600, true);
        assert_eq!(pf2.cycles, 100);
    }

    #[test]
    fn prefetch_doubles_requirement() {
        let base = PolicyEstimate {
            kind: PolicyKind::P1IfmapReuse,
            prefetch: false,
            block_n: None,
            fallback: None,
            resident: Footprint {
                ifmap: 100,
                filters: 200,
                ofmap: 50,
            },
            accesses: AccessCounts::default(),
            latency: LatencyEstimate::default(),
            ofmap_resident_at_end: false,
        };
        assert_eq!(base.required_elems(), 350);
        let mut pf = base.clone();
        pf.prefetch = true;
        assert_eq!(pf.required_elems(), 700);
        assert_eq!(pf.allocation().ifmap, 200);
    }
}
