//! The fallback tiling search of Algorithm 1.
//!
//! When no named policy satisfies `memory ≤ GLB_size` for a layer, the
//! paper "search[es] for appropriate tile sizes that will satisfy the
//! condition. This may lead to an increased off-chip accesses." This
//! module implements that search: a generic blocked schedule over output
//! rows (`r`), filters (`n`) and input channels (`c`), evaluated under
//! two loop orders that trade filter re-streaming against partial-sum
//! spilling.

use crate::estimate::{AccessCounts, Footprint};
use serde::{Deserialize, Serialize};
use smm_model::LayerShape;

/// Loop order of the fallback schedule (filter blocks are always the
/// outermost loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopOrder {
    /// `filters → rows → channels`: the ofmap tile stays resident while
    /// channels accumulate (no partial-sum spill), but a filter block
    /// larger than its buffer is re-streamed once per row tile.
    RowsOuter,
    /// `filters → channels → rows`: every filter element is loaded once,
    /// but partial sums spill to off-chip between channel passes.
    ChannelsOuter,
}

/// A concrete fallback blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FallbackTiling {
    /// Output rows per tile.
    pub row_block: u64,
    /// Filters per block.
    pub filter_block: u64,
    /// Input channels per block.
    pub channel_block: u64,
    /// Chosen loop order.
    pub order: LoopOrder,
}

/// Everything the estimator needs to know about one evaluated blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FallbackEstimate {
    pub tiling: FallbackTiling,
    pub resident: Footprint,
    pub accesses: AccessCounts,
}

/// Resident footprint of a blocking (elements).
fn footprint(shape: &LayerShape, t: &FallbackTiling) -> Footprint {
    let fh = shape.filter_h as u64;
    let fw = shape.filter_w as u64;
    let s = shape.stride as u64;
    let pad_w = shape.padded_w() as u64;
    let (_, ow) = shape.output_hw();
    // Input rows needed by `row_block` consecutive output rows.
    let in_rows = ((t.row_block - 1) * s + fh).min(shape.padded_h() as u64);
    Footprint {
        ifmap: in_rows * pad_w * t.channel_block,
        filters: fh * fw * t.channel_block * t.filter_block,
        ofmap: t.row_block * ow as u64 * t.filter_block,
    }
}

/// Off-chip traffic of a blocking (elements).
fn traffic(shape: &LayerShape, t: &FallbackTiling) -> AccessCounts {
    let fh = shape.filter_h as u64;
    let s = shape.stride as u64;
    let pad_h = shape.padded_h() as u64;
    let pad_w = shape.padded_w() as u64;
    let (oh, _) = shape.output_hw();
    let oh = oh as u64;
    let ci = shape.in_channels as u64;
    let nf = shape.num_filters as u64;

    let n_rt = oh.div_ceil(t.row_block);
    let n_fb = nf.div_ceil(t.filter_block);
    let n_cb = ci.div_ceil(t.channel_block);

    // Row-overlap refetch: consecutive row tiles share `F_H − S` input
    // rows. Rows fetched per full vertical sweep, bounded by fetching
    // every tile in full.
    let ov = fh.saturating_sub(s);
    let rows_per_tile = (t.row_block - 1) * s + fh;
    let rows_swept = (pad_h + (n_rt - 1) * ov).min(n_rt * rows_per_tile);
    let ifmap_sweep = rows_swept * pad_w * ci;

    let filter_total = shape.filter_elems();
    let ofmap_total = shape.ofmap_elems();

    match t.order {
        LoopOrder::RowsOuter => {
            // Channels accumulate innermost: no spills. The filter block is
            // re-streamed per row tile unless its channels are all resident.
            let filter_loads = if t.channel_block >= ci {
                filter_total
            } else {
                n_rt * filter_total
            };
            AccessCounts {
                ifmap_loads: n_fb * ifmap_sweep,
                filter_loads,
                ofmap_stores: ofmap_total,
                psum_spill_stores: 0,
                psum_spill_loads: 0,
            }
        }
        LoopOrder::ChannelsOuter => {
            // Filters loaded once; partial sums spill between channel
            // passes (each ofmap element written `n_cb` times, read back
            // `n_cb − 1` times).
            AccessCounts {
                ifmap_loads: n_fb * ifmap_sweep,
                filter_loads: filter_total,
                ofmap_stores: ofmap_total,
                psum_spill_stores: (n_cb - 1) * ofmap_total,
                psum_spill_loads: (n_cb - 1) * ofmap_total,
            }
        }
    }
}

/// Candidate block sizes: powers of two up to `max`, plus `max` itself.
fn pow2_candidates(max: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut x = 1;
    while x < max {
        v.push(x);
        x *= 2;
    }
    v.push(max);
    v
}

/// Search for the feasible blocking with the fewest off-chip accesses
/// (ties broken towards fewer resident elements). `budget` is the GLB
/// budget in elements for a *single* copy of the tiles — the caller
/// halves the GLB for the prefetching variant.
///
/// Depth-wise layers couple filters to channels: each filter block brings
/// exactly its own channels, so the channel block mirrors the filter
/// block, the ifmap is swept once in total, and nothing spills.
pub(crate) fn search(shape: &LayerShape, budget: u64) -> Option<FallbackEstimate> {
    let _span = smm_obs::span!("fallback.search");
    let (oh, _) = shape.output_hw();
    let nf = shape.num_filters as u64;
    let ci = shape.in_channels as u64;

    let mut best: Option<FallbackEstimate> = None;
    let mut iterations = 0u64;
    let mut consider = |est: FallbackEstimate| {
        iterations += 1;
        if est.resident.total() > budget {
            return;
        }
        let better = match &best {
            None => true,
            Some(b) => {
                let (ea, eb) = (est.accesses.total(), b.accesses.total());
                ea < eb || (ea == eb && est.resident.total() < b.resident.total())
            }
        };
        if better {
            best = Some(est);
        }
    };

    if shape.depthwise {
        for &r in &pow2_candidates(oh as u64) {
            for &n in &pow2_candidates(nf) {
                let tiling = FallbackTiling {
                    row_block: r,
                    filter_block: n,
                    channel_block: n, // one channel per depth-wise filter
                    order: LoopOrder::RowsOuter,
                };
                let mut resident = footprint(shape, &tiling);
                // Depth-wise filters carry one channel each.
                resident.filters = shape.single_filter_elems() * n;
                // Ifmap channels travel with their filters: per-block rows
                // over `n` channels.
                let fh = shape.filter_h as u64;
                let s = shape.stride as u64;
                let in_rows = ((r - 1) * s + fh).min(shape.padded_h() as u64);
                resident.ifmap = in_rows * shape.padded_w() as u64 * n;
                let ov = fh.saturating_sub(s);
                let n_rt = (oh as u64).div_ceil(r);
                let rows_swept =
                    (shape.padded_h() as u64 + (n_rt - 1) * ov).min(n_rt * ((r - 1) * s + fh));
                let accesses = AccessCounts {
                    ifmap_loads: rows_swept * shape.padded_w() as u64 * ci,
                    filter_loads: shape.filter_elems(),
                    ofmap_stores: shape.ofmap_elems(),
                    psum_spill_stores: 0,
                    psum_spill_loads: 0,
                };
                consider(FallbackEstimate {
                    tiling,
                    resident,
                    accesses,
                });
            }
        }
    } else {
        for &r in &pow2_candidates(oh as u64) {
            for &n in &pow2_candidates(nf) {
                for &c in &pow2_candidates(ci) {
                    for order in [LoopOrder::RowsOuter, LoopOrder::ChannelsOuter] {
                        let tiling = FallbackTiling {
                            row_block: r,
                            filter_block: n,
                            channel_block: c,
                            order,
                        };
                        consider(FallbackEstimate {
                            tiling,
                            resident: footprint(shape, &tiling),
                            accesses: traffic(shape, &tiling),
                        });
                    }
                }
            }
        }
    }
    if smm_obs::enabled() {
        smm_obs::add(smm_obs::Counter::FallbackSearches, 1);
        smm_obs::add(smm_obs::Counter::FallbackIterations, iterations);
        smm_obs::observe(smm_obs::Histogram::FallbackIterationsPerSearch, iterations);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_arch::{AcceleratorConfig, ByteSize};

    fn big_layer() -> LayerShape {
        LayerShape {
            ifmap_h: 112,
            ifmap_w: 112,
            in_channels: 64,
            filter_h: 3,
            filter_w: 3,
            num_filters: 128,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    #[test]
    fn minimal_blocking_fits_tiny_budget() {
        let shape = big_layer();
        // 4096-element budget: far below any named policy's requirement.
        let est = search(&shape, 4096).expect("search should find a blocking");
        assert!(est.resident.total() <= 4096);
        // Tiling can never beat the one-load lower bound.
        let min = shape.padded_ifmap_elems() + shape.filter_elems() + shape.ofmap_elems();
        assert!(est.accesses.total() >= min);
    }

    #[test]
    fn generous_budget_converges_to_minimum_traffic() {
        let shape = big_layer();
        let min = shape.padded_ifmap_elems() + shape.filter_elems() + shape.ofmap_elems();
        let est = search(&shape, u64::MAX / 4).unwrap();
        assert_eq!(est.accesses.total(), min);
    }

    #[test]
    fn tighter_budget_never_reduces_accesses() {
        let shape = big_layer();
        let mut last = u64::MAX;
        // Budgets from generous to tight; accesses must be monotone
        // non-increasing as the budget grows (scanned here in reverse).
        for budget in [1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22] {
            let est = search(&shape, budget).unwrap();
            assert!(
                est.accesses.total() <= last,
                "budget {budget}: {} > {last}",
                est.accesses.total()
            );
            last = est.accesses.total();
        }
    }

    #[test]
    fn impossible_budget_returns_none() {
        let shape = big_layer();
        assert!(search(&shape, 8).is_none());
    }

    #[test]
    fn depthwise_never_spills() {
        let shape = LayerShape {
            ifmap_h: 112,
            ifmap_w: 112,
            in_channels: 96,
            filter_h: 3,
            filter_w: 3,
            num_filters: 96,
            stride: 1,
            padding: 1,
            depthwise: true,
        };
        let est = search(&shape, 8192).unwrap();
        assert_eq!(est.accesses.psum_spill_loads, 0);
        assert_eq!(est.accesses.psum_spill_stores, 0);
        assert_eq!(est.accesses.filter_loads, shape.filter_elems());
    }

    #[test]
    fn channel_spilling_accounted_symmetrically() {
        let shape = big_layer();
        let t = FallbackTiling {
            row_block: 8,
            filter_block: 16,
            channel_block: 16, // 4 channel passes
            order: LoopOrder::ChannelsOuter,
        };
        let a = traffic(&shape, &t);
        assert_eq!(a.psum_spill_loads, a.psum_spill_stores);
        assert_eq!(a.psum_spill_loads, 3 * shape.ofmap_elems());
        assert_eq!(a.filter_loads, shape.filter_elems());
    }

    #[test]
    fn budget_in_bytes_is_callers_concern() {
        // The search works in elements; make sure a realistic byte budget
        // converts sensibly at the call site.
        let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
        let est = search(&big_layer(), acc.glb_elements()).unwrap();
        assert!(est.resident.total() <= acc.glb_elements());
    }
}
