//! The estimators behind Algorithm 1's `estimate_memory`,
//! `estimate_accesses`, and `estimate_latency`.

use crate::estimate::{latency_from, AccessCounts, Footprint, LatencyEstimate, PolicyEstimate};
use crate::{fallback, PolicyKind};
use smm_arch::AcceleratorConfig;
use smm_model::LayerShape;

/// Compute cycles of the flexible accelerator for one layer: the paper
/// estimates latency "based on the number of operations" for its
/// proposal, i.e. MACs over the configured MAC throughput.
fn compute_cycles(shape: &LayerShape, acc: &AcceleratorConfig) -> u64 {
    shape.macs().div_ceil(acc.macs_per_cycle())
}

/// Minimum-transfer traffic: each element moved exactly once (padded
/// ifmap in, all filters in, ofmap out).
fn min_traffic(shape: &LayerShape) -> AccessCounts {
    AccessCounts {
        ifmap_loads: shape.padded_ifmap_elems(),
        filter_loads: shape.filter_elems(),
        ofmap_stores: shape.ofmap_elems(),
        psum_spill_stores: 0,
        psum_spill_loads: 0,
    }
}

/// Largest block size `n ∈ [1, limit]` satisfying
/// `fixed + per_n · n ≤ budget`, or `None` if even `n = 1` exceeds it —
/// in which case the caller still reports the (infeasible) `n = 1`
/// variant so Algorithm 1 can show *why* the policy was rejected.
fn max_block(budget: u64, fixed: u64, per_n: u64, limit: u64) -> Option<u64> {
    let avail = budget.checked_sub(fixed)?;
    let n = avail / per_n.max(1);
    (n >= 1).then(|| n.min(limit))
}

/// Produce the estimate for one `(policy, prefetch)` candidate, or `None`
/// when the policy is structurally inapplicable to the layer (policies
/// 4/5 need at least two filters; the fallback search can fail outright
/// when even the smallest blocking exceeds the GLB).
pub fn estimate(
    kind: PolicyKind,
    shape: &LayerShape,
    acc: &AcceleratorConfig,
    prefetch: bool,
) -> Option<PolicyEstimate> {
    smm_obs::add(smm_obs::Counter::EstimatorCalls, 1);
    let fh = shape.filter_h as u64;
    let fw = shape.filter_w as u64;
    let pad_w = shape.padded_w() as u64;
    let ci = shape.in_channels as u64;
    let nf = shape.num_filters as u64;
    let fc = shape.filter_channels();
    let (oh, ow) = shape.output_hw();
    let (oh, ow) = (oh as u64, ow as u64);
    let co = shape.out_channels() as u64;
    // Eq. 2 halves the effective capacity for every double-buffered tile.
    let budget = acc.glb_elements() / if prefetch { 2 } else { 1 };

    let compute = compute_cycles(shape, acc);
    let finish = |resident: Footprint,
                  accesses: AccessCounts,
                  block_n: Option<u64>,
                  fallback: Option<crate::FallbackTiling>,
                  ofmap_resident: bool| {
        let latency: LatencyEstimate = latency_from(acc, compute, accesses.total(), prefetch);
        PolicyEstimate {
            kind,
            prefetch,
            block_n,
            fallback,
            resident,
            accesses,
            latency,
            ofmap_resident_at_end: ofmap_resident,
        }
    };

    match kind {
        PolicyKind::IntraLayer => Some(finish(
            Footprint {
                ifmap: shape.padded_ifmap_elems(),
                filters: shape.filter_elems(),
                ofmap: shape.ofmap_elems(),
            },
            min_traffic(shape),
            None,
            None,
            true,
        )),
        PolicyKind::P1IfmapReuse => Some(finish(
            // Sliding window of F_H rows over the padded width, all
            // channels; all filters resident; one row-set of the ofmap.
            Footprint {
                ifmap: fh * pad_w * ci,
                filters: shape.filter_elems(),
                ofmap: ow * co,
            },
            min_traffic(shape),
            None,
            None,
            false,
        )),
        PolicyKind::P2FilterReuse => Some(finish(
            Footprint {
                ifmap: shape.padded_ifmap_elems(),
                filters: shape.single_filter_elems(),
                ofmap: oh * ow,
            },
            min_traffic(shape),
            None,
            None,
            false,
        )),
        PolicyKind::P3PerChannel => Some(finish(
            // One channel of every filter; single-channel window; whole
            // ofmap accumulates on-chip.
            Footprint {
                ifmap: fh * pad_w,
                filters: fh * fw * nf,
                ofmap: shape.ofmap_elems(),
            },
            min_traffic(shape),
            None,
            None,
            true,
        )),
        PolicyKind::P4PartialIfmap => {
            if nf < 2 {
                return None; // n ∈ [1, F#) is empty
            }
            let fixed = fh * pad_w * ci;
            let per_n = fh * fw * fc + ow;
            // Depth-wise layers re-load nothing regardless of the block
            // size ("policies 4 and 5 can also achieve minimum transfers
            // for depth-wise layers"), so the smallest block — and the
            // smallest footprint — is optimal for them.
            let n = if shape.depthwise {
                1
            } else {
                max_block(budget, fixed, per_n, nf - 1).unwrap_or(1)
            };
            let x = if shape.depthwise { 1 } else { nf.div_ceil(n) };
            let mut traffic = min_traffic(shape);
            traffic.ifmap_loads *= x;
            Some(finish(
                Footprint {
                    ifmap: fixed,
                    filters: fh * fw * fc * n,
                    ofmap: ow * n,
                },
                traffic,
                Some(n),
                None,
                false,
            ))
        }
        PolicyKind::P5PartialPerChannel => {
            if nf < 2 {
                return None;
            }
            let fixed = fh * pad_w;
            let per_n = fh * fw + oh * ow;
            let n = if shape.depthwise {
                1
            } else {
                max_block(budget, fixed, per_n, nf - 1).unwrap_or(1)
            };
            let x = if shape.depthwise { 1 } else { nf.div_ceil(n) };
            let mut traffic = min_traffic(shape);
            traffic.ifmap_loads *= x;
            Some(finish(
                Footprint {
                    ifmap: fixed,
                    filters: fh * fw * n,
                    ofmap: oh * ow * n,
                },
                traffic,
                Some(n),
                None,
                false,
            ))
        }
        PolicyKind::Fallback => {
            let found = fallback::search(shape, budget)?;
            Some(finish(
                found.resident,
                found.accesses,
                None,
                Some(found.tiling),
                false,
            ))
        }
    }
}

/// All candidates of Algorithm 1 line 1 for one layer: every named policy
/// and its prefetching variant (the fallback is produced separately, as
/// the algorithm only reaches for it when nothing named fits).
pub fn estimate_all(shape: &LayerShape, acc: &AcceleratorConfig) -> Vec<PolicyEstimate> {
    let mut out = Vec::with_capacity(12);
    for kind in PolicyKind::NAMED {
        for prefetch in [false, true] {
            if let Some(e) = estimate(kind, shape, acc, prefetch) {
                out.push(e);
            }
        }
    }
    out
}

/// The candidates that satisfy the GLB constraint (Algorithm 1 line 10).
pub fn feasible(shape: &LayerShape, acc: &AcceleratorConfig) -> Vec<PolicyEstimate> {
    estimate_all(shape, acc)
        .into_iter()
        .filter(|e| e.fits(acc))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smm_arch::ByteSize;

    fn acc_kb(kb: u64) -> AcceleratorConfig {
        AcceleratorConfig::paper_default(ByteSize::from_kb(kb))
    }

    fn conv_layer() -> LayerShape {
        // ResNet18 stage-2 conv: 28×28×128 in, 3×3×128×128 filters.
        LayerShape {
            ifmap_h: 28,
            ifmap_w: 28,
            in_channels: 128,
            filter_h: 3,
            filter_w: 3,
            num_filters: 128,
            stride: 1,
            padding: 1,
            depthwise: false,
        }
    }

    fn dw_layer() -> LayerShape {
        LayerShape {
            ifmap_h: 56,
            ifmap_w: 56,
            in_channels: 128,
            filter_h: 3,
            filter_w: 3,
            num_filters: 128,
            stride: 1,
            padding: 1,
            depthwise: true,
        }
    }

    #[test]
    fn intra_layer_memory_is_whole_layer() {
        let s = conv_layer();
        let e = estimate(PolicyKind::IntraLayer, &s, &acc_kb(1024), false).unwrap();
        assert_eq!(
            e.required_elems(),
            s.padded_ifmap_elems() + s.filter_elems() + s.ofmap_elems()
        );
        assert!(e.ofmap_resident_at_end);
    }

    #[test]
    fn policy1_tile_shapes_match_section_3_2() {
        let s = conv_layer();
        let e = estimate(PolicyKind::P1IfmapReuse, &s, &acc_kb(256), false).unwrap();
        // F_H · (I_W+2P) · C_I sliding window.
        assert_eq!(e.resident.ifmap, 3 * 30 * 128);
        assert_eq!(e.resident.filters, s.filter_elems());
        // 1 · O_W · C_O ofmap rows.
        assert_eq!(e.resident.ofmap, 28 * 128);
        assert_eq!(e.accesses.total(), min_traffic(&s).total());
    }

    #[test]
    fn policy2_keeps_whole_ifmap_one_filter() {
        let s = conv_layer();
        let e = estimate(PolicyKind::P2FilterReuse, &s, &acc_kb(256), false).unwrap();
        assert_eq!(e.resident.ifmap, s.padded_ifmap_elems());
        assert_eq!(e.resident.filters, 3 * 3 * 128);
        assert_eq!(e.resident.ofmap, 28 * 28);
    }

    #[test]
    fn policy3_keeps_one_channel_of_all_filters() {
        let s = conv_layer();
        let e = estimate(PolicyKind::P3PerChannel, &s, &acc_kb(1024), false).unwrap();
        assert_eq!(e.resident.ifmap, 3 * 30);
        assert_eq!(e.resident.filters, 3 * 3 * 128);
        assert_eq!(e.resident.ofmap, s.ofmap_elems());
        assert!(e.ofmap_resident_at_end);
    }

    #[test]
    fn policy4_reloads_ifmap_per_filter_block() {
        let s = conv_layer();
        let acc = acc_kb(64);
        let e = estimate(PolicyKind::P4PartialIfmap, &s, &acc, false).unwrap();
        let n = e.block_n.unwrap();
        assert!((1..128).contains(&n));
        let x = 128u64.div_ceil(n);
        assert_eq!(e.accesses.ifmap_loads, x * s.padded_ifmap_elems());
        assert_eq!(e.accesses.filter_loads, s.filter_elems());
        assert!(e.fits(&acc), "P4 should self-size to the budget");
    }

    #[test]
    fn policy4_block_grows_with_budget() {
        let s = conv_layer();
        let n_small = estimate(PolicyKind::P4PartialIfmap, &s, &acc_kb(64), false)
            .unwrap()
            .block_n
            .unwrap();
        let n_large = estimate(PolicyKind::P4PartialIfmap, &s, &acc_kb(512), false)
            .unwrap()
            .block_n
            .unwrap();
        assert!(n_large >= n_small);
    }

    #[test]
    fn policy5_blocks_by_channel_slices() {
        let s = conv_layer();
        let acc = acc_kb(64);
        let e = estimate(PolicyKind::P5PartialPerChannel, &s, &acc, false).unwrap();
        let n = e.block_n.unwrap();
        assert_eq!(e.resident.filters, 9 * n);
        assert_eq!(e.resident.ofmap, 28 * 28 * n);
        assert!(e.fits(&acc));
    }

    #[test]
    fn depthwise_partial_policies_are_minimum_transfer() {
        // "policies 4 and 5 can also achieve minimum transfers for
        // depth-wise layers" (Section 5.1).
        let s = dw_layer();
        for kind in [PolicyKind::P4PartialIfmap, PolicyKind::P5PartialPerChannel] {
            let e = estimate(kind, &s, &acc_kb(64), false).unwrap();
            assert_eq!(e.accesses.total(), min_traffic(&s).total(), "{kind}");
        }
    }

    #[test]
    fn prefetch_halves_effective_budget() {
        let s = conv_layer();
        let plain = estimate(PolicyKind::P4PartialIfmap, &s, &acc_kb(128), false).unwrap();
        let pf = estimate(PolicyKind::P4PartialIfmap, &s, &acc_kb(128), true).unwrap();
        assert!(pf.block_n.unwrap() <= plain.block_n.unwrap());
        assert!(pf.required_elems() <= acc_kb(128).glb_elements());
    }

    #[test]
    fn prefetch_latency_overlaps() {
        let s = conv_layer();
        let plain = estimate(PolicyKind::P1IfmapReuse, &s, &acc_kb(256), false).unwrap();
        let pf = estimate(PolicyKind::P1IfmapReuse, &s, &acc_kb(256), true).unwrap();
        assert_eq!(
            plain.latency.cycles,
            plain.latency.compute_cycles + plain.latency.transfer_cycles
        );
        assert_eq!(
            pf.latency.cycles,
            pf.latency.compute_cycles.max(pf.latency.transfer_cycles)
        );
        assert!(pf.latency.cycles <= plain.latency.cycles);
    }

    #[test]
    fn single_filter_layer_has_no_partial_policies() {
        let s = LayerShape {
            num_filters: 1,
            depthwise: false,
            ..conv_layer()
        };
        let s = LayerShape {
            in_channels: 128,
            ..s
        };
        assert!(estimate(PolicyKind::P4PartialIfmap, &s, &acc_kb(64), false).is_none());
        assert!(estimate(PolicyKind::P5PartialPerChannel, &s, &acc_kb(64), false).is_none());
    }

    #[test]
    fn fallback_produces_feasible_estimate_under_tiny_glb() {
        let s = conv_layer();
        let acc = acc_kb(16);
        let e = estimate(PolicyKind::Fallback, &s, &acc, false).unwrap();
        assert!(e.fits(&acc));
        assert!(e.accesses.total() >= min_traffic(&s).total());
    }

    #[test]
    fn estimate_all_lists_both_prefetch_variants() {
        let s = conv_layer();
        let all = estimate_all(&s, &acc_kb(256));
        assert_eq!(all.len(), 12); // 6 named × {plain, prefetch}
        assert_eq!(all.iter().filter(|e| e.prefetch).count(), 6);
    }

    #[test]
    fn feasible_respects_glb_constraint() {
        let s = conv_layer();
        let acc = acc_kb(64);
        for e in feasible(&s, &acc) {
            assert!(e.required_elems() <= acc.glb_elements());
        }
        // Intra-layer reuse (≈215k elements) cannot fit 64kB.
        assert!(!feasible(&s, &acc)
            .iter()
            .any(|e| e.kind == PolicyKind::IntraLayer));
    }

    proptest! {
        /// Minimum-transfer policies all report identical traffic, and no
        /// policy ever reports less.
        #[test]
        fn min_transfer_is_a_lower_bound(
            ih in 4u32..40, ci in 1u32..32, f in 1u32..4,
            nf in 2u32..64, s in 1u32..3,
        ) {
            let shape = LayerShape {
                ifmap_h: ih, ifmap_w: ih, in_channels: ci,
                filter_h: f, filter_w: f, num_filters: nf,
                stride: s, padding: f / 2, depthwise: false,
            };
            prop_assume!(shape.validate().is_ok());
            let acc = acc_kb(64);
            let min = min_traffic(&shape).total();
            for e in estimate_all(&shape, &acc) {
                prop_assert!(e.accesses.total() >= min, "{:?}", e.kind);
                if e.kind.is_minimum_transfer() {
                    prop_assert_eq!(e.accesses.total(), min);
                }
            }
        }

        /// Every estimate's memory requirement equals the sum of its
        /// per-type allocation, and prefetching exactly doubles it.
        #[test]
        fn memory_is_consistent(
            ih in 4u32..40, ci in 1u32..16, f in 1u32..4, nf in 2u32..32,
        ) {
            let shape = LayerShape {
                ifmap_h: ih, ifmap_w: ih, in_channels: ci,
                filter_h: f, filter_w: f, num_filters: nf,
                stride: 1, padding: 0, depthwise: false,
            };
            prop_assume!(shape.validate().is_ok());
            let acc = acc_kb(256);
            for kind in PolicyKind::NAMED {
                let plain = estimate(kind, &shape, &acc, false);
                let pf = estimate(kind, &shape, &acc, true);
                if let (Some(p), Some(q)) = (plain, pf) {
                    prop_assert_eq!(p.required_elems(), p.resident.total());
                    // Prefetch variants may shrink their block size to fit,
                    // so compare like-for-like via the buffer factor.
                    prop_assert_eq!(q.required_elems(), 2 * q.resident.total());
                }
            }
        }
    }
}
