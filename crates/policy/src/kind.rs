use serde::{Deserialize, Serialize};
use std::fmt;

/// The memory-management policies of Section 3.2, plus the generic tiled
/// fallback Algorithm 1 reaches for when no named policy fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Whole layer on-chip; every element moves on/off chip exactly once.
    IntraLayer,
    /// Policy 1: ifmap reuse via a height-wise sliding window, all
    /// filters resident.
    P1IfmapReuse,
    /// Policy 2: filter reuse; whole ifmap resident, filters one by one.
    P2FilterReuse,
    /// Policy 3: per-channel reuse; one channel of every filter resident,
    /// whole ofmap accumulates on-chip.
    P3PerChannel,
    /// Policy 4: partial ifmap reuse; filters in blocks of `n`, ifmap
    /// re-loaded `⌈F#/n⌉` times.
    P4PartialIfmap,
    /// Policy 5: partial per-channel reuse; single-channel window and
    /// per-channel filter blocks of `n`.
    P5PartialPerChannel,
    /// Generic blocked tiling found by search (Algorithm 1's escape hatch
    /// when even policy 4/5 at `n = 1` does not fit).
    Fallback,
}

impl PolicyKind {
    /// The named policies in Algorithm 1's candidate list (line 1),
    /// excluding the fallback.
    pub const NAMED: [PolicyKind; 6] = [
        PolicyKind::IntraLayer,
        PolicyKind::P1IfmapReuse,
        PolicyKind::P2FilterReuse,
        PolicyKind::P3PerChannel,
        PolicyKind::P4PartialIfmap,
        PolicyKind::P5PartialPerChannel,
    ];

    /// Every kind including the fallback.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::IntraLayer,
        PolicyKind::P1IfmapReuse,
        PolicyKind::P2FilterReuse,
        PolicyKind::P3PerChannel,
        PolicyKind::P4PartialIfmap,
        PolicyKind::P5PartialPerChannel,
        PolicyKind::Fallback,
    ];

    /// Short label used in Figure 6 / Table 4 style output
    /// (`intra`, `p1` … `p5`, `tiled`).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::IntraLayer => "intra",
            PolicyKind::P1IfmapReuse => "p1",
            PolicyKind::P2FilterReuse => "p2",
            PolicyKind::P3PerChannel => "p3",
            PolicyKind::P4PartialIfmap => "p4",
            PolicyKind::P5PartialPerChannel => "p5",
            PolicyKind::Fallback => "tiled",
        }
    }

    /// Whether the policy moves each element at most once (Section 3.2:
    /// true for intra-layer reuse and policies 1–3; policies 4/5 only for
    /// depth-wise layers, which the estimators handle specially).
    pub fn is_minimum_transfer(self) -> bool {
        matches!(
            self,
            PolicyKind::IntraLayer
                | PolicyKind::P1IfmapReuse
                | PolicyKind::P2FilterReuse
                | PolicyKind::P3PerChannel
        )
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_excludes_fallback() {
        assert!(!PolicyKind::NAMED.contains(&PolicyKind::Fallback));
        assert_eq!(PolicyKind::NAMED.len(), 6);
        assert_eq!(PolicyKind::ALL.len(), 7);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = PolicyKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), PolicyKind::ALL.len());
    }

    #[test]
    fn minimum_transfer_set_matches_section_3_2() {
        assert!(PolicyKind::IntraLayer.is_minimum_transfer());
        assert!(PolicyKind::P3PerChannel.is_minimum_transfer());
        assert!(!PolicyKind::P4PartialIfmap.is_minimum_transfer());
        assert!(!PolicyKind::Fallback.is_minimum_transfer());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(PolicyKind::P4PartialIfmap.to_string(), "p4");
    }
}
