//! On-chip scratchpad memory-management policies (Section 3.2 of the
//! paper) and their lightweight estimators.
//!
//! Each policy describes how a layer's three data types (ifmap, filters,
//! ofmap) are tiled into the unified Global Buffer, and comes with three
//! estimators — `estimate_memory`, `estimate_accesses`,
//! `estimate_latency` in Algorithm 1's terms — realized here as a single
//! [`PolicyEstimate`] produced by [`estimate`]:
//!
//! - **intra-layer reuse** — everything on-chip, each element moved once.
//! - **Policy 1, ifmap reuse** — all filters resident, ifmap slides
//!   height-wise in `F_H × I_W × C_I` windows, one ofmap row-set.
//! - **Policy 2, filter reuse** — whole ifmap resident, filters one by
//!   one, one ofmap channel.
//! - **Policy 3, per-channel reuse** — one channel of every filter
//!   resident, single-channel ifmap window, whole ofmap accumulates.
//! - **Policy 4, partial ifmap reuse** — like policy 1 but filters come
//!   in blocks of `n`, re-loading the ifmap `⌈F#/n⌉` times.
//! - **Policy 5, partial per-channel reuse** — like policy 3 but filter
//!   channels come in blocks of `n`, re-loading the ifmap `⌈F#/n⌉` times.
//! - **fallback tiling** — the "search for appropriate tile sizes" of
//!   Algorithm 1, for layers no named policy fits.
//!
//! Every policy also has a **prefetching** variant that double-buffers
//! each tile (Eq. 2: `GLB ≥ 2(I_tile + F_tile + O_tile)`), trading
//! capacity for latency by overlapping transfers with compute.
//!
//! # Example
//!
//! ```
//! use smm_arch::{AcceleratorConfig, ByteSize};
//! use smm_policy::{estimate, PolicyKind};
//! use smm_model::zoo;
//!
//! let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
//! let layer = &zoo::resnet18().layers[1];
//! let est = estimate(PolicyKind::P1IfmapReuse, &layer.shape, &acc, false).unwrap();
//! // P1 keeps every filter resident and slides an F_H-row window.
//! assert_eq!(est.resident.filters, layer.shape.filter_elems());
//! assert!(est.fits(&acc));
//! ```

mod estimate;
mod fallback;
mod kind;
mod policies;
pub mod window;

pub use estimate::{AccessCounts, Footprint, LatencyEstimate, PolicyEstimate};
pub use fallback::{FallbackTiling, LoopOrder};
pub use kind::PolicyKind;
pub use policies::{estimate, estimate_all, feasible};
