//! Sliding-window traversal math (Figure 2 of the paper).
//!
//! When the ifmap tile is smaller than the full `I_H × I_W × C_I` volume,
//! the traversal direction determines how many halo elements are
//! re-loaded from off-chip: consecutive tiles must overlap by
//! `F − S` rows/columns so every filter window sees its full receptive
//! field. Traversing **height-wise with a full-width window** — what
//! policies 1, 3, 4 and 5 do — re-loads nothing: each input row enters
//! the chip exactly once.

use smm_model::LayerShape;

/// Traversal direction of ifmap tiles (Figure 2a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDirection {
    /// Tiles slide along the height; vertical strips partition the width.
    HeightWise,
    /// Tiles slide along the width; horizontal bands partition the height.
    WidthWise,
    /// All channels of one spatial tile are processed before moving to
    /// the next spatial tile.
    DepthWise,
}

/// Number of overlapping strips of size `tile` (step `tile − overlap`)
/// needed to cover `extent`, or `None` when the step is non-positive.
fn strip_count(extent: u64, tile: u64, overlap: u64) -> Option<u64> {
    if tile >= extent {
        return Some(1);
    }
    let step = tile.checked_sub(overlap).filter(|&s| s > 0)?;
    Some(1 + (extent - tile).div_ceil(step))
}

/// Total elements covered when `strips` overlapping strips of width
/// `tile` cover `extent`: the extent itself plus one re-loaded overlap
/// per strip boundary.
fn covered(extent: u64, strips: u64, overlap: u64) -> u64 {
    extent + (strips - 1) * overlap
}

/// Total ifmap elements fetched from off-chip for a full traversal of the
/// padded ifmap with a `tile_h × tile_w` (all-channel) window moving in
/// `direction`. Returns `None` if the tile cannot make progress (tile not
/// larger than the required overlap).
///
/// The result is `≥ padded_ifmap_elems()`, with equality exactly when no
/// strip boundary is crossed in an overlapping dimension.
pub fn ifmap_traffic(
    shape: &LayerShape,
    tile_h: u64,
    tile_w: u64,
    direction: AccessDirection,
) -> Option<u64> {
    let h = shape.padded_h() as u64;
    let w = shape.padded_w() as u64;
    let c = shape.in_channels as u64;
    let ov_h = (shape.filter_h as u64).saturating_sub(shape.stride as u64);
    let ov_w = (shape.filter_w as u64).saturating_sub(shape.stride as u64);

    match direction {
        AccessDirection::HeightWise => {
            // Vertical strips of width `tile_w`; within a strip the window
            // slides down re-loading nothing; strip boundaries re-load
            // `ov_w` columns over the full height.
            let strips = strip_count(w, tile_w, ov_w)?;
            Some(h * covered(w, strips, ov_w) * c)
        }
        AccessDirection::WidthWise => {
            let bands = strip_count(h, tile_h, ov_h)?;
            Some(covered(h, bands, ov_h) * w * c)
        }
        AccessDirection::DepthWise => {
            // Spatial tiles are revisited channel-by-channel, so both
            // spatial overlaps are re-fetched at every tile boundary.
            let strips = strip_count(w, tile_w, ov_w)?;
            let bands = strip_count(h, tile_h, ov_h)?;
            Some(covered(h, bands, ov_h) * covered(w, strips, ov_w) * c)
        }
    }
}

/// Traffic for the policies' canonical traversal: a full-width,
/// `F_H`-row window moving height-wise. Always exactly one load per
/// padded ifmap element.
pub fn sliding_window_traffic(shape: &LayerShape) -> u64 {
    ifmap_traffic(
        shape,
        shape.filter_h as u64,
        shape.padded_w() as u64,
        AccessDirection::HeightWise,
    )
    .expect("full-width window always makes progress")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn shape(ih: u32, iw: u32, ci: u32, f: u32, s: u32, p: u32) -> LayerShape {
        let sh = LayerShape {
            ifmap_h: ih,
            ifmap_w: iw,
            in_channels: ci,
            filter_h: f,
            filter_w: f,
            num_filters: 8,
            stride: s,
            padding: p,
            depthwise: false,
        };
        sh.validate().unwrap();
        sh
    }

    #[test]
    fn full_width_height_wise_loads_each_element_once() {
        let s = shape(56, 56, 64, 3, 1, 1);
        assert_eq!(sliding_window_traffic(&s), s.padded_ifmap_elems());
    }

    #[test]
    fn narrow_strips_reload_columns() {
        // 58 padded width, strips of 10 columns, 3×3 stride-1 filter →
        // overlap 2 columns per boundary.
        let s = shape(56, 56, 1, 3, 1, 1);
        let t = ifmap_traffic(&s, 3, 10, AccessDirection::HeightWise).unwrap();
        let strips = 1 + (58u64 - 10).div_ceil(8);
        assert_eq!(t, 58 * (58 + (strips - 1) * 2));
        assert!(t > s.padded_ifmap_elems());
    }

    #[test]
    fn width_wise_reloads_rows() {
        let s = shape(56, 56, 1, 3, 1, 1);
        let t = ifmap_traffic(&s, 10, 58, AccessDirection::WidthWise).unwrap();
        assert!(t > s.padded_ifmap_elems());
        // Height-wise with the transposed tile costs the same by symmetry.
        let t2 = ifmap_traffic(&s, 58, 10, AccessDirection::HeightWise).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn depth_wise_reloads_both_dimensions() {
        let s = shape(56, 56, 4, 3, 1, 1);
        let hw = ifmap_traffic(&s, 10, 10, AccessDirection::HeightWise).unwrap();
        let dw = ifmap_traffic(&s, 10, 10, AccessDirection::DepthWise).unwrap();
        assert!(dw > hw, "depth-wise {dw} should exceed height-wise {hw}");
    }

    #[test]
    fn tile_smaller_than_overlap_cannot_progress() {
        let s = shape(56, 56, 1, 5, 1, 0);
        // Overlap is 4 columns; a 4-column tile advances zero columns.
        assert_eq!(ifmap_traffic(&s, 5, 4, AccessDirection::HeightWise), None);
    }

    #[test]
    fn large_stride_removes_overlap() {
        // Stride ≥ filter size: disjoint windows, no re-loads regardless
        // of tiling.
        let s = shape(56, 56, 2, 3, 3, 0);
        let t = ifmap_traffic(&s, 3, 7, AccessDirection::DepthWise).unwrap();
        assert_eq!(t, s.padded_ifmap_elems());
    }

    proptest! {
        /// Traffic is never below one load per padded element, and
        /// depth-wise traversal never beats height-wise for the same tile.
        #[test]
        fn traffic_lower_bound_and_direction_order(
            ih in 4u32..40, iw in 4u32..40, ci in 1u32..6,
            f in 1u32..5, s in 1u32..3,
            th in 1u64..16, tw in 1u64..16,
        ) {
            let sh = shape(ih, iw, ci, f, s, 0);
            prop_assume!(sh.validate().is_ok());
            let hw = ifmap_traffic(&sh, th, tw, AccessDirection::HeightWise);
            let dw = ifmap_traffic(&sh, th, tw, AccessDirection::DepthWise);
            if let Some(hw) = hw {
                prop_assert!(hw >= sh.padded_ifmap_elems());
                if let Some(dw) = dw {
                    prop_assert!(dw >= hw);
                }
            }
        }
    }
}
