//! The dataflow analysis: one forward pass per command stream over
//! interval sets, plus a reverse pre-pass for final-store detection.
//!
//! See `docs/LINTING.md` for the full design; in short, the analyzer
//! mirrors the replay scratchpad's residency semantics with an
//! [`IntervalSet`] (fill/alloc insert, evict/store remove, stream
//! leaves residency untouched) and tracks three more sets — delivered
//! ifmap bytes, delivered filter bytes, stored ofmap bytes — from which
//! every hazard proof and the traffic/occupancy re-derivations follow.

use crate::interval::IntervalSet;
use crate::report::{LayerLint, LintReport};
use smm_check::{Code, Diagnostic, Severity};
use smm_core::ExecutionPlan;
use smm_exec::{Action, AddressResolver, Command, CommandMeta, Operand, Program};
use smm_model::{LayerShape, Network};
use smm_policy::{AccessCounts, PolicyEstimate};
use std::fmt;
use std::ops::Range;

/// Linting failure: the plan and network disagree structurally, or a
/// layer failed to lower. Diagnosable stream defects are *not* errors —
/// they come back as diagnostics in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// Plan and network have different layer counts.
    PlanMismatch {
        /// What disagreed.
        message: String,
    },
    /// `Program::lower` failed for a layer.
    Lower {
        /// The lowering error, with the layer name.
        message: String,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::PlanMismatch { message } => write!(f, "plan/network mismatch: {message}"),
            LintError::Lower { message } => write!(f, "lowering failed: {message}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Per-command lint annotation: the resolved range plus the claimed
/// (recorded) and derived (re-computed) traffic and residency numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandAnnotation {
    /// Command index in the stream.
    pub index: usize,
    /// Action class.
    pub action: Action,
    /// Operand region.
    pub operand: Operand,
    /// Resolved flat element range.
    pub range: Range<u64>,
    /// DRAM elements the recorded metadata claims the command moved.
    pub claimed_dram: u64,
    /// DRAM elements the dataflow says the command must move.
    pub derived_dram: u64,
    /// Post-command residency the recorded metadata claims.
    pub claimed_resident_after: u64,
    /// Post-command residency the dataflow derives.
    pub derived_resident_after: u64,
    /// Elements this command re-fetched or re-streamed although they
    /// were provably still resident (reclaimable traffic).
    pub redundant_elems: u64,
}

/// The lint result for one lowered program.
#[derive(Debug, Clone)]
pub struct ProgramLint {
    /// All findings, aggregated one per code (first offending command
    /// plus a count), in code order. Layer fields are unset;
    /// [`lint_plan`] tags them.
    pub diagnostics: Vec<Diagnostic>,
    /// One annotation per resolvable command, in stream order.
    pub annotations: Vec<CommandAnnotation>,
    /// Derived peak GLB occupancy (elements).
    pub derived_peak: u64,
    /// Derived ifmap elements read from DRAM.
    pub ifmap_loads: u64,
    /// Derived filter elements read from DRAM.
    pub filter_loads: u64,
    /// Derived ofmap elements written to DRAM.
    pub ofmap_writes: u64,
    /// Derived ofmap elements read back (psum reloads).
    pub ofmap_reads: u64,
    /// Total reclaimable redundant-transfer elements.
    pub redundant_elems: u64,
}

impl ProgramLint {
    /// True when no diagnostics were emitted.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The statically derived traffic in estimator shape (spill stores
    /// folded into `ofmap_stores`, mirroring
    /// `smm_exec::Replay::as_access_counts`).
    pub fn derived_access_counts(&self) -> AccessCounts {
        AccessCounts {
            ifmap_loads: self.ifmap_loads,
            filter_loads: self.filter_loads,
            ofmap_stores: self.ofmap_writes,
            psum_spill_stores: 0,
            psum_spill_loads: self.ofmap_reads,
        }
    }
}

/// One diagnostic per code, aggregated over the stream: the first
/// offending command's message plus a count of further occurrences, so
/// a corrupt 10k-command stream yields bounded, deterministic output.
struct CodeAccum {
    code: Code,
    first: String,
    count: usize,
}

#[derive(Default)]
struct Findings {
    accums: Vec<CodeAccum>,
}

impl Findings {
    fn hit(&mut self, code: Code, message: impl FnOnce() -> String) {
        match self.accums.iter_mut().find(|a| a.code == code) {
            Some(a) => a.count += 1,
            None => self.accums.push(CodeAccum {
                code,
                first: message(),
                count: 1,
            }),
        }
    }

    fn into_diagnostics(mut self) -> Vec<Diagnostic> {
        self.accums.sort_by_key(|a| a.code);
        self.accums
            .into_iter()
            .map(|a| {
                let message = if a.count > 1 {
                    format!("{} (+{} more)", a.first, a.count - 1)
                } else {
                    a.first
                };
                Diagnostic {
                    code: a.code,
                    severity: Severity::Error,
                    layer: None,
                    layer_name: None,
                    message,
                }
            })
            .collect()
    }
}

/// The padded-ifmap rows a window of output rows `out_rows` consumes
/// (stride `s`, filter height `fh`, clamped to the padded extent).
fn required_input_rows(shape: &LayerShape, out_rows: &Range<u64>) -> Range<u64> {
    if out_rows.start >= out_rows.end {
        return 0..0;
    }
    let s = u64::from(shape.stride);
    let fh = u64::from(shape.filter_h);
    let pad_h = u64::from(shape.padded_h());
    let lo = (out_rows.start.saturating_mul(s)).min(pad_h);
    let hi = ((out_rows.end - 1).saturating_mul(s).saturating_add(fh)).min(pad_h);
    lo..hi.max(lo)
}

/// Statically analyze one lowered program against its layer shape and
/// the policy estimate it was lowered from. Never fails: unresolvable
/// commands and malformed metadata surface as SMM014 diagnostics.
pub fn lint_program(program: &Program, shape: &LayerShape, est: &PolicyEstimate) -> ProgramLint {
    let mut findings = Findings::default();
    let mut annotations = Vec::with_capacity(program.commands.len());
    let lint = |findings: Findings| ProgramLint {
        diagnostics: findings.into_diagnostics(),
        annotations: Vec::new(),
        derived_peak: 0,
        ifmap_loads: 0,
        filter_loads: 0,
        ofmap_writes: 0,
        ofmap_reads: 0,
        redundant_elems: 0,
    };

    let resolver = match AddressResolver::new(shape) {
        Ok(r) => r,
        Err(e) => {
            findings.hit(Code::LedgerDivergence, || {
                format!("layer address space unresolvable: {e}")
            });
            return lint(findings);
        }
    };

    if program.meta.len() != program.commands.len() {
        findings.hit(Code::LedgerDivergence, || {
            format!(
                "metadata ledger has {} entries for {} commands",
                program.meta.len(),
                program.commands.len()
            )
        });
    }

    // Reverse pre-pass: the part of each store not overwritten by a
    // later store is the layer's *final* output for those bytes — only
    // those stores must have their full inputs delivered (intermediate
    // partial-sum spills legitimately precede some of their input
    // fills; see docs/LINTING.md).
    let mut later_stored = IntervalSet::new();
    let mut final_parts: Vec<Option<Vec<Range<u64>>>> = vec![None; program.commands.len()];
    for (i, cmd) in program.commands.iter().enumerate().rev() {
        if let Command::StoreOfmapRows { .. } = cmd {
            if let Ok(rc) = resolver.resolve(i, cmd) {
                final_parts[i] = Some(later_stored.missing_runs(&rc.range));
                later_stored.insert(&rc.range);
            }
        }
    }

    let default_meta = CommandMeta {
        dram_elems: 0,
        is_write: false,
        resident_after: 0,
    };
    let mut res = IntervalSet::new();
    let mut delivered_ifmap = IntervalSet::new();
    let mut delivered_filter = IntervalSet::new();
    let mut stored_ofmap = IntervalSet::new();
    let mut derived_peak = 0u64;
    let mut ifmap_loads = 0u64;
    let mut filter_loads = 0u64;
    let mut ofmap_writes = 0u64;
    let mut ofmap_reads = 0u64;
    let mut redundant_total = 0u64;

    for (i, cmd) in program.commands.iter().enumerate() {
        let meta = program.meta.get(i).unwrap_or(&default_meta);
        let rc = match resolver.resolve(i, cmd) {
            Ok(rc) => rc,
            Err(e) => {
                findings.hit(Code::LedgerDivergence, || e.to_string());
                continue;
            }
        };
        let claimed = meta.dram_elems;
        let mut derived_dram = 0u64;
        let mut redundant = 0u64;
        match rc.action {
            Action::Fill | Action::Reload => {
                derived_dram = res.missing(&rc.range);
                if claimed > derived_dram {
                    // The stream claims to move bytes that are provably
                    // already resident: a refetch, reclaimable traffic.
                    redundant = claimed - derived_dram;
                    findings.hit(Code::RedundantTransfer, || {
                        format!(
                            "command {i} ({cmd}) refetches {redundant} \
                             still-resident elements"
                        )
                    });
                } else if claimed < derived_dram {
                    findings.hit(Code::LedgerDivergence, || {
                        format!(
                            "command {i} ({cmd}) claims {claimed} DRAM elements \
                             but {derived_dram} are non-resident"
                        )
                    });
                }
                if rc.action == Action::Reload && !stored_ofmap.covers(&rc.range) {
                    findings.hit(Code::UseBeforeFill, || {
                        format!(
                            "command {i} ({cmd}) reloads {} partial-sum elements \
                             that were never spilled",
                            stored_ofmap.missing(&rc.range)
                        )
                    });
                }
                match rc.operand {
                    Operand::Ifmap => {
                        ifmap_loads += derived_dram;
                        delivered_ifmap.insert(&rc.range);
                    }
                    Operand::Filter => {
                        filter_loads += derived_dram;
                        delivered_filter.insert(&rc.range);
                    }
                    Operand::Ofmap => ofmap_reads += derived_dram,
                }
                res.insert(&rc.range);
            }
            Action::Stream => {
                derived_dram = rc.elems();
                let resident_overlap = res.intersect_len(&rc.range);
                if resident_overlap > 0 {
                    // Streaming re-moves bytes that are sitting in the
                    // GLB — the transfer is entirely avoidable.
                    redundant = resident_overlap;
                    findings.hit(Code::RedundantTransfer, || {
                        format!(
                            "command {i} ({cmd}) streams {resident_overlap} \
                             still-resident elements"
                        )
                    });
                }
                if claimed != derived_dram {
                    findings.hit(Code::LedgerDivergence, || {
                        format!(
                            "command {i} ({cmd}) claims {claimed} DRAM elements, \
                             streams always move their full range ({derived_dram})"
                        )
                    });
                }
                match rc.operand {
                    Operand::Ifmap => {
                        ifmap_loads += derived_dram;
                        delivered_ifmap.insert(&rc.range);
                    }
                    Operand::Filter => {
                        filter_loads += derived_dram;
                        delivered_filter.insert(&rc.range);
                    }
                    Operand::Ofmap => ofmap_reads += derived_dram,
                }
            }
            Action::Evict | Action::Alloc => {
                if claimed != 0 {
                    findings.hit(Code::LedgerDivergence, || {
                        format!(
                            "command {i} ({cmd}) claims {claimed} DRAM elements, \
                             evicts and allocs move none"
                        )
                    });
                }
                if rc.action == Action::Evict {
                    res.remove(&rc.range);
                } else {
                    res.insert(&rc.range);
                }
            }
            Action::Store => {
                derived_dram = rc.elems();
                let missing = res.missing(&rc.range);
                if missing > 0 {
                    findings.hit(Code::StoreBeforeAlloc, || {
                        format!(
                            "command {i} ({cmd}) stores {missing} elements that \
                             were never allocated (or already released)"
                        )
                    });
                }
                if claimed != derived_dram || !meta.is_write {
                    findings.hit(Code::LedgerDivergence, || {
                        format!(
                            "command {i} ({cmd}) store ledger is off: claims \
                             {claimed} elements (want {derived_dram}), is_write={}",
                            meta.is_write
                        )
                    });
                }
                // RAW proof: a store whose bytes are never overwritten
                // by a later store is final output — every input that
                // feeds it must have been delivered by now.
                let is_final = final_parts[i]
                    .as_ref()
                    .is_some_and(|parts| !parts.is_empty());
                if is_final {
                    if let Command::StoreOfmapRows { channel, rows } = cmd {
                        let in_rows = required_input_rows(shape, rows);
                        let in_channels: Vec<u64> = if shape.depthwise {
                            vec![*channel]
                        } else {
                            (0..u64::from(shape.in_channels)).collect()
                        };
                        let mut missing_in = 0u64;
                        for c in &in_channels {
                            missing_in +=
                                delivered_ifmap.missing(&resolver.ifmap_rows(*c, in_rows.clone()));
                        }
                        let missing_f =
                            delivered_filter.missing(&resolver.filters(*channel..channel + 1));
                        if missing_in > 0 || missing_f > 0 {
                            findings.hit(Code::UseBeforeFill, || {
                                format!(
                                    "command {i} ({cmd}) is a final store but \
                                     {missing_in} ifmap / {missing_f} filter input \
                                     elements were never delivered"
                                )
                            });
                        }
                    }
                }
                ofmap_writes += derived_dram;
                res.remove(&rc.range);
                stored_ofmap.insert(&rc.range);
            }
        }
        let derived_resident_after = res.len();
        derived_peak = derived_peak.max(derived_resident_after);
        redundant_total += redundant;
        if program.meta.len() == program.commands.len()
            && meta.resident_after != derived_resident_after
        {
            findings.hit(Code::LedgerDivergence, || {
                format!(
                    "command {i} ({cmd}) records {} resident elements, dataflow \
                     derives {derived_resident_after} — an evict or fill was \
                     reordered or mis-ranged",
                    meta.resident_after
                )
            });
        }
        annotations.push(CommandAnnotation {
            index: i,
            action: rc.action,
            operand: rc.operand,
            range: rc.range,
            claimed_dram: claimed,
            derived_dram,
            claimed_resident_after: meta.resident_after,
            derived_resident_after,
            redundant_elems: redundant,
        });
    }

    // End-of-stream proofs.
    let leaked = res.intersect_len(&resolver.ofmap_region());
    if leaked > 0 {
        findings.hit(Code::ResidencyLeak, || {
            format!(
                "{leaked} ofmap elements are still resident at end of stream — \
                 allocated or reloaded but never stored"
            )
        });
    }
    if derived_peak != program.replay.peak_resident {
        findings.hit(Code::OccupancyMismatch, || {
            format!(
                "derived peak occupancy {derived_peak} != recorded peak {}",
                program.replay.peak_resident
            )
        });
    }
    let working_set = est.resident.total();
    if derived_peak > working_set {
        findings.hit(Code::OccupancyMismatch, || {
            format!(
                "derived peak occupancy {derived_peak} exceeds the plan's Eq. 1 \
                 working set {working_set}"
            )
        });
    }
    let replay = &program.replay;
    let pairs = [
        ("ifmap loads", ifmap_loads, replay.ifmap_loads),
        ("filter loads", filter_loads, replay.filter_loads),
        ("ofmap writes", ofmap_writes, replay.ofmap_writes),
        ("ofmap reads", ofmap_reads, replay.ofmap_reads),
    ];
    for (what, derived, recorded) in pairs {
        if derived != recorded {
            findings.hit(Code::StreamTrafficMismatch, || {
                format!("derived {what} {derived} != recorded {recorded}")
            });
        }
    }

    ProgramLint {
        diagnostics: findings.into_diagnostics(),
        annotations,
        derived_peak,
        ifmap_loads,
        filter_loads,
        ofmap_writes,
        ofmap_reads,
        redundant_elems: redundant_total,
    }
}

/// Lower every layer of `plan` and lint the resulting command streams
/// (rayon-parallel per layer, diagnostics in deterministic layer
/// order). Emits the `lint.*` counters through `smm-obs`.
pub fn lint_plan(plan: &ExecutionPlan, net: &Network) -> Result<LintReport, LintError> {
    use rayon::prelude::*;
    if plan.decisions.len() != net.layers.len() {
        return Err(LintError::PlanMismatch {
            message: format!(
                "plan has {} decisions, network {:?} has {} layers",
                plan.decisions.len(),
                net.name,
                net.layers.len()
            ),
        });
    }
    let _span = smm_obs::span!("lint.plan", "{}", plan.network);
    let layers: Vec<LayerLint> = plan
        .decisions
        .par_iter()
        .zip(net.layers.par_iter())
        .map(|(d, layer)| {
            let program =
                Program::lower(&layer.shape, &d.estimate).map_err(|e| LintError::Lower {
                    message: format!("layer {} ({}): {e}", d.layer_index, d.layer_name),
                })?;
            let mut lint = lint_program(&program, &layer.shape, &d.estimate);
            for diag in &mut lint.diagnostics {
                diag.layer = Some(d.layer_index);
                diag.layer_name = Some(d.layer_name.clone());
            }
            Ok(LayerLint {
                layer_index: d.layer_index,
                layer_name: d.layer_name.clone(),
                policy: d.estimate.kind,
                prefetch: d.estimate.prefetch,
                commands: program.commands.len(),
                lint,
            })
        })
        .collect::<Result<_, LintError>>()?;
    let report = LintReport::assemble(&plan.network, layers);
    if smm_obs::enabled() {
        smm_obs::add(smm_obs::Counter::LintPrograms, report.layers.len() as u64);
        smm_obs::add(
            smm_obs::Counter::LintDiagnostics,
            report.diagnostics().count() as u64,
        );
        smm_obs::add(smm_obs::Counter::LintRedundantElems, report.redundant_elems);
    }
    Ok(report)
}
