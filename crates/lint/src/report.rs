//! Per-plan lint reports and their text/JSON rendering, mirroring the
//! `smm-check` report shape so tooling can consume both uniformly.

use crate::analysis::ProgramLint;
use smm_check::{Diagnostic, Severity};
use smm_core::report::json_escape;
use smm_policy::PolicyKind;
use std::fmt::Write as _;

/// The lint result for one layer's lowered command stream.
#[derive(Debug, Clone)]
pub struct LayerLint {
    /// Layer index in execution order.
    pub layer_index: usize,
    /// Layer name.
    pub layer_name: String,
    /// Policy the stream was lowered from.
    pub policy: PolicyKind,
    /// Whether the double-buffered (prefetch) variant was lowered.
    pub prefetch: bool,
    /// Commands in the stream.
    pub commands: usize,
    /// The per-program analysis result.
    pub lint: ProgramLint,
}

/// The full lint result for one plan: every layer's stream analyzed.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Network the plan targets.
    pub network: String,
    /// Per-layer results, in execution order.
    pub layers: Vec<LayerLint>,
    /// Total reclaimable redundant-transfer elements across all layers.
    pub redundant_elems: u64,
}

impl LintReport {
    /// Assemble a report from per-layer results.
    pub fn assemble(network: &str, layers: Vec<LayerLint>) -> Self {
        let redundant_elems = layers.iter().map(|l| l.lint.redundant_elems).sum();
        LintReport {
            network: network.to_string(),
            layers,
            redundant_elems,
        }
    }

    /// All diagnostics, in layer order.
    pub fn diagnostics(&self) -> impl Iterator<Item = &Diagnostic> {
        self.layers.iter().flat_map(|l| l.lint.diagnostics.iter())
    }

    /// True when no layer produced a diagnostic.
    pub fn is_clean(&self) -> bool {
        self.diagnostics().next().is_none()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Does any finding carry `code`?
    pub fn has_code(&self, code: smm_check::Code) -> bool {
        self.diagnostics().any(|d| d.code == code)
    }

    /// Total commands analyzed.
    pub fn commands(&self) -> usize {
        self.layers.iter().map(|l| l.commands).sum()
    }

    /// Peak derived occupancy over all layers (elements).
    pub fn peak_occupancy(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.lint.derived_peak)
            .max()
            .unwrap_or(0)
    }
}

/// Render a report for the terminal: per-layer table, verdict, and one
/// line per finding.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "lint {}: {} layers, {} commands",
        report.network,
        report.layers.len(),
        report.commands()
    );
    let _ = writeln!(
        out,
        "{:<24} {:>14} {:>6} {:>10} {:>12} {:>10} {:>6}",
        "layer", "policy", "cmds", "peak", "traffic", "redundant", "diags"
    );
    for l in &report.layers {
        let _ = writeln!(
            out,
            "{:<24} {:>14} {:>6} {:>10} {:>12} {:>10} {:>6}",
            l.layer_name,
            l.policy.label(),
            l.commands,
            l.lint.derived_peak,
            l.lint.derived_access_counts().total(),
            l.lint.redundant_elems,
            l.lint.diagnostics.len(),
        );
    }
    if report.is_clean() {
        let _ = writeln!(
            out,
            "OK: all streams hazard-free (0 diagnostics, {} redundant elements)",
            report.redundant_elems
        );
        return out;
    }
    for d in report.diagnostics() {
        let _ = writeln!(out, "{d}");
    }
    let errors = report.error_count();
    let _ = writeln!(
        out,
        "FAIL: {errors} error(s), {} redundant elements",
        report.redundant_elems
    );
    out
}

/// Render a report as a single deterministic JSON object (shape mirrors
/// `smm check --json`: `network` / summary fields / `diagnostics` /
/// `layers`).
pub fn report_json(report: &LintReport) -> String {
    let mut out = String::with_capacity(512 + 160 * report.layers.len());
    let _ = write!(
        out,
        "{{\"network\":\"{}\",\"layers_analyzed\":{},\"commands\":{},\
         \"peak_occupancy_elems\":{},\"redundant_elems\":{},\"clean\":{},\"errors\":{},",
        json_escape(&report.network),
        report.layers.len(),
        report.commands(),
        report.peak_occupancy(),
        report.redundant_elems,
        report.is_clean(),
        report.error_count(),
    );
    out.push_str("\"diagnostics\":[");
    for (i, d) in report.diagnostics().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"layer\":{},\"layer_name\":{},\"message\":\"{}\"}}",
            d.code,
            d.severity.label(),
            d.layer.map_or_else(|| "null".into(), |l| l.to_string()),
            d.layer_name
                .as_deref()
                .map_or_else(|| "null".into(), |s| format!("\"{}\"", json_escape(s))),
            json_escape(&d.message),
        );
    }
    out.push_str("],\"layers\":[");
    for (i, l) in report.layers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let t = l.lint.derived_access_counts();
        let _ = write!(
            out,
            "{{\"layer\":{},\"name\":\"{}\",\"policy\":\"{}\",\"prefetch\":{},\
             \"commands\":{},\"peak_elems\":{},\"ifmap_loads\":{},\"filter_loads\":{},\
             \"ofmap_stores\":{},\"psum_reloads\":{},\"redundant_elems\":{},\"diagnostics\":{}}}",
            l.layer_index,
            json_escape(&l.layer_name),
            l.policy.label(),
            l.prefetch,
            l.commands,
            l.lint.derived_peak,
            t.ifmap_loads,
            t.filter_loads,
            t.ofmap_stores,
            t.psum_spill_loads,
            l.lint.redundant_elems,
            l.lint.diagnostics.len(),
        );
    }
    out.push_str("]}");
    out
}
