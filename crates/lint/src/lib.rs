//! `smm-lint`: a static dataflow analyzer for lowered DMA command
//! streams.
//!
//! The replay engine *executes* a [`smm_exec::Program`] and the
//! discrete-event simulator *times* it; neither proves anything about a
//! stream it has not run. This crate closes that gap: one forward pass
//! over the command stream — no replay, no simulation — re-derives,
//! from the commands alone,
//!
//! 1. **Liveness intervals** per buffer (which flat element ranges are
//!    resident between which commands), mirroring the scratchpad's
//!    residency semantics exactly;
//! 2. **Hazard proofs** — every final store's inputs were delivered
//!    first (RAW, `SMM012`), stores only write allocated ranges
//!    (`SMM015`), no output is left resident (`SMM016`);
//! 3. An exact **peak-occupancy proof** by interval analysis, diffed
//!    against the recorded peak and the plan's Eq. 1 working set
//!    (`SMM017`);
//! 4. **Redundant-transfer detection** — refetches or re-streams of
//!    provably-still-resident bytes, reported as reclaimable traffic
//!    per layer (`SMM013`);
//! 5. A full **ledger audit** — every command's claimed DRAM traffic
//!    and post-command residency against the derived dataflow
//!    (`SMM014`), and the per-operand traffic totals against the
//!    recorded replay (`SMM018`).
//!
//! Diagnostics use the stable `SMM###` registry from [`smm_check`]
//! (codes SMM012–SMM018 belong to this crate). See `docs/LINTING.md`
//! for the diagnostic catalogue and the interval-analysis design.
//!
//! # Example
//!
//! ```
//! use smm_arch::{AcceleratorConfig, ByteSize};
//! use smm_core::{Manager, ManagerConfig, Objective};
//! use smm_lint::lint_plan;
//! use smm_model::zoo;
//!
//! let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(256));
//! let net = zoo::resnet18();
//! let plan = Manager::new(acc, ManagerConfig::new(Objective::Accesses))
//!     .heterogeneous(&net)
//!     .unwrap();
//! let report = lint_plan(&plan, &net).unwrap();
//! assert!(report.is_clean());
//! assert_eq!(report.redundant_elems, 0);
//! ```

mod analysis;
mod interval;
mod report;

pub use analysis::{lint_plan, lint_program, CommandAnnotation, LintError, ProgramLint};
pub use interval::IntervalSet;
pub use report::{render_text, report_json, LayerLint, LintReport};
