//! Sorted, disjoint, coalesced interval sets over flat element
//! addresses.
//!
//! The analyzer tracks residency, delivery, and store coverage as sets
//! of `Range<u64>`. Command streams touch ranges in near-sorted order
//! and coalesce heavily (a whole layer's residency is typically a
//! handful of runs), so a sorted `Vec` with binary search beats any
//! per-element structure by orders of magnitude.

use std::ops::Range;

/// A set of `u64` addresses stored as sorted, disjoint, non-empty,
/// maximally-coalesced ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    runs: Vec<Range<u64>>,
    len: u64,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Number of addresses in the set.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no addresses are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The maximal runs, in address order.
    pub fn runs(&self) -> &[Range<u64>] {
        &self.runs
    }

    /// Index of the first run whose end is after `addr` (the only run
    /// that could contain it, and the splice point for inserts).
    fn first_candidate(&self, addr: u64) -> usize {
        self.runs.partition_point(|r| r.end <= addr)
    }

    /// Add `range`; returns how many addresses were newly added (0 if
    /// the whole range was already present or the range is empty).
    pub fn insert(&mut self, range: &Range<u64>) -> u64 {
        if range.start >= range.end {
            return 0;
        }
        // Unlike queries, inserts must also merge a run that *ends*
        // exactly at `range.start` (adjacency), so the candidate scan
        // starts one earlier.
        let lo = self.runs.partition_point(|r| r.end < range.start);
        let mut new_start = range.start;
        let mut new_end = range.end;
        let mut covered = 0u64;
        let mut hi = lo;
        // Merge every run overlapping or directly adjacent to `range`.
        while hi < self.runs.len() && self.runs[hi].start <= new_end {
            let r = &self.runs[hi];
            covered += r
                .end
                .min(range.end)
                .saturating_sub(r.start.max(range.start));
            new_start = new_start.min(r.start);
            new_end = new_end.max(r.end);
            hi += 1;
        }
        let added = (range.end - range.start) - covered;
        self.runs
            .splice(lo..hi, std::iter::once(new_start..new_end));
        self.len += added;
        added
    }

    /// Remove `range`; returns how many addresses were actually removed.
    pub fn remove(&mut self, range: &Range<u64>) -> u64 {
        if range.start >= range.end {
            return 0;
        }
        let lo = self.first_candidate(range.start);
        let mut hi = lo;
        let mut removed = 0u64;
        let mut keep: Vec<Range<u64>> = Vec::new();
        while hi < self.runs.len() && self.runs[hi].start < range.end {
            let r = self.runs[hi].clone();
            removed += r.end.min(range.end) - r.start.max(range.start);
            if r.start < range.start {
                keep.push(r.start..range.start);
            }
            if r.end > range.end {
                keep.push(range.end..r.end);
            }
            hi += 1;
        }
        self.runs.splice(lo..hi, keep);
        self.len -= removed;
        removed
    }

    /// How many addresses of `range` are *not* in the set.
    pub fn missing(&self, range: &Range<u64>) -> u64 {
        (range.end.saturating_sub(range.start)) - self.intersect_len(range)
    }

    /// How many addresses of `range` are in the set.
    pub fn intersect_len(&self, range: &Range<u64>) -> u64 {
        if range.start >= range.end {
            return 0;
        }
        let mut i = self.first_candidate(range.start);
        let mut n = 0u64;
        while i < self.runs.len() && self.runs[i].start < range.end {
            let r = &self.runs[i];
            n += r.end.min(range.end) - r.start.max(range.start);
            i += 1;
        }
        n
    }

    /// True when every address of `range` is in the set (vacuously true
    /// for an empty range).
    pub fn covers(&self, range: &Range<u64>) -> bool {
        self.missing(range) == 0
    }

    /// The maximal sub-ranges of `range` that are *not* in the set, in
    /// address order.
    pub fn missing_runs(&self, range: &Range<u64>) -> Vec<Range<u64>> {
        let mut out = Vec::new();
        if range.start >= range.end {
            return out;
        }
        let mut cursor = range.start;
        let mut i = self.first_candidate(range.start);
        while i < self.runs.len() && self.runs[i].start < range.end {
            let r = &self.runs[i];
            if r.start > cursor {
                out.push(cursor..r.start);
            }
            cursor = cursor.max(r.end);
            i += 1;
        }
        if cursor < range.end {
            out.push(cursor..range.end);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn insert_coalesces_and_counts_new_addresses() {
        let mut s = IntervalSet::new();
        assert_eq!(s.insert(&(10..20)), 10);
        assert_eq!(s.insert(&(20..30)), 10, "adjacent runs coalesce");
        assert_eq!(s.runs().len(), 1);
        assert_eq!(s.insert(&(5..15)), 5, "overlap only charges the new part");
        assert_eq!(s.insert(&(5..30)), 0, "fully covered adds nothing");
        assert_eq!(s.len(), 25);
    }

    #[test]
    fn remove_splits_runs() {
        let mut s = IntervalSet::new();
        s.insert(&(0..100));
        assert_eq!(s.remove(&(40..60)), 20);
        assert_eq!(s.runs(), &[0..40, 60..100]);
        assert_eq!(s.remove(&(40..60)), 0, "idempotent");
        assert_eq!(s.len(), 80);
    }

    #[test]
    fn missing_and_covers() {
        let mut s = IntervalSet::new();
        s.insert(&(10..20));
        s.insert(&(30..40));
        assert_eq!(s.missing(&(0..50)), 30);
        assert_eq!(s.intersect_len(&(15..35)), 10);
        assert!(s.covers(&(12..18)));
        assert!(!s.covers(&(12..25)));
        assert!(s.covers(&(7..7)), "empty range vacuously covered");
        assert_eq!(s.missing_runs(&(0..50)), vec![0..10, 20..30, 40..50]);
        assert_eq!(s.missing_runs(&(12..18)), Vec::<Range<u64>>::new());
    }

    #[test]
    fn empty_ranges_are_no_ops() {
        let mut s = IntervalSet::new();
        assert_eq!(s.insert(&(5..5)), 0);
        assert_eq!(s.remove(&(5..5)), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn u64_max_adjacent_ranges_do_not_overflow() {
        let mut s = IntervalSet::new();
        let hi = u64::MAX - 10..u64::MAX;
        assert_eq!(s.insert(&hi), 10);
        assert_eq!(s.missing(&(u64::MAX - 20..u64::MAX)), 10);
        assert!(s.covers(&hi));
        assert_eq!(s.remove(&(u64::MAX - 5..u64::MAX)), 5);
        assert_eq!(s.len(), 5);
    }

    /// Reference model: a plain address set over a tiny universe.
    fn model_ops() -> impl Strategy<Value = Vec<(bool, Range<u64>)>> {
        prop::collection::vec(
            (any::<bool>(), 0u64..64, 0u64..64).prop_map(|(ins, a, b)| {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                (ins, lo..hi)
            }),
            0..40,
        )
    }

    proptest! {
        #[test]
        fn matches_a_hashset_reference_model(ops in model_ops()) {
            let mut s = IntervalSet::new();
            let mut model: HashSet<u64> = HashSet::new();
            for (ins, r) in ops {
                if ins {
                    let before = model.len();
                    model.extend(r.clone());
                    prop_assert_eq!(s.insert(&r), (model.len() - before) as u64);
                } else {
                    let before = model.len();
                    for a in r.clone() {
                        model.remove(&a);
                    }
                    prop_assert_eq!(s.remove(&r), (before - model.len()) as u64);
                }
                prop_assert_eq!(s.len(), model.len() as u64);
                // Invariants: sorted, disjoint, non-empty, coalesced.
                for w in s.runs().windows(2) {
                    prop_assert!(w[0].end < w[1].start);
                }
                for r in s.runs() {
                    prop_assert!(r.start < r.end);
                }
                // Spot-check queries against the model.
                let probe = 0..64u64;
                let want = probe.clone().filter(|a| model.contains(a)).count() as u64;
                prop_assert_eq!(s.intersect_len(&probe), want);
                prop_assert_eq!(s.missing(&probe), 64 - want);
                let runs_total: u64 = s
                    .missing_runs(&probe)
                    .iter()
                    .map(|r| r.end - r.start)
                    .sum();
                prop_assert_eq!(runs_total, 64 - want);
            }
        }
    }
}
