//! Mutation tests: every linter diagnostic (SMM012–SMM018) is
//! demonstrated by corrupting a provably-clean lowered program in
//! exactly the way the code describes, mirroring the smm-check mutation
//! discipline (`crates/check/tests/mutations.rs` asserts this harness
//! covers the full SMM012+ catalogue).
//!
//! A corruption may legitimately trip *several* codes — dropping a fill
//! breaks the RAW proof, the residency ledger, and the traffic totals
//! at once — so each test asserts the targeted code fired (and, where
//! the corruption is surgical, that nothing else did).

use smm_arch::{AcceleratorConfig, ByteSize};
use smm_check::Code;
use smm_exec::{Command, Program};
use smm_lint::lint_program;
use smm_model::LayerShape;
use smm_policy::{estimate, PolicyEstimate, PolicyKind};

fn small_layer() -> LayerShape {
    LayerShape {
        ifmap_h: 8,
        ifmap_w: 8,
        in_channels: 4,
        filter_h: 3,
        filter_w: 3,
        num_filters: 8,
        stride: 1,
        padding: 1,
        depthwise: false,
    }
}

fn lowered(kind: PolicyKind) -> (Program, LayerShape, PolicyEstimate) {
    let shape = small_layer();
    let acc = AcceleratorConfig::paper_default(ByteSize::from_kb(64));
    let est = estimate(kind, &shape, &acc, false).unwrap();
    let program = Program::lower(&shape, &est).unwrap();
    (program, shape, est)
}

/// The unmutated program must lint clean, or the mutation proves
/// nothing.
fn assert_clean(program: &Program, shape: &LayerShape, est: &PolicyEstimate) {
    let lint = lint_program(program, shape, est);
    assert!(
        lint.is_clean(),
        "baseline not clean: {:?}",
        lint.diagnostics
    );
    assert_eq!(lint.redundant_elems, 0);
}

fn position(program: &Program, pred: impl Fn(&Command) -> bool) -> usize {
    program
        .commands
        .iter()
        .position(pred)
        .expect("program contains the command class")
}

#[test]
fn smm012_dropping_a_fill_breaks_the_raw_proof() {
    let (mut p, shape, est) = lowered(PolicyKind::IntraLayer);
    assert_clean(&p, &shape, &est);
    let i = position(&p, |c| matches!(c, Command::FillIfmapRows { .. }));
    p.commands.remove(i);
    p.meta.remove(i);
    let lint = lint_program(&p, &shape, &est);
    assert!(
        lint.diagnostics
            .iter()
            .any(|d| d.code == Code::UseBeforeFill),
        "dropped fill must break the use-before-fill proof: {:?}",
        lint.diagnostics
    );
}

#[test]
fn smm013_duplicating_a_fill_is_a_redundant_transfer() {
    let (mut p, shape, est) = lowered(PolicyKind::IntraLayer);
    assert_clean(&p, &shape, &est);
    let i = position(&p, |c| matches!(c, Command::FillIfmapRows { .. }));
    // The duplicate claims to move the same bytes again although the
    // first fill left them resident.
    p.commands.insert(i + 1, p.commands[i].clone());
    p.meta.insert(i + 1, p.meta[i]);
    let lint = lint_program(&p, &shape, &est);
    assert!(
        lint.diagnostics
            .iter()
            .any(|d| d.code == Code::RedundantTransfer),
        "duplicated fill must be flagged redundant: {:?}",
        lint.diagnostics
    );
    assert!(lint.redundant_elems > 0);
}

#[test]
fn smm014_reordering_an_evict_before_last_use_diverges_the_ledger() {
    let (mut p, shape, est) = lowered(PolicyKind::P1IfmapReuse);
    assert_clean(&p, &shape, &est);
    // Hoist the first evict to the very front: everything it used to
    // run after now records residency the dataflow no longer derives.
    let i = position(&p, |c| matches!(c, Command::EvictIfmapRows { .. }));
    let cmd = p.commands.remove(i);
    let meta = p.meta.remove(i);
    p.commands.insert(0, cmd);
    p.meta.insert(0, meta);
    let lint = lint_program(&p, &shape, &est);
    assert!(
        lint.diagnostics
            .iter()
            .any(|d| d.code == Code::LedgerDivergence),
        "reordered evict must diverge the residency ledger: {:?}",
        lint.diagnostics
    );
}

#[test]
fn smm014_malformed_commands_are_ledger_divergence() {
    let (mut p, shape, est) = lowered(PolicyKind::IntraLayer);
    assert_clean(&p, &shape, &est);
    // An out-of-bounds channel cannot be resolved to an address range.
    p.commands[0] = Command::FillIfmapRows {
        channel: 999,
        rows: 0..1,
    };
    let lint = lint_program(&p, &shape, &est);
    assert!(
        lint.diagnostics
            .iter()
            .any(|d| d.code == Code::LedgerDivergence && d.message.contains("command 0")),
        "unresolvable command must be anchored ledger divergence: {:?}",
        lint.diagnostics
    );

    // A truncated metadata ledger is also SMM014.
    let (mut p, shape, est) = lowered(PolicyKind::IntraLayer);
    p.meta.pop();
    let lint = lint_program(&p, &shape, &est);
    assert!(lint
        .diagnostics
        .iter()
        .any(|d| d.code == Code::LedgerDivergence && d.message.contains("ledger")));
}

#[test]
fn smm015_shrinking_an_alloc_makes_the_store_unbacked() {
    let (mut p, shape, est) = lowered(PolicyKind::IntraLayer);
    assert_clean(&p, &shape, &est);
    let i = position(
        &p,
        |c| matches!(c, Command::AllocOfmapRows { rows, .. } if rows.end - rows.start >= 2),
    );
    let Command::AllocOfmapRows { channel, rows } = &p.commands[i] else {
        unreachable!()
    };
    p.commands[i] = Command::AllocOfmapRows {
        channel: *channel,
        rows: rows.start..rows.end - 1,
    };
    let lint = lint_program(&p, &shape, &est);
    assert!(
        lint.diagnostics
            .iter()
            .any(|d| d.code == Code::StoreBeforeAlloc),
        "shrunken alloc must leave the store unbacked: {:?}",
        lint.diagnostics
    );
}

#[test]
fn smm016_dropping_a_store_leaks_ofmap_residency() {
    let (mut p, shape, est) = lowered(PolicyKind::IntraLayer);
    assert_clean(&p, &shape, &est);
    let i = position(&p, |c| matches!(c, Command::StoreOfmapRows { .. }));
    p.commands.remove(i);
    p.meta.remove(i);
    let lint = lint_program(&p, &shape, &est);
    assert!(
        lint.diagnostics
            .iter()
            .any(|d| d.code == Code::ResidencyLeak),
        "dropped store must leak output residency: {:?}",
        lint.diagnostics
    );
}

#[test]
fn smm017_tampered_peak_breaks_the_occupancy_proof() {
    let (mut p, shape, est) = lowered(PolicyKind::P2FilterReuse);
    assert_clean(&p, &shape, &est);
    p.replay.peak_resident += 1;
    let lint = lint_program(&p, &shape, &est);
    // The tamper is surgical — only the occupancy proof can notice.
    assert_eq!(lint.diagnostics.len(), 1, "{:?}", lint.diagnostics);
    assert_eq!(lint.diagnostics[0].code, Code::OccupancyMismatch);
}

#[test]
fn smm017_peak_above_the_working_set_is_flagged() {
    let (p, shape, mut est) = lowered(PolicyKind::IntraLayer);
    assert_clean(&p, &shape, &est);
    // Shrink the claimed Eq. 1 working set below the true peak: the
    // stream no longer fits the footprint the plan promised.
    est.resident.ifmap = 0;
    est.resident.filters = 0;
    est.resident.ofmap = 0;
    let lint = lint_program(&p, &shape, &est);
    assert!(lint
        .diagnostics
        .iter()
        .any(|d| d.code == Code::OccupancyMismatch && d.message.contains("working set")));
}

#[test]
fn smm018_tampered_replay_traffic_is_caught() {
    let (mut p, shape, est) = lowered(PolicyKind::P1IfmapReuse);
    assert_clean(&p, &shape, &est);
    p.replay.ifmap_loads += 1;
    let lint = lint_program(&p, &shape, &est);
    assert_eq!(lint.diagnostics.len(), 1, "{:?}", lint.diagnostics);
    assert_eq!(lint.diagnostics[0].code, Code::StreamTrafficMismatch);
    assert!(lint.diagnostics[0].message.contains("ifmap loads"));
}

#[test]
fn every_lint_code_has_a_mutation_here() {
    // Meta-test: the SMM012+ block of the catalogue is exactly what
    // this harness exercises (SMM001–SMM011 live in smm-check's own
    // mutation suite).
    let covered = [
        Code::UseBeforeFill,
        Code::RedundantTransfer,
        Code::LedgerDivergence,
        Code::StoreBeforeAlloc,
        Code::ResidencyLeak,
        Code::OccupancyMismatch,
        Code::StreamTrafficMismatch,
    ];
    let lint_codes: Vec<Code> = Code::ALL
        .iter()
        .copied()
        .filter(|c| c.as_str() >= "SMM012")
        .collect();
    assert_eq!(covered.as_slice(), lint_codes.as_slice());
}
