use parking_lot::Mutex;
use std::sync::Arc;

/// Thread-safe DRAM traffic accounting in elements.
///
/// The counter is cheaply cloneable (an `Arc` of a mutex-protected pair),
/// so a scratchpad per operand can share one DRAM interface, as the
/// physical system does.
#[derive(Debug, Clone, Default)]
pub struct DramCounter {
    inner: Arc<Mutex<Counts>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Counts {
    reads: u64,
    writes: u64,
}

impl DramCounter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` elements read from DRAM.
    pub fn read(&self, n: u64) {
        self.inner.lock().reads += n;
    }

    /// Record `n` elements written to DRAM.
    pub fn write(&self, n: u64) {
        self.inner.lock().writes += n;
    }

    /// Elements read so far.
    pub fn reads(&self) -> u64 {
        self.inner.lock().reads
    }

    /// Elements written so far.
    pub fn writes(&self) -> u64 {
        self.inner.lock().writes
    }

    /// Total elements moved.
    pub fn total(&self) -> u64 {
        let c = *self.inner.lock();
        c.reads + c.writes
    }

    /// Transfer cycles at `elements_per_cycle` bandwidth (ceiling).
    pub fn transfer_cycles(&self, elements_per_cycle: u64) -> u64 {
        self.total().div_ceil(elements_per_cycle.max(1))
    }

    /// Reset both counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = Counts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counts_accumulate() {
        let d = DramCounter::new();
        d.read(100);
        d.write(40);
        d.read(1);
        assert_eq!(d.reads(), 101);
        assert_eq!(d.writes(), 40);
        assert_eq!(d.total(), 141);
    }

    #[test]
    fn clones_share_state() {
        let d = DramCounter::new();
        let d2 = d.clone();
        d2.read(7);
        assert_eq!(d.reads(), 7);
    }

    #[test]
    fn transfer_cycles_round_up() {
        let d = DramCounter::new();
        d.read(33);
        assert_eq!(d.transfer_cycles(16), 3);
        assert_eq!(d.transfer_cycles(0), 33, "zero bandwidth clamps to 1");
    }

    #[test]
    fn reset_clears() {
        let d = DramCounter::new();
        d.write(5);
        d.reset();
        assert_eq!(d.total(), 0);
    }

    #[test]
    fn concurrent_updates_do_not_race() {
        let d = DramCounter::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let d = d.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        d.read(1);
                        d.write(2);
                    }
                });
            }
        });
        assert_eq!(d.reads(), 8_000);
        assert_eq!(d.writes(), 16_000);
    }
}
