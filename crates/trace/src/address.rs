use std::ops::Range;

/// The three operand regions of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    Ifmap,
    Filter,
    Ofmap,
}

/// Element-granular address layout for one layer.
///
/// The three operands are laid out back to back in a flat address space:
/// ifmap (channel-major, then row, then column, over the *padded*
/// extent), filters (filter-major), ofmap (channel-major). Addresses are
/// element indices, not bytes — the data width only matters when traffic
/// is converted to cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    pad_h: u64,
    pad_w: u64,
    in_ch: u64,
    filt_per_f: u64,
    num_f: u64,
    out_h: u64,
    out_w: u64,
    out_ch: u64,
    ifmap_base: u64,
    filter_base: u64,
    ofmap_base: u64,
    end: u64,
}

impl AddressMap {
    /// Build a layout. `filt_per_f` is one filter's element count (which
    /// differs between standard and depth-wise convolutions).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pad_h: u64,
        pad_w: u64,
        in_ch: u64,
        filt_per_f: u64,
        num_f: u64,
        out_h: u64,
        out_w: u64,
        out_ch: u64,
    ) -> Self {
        let ifmap_base = 0;
        let filter_base = ifmap_base + pad_h * pad_w * in_ch;
        let ofmap_base = filter_base + filt_per_f * num_f;
        let end = ofmap_base + out_h * out_w * out_ch;
        AddressMap {
            pad_h,
            pad_w,
            in_ch,
            filt_per_f,
            num_f,
            out_h,
            out_w,
            out_ch,
            ifmap_base,
            filter_base,
            ofmap_base,
            end,
        }
    }

    /// Total element footprint of all three regions.
    pub fn total_elems(&self) -> u64 {
        self.end
    }

    /// Address of padded-ifmap element `(channel, row, col)`.
    pub fn ifmap(&self, c: u64, y: u64, x: u64) -> u64 {
        debug_assert!(c < self.in_ch && y < self.pad_h && x < self.pad_w);
        self.ifmap_base + (c * self.pad_h + y) * self.pad_w + x
    }

    /// Address range covering padded-ifmap rows `rows` of channel `c`
    /// (full width).
    pub fn ifmap_rows(&self, c: u64, rows: Range<u64>) -> Range<u64> {
        debug_assert!(rows.end <= self.pad_h);
        self.ifmap(c, rows.start, 0)..self.ifmap(c, rows.end.max(1) - 1, 0) + self.pad_w
    }

    /// Address range of filters `fs` (whole filters).
    pub fn filters(&self, fs: Range<u64>) -> Range<u64> {
        debug_assert!(fs.end <= self.num_f);
        let start = self.filter_base + fs.start * self.filt_per_f;
        let end = self.filter_base + fs.end * self.filt_per_f;
        start..end
    }

    /// Address of ofmap element `(channel, row, col)`.
    pub fn ofmap(&self, c: u64, y: u64, x: u64) -> u64 {
        debug_assert!(c < self.out_ch && y < self.out_h && x < self.out_w);
        self.ofmap_base + (c * self.out_h + y) * self.out_w + x
    }

    /// Which region an address belongs to.
    pub fn region_of(&self, addr: u64) -> Option<Region> {
        if addr < self.filter_base {
            Some(Region::Ifmap)
        } else if addr < self.ofmap_base {
            Some(Region::Filter)
        } else if addr < self.end {
            Some(Region::Ofmap)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        // 6×6 padded ifmap, 3 channels; 2×2×3 filters × 4; 5×5×4 ofmap.
        AddressMap::new(6, 6, 3, 12, 4, 5, 5, 4)
    }

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let m = map();
        assert_eq!(m.region_of(0), Some(Region::Ifmap));
        assert_eq!(m.region_of(6 * 6 * 3), Some(Region::Filter));
        assert_eq!(m.region_of(6 * 6 * 3 + 12 * 4), Some(Region::Ofmap));
        assert_eq!(m.region_of(m.total_elems()), None);
    }

    #[test]
    fn ifmap_addressing_is_channel_major() {
        let m = map();
        assert_eq!(m.ifmap(0, 0, 0), 0);
        assert_eq!(m.ifmap(0, 0, 5), 5);
        assert_eq!(m.ifmap(0, 1, 0), 6);
        assert_eq!(m.ifmap(1, 0, 0), 36);
    }

    #[test]
    fn ifmap_row_ranges_cover_full_width() {
        let m = map();
        let r = m.ifmap_rows(1, 2..4);
        assert_eq!(r.start, m.ifmap(1, 2, 0));
        assert_eq!(r.end, m.ifmap(1, 3, 5) + 1);
        assert_eq!(r.end - r.start, 2 * 6);
    }

    #[test]
    fn filter_ranges_are_filter_major() {
        let m = map();
        let r = m.filters(1..3);
        assert_eq!(r.end - r.start, 2 * 12);
        assert_eq!(m.region_of(r.start), Some(Region::Filter));
        assert_eq!(m.region_of(r.end - 1), Some(Region::Filter));
    }

    #[test]
    fn ofmap_addresses_bounded() {
        let m = map();
        let last = m.ofmap(3, 4, 4);
        assert_eq!(last, m.total_elems() - 1);
    }

    #[test]
    fn total_footprint() {
        assert_eq!(map().total_elems(), 108 + 48 + 100);
    }
}
