use crate::DramCounter;
use std::fmt;
use std::ops::Range;

/// A capacity-limited on-chip resident set with explicit fill/evict.
///
/// Scratchpads are software-managed: nothing is ever evicted implicitly.
/// A schedule `fill`s the element ranges it is about to use (misses are
/// charged to the shared [`DramCounter`]), `evict`s what it is done with,
/// and `writeback`s produced data. Exceeding the capacity is a schedule
/// bug and is reported as an error rather than silently dropping data.
///
/// Residency is tracked in a word-packed bitmap grown on demand: layer
/// address spaces are dense and bounded, and replays touch millions of
/// elements, so a bitmap beats a hash set by more than an order of
/// magnitude in both time and space.
#[derive(Debug)]
pub struct Scratchpad {
    capacity: u64,
    resident: u64,
    bits: Vec<u64>,
    dram: DramCounter,
}

/// Error returned when a fill would overflow the scratchpad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityExceeded {
    pub capacity: u64,
    pub requested: u64,
}

impl fmt::Display for CapacityExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scratchpad overflow: {} resident+incoming elements > capacity {}",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for CapacityExceeded {}

impl Scratchpad {
    /// A scratchpad of `capacity` elements charging misses to `dram`.
    pub fn new(capacity: u64, dram: DramCounter) -> Self {
        Scratchpad {
            capacity,
            resident: 0,
            bits: Vec::new(),
            dram,
        }
    }

    /// Elements currently resident.
    pub fn resident_count(&self) -> u64 {
        self.resident
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    #[inline]
    fn ensure_words(&mut self, addr_end: u64) {
        let words = (addr_end as usize).div_ceil(64);
        if self.bits.len() < words {
            self.bits.resize(words, 0);
        }
    }

    /// Count the addresses in `range` that are *not* resident.
    fn missing(&self, range: &Range<u64>) -> u64 {
        let mut missing = 0;
        let mut a = range.start;
        while a < range.end {
            let w = (a / 64) as usize;
            let bit_start = a % 64;
            let span = (64 - bit_start).min(range.end - a);
            let mask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << bit_start
            };
            let word = self.bits.get(w).copied().unwrap_or(0);
            missing += span - (word & mask).count_ones() as u64;
            a += span;
        }
        missing
    }

    /// Set (or clear) all bits in `range`, returning how many changed.
    fn set_range(&mut self, range: &Range<u64>, value: bool) -> u64 {
        if range.is_empty() {
            return 0;
        }
        self.ensure_words(range.end);
        let mut changed = 0;
        let mut a = range.start;
        while a < range.end {
            let w = (a / 64) as usize;
            let bit_start = a % 64;
            let span = (64 - bit_start).min(range.end - a);
            let mask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << bit_start
            };
            let word = &mut self.bits[w];
            if value {
                changed += (mask & !*word).count_ones() as u64;
                *word |= mask;
            } else {
                changed += (mask & *word).count_ones() as u64;
                *word &= !mask;
            }
            a += span;
        }
        changed
    }

    /// Whether the whole range is already resident.
    pub fn contains(&self, range: Range<u64>) -> bool {
        !range.is_empty() && self.missing(&range) == 0
    }

    /// Bring a range on-chip. Addresses already resident are free; the
    /// rest are charged as DRAM reads. Fails (with no side effects) if
    /// the post-fill footprint would exceed the capacity.
    pub fn fill(&mut self, range: Range<u64>) -> Result<(), CapacityExceeded> {
        let missing = self.missing(&range);
        let requested = self.resident + missing;
        if requested > self.capacity {
            return Err(CapacityExceeded {
                capacity: self.capacity,
                requested,
            });
        }
        self.dram.read(missing);
        self.resident += self.set_range(&range, true);
        Ok(())
    }

    /// Allocate a range for data produced on-chip (no DRAM read). Fails
    /// like [`fill`](Self::fill) on overflow.
    pub fn allocate(&mut self, range: Range<u64>) -> Result<(), CapacityExceeded> {
        let missing = self.missing(&range);
        let requested = self.resident + missing;
        if requested > self.capacity {
            return Err(CapacityExceeded {
                capacity: self.capacity,
                requested,
            });
        }
        self.resident += self.set_range(&range, true);
        Ok(())
    }

    /// Drop a range from the resident set (idempotent).
    pub fn evict(&mut self, range: Range<u64>) {
        self.resident -= self.set_range(&range, false);
    }

    /// Drop everything.
    pub fn evict_all(&mut self) {
        self.bits.fill(0);
        self.resident = 0;
    }

    /// Write a produced range off-chip (charged as DRAM writes) and
    /// evict it.
    pub fn writeback(&mut self, range: Range<u64>) {
        self.dram.write(range.end.saturating_sub(range.start));
        self.evict(range);
    }

    /// Stream a range through the scratchpad without leaving it resident:
    /// every element is charged as a DRAM read. Used when a working set
    /// exceeds the capacity and must be consumed on the fly.
    pub fn stream(&mut self, range: Range<u64>) {
        self.dram.read(range.end.saturating_sub(range.start));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn fill_charges_only_misses() {
        let dram = DramCounter::new();
        let mut sp = Scratchpad::new(100, dram.clone());
        sp.fill(0..50).unwrap();
        assert_eq!(dram.reads(), 50);
        // Overlapping refill: only the 10 new elements are fetched.
        sp.fill(40..60).unwrap();
        assert_eq!(dram.reads(), 60);
        assert_eq!(sp.resident_count(), 60);
    }

    #[test]
    fn overflow_is_an_error_with_no_side_effects() {
        let dram = DramCounter::new();
        let mut sp = Scratchpad::new(10, dram.clone());
        sp.fill(0..10).unwrap();
        let err = sp.fill(10..11).unwrap_err();
        assert_eq!(err.capacity, 10);
        assert_eq!(err.requested, 11);
        assert_eq!(dram.reads(), 10, "failed fill must not count traffic");
        assert_eq!(sp.resident_count(), 10);
    }

    #[test]
    fn evict_frees_space() {
        let dram = DramCounter::new();
        let mut sp = Scratchpad::new(10, dram.clone());
        sp.fill(0..10).unwrap();
        sp.evict(0..5);
        sp.fill(20..25).unwrap();
        assert_eq!(sp.resident_count(), 10);
        assert_eq!(dram.reads(), 15);
    }

    #[test]
    fn refetch_after_evict_is_charged_again() {
        let dram = DramCounter::new();
        let mut sp = Scratchpad::new(10, dram.clone());
        sp.fill(0..10).unwrap();
        sp.evict_all();
        sp.fill(0..10).unwrap();
        assert_eq!(dram.reads(), 20);
    }

    #[test]
    fn allocate_does_not_touch_dram() {
        let dram = DramCounter::new();
        let mut sp = Scratchpad::new(10, dram.clone());
        sp.allocate(0..8).unwrap();
        assert_eq!(dram.total(), 0);
        assert_eq!(sp.resident_count(), 8);
    }

    #[test]
    fn writeback_counts_writes_and_evicts() {
        let dram = DramCounter::new();
        let mut sp = Scratchpad::new(10, dram.clone());
        sp.allocate(0..8).unwrap();
        sp.writeback(0..8);
        assert_eq!(dram.writes(), 8);
        assert_eq!(sp.resident_count(), 0);
    }

    #[test]
    fn contains_checks_whole_range() {
        let dram = DramCounter::new();
        let mut sp = Scratchpad::new(10, dram);
        sp.fill(2..6).unwrap();
        assert!(sp.contains(3..5));
        assert!(!sp.contains(5..7));
    }

    #[test]
    fn word_boundary_ranges() {
        // Ranges crossing 64-bit word boundaries must count exactly.
        let dram = DramCounter::new();
        let mut sp = Scratchpad::new(1000, dram.clone());
        sp.fill(60..70).unwrap();
        assert_eq!(sp.resident_count(), 10);
        sp.fill(126..130).unwrap();
        assert_eq!(sp.resident_count(), 14);
        sp.evict(63..128);
        assert_eq!(sp.resident_count(), 10 - 7 + 4 - 2);
        assert_eq!(dram.reads(), 14);
    }

    proptest! {
        /// The bitmap behaves exactly like a reference hash-set model
        /// under arbitrary fill/evict/allocate sequences.
        #[test]
        fn matches_reference_model(ops in prop::collection::vec(
            (0u8..3, 0u64..300, 1u64..40), 1..40)
        ) {
            let dram = DramCounter::new();
            let mut sp = Scratchpad::new(10_000, dram.clone());
            let mut model: HashSet<u64> = HashSet::new();
            let mut reads = 0u64;
            for (op, start, len) in ops {
                let range = start..start + len;
                match op {
                    0 => {
                        reads += range.clone().filter(|a| !model.contains(a)).count() as u64;
                        model.extend(range.clone());
                        sp.fill(range).unwrap();
                    }
                    1 => {
                        for a in range.clone() { model.remove(&a); }
                        sp.evict(range);
                    }
                    _ => {
                        model.extend(range.clone());
                        sp.allocate(range).unwrap();
                    }
                }
                prop_assert_eq!(sp.resident_count(), model.len() as u64);
                prop_assert_eq!(dram.reads(), reads);
            }
        }
    }
}
