//! Address streams and memory models behind the baseline simulator.
//!
//! SCALE-Sim-style simulators work by generating the address streams a
//! systolic array demands and replaying them against double-buffered
//! scratchpads backed by DRAM. This crate provides those pieces:
//!
//! - [`AddressMap`] — a flat element-granular address layout for one
//!   layer's ifmap / filter / ofmap operands.
//! - [`Scratchpad`] — a capacity-limited resident set with explicit
//!   fill/evict, counting the DRAM traffic its misses cause.
//! - [`DramCounter`] — thread-safe read/write accounting, convertible to
//!   transfer cycles at a configured bandwidth.
//! - [`TraceWriter`] — a binary trace emitter for offline inspection.
//!
//! # Example
//!
//! ```
//! use smm_trace::{DramCounter, Scratchpad};
//!
//! let dram = DramCounter::new();
//! let mut sp = Scratchpad::new(100, dram.clone());
//! sp.fill(0..60).unwrap();   // 60 misses
//! sp.fill(40..80).unwrap();  // 20 new elements
//! assert_eq!(dram.reads(), 80);
//! assert_eq!(sp.resident_count(), 80);
//! ```

mod address;
mod dram;
mod scratchpad;
mod writer;

pub use address::{AddressMap, Region};
pub use dram::DramCounter;
pub use scratchpad::Scratchpad;
pub use writer::{TraceRecord, TraceWriter};
