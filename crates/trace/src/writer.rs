use bytes::{BufMut, Bytes, BytesMut};

/// One trace event: at `cycle`, `count` elements starting at `addr` moved
/// in (`is_read = true`) or out of the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    pub cycle: u64,
    pub addr: u64,
    pub count: u32,
    pub is_read: bool,
}

const RECORD_BYTES: usize = 8 + 8 + 4 + 1;
const MAGIC: &[u8; 4] = b"SMMT";

/// Compact binary trace emitter (SCALE-Sim emits CSV traces that dominate
/// its runtime; a fixed-width binary record keeps our trace mode cheap).
///
/// Format: 4-byte magic `SMMT`, then fixed 21-byte records
/// (cycle u64 LE, addr u64 LE, count u32 LE, is_read u8).
#[derive(Debug, Default)]
pub struct TraceWriter {
    buf: BytesMut,
}

impl TraceWriter {
    pub fn new() -> Self {
        let mut buf = BytesMut::with_capacity(4096);
        buf.put_slice(MAGIC);
        TraceWriter { buf }
    }

    /// Append one record.
    pub fn push(&mut self, r: TraceRecord) {
        self.buf.put_u64_le(r.cycle);
        self.buf.put_u64_le(r.addr);
        self.buf.put_u32_le(r.count);
        self.buf.put_u8(r.is_read as u8);
    }

    /// Append one record with its cycle stamp shifted by `offset` —
    /// how per-layer traces (stamped from cycle 0) concatenate into a
    /// network-level timeline.
    pub fn push_at(&mut self, offset: u64, r: TraceRecord) {
        self.push(TraceRecord {
            cycle: offset + r.cycle,
            ..r
        });
    }

    /// Number of records written.
    pub fn len(&self) -> usize {
        (self.buf.len() - MAGIC.len()) / RECORD_BYTES
    }

    /// Whether no records have been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Decode a trace produced by [`finish`](Self::finish).
    pub fn decode(data: &[u8]) -> Option<Vec<TraceRecord>> {
        let body = data.strip_prefix(MAGIC.as_slice())?;
        if body.len() % RECORD_BYTES != 0 {
            return None;
        }
        let mut out = Vec::with_capacity(body.len() / RECORD_BYTES);
        for chunk in body.chunks_exact(RECORD_BYTES) {
            out.push(TraceRecord {
                cycle: u64::from_le_bytes(chunk[0..8].try_into().unwrap()),
                addr: u64::from_le_bytes(chunk[8..16].try_into().unwrap()),
                count: u32::from_le_bytes(chunk[16..20].try_into().unwrap()),
                is_read: chunk[20] != 0,
            });
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut w = TraceWriter::new();
        let records = [
            TraceRecord {
                cycle: 0,
                addr: 100,
                count: 16,
                is_read: true,
            },
            TraceRecord {
                cycle: 12,
                addr: u64::MAX,
                count: 1,
                is_read: false,
            },
        ];
        for r in records {
            w.push(r);
        }
        assert_eq!(w.len(), 2);
        let bytes = w.finish();
        let decoded = TraceWriter::decode(&bytes).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn push_at_shifts_only_the_cycle() {
        let mut w = TraceWriter::new();
        let r = TraceRecord {
            cycle: 7,
            addr: 42,
            count: 3,
            is_read: true,
        };
        w.push_at(100, r);
        let decoded = TraceWriter::decode(&w.finish()).unwrap();
        assert_eq!(decoded, vec![TraceRecord { cycle: 107, ..r }]);
    }

    #[test]
    fn empty_trace_round_trips() {
        let w = TraceWriter::new();
        assert!(w.is_empty());
        let bytes = w.finish();
        assert_eq!(TraceWriter::decode(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn corrupt_traces_rejected() {
        assert!(TraceWriter::decode(b"nope").is_none());
        let mut w = TraceWriter::new();
        w.push(TraceRecord {
            cycle: 1,
            addr: 2,
            count: 3,
            is_read: true,
        });
        let mut bytes = w.finish().to_vec();
        bytes.pop(); // truncate
        assert!(TraceWriter::decode(&bytes).is_none());
    }
}
